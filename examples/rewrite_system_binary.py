#!/usr/bin/env python3
"""Rewrite a real system binary and run it natively.

The paper's robustness claim in miniature: take a compiler-produced,
dynamically-linked, PIE binary straight off the disk (default:
``/bin/ls``), instrument every direct jump with a trampoline — with no
control-flow recovery, no symbols, no relocation of any instruction —
and the result still behaves identically.

Run:  python3 examples/rewrite_system_binary.py [path-to-binary]
"""

import os
import stat
import subprocess
import sys
import tempfile

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import instrument_elf


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "/bin/ls"
    if not os.path.exists(target):
        print(f"{target} not found")
        return
    with open(target, "rb") as f:
        data = f.read()

    print(f"input: {target} ({len(data)} bytes)")
    report = instrument_elf(data, "jumps",
                            options=RewriteOptions(mode="loader"))
    print(f"rewrite: {report.summary()}")
    if report.result.grouping is not None:
        g = report.result.grouping
        print(f"page grouping: {len(g.blocks)} virtual blocks -> "
              f"{len(g.groups)} physical blocks "
              f"({g.mapping_count} mappings, "
              f"{100 * g.savings_ratio:.0f}% physical memory saved)")

    with tempfile.NamedTemporaryFile(delete=False, suffix=".patched") as f:
        f.write(report.result.data)
        patched_path = f.name
    os.chmod(patched_path, os.stat(patched_path).st_mode | stat.S_IXUSR)

    args = ["/etc/hostname"] if target == "/bin/ls" else ["--version"]
    ref = subprocess.run([target] + args, capture_output=True)
    out = subprocess.run([patched_path] + args, capture_output=True)
    same = (ref.returncode, ref.stdout) == (out.returncode, out.stdout)
    print(f"\nnative run of patched binary: exit={out.returncode}")
    print(f"output identical to original: {same}")
    print(f"patched binary left at: {patched_path}")


if __name__ == "__main__":
    main()
