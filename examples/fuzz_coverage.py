#!/usr/bin/env python3
"""Coverage-guided-fuzzing instrumentation (the paper's intro cites
full-speed coverage tracing as a binary-rewriting application).

Gives every direct jump its own hit counter in an appended coverage-map
segment — with no basic-block analysis, no CFG, no symbols — then runs
the instrumented binary in the VM and prints a fuzzer's-eye view:
covered/uncovered sites and the hottest branches.

Run:  python3 examples/fuzz_coverage.py
"""

from repro.apps.coverage import CoverageInstrumenter
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import run_elf


def main() -> None:
    binary = synthesize(SynthesisParams(
        n_jump_sites=40, n_write_sites=20, seed=1337, loop_iters=4))
    orig = run_elf(binary.data)
    print(f"target binary: {len(binary.data)} bytes, "
          f"{len(binary.jump_sites)} branch sites")

    instrumented = CoverageInstrumenter(matcher="jumps").instrument(binary.data)
    stats = instrumented.result.stats
    print(f"instrumented : {stats}")
    print(f"coverage map : {len(instrumented.slots)} slots at "
          f"{instrumented.map_vaddr:#x}")

    report = instrumented.run_with_coverage()
    assert report.run.observable == orig.observable, "behaviour changed!"

    print(f"\ncoverage     : {report.covered_sites}/{report.total_sites} "
          f"sites ({report.coverage_pct:.1f}%)")
    print("hottest branches:")
    for addr, count in report.hottest(5):
        print(f"  {addr:#x}: {count} hits")
    uncovered = report.uncovered()
    print(f"never executed ({len(uncovered)} sites — a fuzzer's targets):")
    for addr in uncovered[:5]:
        print(f"  {addr:#x}")


if __name__ == "__main__":
    main()
