#!/usr/bin/env python3
"""End-to-end coverage-guided fuzzing of a rewritten binary.

The target checks a magic prefix byte-by-byte and "crashes" (exit 101)
when all bytes match — the classic demonstration that coverage guidance
turns an exponential search into a linear one.  The target is a raw
binary; instrumentation comes purely from the rewriter (no CFG, no
source, no compiler pass).

Run:  python3 examples/fuzz_loop.py
"""

import time

from repro.apps.fuzzer import CRASH_EXIT_CODE, Fuzzer, build_fuzz_target


def main() -> None:
    magic = b"e9!"
    target = build_fuzz_target(magic, seed=1)
    print(f"target: {len(target)}-byte binary guarding the {len(magic)}-byte "
          f"magic {magic!r}")
    print(f"blind search space: 256^{len(magic)} = {256 ** len(magic):,} "
          "inputs\n")

    fuzzer = Fuzzer(target=target, input_size=len(magic), seed=99)
    stats = fuzzer.instrumented.result.stats
    print(f"instrumented with per-branch counters: {stats}\n")

    start = time.time()
    result = fuzzer.run(budget=20000)
    elapsed = time.time() - start

    print(f"executions : {result.executions} ({elapsed:.1f}s, "
          f"{result.executions / elapsed:.0f} exec/s in the interpreter)")
    print(f"corpus     : {[bytes(c) for c in result.corpus]}")
    if result.crashed:
        print(f"CRASH (exit {CRASH_EXIT_CODE}) with input "
              f"{result.crashing_input!r}")
        print(f"-> found in {result.executions:,} executions vs the "
              f"{256 ** len(magic):,}-input blind expectation")
    else:
        print("no crash found within budget")


if __name__ == "__main__":
    main()
