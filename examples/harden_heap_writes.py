#!/usr/bin/env python3
"""Binary heap-write hardening with low-fat pointers (paper Section 6.3).

Instruments every heap-write instruction of a workload binary with a
redzone check: the trampoline recomputes the store's effective address
(``lea``), passes it to an injected machine-code checker, and the
checker aborts with exit code 42 if the pointer lands inside an object's
redzone.  We demonstrate both a benign run (unchanged behaviour, higher
instruction count) and an overflowing run (caught).

Run:  python3 examples/harden_heap_writes.py
"""

from repro.core.rewriter import RewriteOptions, Rewriter
from repro.core.strategy import PatchRequest
from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_text
from repro.frontend.matchers import match_heap_writes
from repro.lowfat import (
    LowFatAllocator,
    LowFatLayout,
    install_lowfat_heap,
    lowfat_instrumentation,
)
from repro.synth.generator import BUFFER_SIZE, SynthesisParams, synthesize
from repro.vm.machine import run_elf


def harden(image: bytes, layout: LowFatLayout):
    elf = ElfFile(image)
    instructions = disassemble_text(elf)
    sites = [i for i in instructions if match_heap_writes(i)]
    rewriter = Rewriter(elf, instructions, RewriteOptions(mode="loader"))
    checker = install_lowfat_heap(rewriter, layout)
    result = rewriter.rewrite(
        [PatchRequest(insn=i, instrumentation=lowfat_instrumentation(checker))
         for i in sites]
    )
    return result, len(sites)


def main() -> None:
    layout = LowFatLayout()
    allocator = LowFatAllocator(layout)

    # --- benign workload -------------------------------------------------
    buf = allocator.malloc(BUFFER_SIZE)  # low-fat payload pointer
    print(f"allocated buffer: payload {buf:#x}, "
          f"object base {layout.base(buf):#x}, "
          f"size class {layout.size(buf)}")
    workload = synthesize(SynthesisParams(
        n_jump_sites=20, n_write_sites=40, seed=2024, loop_iters=3,
        buffer_addr=buf))
    original = run_elf(workload.data)
    print(f"original run  : exit={original.exit_code}, "
          f"{original.instructions} instructions")

    result, n_sites = harden(workload.data, layout)
    print(f"hardened      : {n_sites} heap-write sites, {result.stats}")
    hardened = run_elf(result.data)
    assert hardened.observable == original.observable
    print(f"hardened run  : exit={hardened.exit_code}, "
          f"{hardened.instructions} instructions "
          f"({100 * hardened.instructions / original.instructions:.0f}% of "
          "original — the cost of checking every store)")

    # --- overflowing workload ---------------------------------------------
    # Point the workload at a pointer inside an object's redzone: every
    # store now violates the redzone property p - base(p) >= 16.
    evil_ptr = layout.base(buf) + 4  # inside the redzone
    attack = synthesize(SynthesisParams(
        n_jump_sites=5, n_write_sites=5, seed=2025, loop_iters=1,
        buffer_addr=evil_ptr))
    unprotected = run_elf(attack.data)
    print(f"\nattack, unprotected: exit={unprotected.exit_code} "
          "(corruption goes unnoticed)")

    result, _ = harden(attack.data, layout)
    caught = run_elf(result.data)
    print(f"attack, hardened   : exit={caught.exit_code} "
          f"stderr={caught.stdout.decode(errors='replace').strip()!r}")
    assert caught.exit_code == 42


if __name__ == "__main__":
    main()
