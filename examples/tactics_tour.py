#!/usr/bin/env python3
"""A byte-level tour of the patching tactics on the paper's Figure 1
example:

    Ins1: 48 89 03        mov %rax,(%rbx)      <- patch this
    Ins2: 48 83 c0 20     add $32,%rax
    Ins3: 48 31 c1        xor %rax,%rcx
    Ins4: 83 7b fc 4d     cmpl $77,-4(%rbx)

Shows the candidate pun windows (matching the rel32 values printed in
the paper), then applies the winning tactic under the paper's
"negative offsets are invalid" assumption and prints the rewritten
bytes.

Run:  python3 examples/tactics_tour.py
"""

from repro.core.allocator import AddressSpace
from repro.core.binary import CodeImage
from repro.core.puns import pun_windows
from repro.core.strategy import PatchRequest, patch_all
from repro.core.tactics import TacticContext
from repro.core.trampoline import Empty
from repro.x86.decoder import decode_buffer

FIG1 = bytes.fromhex("488903" "4883c020" "4831c1" "837bfc4d")
BASE = 0x400000


def hexdump(data: bytes) -> str:
    return " ".join(f"{b:02x}" for b in data)


def make_ctx() -> TacticContext:
    code = FIG1 + b"\x90" * 48
    image = CodeImage.from_ranges([(BASE, code)])
    space = AddressSpace(lo_bound=0x10000, hi_bound=0x7FFF0000)  # positive only
    space.reserve(BASE - 0x1000, BASE + len(code) + 0x1000)
    return TacticContext(image=image, space=space,
                         instructions=decode_buffer(code, address=BASE))


def main() -> None:
    ctx = make_ctx()
    print("original instruction stream:")
    for insn in ctx.instructions[:4]:
        print(f"  {insn}")

    print("\npun windows for Ins1 (3-byte mov):")
    for w in pun_windows(ctx.image, BASE, BASE + 3):
        rel_lo = (w.target_lo - w.jump_end) & 0xFFFFFFFF
        rel_hi = (w.target_hi - 1 - w.jump_end) & 0xFFFFFFFF
        label = {0: "B2   ", 1: "T1(a)", 2: "T1(b)"}[w.padding]
        sign = "negative (invalid)" if w.target_lo < BASE else "positive"
        print(f"  {label}: padding={w.padding} free_bytes={w.free} "
              f"rel32={rel_lo:#010x}..{rel_hi:#010x}  -> {sign}")

    print("\napplying strategy S1 (B2 and T1(a) fail; T1(b) wins):")
    site = ctx.insn_at(BASE)
    plan = patch_all(ctx, [PatchRequest(insn=site, instrumentation=Empty())])
    patch = plan.patches[0]
    print(f"  tactic: {patch.tactic.value}")
    print(f"  trampoline at {patch.trampolines[0].vaddr:#x} "
          f"(the single rel32=0x20c08348 candidate)")

    print("\nrewritten bytes (compare with Figure 1 line T1(b)):")
    print(f"  before: {hexdump(FIG1)}")
    print(f"  after : {hexdump(ctx.image.read(BASE, len(FIG1)))}")
    print("          (2 pad prefixes + e9; Ins2's bytes now double as the "
          "rel32)")

    print("\nlock states after patching:")
    locks = ctx.image.locks_for(BASE)
    states = [locks.state_name(BASE + i) for i in range(len(FIG1))]
    print("  " + " ".join(f"{s[:3]:>3}" for s in states))

    print("\ndecoding the patched stream linearly:")
    raw = ctx.image.read(BASE, 16)
    for insn in decode_buffer(raw, address=BASE)[:3]:
        print(f"  {insn}")
    print("\nNote: a jump that targets Ins2 (0x400003) still lands on the "
          "original 'add $32,%rax' bytes — the set of jump targets is "
          "preserved.")


if __name__ == "__main__":
    main()
