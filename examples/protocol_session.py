#!/usr/bin/env python3
"""Drive the rewriter over its JSON-RPC protocol (E9Patch's real
integration surface: a frontend streams messages, the rewriter answers).

The session below registers a custom trampoline template, reserves a
counter page, queues patches at three call sites, and emits — all as
JSON messages a non-Python frontend could equally produce.

Run:  python3 examples/protocol_session.py
"""

import base64
import json

from repro import E9PatchSession, ElfFile, Machine, disassemble_text
from repro.frontend.matchers import match_calls
from repro.synth.generator import SynthesisParams, synthesize


def main() -> None:
    binary = synthesize(SynthesisParams(
        n_jump_sites=40, n_write_sites=40, seed=7777, loop_iters=2))
    call_sites = [i.address for i in disassemble_text(ElfFile(binary.data))
                  if match_calls(i)][:3]

    messages = [
        {"method": "binary",
         "params": {"data": base64.b64encode(binary.data).decode()}},
        {"method": "options", "params": {"mode": "loader", "granularity": 1}},
        {"method": "trampoline", "params": {
            "name": "call-counter",
            "params": ["slot"],
            "body": [
                {"op": "save_flags"},
                {"op": "save", "reg": "rax"},
                {"op": "load_imm", "reg": "rax", "value": "{slot}"},
                {"op": "inc_mem", "base": "rax"},
                {"op": "restore", "reg": "rax"},
                {"op": "restore_flags"},
            ]}},
        {"method": "reserve", "params": {"name": "slot0", "size": 4096}},
        *[{"method": "patch", "params": {
            "address": site, "trampoline": "call-counter",
            "args": {"slot": "slot0"}}} for site in call_sites],
        {"method": "emit", "params": {}},
    ]

    session = E9PatchSession()
    responses = []
    for i, message in enumerate(messages):
        request = {"jsonrpc": "2.0", "id": i, **message}
        print(f"-> {message['method']}")
        response = session.handle(request)
        if "error" in response:
            raise SystemExit(f"protocol error: {response['error']}")
        responses.append(response)

    result = responses[-1]["result"]
    print(f"\nstats: {result['stats']}")
    counter_vaddr = result["reservations"]["slot0"]
    patched = base64.b64decode(result["data"])

    machine = Machine(patched)
    run = machine.run()
    hits = machine.mem.read_u64(counter_vaddr)
    print(f"patched run: exit={run.exit_code}; "
          f"the {len(call_sites)} instrumented call sites executed {hits} times")


if __name__ == "__main__":
    main()
