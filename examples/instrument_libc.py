#!/usr/bin/env python3
"""Instrument the system glibc and run real programs against it.

The hardest practical target in the paper's Table 1, taken one step
further: not just *patching* libc.so but *running* against the patched
copy.  Uses the full hardened recipe (see EXPERIMENTS.md): symbol-guided
frontend, ifunc-resolver/pre-init exclusions, DT_INIT_ARRAY hijack,
trampoline-span reservations.

Run:  python3 examples/instrument_libc.py   (x86-64 Linux only)
"""

import os
import subprocess
import sys
import tempfile

from repro import RewriteOptions
from repro.frontend.tool import instrument_elf

LIBC = "/lib/x86_64-linux-gnu/libc.so.6"


def main() -> None:
    if not os.path.exists(LIBC):
        print(f"{LIBC} not found (x86-64 Linux required)")
        return
    with open(LIBC, "rb") as f:
        data = f.read()

    libdir = tempfile.mkdtemp(prefix="patched-libc-")
    out_path = os.path.join(libdir, "libc.so.6")
    print(f"rewriting {LIBC} ({len(data) >> 20} MiB)...")
    report = instrument_elf(
        data, "jumps",
        options=RewriteOptions(mode="loader", shared=True,
                               library_path=out_path),
        frontend="symbols",
    )
    with open(out_path, "wb") as f:
        f.write(report.result.data)
    print(f"  {report.summary()}")
    grouping = report.result.grouping
    print(f"  page grouping: {len(grouping.blocks)} virtual blocks -> "
          f"{len(grouping.groups)} physical "
          f"({100 * grouping.savings_ratio:.0f}% RAM/file saved)")

    env = dict(os.environ, LD_LIBRARY_PATH=libdir)
    demos = [
        (["/bin/echo", "hello from a fully instrumented glibc"], b""),
        (["/usr/bin/sort", "-r"], b"alpha\nbeta\ngamma\n"),
        ([sys.executable, "-c", "print('python on patched libc:', 6*7)"], b""),
    ]
    print("\nrunning against the patched copy:")
    for cmd, stdin in demos:
        if not os.path.exists(cmd[0]):
            continue
        r = subprocess.run(cmd, capture_output=True, input=stdin, env=env,
                           timeout=60)
        status = "ok" if r.returncode == 0 else f"rc={r.returncode}"
        print(f"  [{status}] {' '.join(cmd[:2])}: "
              f"{r.stdout.decode(errors='replace').strip()!r}")
    print(f"\npatched library left at {out_path}")


if __name__ == "__main__":
    main()
