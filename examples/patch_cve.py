#!/usr/bin/env python3
"""Binary patching walkthrough in the shape of the paper's Figure 2
(CVE-2019-18408).

A "vulnerable" program frees a resource but forgets to set
``start_new_table = 1`` afterwards, so a later consistency check fails
(exit code 1).  Without source code — and without recovering any control
flow — we patch the first instruction after the call (the paper patches
``mov %ebx,%ebp`` at 422a61) to divert through a trampoline that applies
the developer's fix, then falls back into the original stream.

Run:  python3 examples/patch_cve.py
"""

from repro.core.rewriter import RewriteOptions, Rewriter
from repro.core.strategy import PatchRequest
from repro.core.trampoline import Instrumentation
from repro.elf import constants as elfc
from repro.elf.builder import TinyProgram
from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_text
from repro.vm.machine import run_elf
from repro.x86 import encoder as enc
from repro.x86.decoder import decode_buffer


class DeveloperFix(Instrumentation):
    """The source-level patch, compiled into a trampoline body:
    ``rar->start_new_table = 1``."""

    name = "cve-fix"

    def __init__(self, flag_vaddr: int) -> None:
        self.flag_vaddr = flag_vaddr

    def emit(self, asm: enc.Assembler, insn) -> None:
        asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp (red zone)
        asm.pushfq()
        asm.push(enc.RAX)
        asm.mov_imm64(enc.RAX, self.flag_vaddr)
        asm.raw(b"\xc6\x00\x01")  # mov byte [rax], 1
        asm.pop(enc.RAX)
        asm.popfq()
        asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # restore %rsp


def build_vulnerable_program() -> tuple[bytes, int]:
    prog = TinyProgram()
    prog.add_data("start_new_table", b"\x00" * 8)
    a = prog.text
    a.jmp("main")

    a.label("ppmd7_free")  # stand-in for the archive library's free
    a.mov_imm32(enc.RDX, 0)
    a.ret()

    a.label("main")
    a.call("ppmd7_free")
    patch_off = len(a.buf)
    a.raw(b"\x89\xdd")  # mov %ebx,%ebp — the CVE's patch site, verbatim
    # The missing fix: start_new_table should have been set to 1 here.
    a.mov_label64(enc.RSI, "start_new_table")
    a.raw(b"\x48\x0f\xb6\x3e")  # movzx rdi, byte [rsi]
    a.raw(b"\x48\x83\xf7\x01")  # xor rdi, 1  (exit 0 iff flag was set)
    a.mov_imm32(enc.RAX, elfc.SYS_EXIT)
    a.syscall()

    a.labels["start_new_table"] = prog.data_vaddr("start_new_table") - a.base
    return prog.build(), prog.text_vaddr + patch_off


def main() -> None:
    image, site_vaddr = build_vulnerable_program()
    buggy = run_elf(image)
    print(f"unpatched binary: exit code {buggy.exit_code} "
          f"(1 = use-after-free bug manifests)\n")

    elf = ElfFile(image)
    instructions = disassemble_text(elf)
    site = next(i for i in instructions if i.address == site_vaddr)
    print(f"patch site (first instruction after the call to free):")
    print(f"  {site}\n")

    flag_vaddr = elf.section(".data").vaddr
    rewriter = Rewriter(elf, instructions, RewriteOptions(mode="loader"))
    result = rewriter.rewrite(
        [PatchRequest(insn=site, instrumentation=DeveloperFix(flag_vaddr))]
    )
    patch = result.plan.patches[0]
    print(f"tactic used: {patch.tactic.value}")

    print("\nrewritten bytes around the patch site:")
    raw = rewriter.image.read(site_vaddr - 7, 16)
    for insn in decode_buffer(raw, address=site_vaddr - 7):
        marker = "  <- was 'mov %ebx,%ebp'" if insn.address == site_vaddr else ""
        print(f"  {insn}{marker}")

    print("\ntrampolines:")
    for tramp in patch.trampolines:
        print(f"  [{tramp.tag}] @ {tramp.vaddr:#x} ({tramp.size} bytes)")
        for insn in decode_buffer(tramp.code, address=tramp.vaddr)[:8]:
            print(f"    {insn}")

    fixed = run_elf(result.data)
    print(f"\npatched binary: exit code {fixed.exit_code} (0 = bug fixed)")
    assert fixed.exit_code == 0


if __name__ == "__main__":
    main()
