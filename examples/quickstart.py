#!/usr/bin/env python3
"""Quickstart: instrument every jump in a binary with a counter.

Builds a small self-contained executable, rewrites it so every direct
jmp/jcc bumps a counter through a trampoline (with zero control-flow
knowledge), and runs original + patched side by side in the bundled VM.

Run:  python3 examples/quickstart.py
"""

from repro.core.rewriter import RewriteOptions, Rewriter
from repro.core.strategy import PatchRequest
from repro.core.trampoline import Counter
from repro.elf import constants as elfc
from repro.elf.builder import TinyProgram
from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_text
from repro.frontend.matchers import match_jumps
from repro.vm.machine import Machine, run_elf


def build_demo_program() -> bytes:
    """A loop that prints ten lines, with a conditional branch per
    iteration."""
    prog = TinyProgram()
    msg = prog.add_data("msg", b"tick\n")
    a = prog.text
    a.mov_imm32(1, 10)  # rcx = 10
    a.label("loop")
    a.push(1)
    a.mov_imm32(7, 1)  # rdi = stdout
    a.mov_imm64(6, msg)  # rsi = message
    a.mov_imm32(2, 5)  # rdx = length
    a.mov_imm32(0, elfc.SYS_WRITE)
    a.syscall()
    a.pop(1)
    a.sub_imm(1, 1)
    a.cmp_imm(1, 0)
    a.jcc(0x5, "loop")  # jne loop   <- this is a patch site
    a.mov_imm32(7, 0)
    a.mov_imm32(0, elfc.SYS_EXIT)
    a.syscall()
    return prog.build()


def main() -> None:
    image = build_demo_program()
    original = run_elf(image)
    print(f"original: exit={original.exit_code}, "
          f"{original.instructions} instructions, "
          f"output={original.stdout.count(b'tick')}x tick")

    # 1. Frontend: linear disassembly + the A1 (jumps) matcher.
    elf = ElfFile(image)
    instructions = disassemble_text(elf)
    sites = [i for i in instructions if match_jumps(i)]
    print(f"\npatch sites ({len(sites)}):")
    for insn in sites:
        print(f"  {insn}")

    # 2. Rewriter: counter instrumentation at every site.
    rewriter = Rewriter(elf, instructions, RewriteOptions(mode="loader"))
    counter_vaddr = rewriter.add_runtime_data(4096)
    result = rewriter.rewrite(
        [PatchRequest(insn=i, instrumentation=Counter(counter_vaddr))
         for i in sites]
    )
    print(f"\nrewrite: {result.stats}")
    print(f"output size: {result.input_size} -> {result.output_size} bytes "
          f"({result.size_pct:.1f}%)")

    # 3. Run the patched binary and read the counter out of VM memory.
    machine = Machine(result.data)
    patched = machine.run()
    assert patched.observable == original.observable, "behaviour changed!"
    count = machine.mem.read_u64(counter_vaddr)
    print(f"\npatched : exit={patched.exit_code}, "
          f"{patched.instructions} instructions "
          f"(+{patched.instructions - original.instructions} for trampolines)")
    print(f"counter : the loop branch executed {count} times")


if __name__ == "__main__":
    main()
