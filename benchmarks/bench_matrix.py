"""Cross-configuration evaluation matrix driver (see docs/EVAL.md).

Runs the declarative cell matrix from :mod:`repro.eval.matrix` —
synthesis profiles x patch configs x rewriter-option combos — and
writes one versioned ``repro-matrix/1`` JSON result file (default
``benchmarks/out/BENCH_matrix.json``).  Per cell it measures patch
success rate, B0 fraction, rewrite throughput, VM dynamic-instruction
overhead, and output-size delta.

CI runs this twice:

* the ``eval-matrix`` job runs ``--cells pr`` (the reduced 24-cell
  matrix, including the ``libsynth-cet.so`` shared-object column
  judged dlopen-style at a nonzero base) on every PR and gates the
  result against the committed
  baseline ``benchmarks/BENCH_matrix.json`` via
  ``python -m repro.eval.trend``;
* the scheduled / ``workflow_dispatch`` full run uses ``--cells full``
  and uploads the markdown trend report as a build artifact.

``BENCH_INJECT_SLOWDOWN=<factor>`` scales every time-like metric before
writing — the documented way to prove the trend gate trips (set it to
2, watch ``repro.eval.trend`` fail, unset it).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

from repro.eval.matrix import MAX_WORKLOAD_SITES, inject_slowdown, parse_cells, run_matrix

DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_matrix.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cells",
        default="pr",
        help="'pr' (reduced PR matrix), 'full', or comma-separated "
        "cell ids like bzip2/full-jumps/serial (default: pr)",
    )
    parser.add_argument(
        "--out",
        default=str(DEFAULT_OUT),
        help="result JSON path (schema repro-matrix/1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker count for parallel-combo cells (default 4)",
    )
    parser.add_argument(
        "--max-sites",
        type=int,
        default=MAX_WORKLOAD_SITES,
        help="site-count cap for workload binaries (default "
        f"{MAX_WORKLOAD_SITES})",
    )
    parser.add_argument(
        "--no-oracle",
        action="store_true",
        help="skip the VM overhead oracle (faster; drops "
        "vm_overhead_ratio from every cell)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed measurements per cell; the best value per "
        "timing/rate metric is kept (default 3)",
    )
    args = parser.parse_args(argv)

    cells = parse_cells(args.cells)
    suite = args.cells if args.cells in ("pr", "full") else "custom"
    print(f"evaluation matrix: {len(cells)} cell(s), suite {suite!r}")

    def progress(index, total, result):
        mark = "ok" if result.ok else f"FAIL ({result.verdict})"
        rewrite_s = result.metrics.get("rewrite_s")
        timing = f"{rewrite_s:8.3f} s" if rewrite_s is not None else "       - "
        print(f"  [{index + 1:3}/{total}] {result.cell.cell_id:<40} {timing}  {mark}")

    t0 = time.perf_counter()
    payload = run_matrix(
        cells,
        suite=suite,
        jobs=args.jobs,
        max_sites=args.max_sites,
        oracle=not args.no_oracle,
        repeats=args.repeats,
        progress=progress,
    )
    total_s = time.perf_counter() - t0

    inject = float(os.environ.get("BENCH_INJECT_SLOWDOWN", "1") or "1")
    if inject != 1.0:
        payload = inject_slowdown(payload, inject)
        print(f"(BENCH_INJECT_SLOWDOWN={inject}: time-like metrics scaled)")

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(cells)} cells in {total_s:.1f} s)")

    failed = [
        cell_id
        for cell_id, cell in payload["cells"].items()
        if cell["verdict"] not in ("ok", "unsupported")
    ]
    if failed:
        for cell_id in failed:
            print(f"FAIL: cell {cell_id}: {payload['cells'][cell_id]['error']}",
                  file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
