"""The static-lint merge gate: a fixed-seed rewrite-and-lint sweep.

Rewrites a deterministic corpus of synthetic binaries — by default 200
across the three Table-1 profiles (non-PIE SPEC, PIE system, PIE
browser), alternating empty and counter instrumentation with
liveness-driven trampoline slimming on — with the rewrite-plan linter
(:mod:`repro.analysis.lint`) enabled, and exits nonzero if *any* run
produces an error-severity finding.  Unlike ``bench_check.py``'s VM
oracle this gate never executes an instruction: every invariant (site
jump chains, trampoline layout and image bytes, displaced-instruction
replay, jump-back targets) is re-derived statically from the emitted
file, so the whole sweep runs in seconds.

Results are written as JSON (default ``benchmarks/out/BENCH_lint.json``,
schema ``repro-lint/1``) with per-profile finding counts.

``--self-test`` proves the gate can fail: it re-runs a small sweep with
``REPRO_CHECK_INJECT_BUG=1`` (the deliberate jump-back-displacement
miscompile in ``core/trampoline.py``) and exits nonzero unless the
linter catches the bug *statically* with a ``jump-back`` finding that
names a vaddr.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import time

from repro.analysis.lint import LintError
from repro.check.campaign import _draw_params, synthesize
from repro.core.observe import Observer
from repro.core.pipeline import RewriteOptions
from repro.errors import PatchError
from repro.frontend.tool import instrument_elf

SCHEMA = "repro-lint/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_lint.json"
DEFAULT_SEED = 1
DEFAULT_COUNT = 200
SELF_TEST_COUNT = 4

PROFILES = ("bzip2", "vim", "FireFox")
INSTRUMENTATIONS = ("empty", "counter")


def lint_one(data: bytes, instrumentation: str):
    """Rewrite one binary with the linter on; returns its LintReport."""
    options = RewriteOptions(mode="loader", lint=True, liveness=True)
    try:
        return instrument_elf(
            data, "all", instrumentation=instrumentation, options=options,
        ).result.lint
    except LintError as exc:
        return exc.report


def run(seed: int, count: int, verbose: bool) -> tuple[dict, int]:
    """One sweep; returns (payload, total error-finding count)."""
    rng = random.Random(seed)
    observer = Observer()
    errors = 0
    warnings = 0
    sites = 0
    trampolines = 0
    failures: list[dict] = []
    skipped = 0

    t0 = time.perf_counter()
    for index in range(count):
        profile = PROFILES[index % len(PROFILES)]
        instrumentation = INSTRUMENTATIONS[index % len(INSTRUMENTATIONS)]
        params = _draw_params(rng, profile)
        data = synthesize(params).data
        try:
            report = lint_one(data, instrumentation)
        except PatchError as exc:
            # A rewrite the engine rejects outright has nothing to lint;
            # the check campaign owns that failure mode.
            skipped += 1
            if verbose:
                print(f"  [{index + 1}/{count}] skipped ({exc})")
            continue
        errors += len(report.errors)
        warnings += len(report.warnings)
        sites += report.sites_checked
        trampolines += report.trampolines_checked
        if not report.ok:
            failures.append({
                "index": index,
                "profile": profile,
                "instrumentation": instrumentation,
                "seed": params.seed,
                "findings": [f.to_dict() for f in report.findings],
            })
        if verbose and ((index + 1) % 25 == 0 or not report.ok):
            verdict = "ok" if report.ok else f"{len(report.errors)} error(s)"
            print(f"  [{index + 1}/{count}] {profile}/{instrumentation}: "
                  f"{verdict}")
    wall_s = time.perf_counter() - t0

    payload = {
        "schema": SCHEMA,
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "metrics": {
            "lint_wall_s": round(wall_s, 3),
            "lint_binaries": count,
            "lint_skipped": skipped,
            "lint_sites": sites,
            "lint_trampolines": trampolines,
            "lint_errors": errors,
            "lint_warnings": warnings,
            "lint_binaries_s": round(count / wall_s, 2) if wall_s else 0.0,
        },
        "failures": failures,
        "counters": {k: v for k, v in observer.counters.items()
                     if k.startswith("lint.")},
    }
    return payload, errors


def self_test() -> int:
    """Prove the gate can fail: inject the displacement bug and demand a
    static ``jump-back`` finding with a vaddr."""
    print(f"self-test: REPRO_CHECK_INJECT_BUG=1, {SELF_TEST_COUNT} binaries")
    rng = random.Random(DEFAULT_SEED)
    os.environ["REPRO_CHECK_INJECT_BUG"] = "1"
    caught = 0
    try:
        for index in range(SELF_TEST_COUNT):
            profile = PROFILES[index % len(PROFILES)]
            data = synthesize(_draw_params(rng, profile)).data
            report = lint_one(data, "counter")
            backs = [f for f in report.errors if f.check == "jump-back"]
            if backs and all(isinstance(f.vaddr, int) for f in backs):
                caught += 1
    finally:
        del os.environ["REPRO_CHECK_INJECT_BUG"]
    if caught != SELF_TEST_COUNT:
        print(f"self-test FAILED: injected miscompile caught statically on "
              f"{caught}/{SELF_TEST_COUNT} binaries", file=sys.stderr)
        return 1
    print(f"self-test OK: jump-back finding with vaddr on "
          f"{caught}/{SELF_TEST_COUNT} binaries")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help=f"binaries to lint (default {DEFAULT_COUNT})")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="result JSON path")
    parser.add_argument("--self-test", action="store_true",
                        help="inject a miscompile and require the linter "
                        "to catch it statically (exit 1 if it does not)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)

    print(f"lint sweep: seed={args.seed} count={args.count}")
    payload, errors = run(args.seed, args.count, verbose=not args.quiet)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    m = payload["metrics"]
    print(f"  {m['lint_binaries']} binaries in {m['lint_wall_s']}s "
          f"({m['lint_binaries_s']}/s): {m['lint_sites']} sites, "
          f"{m['lint_trampolines']} trampolines, "
          f"{m['lint_errors']} errors, {m['lint_warnings']} warnings")
    print(f"  result: {out}")

    if errors:
        print(f"\n{errors} error finding(s) — the emitted rewrites violate "
              "their static invariants (see the failures list in "
              f"{out}).", file=sys.stderr)
        return 1
    print("lint gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
