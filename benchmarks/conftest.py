"""Benchmark fixtures: artifact directory for regenerated tables/figures."""

from __future__ import annotations

import pathlib

import pytest


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    out = pathlib.Path(__file__).parent / "out"
    out.mkdir(exist_ok=True)
    return out


def save_artifact(artifact_dir: pathlib.Path, name: str, text: str) -> None:
    from repro.eval.report import write_artifact

    write_artifact(artifact_dir, name, text)
