"""Rewriter throughput: how fast does the tool itself patch?

The paper's scalability story is that E9Patch handles >100 MB binaries;
this benchmark measures our rewriter's sites-per-second across binary
sizes (repeated rounds — a genuine pytest-benchmark measurement rather
than a one-shot table job).
"""

import pytest

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import instrument_elf
from repro.synth.generator import SynthesisParams, synthesize


def _binary(n_sites: int):
    return synthesize(SynthesisParams(
        n_jump_sites=n_sites, n_write_sites=n_sites // 2, seed=4242))


@pytest.mark.benchmark(group="rewriter-throughput")
@pytest.mark.parametrize("n_sites", [100, 500, 2000])
def test_rewrite_throughput(benchmark, n_sites):
    binary = _binary(n_sites)

    def run():
        return instrument_elf(binary.data, "jumps",
                              options=RewriteOptions(mode="loader"))

    report = benchmark(run)
    assert report.stats.success_pct > 99.0
    benchmark.extra_info["sites"] = report.stats.total
    benchmark.extra_info["sites_per_sec"] = (
        report.stats.total / benchmark.stats["mean"]
    )


@pytest.mark.benchmark(group="rewriter-throughput")
def test_disassembly_throughput(benchmark):
    from repro.elf.reader import ElfFile
    from repro.frontend.lineardisasm import disassemble_text

    binary = _binary(2000)
    elf = ElfFile(binary.data)
    insns = benchmark(lambda: disassemble_text(elf))
    benchmark.extra_info["insns_per_sec"] = (
        len(insns) / benchmark.stats["mean"]
    )


@pytest.mark.benchmark(group="rewriter-scalability")
def test_rewrite_system_libc(benchmark):
    """Scalability on a real, large binary: instrument every direct jump
    in the system libc (the paper's point is exactly this robustness)."""
    import os

    path = "/lib/x86_64-linux-gnu/libc.so.6"
    if not os.path.exists(path):
        pytest.skip("system libc not found")
    with open(path, "rb") as f:
        data = f.read()

    def run():
        return instrument_elf(
            data, "jumps",
            options=RewriteOptions(mode="loader", shared=True,
                                   library_path="/tmp/libc.patched.so"))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_sites > 10000
    assert report.stats.success_pct > 99.0
    benchmark.extra_info["sites"] = report.stats.total
    benchmark.extra_info["succ_pct"] = report.stats.success_pct


@pytest.mark.benchmark(group="rewriter-scalability")
def test_browser_scale_synthetic(benchmark):
    """A Chrome-shaped stress: tens of thousands of patch sites in one
    synthetic binary (the paper's scalability claim at reduced scale)."""
    binary = synthesize(SynthesisParams(
        n_jump_sites=30000, n_write_sites=10000, seed=777777))

    def run():
        return instrument_elf(binary.data, "jumps",
                              options=RewriteOptions(mode="loader"))

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_sites >= 30000
    assert report.stats.success_pct > 99.0
    benchmark.extra_info["sites"] = report.stats.total
    benchmark.extra_info["output_mb"] = round(
        report.result.output_size / 2**20, 1)
