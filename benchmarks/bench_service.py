"""Rewrite-service throughput/latency bench with a regression baseline.

Boots the daemon in-process on a unix socket, drives it with a pool of
concurrent clients over a small set of synthetic binaries, and checks
every response byte-for-byte against the serial one-shot path before
reporting numbers — a throughput figure for a service that returns the
wrong bytes would be meaningless.

Reported metrics (schema ``repro-bench/1``, default output
``benchmarks/out/BENCH_service.json``):

* ``service.throughput_rps`` — sustained requests per second across the
  whole concurrent phase (higher is better; gated by the ``_rps`` rule
  in ``bench_gate.py``);
* ``service.p50_s`` / ``service.p95_s`` — client-observed request
  latency percentiles;
* ``service.total_s`` — wall time for the concurrent phase;
* ``service.requests`` / ``service.clients`` — workload shape
  (informational, never gated).

CI compares the JSON against the committed baseline
``benchmarks/BENCH_service.json`` via ``bench_gate.py`` with a relaxed
threshold — service throughput on shared runners is noisier than the
single-process pass timings.

``BENCH_INJECT_SLOWDOWN=<factor>`` multiplies the reported latencies
(and divides throughput) before writing, to prove the gate trips.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.cache import CacheConfig
from repro.core.parallel import ExecutorConfig
from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import instrument_elf
from repro.service import RewriteService, ServiceClient, ServiceConfig
from repro.service.metrics import percentile
from repro.synth.generator import SynthesisParams, synthesize

SCHEMA = "repro-bench/1"
#: Distinct binaries in rotation; exercises the store without making the
#: run a pure cache benchmark.
N_BINARIES = 3
N_SITES = 120
N_REQUESTS = 48
N_CLIENTS = 8
N_WORKERS = 4


def make_binaries() -> dict[int, bytes]:
    return {
        seed: synthesize(SynthesisParams(
            n_jump_sites=N_SITES, n_write_sites=N_SITES // 2,
            seed=seed)).data
        for seed in range(1, N_BINARIES + 1)
    }


def serial_expected(binaries: dict[int, bytes]) -> dict[int, bytes]:
    options = RewriteOptions(mode="loader")
    return {seed: instrument_elf(data, "jumps", options=options).result.data
            for seed, data in binaries.items()}


def run_service_phase(tmp: pathlib.Path, binaries: dict[int, bytes],
                      expected: dict[int, bytes]) -> dict[str, float]:
    import asyncio

    config = ServiceConfig.from_env(
        environ={},
        socket_path=str(tmp / "bench.sock"),
        workers=N_WORKERS,
        queue_depth=N_REQUESTS,
        request_timeout=120.0,
        drain_timeout=30.0,
        cache=CacheConfig.from_env(tmp / "store"),
        executor=ExecutorConfig(jobs=1),
    )
    service = RewriteService(config)
    thread = threading.Thread(target=lambda: asyncio.run(service.run()),
                              daemon=True)
    thread.start()
    if not service.ready.wait(timeout=30):
        raise SystemExit("bench_service: daemon did not become ready")
    client = ServiceClient(socket_path=config.socket_path, timeout=120.0)

    seeds = sorted(binaries)
    # Warm the store and the worker pool before timing anything.
    for seed in seeds:
        out = client.rewrite_bytes(binaries[seed],
                                   options={"mode": "loader"})
        if out != expected[seed]:
            raise SystemExit(f"bench_service: warmup output mismatch "
                             f"for seed {seed}")

    latencies: list[float] = []
    lock = threading.Lock()

    def one_request(i: int) -> None:
        seed = seeds[i % len(seeds)]
        t0 = time.perf_counter()
        out = client.rewrite_bytes(binaries[seed],
                                   options={"mode": "loader"}, retries=20)
        dt = time.perf_counter() - t0
        if out != expected[seed]:
            raise SystemExit(f"bench_service: concurrent output mismatch "
                             f"for seed {seed} (request {i})")
        with lock:
            latencies.append(dt)

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        list(pool.map(one_request, range(N_REQUESTS)))
    total_s = time.perf_counter() - t0

    service.request_shutdown()
    thread.join(timeout=30)
    if thread.is_alive():
        raise SystemExit("bench_service: daemon failed to drain and exit")

    latencies.sort()
    return {
        "service.throughput_rps": round(N_REQUESTS / total_s, 2),
        "service.p50_s": round(percentile(latencies, 0.50), 6),
        "service.p95_s": round(percentile(latencies, 0.95), 6),
        "service.total_s": round(total_s, 6),
        "service.requests": N_REQUESTS,
        "service.clients": N_CLIENTS,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json-out",
        default=str(pathlib.Path(__file__).parent / "out"
                    / "BENCH_service.json"))
    args = parser.parse_args(argv)

    binaries = make_binaries()
    expected = serial_expected(binaries)
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        metrics = run_service_phase(pathlib.Path(tmp), binaries, expected)

    slowdown = float(os.environ.get("BENCH_INJECT_SLOWDOWN", "1") or "1")
    if slowdown != 1.0:
        for name in ("service.p50_s", "service.p95_s", "service.total_s"):
            metrics[name] = round(metrics[name] * slowdown, 6)
        metrics["service.throughput_rps"] = round(
            metrics["service.throughput_rps"] / slowdown, 2)

    payload = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "metrics": metrics,
    }
    out_path = pathlib.Path(args.json_out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    width = max(len(k) for k in metrics)
    print("== service bench ==")
    for name in sorted(metrics):
        print(f"  {name.ljust(width)}  {metrics[name]}")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
