"""The semantic-equivalence merge gate: a fixed-seed differential campaign.

Runs a deterministic :func:`repro.check.campaign.run_campaign` — by
default 200 synthetic binaries across three Table-1 profiles (non-PIE
SPEC, PIE system, PIE browser) and five patch configurations (full
tactics, baseline, coarse grouping, forced B0, ungrouped) — and exits
nonzero on *any* divergence.  Every future perf PR must keep this green:
it is the behavioural complement of ``bench_gate.py``'s timing gate.

Results are written as JSON (default ``benchmarks/out/BENCH_check.json``,
schema ``repro-check/1``) with the campaign counters and wall time.
Failure artifacts (shrunken, replayable ``.repro.json`` reproducers) are
dumped next to the result file; replay one with::

    PYTHONPATH=src python -c "from repro.check import replay_artifact; \
        print(replay_artifact('benchmarks/out/campaign-1-17.repro.json').to_dict())"

``--self-test`` proves the gate can fail: it re-runs a small campaign
with ``REPRO_CHECK_INJECT_BUG=1`` (a deliberate jump-back-displacement
miscompile in ``core/trampoline.py``) and exits nonzero unless the
oracle catches the bug *and* produces a shrunken artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

from repro.check import CampaignConfig, run_campaign
from repro.core.observe import Observer

SCHEMA = "repro-check/1"
DEFAULT_OUT = pathlib.Path(__file__).parent / "out" / "BENCH_check.json"
DEFAULT_SEED = 1
DEFAULT_COUNT = 200
SELF_TEST_COUNT = 6


def run(seed: int, count: int, artifact_dir: pathlib.Path,
        verbose: bool) -> tuple[dict, int]:
    """One campaign; returns (payload, divergence count)."""
    observer = Observer()

    def progress(index: int, total: int, verdict: str) -> None:
        if verbose and ((index + 1) % 25 == 0 or verdict != "equivalent"):
            print(f"  [{index + 1}/{total}] {verdict}")

    config = CampaignConfig(seed=seed, count=count,
                            artifact_dir=str(artifact_dir))
    t0 = time.perf_counter()
    result = run_campaign(config, observer=observer, progress=progress)
    wall_s = time.perf_counter() - t0

    payload = {
        "schema": SCHEMA,
        "host": {"python": platform.python_version(),
                 "machine": platform.machine()},
        "campaign": result.to_dict(),
        "metrics": {
            "check_wall_s": round(wall_s, 3),
            "check_binaries": result.binaries,
            "check_equivalent": result.equivalent,
            "check_divergences": result.divergences,
            "check_unsupported": result.unsupported,
            "check_shrink_steps": result.shrink_steps,
            "check_events": result.events_compared,
            "check_binaries_s": round(result.binaries / wall_s, 2),
        },
        "counters": {k: v for k, v in observer.counters.items()
                     if k.startswith("check.")},
    }
    return payload, result.divergences


def self_test(artifact_dir: pathlib.Path) -> int:
    """Prove the gate can fail: inject the displacement bug and demand
    the oracle catch it with a shrunken, replayable artifact."""
    print(f"self-test: REPRO_CHECK_INJECT_BUG=1, "
          f"{SELF_TEST_COUNT} binaries")
    os.environ["REPRO_CHECK_INJECT_BUG"] = "1"
    try:
        result = run_campaign(CampaignConfig(
            seed=DEFAULT_SEED, count=SELF_TEST_COUNT,
            artifact_dir=str(artifact_dir)))
    finally:
        del os.environ["REPRO_CHECK_INJECT_BUG"]
    if result.divergences == 0:
        print("self-test FAILED: injected miscompile was not caught",
              file=sys.stderr)
        return 1
    failure = result.failures[0]
    if failure.artifact_path is None or not os.path.exists(failure.artifact_path):
        print("self-test FAILED: no .repro.json artifact written",
              file=sys.stderr)
        return 1
    shrunk = failure.shrunk_params
    original = failure.params
    if (shrunk.n_jump_sites + shrunk.n_write_sites
            >= original.n_jump_sites + original.n_write_sites):
        print("self-test FAILED: shrinking made no progress",
              file=sys.stderr)
        return 1
    print(f"self-test OK: {result.divergences}/{result.binaries} caught, "
          f"sites {original.n_jump_sites}+{original.n_write_sites} -> "
          f"{shrunk.n_jump_sites}+{shrunk.n_write_sites} after "
          f"{failure.shrink_steps} shrink steps, "
          f"artifact {failure.artifact_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--count", type=int, default=DEFAULT_COUNT,
                        help=f"binaries to check (default {DEFAULT_COUNT})")
    parser.add_argument("--out", default=str(DEFAULT_OUT),
                        help="result JSON path")
    parser.add_argument("--self-test", action="store_true",
                        help="inject a miscompile and require the gate "
                        "to catch it (exit 1 if it does not)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)

    if args.self_test:
        return self_test(out.parent)

    print(f"check campaign: seed={args.seed} count={args.count}")
    payload, divergences = run(args.seed, args.count, out.parent,
                               verbose=not args.quiet)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    m = payload["metrics"]
    print(f"  {m['check_binaries']} binaries in {m['check_wall_s']}s "
          f"({m['check_binaries_s']}/s): "
          f"{m['check_equivalent']} equivalent, "
          f"{m['check_divergences']} divergent, "
          f"{m['check_unsupported']} unsupported")
    print(f"  result: {out}")

    if divergences:
        print(f"\n{divergences} binaries diverged — the rewriter broke "
              "program semantics.  Replay the shrunken reproducers "
              f"(.repro.json files in {out.parent}) to debug.",
              file=sys.stderr)
        return 1
    if m["check_unsupported"]:
        # Synthetic campaign binaries must always be VM-runnable; an
        # unsupported verdict here means the generator or VM regressed.
        print(f"\n{m['check_unsupported']} binaries were not VM-checkable "
              "— the campaign lost coverage.", file=sys.stderr)
        return 1
    print("check gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
