"""Per-pass timing smoke bench.

Runs the staged pipeline over a mid-sized synthetic binary three ways
(single rewrite, verified rewrite, 3-config batch) and prints the
per-pass wall-time breakdown from the shared :class:`Observer`.  Unlike
the pytest-benchmark suites this is a plain script — `python
benchmarks/bench_passes.py` — so CI can use it as a cheap smoke job
that fails loudly if the pipeline or its accounting regresses.
"""

from __future__ import annotations

import sys

from repro.core.observe import Observer
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.frontend.tool import instrument_elf, rewrite_many
from repro.synth.generator import SynthesisParams, synthesize

N_SITES = 2000


def section(title: str, obs: Observer) -> None:
    print(f"== {title} ==")
    print(obs.format_timings())
    interesting = ("decode.instructions", "match.sites", "plan.sites",
                   "plan.trampoline_bytes", "plan.alloc_probes",
                   "group.physical_bytes", "emit.output_bytes",
                   "verify.sites")
    for name in interesting:
        if name in obs.counters:
            print(f"  {name} = {obs.counters[name]}")
    print()


def main() -> int:
    binary = synthesize(SynthesisParams(
        n_jump_sites=N_SITES, n_write_sites=N_SITES // 2, seed=4242))

    obs = Observer()
    report = instrument_elf(binary.data, "jumps",
                            options=RewriteOptions(mode="loader"),
                            observer=obs)
    if report.stats.success_pct <= 99.0:
        print("FAIL: success rate regressed", file=sys.stderr)
        return 1
    section(f"single rewrite ({report.n_sites} sites, loader mode)", obs)

    obs = Observer()
    instrument_elf(binary.data, "jumps",
                   options=RewriteOptions(mode="loader", verify=True),
                   observer=obs)
    if obs.counters.get("verify.sites", 0) == 0:
        print("FAIL: verify pass checked no sites", file=sys.stderr)
        return 1
    section("verified rewrite", obs)

    obs = Observer()
    rewrite_many(
        binary.data,
        [RewriteOptions(mode="loader"),
         RewriteOptions(mode="loader", grouping=False),
         RewriteOptions(mode="loader", toggles=TacticToggles(t3=False))],
        matcher="jumps", observer=obs,
    )
    if obs.runs("decode") != 1 or obs.runs("plan") != 3:
        print("FAIL: batch rewrite did not share the decode pass",
              file=sys.stderr)
        return 1
    section("3-config batch (decode/match shared)", obs)
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
