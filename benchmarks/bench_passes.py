"""Per-pass timing smoke bench with a machine-readable result file.

Runs the staged pipeline over a mid-sized synthetic binary six ways —
single rewrite, verified rewrite, 3-config batch, serial-vs-parallel
8-config batch, chunked-vs-serial decode, cold-vs-warm artifact cache —
prints the per-pass wall-time breakdown, and writes every measurement
as JSON (default ``benchmarks/out/BENCH_passes.json``, schema
``repro-bench/1``).

``--large [PROFILE]`` switches to the browser-scale mode instead: it
decodes a 50-100 MB :class:`~repro.synth.profiles.LargeTextProfile`
section serially and chunked, requires both to be byte-identical to
each other *and* to a full ``decode_reference`` oracle walk, and writes
``benchmarks/out/BENCH_large.json`` (CI's scheduled ``bench-large``
job).

CI uses it twice: as a smoke job that exits nonzero if the pipeline or
its accounting regresses (success rate, shared decode, parallel
byte-identity, warm-cache decode count), and as the producer for the
``bench-gate`` job, which compares the JSON against the committed
baseline ``benchmarks/BENCH_passes.json`` (see ``bench_gate.py``).

``BENCH_INJECT_SLOWDOWN=<factor>`` multiplies every reported wall time
before writing — the documented way to prove the regression gate trips
(set it to 2, watch ``bench_gate.py`` fail, unset it).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.core.cache import ArtifactCache
from repro.core.observe import Observer
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.frontend.tool import instrument_elf, rewrite_many
from repro.synth.generator import SynthesisParams, synthesize

N_SITES = 2000
#: Sites per config for the parallel batch (kept lighter: 8 configs).
N_PARALLEL_SITES = 1000
PARALLEL_JOBS = 4
SCHEMA = "repro-bench/1"


def section(title: str, obs: Observer) -> None:
    print(f"== {title} ==")
    print(obs.format_timings())
    interesting = ("decode.instructions", "match.sites", "plan.sites",
                   "plan.trampoline_bytes", "plan.alloc_probes",
                   "group.physical_bytes", "emit.output_bytes",
                   "verify.sites")
    for name in interesting:
        if name in obs.counters:
            print(f"  {name} = {obs.counters[name]}")
    print()


def parallel_batch_configs() -> list[RewriteOptions]:
    """Eight distinct configurations over one binary."""
    return [
        RewriteOptions(mode="loader", granularity=g,
                       toggles=TacticToggles(t3=t3))
        for g in (1, 2, 4, 8) for t3 in (True, False)
    ]


def bench_serial_vs_parallel(data: bytes, jobs: int,
                             metrics: dict) -> str | None:
    """Measure the same 8-config batch serially and with *jobs* workers;
    any output byte difference is a hard failure."""
    from repro.core.parallel import BatchExecutor

    configs = parallel_batch_configs()
    # How many workers the pool can actually use here (folds in the CPU
    # count): the gate skips the speedup rule when this is <= 1, since a
    # serial-fallback host measures pure overhead, not parallelism.
    metrics["parallel.effective_workers"] = (
        BatchExecutor(jobs).effective_workers(len(configs)))

    t0 = time.perf_counter()
    serial = rewrite_many(data, list(configs), matcher="jumps", jobs=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = rewrite_many(data, list(configs), matcher="jumps", jobs=jobs)
    parallel_s = time.perf_counter() - t0

    if [r.result.data for r in serial] != [r.result.data for r in parallel]:
        return "parallel batch output differs from serial"
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    metrics["parallel.batch_configs"] = len(configs)
    metrics["parallel.jobs"] = jobs
    metrics["parallel.serial_s"] = serial_s
    metrics["parallel.parallel_s"] = parallel_s
    metrics["parallel.speedup"] = round(speedup, 3)
    cpus = os.cpu_count() or 1
    print(f"== serial vs parallel ({len(configs)} configs, "
          f"jobs={jobs}, cpus={cpus}) ==")
    print(f"serial   {serial_s:8.3f} s")
    print(f"parallel {parallel_s:8.3f} s   speedup {speedup:.2f}x")
    print()
    # The >=1.5x claim holds on multi-core hosts (the CI runners); a
    # single-core container can only run the determinism check.
    if cpus >= 4 and jobs >= 4 and speedup < 1.5:
        return f"parallel speedup {speedup:.2f}x < 1.5x on a {cpus}-cpu host"
    return None


def check_decode_identity(data: bytes, metrics: dict) -> str | None:
    """The fast-path decoder must agree with the reference oracle —
    fields, bytes, and error messages — on every instruction of the
    bench binary (see INTERNALS.md §7)."""
    from repro.errors import DecodeError
    from repro.x86.decoder import decode, decode_reference

    checked = mismatches = 0
    offset, n = 0, len(data)
    while offset < n:
        fast = ref = None
        fast_err = ref_err = None
        try:
            fast = decode(data, offset)
        except DecodeError as exc:
            fast_err = str(exc)
        try:
            ref = decode_reference(data, offset)
        except DecodeError as exc:
            ref_err = str(exc)
        if fast_err != ref_err or (fast is not None
                                   and (fast != ref or fast.raw != ref.raw)):
            mismatches += 1
        checked += 1
        if fast is not None:
            offset += fast.length
        elif ref is not None:
            offset += ref.length
        else:
            offset += 1
    metrics["decode.identity_checked"] = checked
    print(f"== decoder identity (fast vs reference) ==")
    print(f"{checked} instructions compared, {mismatches} mismatches")
    print()
    if mismatches:
        return (f"fast/reference decoder mismatch on {mismatches} of "
                f"{checked} instructions")
    return None


def bench_chunked(data: bytes, metrics: dict) -> str | None:
    """Chunked intra-binary decode vs the serial sweep: identical
    instruction starts required, throughput and boundary-reconciliation
    counters reported (see docs/PERF.md).  Skipped without numpy (the
    fast path is an optional extra; the scalar decoder has no chunked
    mode)."""
    from repro.x86.fastscan import HAVE_NUMPY, decode_stream

    if not HAVE_NUMPY:
        print("== chunked decode == skipped (numpy unavailable)\n")
        return None
    from repro.elf.reader import ElfFile

    # Tile the bench binary's .text to a few MB so per-chunk overhead
    # amortizes and the throughput number is stable run to run.
    text = bytes(ElfFile(data).section_view(".text"))
    text = text * max(1, (4 << 20) // len(text))

    t0 = time.perf_counter()
    serial = decode_stream(text)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    chunked = decode_stream(text, chunk_size=256 << 10)
    chunked_s = time.perf_counter() - t0

    metrics["chunked.decode_mb_s"] = (
        round(len(text) / chunked_s / 1e6, 3) if chunked_s else 0.0)
    metrics["chunked.chunks"] = chunked.chunks
    metrics["chunked.reconcile_steps"] = chunked.reconcile_retries
    print(f"== chunked decode ({len(text) >> 20} MB, {chunked.chunks} "
          f"chunks, {chunked.reconcile_retries} reconcile steps) ==")
    print(f"serial  {len(text) / serial_s / 1e6:8.2f} MB/s   "
          f"chunked {len(text) / chunked_s / 1e6:8.2f} MB/s")
    print()
    if chunked.start_offsets() != serial.start_offsets():
        return "chunked decode starts differ from the serial sweep"
    return None


def check_stream_reference_identity(blob, stream, metrics: dict,
                                    sample: int = 1000) -> str | None:
    """Walk ``decode_reference`` over the whole *blob* and require the
    stream to agree on every instruction boundary (plus full field
    equality on every *sample*-th instruction — boundaries already pin
    lengths, so sampling the deep compare keeps the walk O(reference)).

    Mirrors ``decode_buffer``'s error handling: a reference
    ``DecodeError`` is a 1-byte ``(bad)`` pseudo-instruction.
    """
    from repro.errors import DecodeError
    from repro.x86.decoder import decode_reference

    starts = stream.start_offsets()
    n = len(blob)
    off = i = mismatches = 0
    while off < n and i < len(starts):
        if starts[i] != off:
            mismatches += 1
            break
        try:
            ref = decode_reference(blob, off)
            length = ref.length
        except DecodeError:
            ref, length = None, 1
        if i % sample == 0:
            insn = stream[i]
            ok = (insn == ref and insn.raw == ref.raw) if ref is not None \
                else (insn.mnemonic == "(bad)" and len(insn.raw) == 1)
            if not ok:
                mismatches += 1
                break
        off += length
        i += 1
    if mismatches == 0 and (off != n or i != len(starts)):
        mismatches += 1  # one side ended early: boundary drift
    metrics["large.reference_checked"] = i
    print("== stream vs reference oracle ==")
    print(f"{i} instruction boundaries compared, {mismatches} mismatches")
    print()
    if mismatches:
        return (f"stream diverged from decode_reference at instruction "
                f"{i} (offset {off:#x})")
    return None


def bench_large(profile_name: str, metrics: dict) -> str | None:
    """The browser-scale section: serial + chunked decode of a
    ``LargeTextProfile`` (50-100 MB of synthetic code), identity-checked
    against the serial sweep *and* the reference oracle."""
    from repro.synth.profiles import LARGE_TEXT_PROFILES
    from repro.x86.fastscan import HAVE_NUMPY, decode_stream

    profile = LARGE_TEXT_PROFILES[profile_name]
    t0 = time.perf_counter()
    blob = profile.build()
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = decode_stream(blob)
    serial_s = time.perf_counter() - t0
    metrics["large.bytes"] = len(blob)
    metrics["large.build_s"] = build_s
    metrics["large.decode_mb_s"] = round(len(blob) / serial_s / 1e6, 3)
    print(f"== large decode ({profile.name}: {len(blob) >> 20} MB, "
          f"numpy={HAVE_NUMPY}) ==")
    print(f"build  {build_s:8.3f} s")
    print(f"serial {serial_s:8.3f} s   "
          f"{len(blob) / serial_s / 1e6:8.2f} MB/s")

    if HAVE_NUMPY:
        t0 = time.perf_counter()
        chunked = decode_stream(blob, chunk_size=8 << 20)
        chunked_s = time.perf_counter() - t0
        metrics["large.chunked_mb_s"] = round(len(blob) / chunked_s / 1e6, 3)
        metrics["large.chunks"] = chunked.chunks
        metrics["large.reconcile_steps"] = chunked.reconcile_retries
        print(f"chunked {chunked_s:7.3f} s   "
              f"{len(blob) / chunked_s / 1e6:8.2f} MB/s   "
              f"({chunked.chunks} chunks, "
              f"{chunked.reconcile_retries} reconcile steps)")
        print()
        if chunked.start_offsets() != serial.start_offsets():
            return "large chunked decode starts differ from serial sweep"
    else:
        print()

    return check_stream_reference_identity(blob, serial, metrics)


def bench_cache(data: bytes, metrics: dict) -> str | None:
    """Cold-vs-warm artifact cache; a warm run must do zero decode work."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cold_cache = ArtifactCache(tmp)
        obs_cold = Observer()
        t0 = time.perf_counter()
        cold = rewrite_many(data, [RewriteOptions(mode="loader")],
                            matcher="jumps", observer=obs_cold,
                            cache=cold_cache)
        cold_s = time.perf_counter() - t0

        warm_cache = ArtifactCache(tmp)
        obs_warm = Observer()
        t0 = time.perf_counter()
        warm = rewrite_many(data, [RewriteOptions(mode="loader")],
                            matcher="jumps", observer=obs_warm,
                            cache=warm_cache)
        warm_s = time.perf_counter() - t0

    if warm[0].result.data != cold[0].result.data:
        return "warm-cache output differs from cold run"
    warm_decode_runs = obs_warm.runs("decode") + obs_warm.runs("match")
    metrics["cache.cold_s"] = cold_s
    metrics["cache.warm_s"] = warm_s
    metrics["cache.warm_speedup"] = round(cold_s / warm_s, 3) if warm_s else 0.0
    metrics["cache.warm_decode_runs"] = warm_decode_runs
    metrics["cache.warm_hits"] = warm_cache.stats.hits
    print("== artifact cache (cold vs warm) ==")
    print(f"cold {cold_s:8.3f} s   warm {warm_s:8.3f} s   "
          f"warm hits {warm_cache.stats.hits}")
    print()
    if warm_decode_runs != 0:
        return f"warm cache ran {warm_decode_runs} decode/match passes"
    if warm_cache.stats.hits == 0:
        return "warm cache reported zero hits"
    return None


def write_result(path: pathlib.Path, metrics: dict) -> None:
    inject = float(os.environ.get("BENCH_INJECT_SLOWDOWN", "1") or "1")
    if inject != 1.0:
        def scale(k: str, v):
            if k.endswith(("_mb_s", "_sites_s")):
                return v / inject  # throughput falls when time grows
            if k.endswith("_s"):
                return v * inject
            return v

        metrics = {k: scale(k, v) for k, v in metrics.items()}
        print(f"(BENCH_INJECT_SLOWDOWN={inject}: wall times scaled)")
    payload = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        "metrics": {
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in sorted(metrics.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default=None,
        help="result JSON path (schema repro-bench/1); defaults to "
        "benchmarks/out/BENCH_passes.json, or BENCH_large.json "
        "under --large",
    )
    parser.add_argument("--jobs", type=int, default=PARALLEL_JOBS,
                        help="worker count for the parallel section")
    parser.add_argument(
        "--large", nargs="?", const="bigtext-50", metavar="PROFILE",
        help="run ONLY the browser-scale decode section on the named "
        "LargeTextProfile (default bigtext-50): serial + chunked decode "
        "with a full reference-oracle identity walk",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out) if args.out else (
        pathlib.Path(__file__).parent / "out"
        / ("BENCH_large.json" if args.large else "BENCH_passes.json"))

    metrics: dict = {}
    failures: list[str] = []

    if args.large:
        failure = bench_large(args.large, metrics)
        if failure:
            failures.append(failure)
        write_result(out, metrics)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("OK")
        return 0

    binary = synthesize(SynthesisParams(
        n_jump_sites=N_SITES, n_write_sites=N_SITES // 2, seed=4242))

    # Untimed warm-up: the first rewrite in a process pays one-off
    # costs (numpy ufunc initialization, allocator growth) that would
    # otherwise be billed to whichever pass runs first and swamp the
    # steady-state rates the gate tracks.
    instrument_elf(binary.data, "jumps",
                   options=RewriteOptions(mode="loader"))

    obs = Observer()
    t0 = time.perf_counter()
    report = instrument_elf(binary.data, "jumps",
                            options=RewriteOptions(mode="loader"),
                            observer=obs)
    metrics["single.total_s"] = time.perf_counter() - t0
    for name in ("decode", "match", "plan", "group", "emit"):
        metrics[f"single.{name}_s"] = obs.timings.get(name, 0.0)
    throughput = obs.throughput()
    metrics["single.decode_mb_s"] = throughput.get("decode_mb_s", 0.0)
    metrics["single.plan_sites_s"] = throughput.get("plan_sites_s", 0.0)
    metrics["single.alloc_span_visits"] = throughput.get(
        "alloc_span_visits", 0)
    metrics["single.succ_pct"] = round(report.stats.success_pct, 3)
    if report.stats.success_pct <= 99.0:
        failures.append("success rate regressed")
    section(f"single rewrite ({report.n_sites} sites, loader mode)", obs)

    obs = Observer()
    t0 = time.perf_counter()
    instrument_elf(binary.data, "jumps",
                   options=RewriteOptions(mode="loader", verify=True),
                   observer=obs)
    metrics["verified.total_s"] = time.perf_counter() - t0
    metrics["verified.verify_s"] = obs.timings.get("verify", 0.0)
    if obs.counters.get("verify.sites", 0) == 0:
        failures.append("verify pass checked no sites")
    section("verified rewrite", obs)

    obs = Observer()
    t0 = time.perf_counter()
    rewrite_many(
        binary.data,
        [RewriteOptions(mode="loader"),
         RewriteOptions(mode="loader", grouping=False),
         RewriteOptions(mode="loader", toggles=TacticToggles(t3=False))],
        matcher="jumps", observer=obs,
    )
    metrics["batch3.total_s"] = time.perf_counter() - t0
    if obs.runs("decode") != 1 or obs.runs("plan") != 3:
        failures.append("batch rewrite did not share the decode pass")
    section("3-config batch (decode/match shared)", obs)

    parallel_binary = synthesize(SynthesisParams(
        n_jump_sites=N_PARALLEL_SITES,
        n_write_sites=N_PARALLEL_SITES // 2, seed=1717))
    failure = bench_serial_vs_parallel(parallel_binary.data, args.jobs,
                                       metrics)
    if failure:
        failures.append(failure)

    failure = bench_chunked(binary.data, metrics)
    if failure:
        failures.append(failure)

    failure = bench_cache(binary.data, metrics)
    if failure:
        failures.append(failure)

    failure = check_decode_identity(binary.data, metrics)
    if failure:
        failures.append(failure)

    write_result(out, metrics)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
