"""Figure 4 regeneration: Dromaeo DOM suite overheads for Chrome/FireFox.

Produces ``benchmarks/out/figure4_dromaeo.txt``: per-suite relative
overheads plus the geometric mean (the paper reports ~213% Chrome,
~146% FireFox relative runtime, i.e. +113%/+46% overhead).
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.eval.dromaeo import format_dromaeo, geometric_mean, run_dromaeo


@pytest.mark.benchmark(group="figure4")
def test_dromaeo_full(benchmark, artifact_dir):
    results = benchmark.pedantic(run_dromaeo, rounds=1, iterations=1)
    text = format_dromaeo(results)
    text += "\npaper Geom.Mean     : Chrome ~213%  FireFox ~146%"
    save_artifact(artifact_dir, "figure4_dromaeo.txt", text)

    chrome = geometric_mean(
        [r.overhead_pct for r in results if r.browser == "Chrome"])
    firefox = geometric_mean(
        [r.overhead_pct for r in results if r.browser == "FireFox"])
    # Shape: both browsers pay, Chrome pays substantially more.
    assert chrome > 110.0
    assert firefox > 100.0
    assert chrome - 100.0 > 1.8 * (firefox - 100.0)
