"""In-text claims of Section 6.1 as ablation benchmarks.

Produces ``benchmarks/out/ablations.txt``:

* coverage with and without tactic T3 ("merely ~90.5% ... rather than
  ~100%" for A1);
* file size with grouping on vs the naive 1:1 mapping ("balloons to
  +2239.83%/+568.96% for A1/A2");
* grouping granularity sweep: mappings vs physical bytes (M>=64 stays
  under vm.max_map_count);
* B0 signal-handler baseline vs jump-based patching ("orders of
  magnitude" slower);
* PIE vs non-PIE baseline coverage;
* scale invariance of the coverage percentages (validating the
  scaled-down corpus).
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.core.grouping import DEFAULT_MAX_MAP_COUNT
from repro.core.rewriter import RewriteOptions
from repro.eval.ablation import (
    b0_slowdown,
    coverage_without_t3,
    grouping_size_blowup,
    pie_effect,
    scale_invariance,
)
from repro.frontend.tool import instrument_elf
from repro.synth.generator import SynthesisParams, synthesize
from repro.synth.profiles import profile_by_name

T3_HEAVY = ("gamess", "zeusmp", "tonto", "leslie3d", "GemsFDTD")


@pytest.mark.benchmark(group="ablation")
def test_no_t3_coverage(benchmark, artifact_dir):
    def run():
        return {name: coverage_without_t3(profile_by_name(name))
                for name in T3_HEAVY}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'binary':<12}{'Succ% full':>12}{'Succ% no-T3':>13}"]
    for name, (full, no_t3) in results.items():
        lines.append(f"{name:<12}{full:>11.2f}%{no_t3:>12.2f}%")
    lines.append("paper (A1 overall): ~100% with T3, ~90.5% without")
    save_artifact(artifact_dir, "ablation_no_t3.txt", "\n".join(lines))
    drops = [full - no_t3 for full, no_t3 in results.values()]
    assert max(drops) > 3.0  # T3 is load-bearing on T3-heavy rows


@pytest.mark.benchmark(group="ablation")
def test_grouping_size_blowup(benchmark, artifact_dir):
    names = ("bzip2", "gcc", "povray")

    def run():
        out = {}
        for name in names:
            for app in ("A1", "A2"):
                out[(name, app)] = grouping_size_blowup(
                    profile_by_name(name), app)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'binary/app':<16}{'Size% grouped':>14}{'Size% naive':>13}"]
    for (name, app), (grouped, naive) in results.items():
        lines.append(f"{name + '/' + app:<16}{grouped:>13.2f}%{naive:>12.2f}%")
    lines.append("paper: grouped +57.43%/+30.90% (A1/A2); "
                 "naive +2239.83%/+568.96%")
    save_artifact(artifact_dir, "ablation_grouping.txt", "\n".join(lines))
    for grouped, naive in results.values():
        assert naive > grouped


@pytest.mark.benchmark(group="ablation")
def test_granularity_sweep(benchmark, artifact_dir):
    """Mappings vs physical bytes as M grows (Section 4)."""
    binary = synthesize(SynthesisParams.from_profile(profile_by_name("gcc")))

    def run():
        out = {}
        for m in (1, 4, 16, 64):
            report = instrument_elf(
                binary.data, "jumps",
                options=RewriteOptions(mode="loader", granularity=m))
            g = report.result.grouping
            out[m] = (g.mapping_count, g.grouped_physical_bytes)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'M':>4}{'mappings':>10}{'physical KiB':>14}"]
    for m, (mappings, phys) in results.items():
        lines.append(f"{m:>4}{mappings:>10}{phys // 1024:>14}")
    lines.append(f"(vm.max_map_count default = {DEFAULT_MAX_MAP_COUNT})")
    save_artifact(artifact_dir, "ablation_granularity.txt", "\n".join(lines))
    # Coarser granularity -> fewer mappings, more physical memory.
    mappings = [results[m][0] for m in (1, 4, 16, 64)]
    assert mappings == sorted(mappings, reverse=True)
    assert results[64][0] < DEFAULT_MAX_MAP_COUNT


@pytest.mark.benchmark(group="ablation")
def test_b0_vs_jumps(benchmark, artifact_dir):
    jump_pct, b0_pct = benchmark.pedantic(
        lambda: b0_slowdown(n_sites=30, loop_iters=2), rounds=1, iterations=1)
    text = (f"jump-based patching : {jump_pct:.1f}% of original runtime\n"
            f"B0 signal handlers  : {b0_pct:.1f}% of original runtime\n"
            f"B0/jump cost ratio  : {b0_pct / jump_pct:.1f}x\n"
            "paper: B0 'suffers from poor performance (sometimes by orders "
            "of magnitude)'")
    save_artifact(artifact_dir, "ablation_b0.txt", text)
    assert b0_pct > 10 * jump_pct


@pytest.mark.benchmark(group="ablation")
def test_pie_effect(benchmark, artifact_dir):
    names = ("gcc", "perlbench", "xalancbmk")

    def run():
        return {name: pie_effect(profile_by_name(name)) for name in names}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'binary':<12}{'Base% nonPIE':>13}{'Base% PIE':>11}"]
    for name, (nonpie, pie) in results.items():
        lines.append(f"{name:<12}{nonpie:>12.2f}%{pie:>10.2f}%")
    lines.append("paper: 'Even the baseline (Base%) for PIE binaries is >93%'")
    save_artifact(artifact_dir, "ablation_pie.txt", "\n".join(lines))
    for nonpie, pie in results.values():
        assert pie > nonpie
        assert pie > 93.0


@pytest.mark.benchmark(group="ablation")
def test_scale_invariance(benchmark, artifact_dir):
    def run():
        return {
            name: scale_invariance(profile_by_name(name),
                                   factors=(0.5, 1.0, 2.0))
            for name in ("bzip2", "gcc")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Succ% at workload scales 0.5x / 1x / 2x:"]
    for name, values in results.items():
        lines.append(f"{name:<10}" + "  ".join(f"{v:.2f}%" for v in values))
    lines.append("(coverage percentages are scale-free, justifying the "
                 "scaled-down Table 1 corpus)")
    save_artifact(artifact_dir, "ablation_scale.txt", "\n".join(lines))
    for values in results.values():
        assert max(values) - min(values) < 6.0


@pytest.mark.benchmark(group="ablation")
def test_cost_model_sensitivity(benchmark, artifact_dir):
    """Time% orderings must not depend on the transfer-weight knob."""
    from repro.eval.sensitivity import format_sensitivity, run_sensitivity
    from repro.synth.profiles import profile_by_name

    profiles = [profile_by_name(n)
                for n in ("perlbench", "bzip2", "milc", "lbm", "sjeng")]
    result = benchmark.pedantic(
        lambda: run_sensitivity(profiles), rounds=1, iterations=1)
    save_artifact(artifact_dir, "ablation_cost_model.txt",
                  format_sensitivity(result))
    assert result.ranking_stable()


@pytest.mark.benchmark(group="ablation")
def test_packing_vs_grouping(benchmark, artifact_dir):
    """Design-insight ablation: packing trampolines into shared pages at
    allocation time *hurts* — dense pages cannot merge under physical
    page grouping, so the physical footprint grows.  Fragment-then-group
    (the paper's way) wins."""
    binary = synthesize(SynthesisParams.from_profile(profile_by_name("gcc")))

    def run():
        out = {}
        for pack in (False, True):
            report = instrument_elf(
                binary.data, "jumps",
                options=RewriteOptions(mode="loader",
                                       pack_allocations=pack))
            g = report.result.grouping
            out[pack] = (len(g.blocks), len(g.groups),
                         g.grouped_physical_bytes, report.result.size_pct)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'policy':<22}{'vpages':>8}{'phys pages':>12}"
             f"{'phys KiB':>10}{'Size%':>8}"]
    for pack, (blocks, groups, phys, size_pct) in results.items():
        label = "pack-then-group" if pack else "fragment-then-group"
        lines.append(f"{label:<22}{blocks:>8}{groups:>12}"
                     f"{phys // 1024:>10}{size_pct:>7.1f}%")
    lines.append("(dense pages cannot merge: grouping thrives on the very "
                 "fragmentation packing tries to prevent)")
    save_artifact(artifact_dir, "ablation_packing.txt", "\n".join(lines))
    assert results[False][2] <= results[True][2]
