"""End-to-end smoke test for the rewrite daemon as a real subprocess.

CI boots the daemon exactly the way an operator would —
``python -m repro.service serve --socket ...`` — and proves the three
service-level guarantees that the in-process test suite cannot fully
witness across a process boundary:

1. **Correctness under concurrency** — 50 concurrent requests over a
   rotation of synthetic binaries all succeed and every response is
   byte-identical to the serial one-shot (``instrument_elf``) output.
2. **Typed backpressure** — with one slow worker and a queue of one, a
   burst observes HTTP 429 with ``Retry-After`` and a typed
   ``overloaded`` error body, and honouring the retry hint eventually
   lands every request.
3. **Graceful drain** — SIGTERM with requests in flight: all of them
   complete byte-identically, the process exits 0 within the drain
   budget, and the socket refuses connections afterwards.

Run locally with ``PYTHONPATH=src python benchmarks/service_smoke.py``.
Exits nonzero on the first violated guarantee.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import instrument_elf
from repro.service import ServiceClient, ServiceError
from repro.synth.generator import SynthesisParams, synthesize

REPO = pathlib.Path(__file__).resolve().parent.parent
LOG_PATH = REPO / "benchmarks" / "out" / "service_smoke.log"
N_CONCURRENT = 50
N_SITES = 60


def fail(message: str) -> None:
    raise SystemExit(f"service_smoke: FAIL: {message}")


def record(label: str, text: str) -> None:
    """Append daemon output to the log CI uploads when the smoke fails."""
    LOG_PATH.parent.mkdir(parents=True, exist_ok=True)
    with LOG_PATH.open("a") as fh:
        fh.write(f"===== {label} =====\n{text or '(no output)'}\n")


def make_binaries(n: int = 4) -> dict[int, bytes]:
    return {
        seed: synthesize(SynthesisParams(
            n_jump_sites=N_SITES, n_write_sites=N_SITES // 2,
            seed=seed)).data
        for seed in range(1, n + 1)
    }


def spawn_daemon(socket_path: pathlib.Path, *args: str,
                 env_extra: dict[str, str] | None = None
                 ) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--socket", str(socket_path), *args],
        env=env, cwd=REPO,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServiceClient(socket_path=str(socket_path), timeout=60.0)
    if not client.wait_ready(timeout=30):
        proc.kill()
        out = proc.communicate(timeout=10)[0]
        record(f"daemon never ready ({socket_path.name})", out)
        fail(f"daemon never became ready; output:\n{out}")
    return proc


def terminate(proc: subprocess.Popen, *, expect_zero: bool = True) -> str:
    proc.send_signal(signal.SIGTERM)
    try:
        out = proc.communicate(timeout=60)[0]
    except subprocess.TimeoutExpired:
        proc.kill()
        record("daemon ignored SIGTERM", proc.communicate()[0] or "")
        fail("daemon ignored SIGTERM for 60s")
    record(f"daemon exit {proc.returncode}", out)
    if expect_zero and proc.returncode != 0:
        fail(f"daemon exited {proc.returncode} after SIGTERM; "
             f"output:\n{out}")
    return out


def phase_concurrent_correctness(tmp: pathlib.Path) -> None:
    print(f"== phase 1: {N_CONCURRENT} concurrent requests, "
          "byte-identical to one-shots ==")
    binaries = make_binaries()
    options = RewriteOptions(mode="loader")
    expected = {seed: instrument_elf(data, "jumps",
                                     options=options).result.data
                for seed, data in binaries.items()}
    socket_path = tmp / "p1.sock"
    proc = spawn_daemon(socket_path, "--workers", "4", "--queue", "64",
                        "--cache-dir", str(tmp / "p1-store"))
    try:
        client = ServiceClient(socket_path=str(socket_path), timeout=120.0)
        seeds = sorted(binaries)

        def one(i: int) -> tuple[int, bytes]:
            seed = seeds[i % len(seeds)]
            return seed, client.rewrite_bytes(
                binaries[seed], options={"mode": "loader"}, retries=20)

        with ThreadPoolExecutor(max_workers=16) as pool:
            for seed, out in pool.map(one, range(N_CONCURRENT)):
                if out != expected[seed]:
                    fail(f"concurrent output mismatch for seed {seed}")

        metrics = client.metrics()
        ok = metrics["service"]["counters"]["ok"]
        if ok < N_CONCURRENT:
            fail(f"daemon counted {ok} ok rewrites, expected "
                 f">= {N_CONCURRENT}")
        print(f"   all {N_CONCURRENT} responses byte-identical "
              f"(daemon ok={ok})")
    finally:
        terminate(proc)
    print("   drained and exited 0")


def phase_backpressure(tmp: pathlib.Path) -> None:
    print("== phase 2: bounded queue answers typed 429, "
          "retries succeed ==")
    data = make_binaries(1)[1]
    expected = instrument_elf(
        data, "jumps", options=RewriteOptions(mode="loader")).result.data
    socket_path = tmp / "p2.sock"
    proc = spawn_daemon(socket_path, "--workers", "1", "--queue", "1",
                        "--no-cache",
                        env_extra={"REPRO_SERVICE_TEST_DELAY_MS": "200"})
    try:
        client = ServiceClient(socket_path=str(socket_path), timeout=120.0)
        rejected: list[ServiceError] = []
        lock = threading.Lock()

        def burst(_: int) -> bytes | None:
            try:
                return client.rewrite_bytes(data,
                                            options={"mode": "loader"})
            except ServiceError as exc:
                with lock:
                    rejected.append(exc)
                return None

        with ThreadPoolExecutor(max_workers=8) as pool:
            outs = list(pool.map(burst, range(8)))
        if not rejected:
            fail("burst of 8 against queue=1 never observed a 429")
        for exc in rejected:
            if exc.status != 429 or exc.kind != "overloaded":
                fail(f"expected typed 429/overloaded, got {exc.status} "
                     f"{exc.kind}")
            if exc.retry_after is None:
                fail("429 response missing Retry-After header")
        if not any(out == expected for out in outs if out is not None):
            fail("every request in the burst was rejected")
        print(f"   {len(rejected)} typed 429s with Retry-After observed")

        with ThreadPoolExecutor(max_workers=6) as pool:
            outs = list(pool.map(
                lambda _: client.rewrite_bytes(
                    data, options={"mode": "loader"}, retries=100),
                range(6)))
        if not all(out == expected for out in outs):
            fail("retried request returned wrong bytes")
        print("   6/6 retried requests succeeded byte-identically")
    finally:
        terminate(proc)
    print("   drained and exited 0")


def phase_graceful_drain(tmp: pathlib.Path) -> None:
    print("== phase 3: SIGTERM drains in-flight requests ==")
    data = make_binaries(1)[1]
    expected = instrument_elf(
        data, "jumps", options=RewriteOptions(mode="loader")).result.data
    socket_path = tmp / "p3.sock"
    proc = spawn_daemon(socket_path, "--workers", "2", "--queue", "16",
                        "--no-cache", "--drain-timeout", "30",
                        env_extra={"REPRO_SERVICE_TEST_DELAY_MS": "300"})
    client = ServiceClient(socket_path=str(socket_path), timeout=120.0)
    results: list[bytes] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def inflight() -> None:
        try:
            out = client.rewrite_bytes(data, options={"mode": "loader"})
            with lock:
                results.append(out)
        except Exception as exc:
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=inflight) for _ in range(6)]
    for t in threads:
        t.start()
    time.sleep(0.15)  # let the burst reach the queue
    out = terminate(proc)
    for t in threads:
        t.join(timeout=30)
    if errors:
        fail(f"in-flight request failed during drain: {errors[0]!r}")
    if len(results) != 6:
        fail(f"only {len(results)}/6 in-flight requests completed; "
             f"daemon output:\n{out}")
    if not all(r == expected for r in results):
        fail("drained response was not byte-identical")
    print("   6/6 in-flight requests completed byte-identically")

    try:
        client.health()
    except (ConnectionError, OSError):
        print("   socket refuses connections after exit")
    else:
        fail("daemon socket still answering after exit")


def main() -> int:
    # Start every run with a fresh daemon log; CI uploads it on failure.
    LOG_PATH.parent.mkdir(parents=True, exist_ok=True)
    LOG_PATH.write_text("")
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as tmp:
        root = pathlib.Path(tmp)
        phase_concurrent_correctness(root)
        phase_backpressure(root)
        phase_graceful_drain(root)
    print("\nservice_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
