"""Figure 5 regeneration: empty (A2) vs LowFat heap-write hardening.

Produces ``benchmarks/out/figure5_lowfat.txt``: per-SPEC-binary overhead
series plus browser means (paper: SPEC mean rises from +64.71% to
+127.27%; Chrome +113%->+170%, FireFox +46%->+60%).
"""

import pytest

from benchmarks.conftest import save_artifact
from repro.eval.fig5 import format_fig5, run_fig5
from repro.synth.profiles import SPEC_PROFILES, profile_by_name


@pytest.mark.benchmark(group="figure5")
def test_fig5_spec(benchmark, artifact_dir):
    rows = benchmark.pedantic(
        lambda: run_fig5(SPEC_PROFILES), rounds=1, iterations=1
    )
    text = format_fig5(rows)
    text += "\npaper SPEC means: A2 empty +64.71%  LowFat +127.27%"
    save_artifact(artifact_dir, "figure5_lowfat.txt", text)

    mean_empty = sum(r.empty_pct for r in rows) / len(rows)
    mean_lowfat = sum(r.lowfat_pct for r in rows) / len(rows)
    # Shape: LowFat strictly dearer than empty, both above parity, and
    # the LowFat extra cost is of the same order as the empty overhead.
    assert mean_lowfat > mean_empty > 100.0
    assert (mean_lowfat - 100.0) > 1.3 * (mean_empty - 100.0)
    assert all(r.lowfat_pct >= r.empty_pct for r in rows)


@pytest.mark.benchmark(group="figure5")
def test_fig5_browsers(benchmark, artifact_dir):
    browsers = [profile_by_name("Chrome"), profile_by_name("FireFox")]
    rows = benchmark.pedantic(
        lambda: run_fig5(browsers), rounds=1, iterations=1
    )
    text = format_fig5(rows)
    text += ("\npaper: Chrome +113% -> +170%; FireFox +46% -> +60% "
             "(empty -> LowFat)")
    save_artifact(artifact_dir, "figure5_browsers.txt", text)
    assert all(r.lowfat_pct > r.empty_pct for r in rows)
