"""Table 1 regeneration: patching statistics for every binary/application.

Run with::

    pytest benchmarks/bench_table1.py --benchmark-only -s

Produces ``benchmarks/out/table1.txt`` with measured-vs-paper rows, plus
the paper's #Total/Avg aggregate line.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_artifact
from repro.eval.table1 import (
    aggregate,
    format_table,
    run_table,
    shape_agreement,
)
from repro.synth.profiles import (
    BROWSER_PROFILES,
    SPEC_PROFILES,
    SYSTEM_PROFILES,
)


def _render(rows) -> str:
    lines = [format_table(rows)]
    agg = aggregate([r for r in rows if r.app == "A1"])
    lines.append("")
    lines.append(
        "A1 #Total/Avg: locs={locs} Base%={base_pct:.2f} T1%={t1_pct:.2f} "
        "T2%={t2_pct:.2f} T3%={t3_pct:.2f} Succ%={succ_pct:.2f}".format(**agg)
        + (f" Time%={agg['time_pct']:.2f}" if "time_pct" in agg else "")
        + f" Size%={agg['size_pct']:.2f}"
    )
    lines.append("A1 paper     : locs=613619 Base%=72.79 T1%=13.95 T2%=3.73 "
                 "T3%=9.48 Succ%=99.94 Time%=210.81 Size%=157.43")
    agg2 = aggregate([r for r in rows if r.app == "A2"])
    lines.append(
        "A2 #Total/Avg: locs={locs} Base%={base_pct:.2f} T1%={t1_pct:.2f} "
        "T2%={t2_pct:.2f} T3%={t3_pct:.2f} Succ%={succ_pct:.2f}".format(**agg2)
        + (f" Time%={agg2['time_pct']:.2f}" if "time_pct" in agg2 else "")
        + f" Size%={agg2['size_pct']:.2f}"
    )
    lines.append("A2 paper     : locs=636013 Base%=81.63 T1%=15.68 T2%=0.60 "
                 "T3%=2.09 Succ%=99.99 Time%=164.71 Size%=130.90")
    return "\n".join(lines)


@pytest.mark.benchmark(group="table1")
def test_table1_spec(benchmark, artifact_dir):
    """SPEC2006 rows with VM Time% measurement."""
    rows = benchmark.pedantic(
        lambda: run_table(SPEC_PROFILES, time_for_categories=("spec",)),
        rounds=1, iterations=1,
    )
    a1 = [r for r in rows if r.app == "A1"]
    agreement = shape_agreement(a1)
    text = _render(rows)
    text += ("\n\nshape agreement (Spearman rank correlation vs paper, "
             "A1 rows): "
             + "  ".join(f"{k}={v:+.2f}" for k, v in agreement.items()))
    save_artifact(artifact_dir, "table1_spec.txt", text)
    # Shape assertions against the paper.
    assert aggregate(a1)["succ_pct"] > 99.0
    assert all(r.time_pct is None or r.time_pct > 100.0 for r in rows)
    # The hard/easy ordering of binaries must correlate with the paper's.
    assert agreement["base_pct"] > 0.3


@pytest.mark.benchmark(group="table1")
def test_table1_system_binaries(benchmark, artifact_dir):
    rows = benchmark.pedantic(
        lambda: run_table(SYSTEM_PROFILES, time_for_categories=()),
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, "table1_system.txt", format_table(rows))
    # PIE rows (inkscape, vim, evince) have the paper's near-perfect base.
    pie = [r for r in rows if r.name in ("inkscape", "vim", "evince")]
    assert all(r.base_pct > 93.0 for r in pie)


@pytest.mark.benchmark(group="table1")
def test_table1_browsers(benchmark, artifact_dir):
    """The scalability rows: Chrome, FireFox, libxul.so."""
    rows = benchmark.pedantic(
        lambda: run_table(BROWSER_PROFILES, time_for_categories=()),
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, "table1_browsers.txt", format_table(rows))
    libxul = [r for r in rows if r.name == "libxul.so" and r.app == "A1"][0]
    chrome = [r for r in rows if r.name == "Chrome" and r.app == "A1"][0]
    # Shared object (positive offsets only) vs PIE executable.
    assert libxul.base_pct < chrome.base_pct
    assert libxul.succ_pct > 99.5
