"""Worker-scaling bench: 1/2/4 workers, cold vs warm artifact cache.

For each worker count, rewrites the synthetic corpus (two binaries x
eight configurations) twice: once against a fresh cache directory
(cold — every worker pays for its own decode) and once against the
populated cache (warm — decode and match come off disk).  Outputs must
be byte-identical across every worker count; the wall times land in
``benchmarks/out/BENCH_parallel.json`` using the same ``repro-bench/1``
schema the bench gate consumes.

Usage: ``python benchmarks/bench_parallel.py [--jobs 1 2 4] [--sites N]``
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

from repro.core.cache import ArtifactCache
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.frontend.tool import rewrite_many
from repro.synth.generator import SynthesisParams, synthesize

SCHEMA = "repro-bench/1"
DEFAULT_SITES = 1000


def corpus(sites: int) -> list[bytes]:
    """Two synthetic binaries with different shapes/seeds."""
    return [
        synthesize(SynthesisParams(
            n_jump_sites=sites, n_write_sites=sites // 2, seed=91)).data,
        synthesize(SynthesisParams(
            n_jump_sites=sites // 2, n_write_sites=sites, seed=92)).data,
    ]


def configs() -> list[RewriteOptions]:
    return [
        RewriteOptions(mode="loader", granularity=g,
                       toggles=TacticToggles(t3=t3))
        for g in (1, 2, 4, 8) for t3 in (True, False)
    ]


def run_corpus(binaries: list[bytes], jobs: int,
               cache: ArtifactCache | None) -> tuple[float, list[bytes]]:
    """(wall seconds, concatenated output bytes) for one full sweep."""
    t0 = time.perf_counter()
    outputs: list[bytes] = []
    for data in binaries:
        reports = rewrite_many(data, configs(), matcher="jumps",
                               jobs=jobs, cache=cache)
        outputs.extend(r.result.data for r in reports)
    return time.perf_counter() - t0, outputs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--sites", type=int, default=DEFAULT_SITES)
    parser.add_argument(
        "--out", default=str(pathlib.Path(__file__).parent
                             / "out" / "BENCH_parallel.json"),
    )
    args = parser.parse_args(argv)

    binaries = corpus(args.sites)
    n_tasks = len(binaries) * len(configs())
    metrics: dict = {"corpus.binaries": len(binaries),
                     "corpus.tasks": n_tasks}
    reference: list[bytes] | None = None

    print(f"corpus: {len(binaries)} binaries x {len(configs())} configs "
          f"({n_tasks} rewrites), cpus={os.cpu_count()}")
    for jobs in args.jobs:
        with tempfile.TemporaryDirectory(prefix="repro-bench-par-") as tmp:
            cold_s, outputs = run_corpus(binaries, jobs, ArtifactCache(tmp))
            warm_s, warm_outputs = run_corpus(binaries, jobs,
                                              ArtifactCache(tmp))
        if reference is None:
            reference = outputs
        if outputs != reference or warm_outputs != reference:
            print(f"FAIL: jobs={jobs} output differs from jobs="
                  f"{args.jobs[0]}", file=sys.stderr)
            return 1
        metrics[f"jobs{jobs}.cold_s"] = cold_s
        metrics[f"jobs{jobs}.warm_s"] = warm_s
        print(f"jobs={jobs}:  cold {cold_s:7.3f} s   warm {warm_s:7.3f} s")

    base = metrics.get(f"jobs{args.jobs[0]}.cold_s")
    for jobs in args.jobs[1:]:
        metrics[f"jobs{jobs}.cold_speedup"] = round(
            base / metrics[f"jobs{jobs}.cold_s"], 3)

    payload = {
        "schema": SCHEMA,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        "metrics": {
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in sorted(metrics.items())
        },
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
