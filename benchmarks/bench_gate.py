"""Benchmark regression gate: compare a bench result to the baseline.

Reads two ``repro-bench/1`` JSON files — the committed baseline
(``benchmarks/BENCH_passes.json``) and the current run's output — and
exits nonzero when any metric regresses past the threshold (default
25%, ``--threshold`` / ``$BENCH_GATE_THRESHOLD``).

Comparison rules, by metric name:

* ``*_s`` (wall-time seconds) — regression when the current value is
  more than ``(1 + threshold)`` times the baseline *and* at least
  ``--min-delta`` seconds slower, so microsecond-scale passes cannot
  trip the gate on scheduler noise;
* ``*speedup`` (ratios, higher is better) — regression when the current
  value falls below ``baseline / (1 + threshold)``;
* ``*_mb_s`` / ``*_sites_s`` / ``*_rps`` (throughput rates, higher is
  better) — regression when the current value falls below
  ``baseline / (1 + threshold)``;
* ``*_visits`` (work counters, lower is better) — regression when the
  current value grows past ``baseline * (1 + threshold)``;
* ``*_runs`` / ``*_configs`` / ``*_pct`` and other exact metrics —
  regression when a counter grows (``_runs``: the warm cache must keep
  reporting zero decode work) or a percentage shrinks (``_pct``).

One rule is conditional: ``parallel.speedup`` is skipped entirely when
the current run reports ``parallel.effective_workers <= 1`` — on a
serial-fallback host (one CPU, or a forced ``--jobs 1``) the parallel
section measures pool overhead, not parallelism.

Metrics present only in the current run are reported but never fail
the gate, so adding a measurement does not require regenerating the
baseline in the same commit.  Metrics present only in the *baseline*
get a distinct ``missing-metric`` warning — a measurement that stops
being reported can otherwise vanish without ever failing — and the
``--strict`` flag turns those warnings into a failing gate (CI uses it
so matrix cells and metrics cannot silently disappear).  CI runs this
in the ``bench-gate`` job; the ``bench-regression-ok`` PR label skips
the job for intentional, reviewed slowdowns.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "BENCH_passes.json"
DEFAULT_CURRENT = pathlib.Path(__file__).parent / "out" / "BENCH_passes.json"
SCHEMA = "repro-bench/1"


def load(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    if payload.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: unexpected schema {payload.get('schema')!r}")
    return payload


def compare_metric(name: str, base, cur, threshold: float,
                   min_delta: float) -> tuple[bool, str]:
    """(regressed, verdict text) for one metric pair."""
    # Throughput rates end in "_s" too — they must be classified before
    # the wall-time rule, and their regression direction is inverted.
    if name.endswith(("_mb_s", "_sites_s", "_rps")):
        floor = base / (1.0 + threshold)
        if cur < floor:
            return True, (f"throughput dropped: {base} -> {cur} "
                          f"(<{floor:.1f})")
        return False, f"{base} -> {cur}"
    if name.endswith("_visits"):
        limit = base * (1.0 + threshold)
        if cur > limit:
            return True, f"work grew: {base} -> {cur} (>{limit:.0f})"
        return False, f"{base} -> {cur}"
    if name.endswith("_s"):
        limit = base * (1.0 + threshold)
        if cur > limit and cur - base > min_delta:
            return True, f"slower: {base:.3f}s -> {cur:.3f}s (>{limit:.3f}s)"
        return False, f"{base:.3f}s -> {cur:.3f}s"
    if name.endswith("speedup"):
        floor = base / (1.0 + threshold)
        if cur < floor:
            return True, f"dropped: {base:.2f}x -> {cur:.2f}x (<{floor:.2f}x)"
        return False, f"{base:.2f}x -> {cur:.2f}x"
    if name.endswith("_runs"):
        if cur > base:
            return True, f"counter grew: {base} -> {cur}"
        return False, f"{base} -> {cur}"
    if name.endswith("_pct"):
        if cur < base - 0.5:
            return True, f"dropped: {base} -> {cur}"
        return False, f"{base} -> {cur}"
    return False, f"{base} -> {cur} (informational)"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument("--current", default=str(DEFAULT_CURRENT))
    parser.add_argument(
        "--threshold", type=float,
        default=float(os.environ.get("BENCH_GATE_THRESHOLD", "0.25")),
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-delta", type=float, default=0.05,
        help="absolute seconds a timing must slow down by before the "
        "relative threshold applies (noise floor, default 0.05)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail when a baseline metric is missing from the current "
        "run (instead of only warning)",
    )
    args = parser.parse_args(argv)

    baseline = load(pathlib.Path(args.baseline))
    current = load(pathlib.Path(args.current))
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]

    regressions = []
    missing = []
    width = max((len(k) for k in base_metrics), default=10)
    print(f"bench gate: threshold {args.threshold:.0%}, "
          f"baseline host {baseline.get('host', {})}")
    for name in sorted(base_metrics):
        if (name == "parallel.speedup"
                and cur_metrics.get("parallel.effective_workers", 2) <= 1):
            # One effective worker (e.g. a single-CPU runner): the
            # parallel section fell back to the serial path, so the
            # ratio measures overhead, not parallelism — not gateable.
            print(f"  {name.ljust(width)}  skip  "
                  "parallel.effective_workers <= 1 (serial-fallback host)")
            continue
        if name not in cur_metrics:
            # A metric present only in the baseline would otherwise read
            # as "never fails": warn distinctly so it cannot vanish
            # unnoticed, and fail under --strict.
            print(f"  {name.ljust(width)}  WARN  missing-metric "
                  "(in baseline, absent from current run)")
            missing.append(name)
            continue
        regressed, verdict = compare_metric(
            name, base_metrics[name], cur_metrics[name],
            args.threshold, args.min_delta,
        )
        flag = "FAIL" if regressed else "ok  "
        print(f"  {name.ljust(width)}  {flag}  {verdict}")
        if regressed:
            regressions.append(name)
    for name in sorted(set(cur_metrics) - set(base_metrics)):
        print(f"  {name.ljust(width)}  (new metric, not gated)")

    failed = list(regressions)
    if missing:
        print(f"\nmissing-metric: {len(missing)} baseline metric(s) "
              f"absent from the current run: {', '.join(missing)}"
              + ("" if args.strict else " (warning; use --strict to fail)"),
              file=sys.stderr)
        if args.strict:
            failed.extend(missing)
    if failed:
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed past "
                  f"{args.threshold:.0%}: {', '.join(regressions)}",
                  file=sys.stderr)
        print("If intentional, apply the 'bench-regression-ok' PR label "
              "or regenerate benchmarks/BENCH_passes.json.",
              file=sys.stderr)
        return 1
    print("\nbench gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
