"""Seeded differential-testing campaigns over synthetic workloads.

:func:`run_campaign` sweeps synthesis profiles x patch configurations:
every iteration draws one workload binary (sized for VM speed, but with
the profile's PIE-ness and instruction-length character), rewrites it
under one :class:`PatchConfig`, and judges the result with the
:mod:`repro.check.oracle`.  Everything is derived from one
``random.Random(seed)``, so a campaign is a pure function of
``(seed, count, profiles, configs)`` — the same seed replays the same
binaries in the same order on any machine.

When a binary diverges, the campaign *shrinks* its
:class:`~repro.synth.generator.SynthesisParams` — greedily retrying
smaller site counts, fewer iterations, and shorter filler blocks while
the divergence persists — and dumps a replayable ``.repro.json``
artifact.  :func:`replay_artifact` re-runs such an artifact with nothing
but this module, which is the debugging entry point:

    PYTHONPATH=src python -c "from repro.check import replay_artifact; \
        print(replay_artifact('campaign-1-17.repro.json').to_dict())"

Campaign totals flow through an :class:`~repro.core.observe.Observer`
as ``check.binaries`` / ``check.divergences`` / ``check.shrink_steps``
(plus per-verdict counts), which is how the CLI's ``--check`` mode and
``benchmarks/bench_check.py`` surface them.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.check.oracle import Divergence, EquivalenceReport, RunSummary, check_rewrite
from repro.core.observe import Observer
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.errors import PatchError
from repro.synth.generator import SynthesisParams, synthesize
from repro.synth.profiles import profile_by_name

#: Artifact schema tag (bump on incompatible changes).
ARTIFACT_SCHEMA = "repro-check-repro/1"

#: Default per-run VM instruction budget: campaign binaries are tiny
#: (tens of sites, one iteration), so this is generous headroom while
#: still converting displacement-bug runaways into quick verdicts.
CAMPAIGN_BUDGET = 400_000

#: Default profile sweep: one row per Table-1 category (non-PIE SPEC,
#: PIE system binary, PIE browser) so campaigns cover both address-space
#: geometries and all three length-mix calibrations, plus the two
#: conformance shared objects (plain and CET) so every sweep also
#: exercises the DT_INIT-hijack loader path and endbr64 protection.
DEFAULT_PROFILES = ("bzip2", "vim", "FireFox", "libsynth.so",
                    "libsynth-cet.so")

#: Install path assumed for conformance shared objects (the loader stub
#: reopens the library here; the VM serves the image at this alias).
SYNTH_LIBRARY_PATH = "/usr/lib/libsynth.so"

#: Site-count range for campaign binaries (kept small: every binary is
#: executed twice on the pure-Python VM, plus again per shrink step).
SITE_RANGE = (8, 36)


@dataclass
class PatchConfig:
    """One point in the patch-configuration sweep."""

    name: str
    matcher: str = "jumps"
    options: RewriteOptions = field(default_factory=RewriteOptions)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "matcher": self.matcher,
            "options": options_to_dict(self.options),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PatchConfig":
        return cls(
            name=d["name"],
            matcher=d.get("matcher", "jumps"),
            options=options_from_dict(d.get("options", {})),
        )


def default_patch_configs() -> list[PatchConfig]:
    """The standard sweep: full tactics, baseline, coarse grouping,
    forced B0 fallback, and ungrouped emission — every tactic and both
    named matchers are exercised."""
    return [
        PatchConfig("full-jumps", "jumps",
                    RewriteOptions(mode="loader")),
        PatchConfig("baseline-jumps", "jumps",
                    RewriteOptions(mode="loader",
                                   toggles=TacticToggles(
                                       t1=False, t2=False, t3=False))),
        PatchConfig("g16-writes", "heap-writes",
                    RewriteOptions(mode="loader", granularity=16)),
        PatchConfig("b0-forced", "jumps",
                    RewriteOptions(mode="loader",
                                   toggles=TacticToggles(
                                       t1=False, t2=False, t3=False,
                                       b0_fallback=True))),
        PatchConfig("nogroup-writes", "heap-writes",
                    RewriteOptions(mode="loader", grouping=False)),
    ]


# -- options serialization (for .repro.json replayability) -------------------


def options_to_dict(options: RewriteOptions) -> dict:
    d = asdict(options)
    d["reserve_extra"] = [list(pair) for pair in options.reserve_extra]
    return d


def options_from_dict(d: dict) -> RewriteOptions:
    d = dict(d)
    d["toggles"] = TacticToggles(**d.get("toggles", {}))
    d["reserve_extra"] = tuple(
        tuple(pair) for pair in d.get("reserve_extra", ())
    )
    return RewriteOptions(**d)


# -- campaign configuration and results --------------------------------------


@dataclass
class CampaignConfig:
    """Everything a campaign run depends on (fully serializable)."""

    seed: int = 1
    count: int = 200
    profiles: tuple[str, ...] = DEFAULT_PROFILES
    configs: list[PatchConfig] = field(default_factory=default_patch_configs)
    max_instructions: int = CAMPAIGN_BUDGET
    shrink: bool = True
    max_shrink_steps: int = 48
    artifact_dir: str | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "count": self.count,
            "profiles": list(self.profiles),
            "configs": [c.to_dict() for c in self.configs],
            "max_instructions": self.max_instructions,
        }


@dataclass
class CampaignFailure:
    """One divergent binary, with its shrunken reproducer."""

    index: int
    profile: str
    config: PatchConfig
    params: SynthesisParams
    report: EquivalenceReport
    shrunk_params: SynthesisParams | None = None
    shrunk_report: EquivalenceReport | None = None
    shrink_steps: int = 0
    artifact_path: str | None = None

    def artifact(self, campaign: CampaignConfig) -> dict:
        """The replayable ``.repro.json`` payload for this failure."""
        final = self.shrunk_report or self.report
        return {
            "schema": ARTIFACT_SCHEMA,
            "campaign": campaign.to_dict(),
            "index": self.index,
            "profile": self.profile,
            "config": self.config.to_dict(),
            "params": self.params.to_dict(),
            "shrunk_params": (self.shrunk_params.to_dict()
                              if self.shrunk_params is not None else None),
            "shrink_steps": self.shrink_steps,
            "report": final.to_dict(),
        }


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign."""

    config: CampaignConfig
    binaries: int = 0
    equivalent: int = 0
    unsupported: int = 0
    failures: list[CampaignFailure] = field(default_factory=list)
    shrink_steps: int = 0
    events_compared: int = 0

    @property
    def divergences(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return self.divergences == 0

    def to_dict(self) -> dict:
        return {
            "seed": self.config.seed,
            "binaries": self.binaries,
            "equivalent": self.equivalent,
            "divergences": self.divergences,
            "unsupported": self.unsupported,
            "shrink_steps": self.shrink_steps,
            "events_compared": self.events_compared,
            "failures": [f.artifact(self.config) for f in self.failures],
        }


# -- single-binary harness ---------------------------------------------------


def run_one(
    params: SynthesisParams,
    config: PatchConfig,
    *,
    max_instructions: int = CAMPAIGN_BUDGET,
) -> EquivalenceReport:
    """Synthesize, rewrite under *config*, and judge with the oracle.

    A :class:`~repro.errors.PatchError` raised by the rewriter itself is
    reported as a divergence of kind ``rewrite_error`` — a binary the
    rewriter rejects outright still fails the campaign, with the same
    shrinking machinery applied.
    """
    binary = synthesize(params)
    # Imported here: repro.frontend.tool imports the pipeline, which must
    # stay importable without this package.
    from repro.frontend.tool import instrument_elf

    options = config.options
    if params.shared and not options.shared:
        options = replace(options, shared=True)
    if options.shared and options.library_path is None:
        options = replace(options, library_path=SYNTH_LIBRARY_PATH)

    try:
        report = instrument_elf(binary.data, config.matcher,
                                options=options)
    except PatchError as exc:
        return EquivalenceReport(
            verdict="divergent",
            original=RunSummary(reason="not-run"),
            rewritten=RunSummary(reason="not-run"),
            divergence=Divergence(kind="rewrite_error", detail=str(exc)),
        )
    self_paths = (options.library_path,) if params.shared else ()
    return check_rewrite(
        binary.data, report.result.data,
        b0_sites=report.result.b0_sites,
        matcher=config.matcher,
        max_instructions=max_instructions,
        # A shared object is entered through its init hook, the way the
        # dynamic linker reaches it (the rewritten hook runs the loader
        # stub first); its stub reopens the library by install path.
        entry_from_init=params.shared,
        self_paths=self_paths,
    )


# -- shrinking ---------------------------------------------------------------


def _shrink_candidates(p: SynthesisParams):
    """Strictly-smaller parameter variants, most aggressive first."""
    if p.n_jump_sites > 0:
        yield replace(p, n_jump_sites=p.n_jump_sites // 2)
        yield replace(p, n_jump_sites=p.n_jump_sites - 1)
    if p.n_write_sites > 0:
        yield replace(p, n_write_sites=p.n_write_sites // 2)
        yield replace(p, n_write_sites=p.n_write_sites - 1)
    if p.loop_iters > 1:
        yield replace(p, loop_iters=1)
    if p.block_len != (1, 2):
        yield replace(p, block_len=(1, 2))
    if p.bss_bytes:
        yield replace(p, bss_bytes=0)


def shrink_params(
    params: SynthesisParams,
    still_failing,
    *,
    max_steps: int = 48,
) -> tuple[SynthesisParams, int]:
    """Greedy delta-debugging over the synthesis parameters.

    *still_failing* is a predicate over candidate params (True while the
    original failure reproduces).  Returns the smallest reproducing
    params found and the number of candidate evaluations spent — each
    evaluation is a full synthesize/rewrite/oracle cycle, so the count
    is the campaign's honest ``check.shrink_steps`` cost.
    """
    current = params
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _shrink_candidates(current):
            if steps >= max_steps:
                break
            steps += 1
            if still_failing(candidate):
                current = candidate
                progress = True
                break
    return current, steps


# -- the campaign loop -------------------------------------------------------


def _draw_params(rng: random.Random, profile_name: str) -> SynthesisParams:
    """One campaign workload: profile character, campaign-sized counts."""
    profile = profile_by_name(profile_name)
    base = SynthesisParams.from_profile(profile)
    return replace(
        base,
        n_jump_sites=rng.randint(*SITE_RANGE),
        n_write_sites=rng.randint(*SITE_RANGE),
        bss_bytes=0,  # VM-speed: no giant zero-fill segments
        seed=rng.randrange(1 << 32),
        loop_iters=1,
    )


def run_campaign(
    config: CampaignConfig | None = None,
    *,
    observer: Observer | None = None,
    progress=None,
) -> CampaignResult:
    """Run a full differential campaign; deterministic in ``config.seed``.

    *observer* (optional) receives the campaign counters
    (``check.binaries``, ``check.divergences``, ``check.shrink_steps``,
    ``check.equivalent``, ``check.unsupported``); *progress* (optional)
    is called with ``(index, total, verdict)`` after every binary.
    """
    config = config or CampaignConfig()
    if not config.profiles or not config.configs:
        raise ValueError("campaign needs at least one profile and one config")
    rng = random.Random(config.seed)
    result = CampaignResult(config=config)
    artifact_dir = (Path(config.artifact_dir)
                    if config.artifact_dir is not None else None)

    for index in range(config.count):
        profile_name = config.profiles[index % len(config.profiles)]
        patch_config = config.configs[index % len(config.configs)]
        params = _draw_params(rng, profile_name)

        report = run_one(params, patch_config,
                         max_instructions=config.max_instructions)
        result.binaries += 1
        result.events_compared += report.events_compared
        if report.verdict == "equivalent":
            result.equivalent += 1
        elif report.verdict == "unsupported":
            result.unsupported += 1
        else:
            failure = CampaignFailure(
                index=index, profile=profile_name, config=patch_config,
                params=params, report=report,
            )
            if config.shrink:
                kind = report.divergence.kind if report.divergence else None

                def still_failing(candidate: SynthesisParams) -> bool:
                    r = run_one(candidate, patch_config,
                                max_instructions=config.max_instructions)
                    return (r.verdict == "divergent"
                            and (r.divergence.kind if r.divergence else None)
                            == kind)

                shrunk, steps = shrink_params(
                    params, still_failing,
                    max_steps=config.max_shrink_steps,
                )
                failure.shrunk_params = shrunk
                failure.shrink_steps = steps
                failure.shrunk_report = run_one(
                    shrunk, patch_config,
                    max_instructions=config.max_instructions,
                )
                result.shrink_steps += steps
            if artifact_dir is not None:
                artifact_dir.mkdir(parents=True, exist_ok=True)
                path = artifact_dir / (
                    f"campaign-{config.seed}-{index}.repro.json"
                )
                path.write_text(
                    json.dumps(failure.artifact(config), indent=2) + "\n"
                )
                failure.artifact_path = str(path)
            result.failures.append(failure)
        if progress is not None:
            progress(index, config.count, report.verdict)

    if observer is not None:
        observer.count("check.binaries", result.binaries)
        observer.count("check.equivalent", result.equivalent)
        observer.count("check.divergences", result.divergences)
        observer.count("check.unsupported", result.unsupported)
        observer.count("check.shrink_steps", result.shrink_steps)
        observer.count("check.events", result.events_compared)
    return result


# -- artifact replay ---------------------------------------------------------


def replay_artifact(
    source: str | Path | dict,
    *,
    use_shrunk: bool = True,
) -> EquivalenceReport:
    """Re-run a ``.repro.json`` failure artifact and return the verdict.

    *source* is a path or an already-loaded artifact dict.  By default
    the shrunken parameters are replayed (that is the minimal
    reproducer); pass ``use_shrunk=False`` for the original draw.
    """
    if isinstance(source, (str, Path)):
        artifact = json.loads(Path(source).read_text())
    else:
        artifact = source
    schema = artifact.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(f"unknown artifact schema {schema!r}")
    params_dict = (artifact.get("shrunk_params") if use_shrunk else None) \
        or artifact["params"]
    params = SynthesisParams.from_dict(params_dict)
    config = PatchConfig.from_dict(artifact["config"])
    budget = artifact.get("campaign", {}).get(
        "max_instructions", CAMPAIGN_BUDGET)
    return run_one(params, config, max_instructions=budget)
