"""VM-backed differential oracle for rewritten binaries.

:func:`check_equivalence` loads the original and the rewritten image
into two independent :class:`~repro.vm.machine.Machine` instances with
identical stdin and identical B0 trap handlers, then advances both in
*event lockstep*: each machine runs until its next observable event —

* ``site``  — control reached a patch-site vaddr (tactics never move a
  site's entry point, so the rewritten program must visit every site in
  the same order as the original);
* ``write`` — an output-producing ``write`` syscall (the bytes);
* ``exit`` / ``hlt`` / ``budget`` / ``error`` — the run ended.

B0 ``int3`` traps fire only in the rewritten image, so they are not
stream events; instead every trap must pair with a ``site`` visit, and
the rewritten run's trap total must equal the original run's visit
count over the B0 site subset (the ordered trap sequence is exactly the
ordered B0-site subsequence of the compared stream).

The two event streams must match element for element.  Because both
machines are *live* at the first mismatch, the oracle can report exact
first-divergence diagnostics: the vaddr and per-machine step index, the
register delta, and the first differing bytes of commonly-mapped
writable memory — the data a human needs to debug a pun-math or
displacement bug without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VmError
from repro.vm.machine import Machine, TrapHandler
from repro.vm.memory import PAGE_SIZE, PROT_WRITE

#: Architectural register names in the machine's ``regs`` index order.
REG_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: Default instruction budget for the original run.
DEFAULT_BUDGET = 2_000_000
#: Rewritten runs execute trampoline code and B0 emulations on top of
#: the original work; give them headroom before calling "budget" a
#: divergence (a wrong displacement typically shows up as a runaway
#: loop, which this bound converts into a caught divergence).
REWRITTEN_BUDGET_FACTOR = 8
#: Cap on compared events so pathological loops terminate.
DEFAULT_MAX_EVENTS = 250_000


@dataclass
class RunSummary:
    """Observable outcome of one machine's run, JSON-ready."""

    exit_code: int | None = None
    stdout: bytes = b""
    instructions: int = 0
    traps: int = 0
    events: int = 0
    reason: str = "running"

    def to_dict(self) -> dict:
        return {
            "exit_code": self.exit_code,
            "stdout_sha": __import__("hashlib").sha256(self.stdout).hexdigest()[:16],
            "stdout_bytes": len(self.stdout),
            "instructions": self.instructions,
            "traps": self.traps,
            "events": self.events,
            "reason": self.reason,
        }


@dataclass
class Divergence:
    """First point where the rewritten run left the original behaviour."""

    kind: str  # "events" | "exit_code" | "stdout" | "error" | "budget"
    detail: str
    vaddr: int | None = None
    step_original: int | None = None
    step_rewritten: int | None = None
    event_index: int | None = None
    register_delta: dict[str, tuple[int, int]] = field(default_factory=dict)
    memory_delta: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "vaddr": self.vaddr,
            "step_original": self.step_original,
            "step_rewritten": self.step_rewritten,
            "event_index": self.event_index,
            "register_delta": {
                name: [hex(a), hex(b)]
                for name, (a, b) in self.register_delta.items()
            },
            "memory_delta": self.memory_delta,
        }


@dataclass
class EquivalenceReport:
    """Outcome of one oracle comparison."""

    verdict: str  # "equivalent" | "divergent" | "unsupported"
    original: RunSummary
    rewritten: RunSummary
    divergence: Divergence | None = None
    events_compared: int = 0

    @property
    def equivalent(self) -> bool:
        return self.verdict == "equivalent"

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "events_compared": self.events_compared,
            "original": self.original.to_dict(),
            "rewritten": self.rewritten.to_dict(),
            "divergence": (self.divergence.to_dict()
                           if self.divergence is not None else None),
        }


class _Cursor:
    """Drives one machine to its next observable event.

    ``site`` events fire when the *next* instruction to execute starts at
    a watched patch-site vaddr; the check happens before the step, so B0
    sites report both their ``site`` visit and the subsequent ``trap``.
    """

    def __init__(self, data: bytes, *, sites: frozenset[int],
                 traps: dict[int, bytes], stdin: bytes,
                 budget: int, load_base: int = 0,
                 entry_vaddr: int | None = None,
                 entry_from_init: bool = False,
                 self_paths: tuple[str, ...] = ()) -> None:
        self.load_base = load_base
        if entry_from_init and entry_vaddr is None:
            # dlopen-style run: enter at this image's *own* init hook
            # (the rewritten object's hook points at the loader stub).
            from repro.elf.dynamic import find_init_target
            from repro.elf.reader import ElfFile

            target = find_init_target(ElfFile(data))
            if target is not None:
                entry_vaddr = target[2]
        self.machine = Machine(data, max_instructions=budget, stdin=stdin,
                               load_base=load_base, entry_vaddr=entry_vaddr,
                               self_path_aliases=tuple(self_paths))
        for vaddr, insn_bytes in traps.items():
            # Sites are link-time vaddrs; handlers key on runtime rip.
            self.machine.register_trap(load_base + vaddr,
                                       TrapHandler(insn_bytes=insn_bytes))
        self.sites = sites
        self.b0_sites = frozenset(traps)
        self.b0_visits = 0
        self.budget = budget
        self.events = 0
        self.finished = False
        self.reason = "running"
        self._stdout_seen = 0
        self._skip_site_check = False

    # -- event stream ----------------------------------------------------

    def next_event(self) -> tuple:
        """Advance to the next event: ``(kind, vaddr, payload)``."""
        m = self.machine
        if self.finished:
            return ("end", None, self.reason)
        while True:
            if m.cpu.icount >= self.budget:
                self.finished = True
                self.reason = "budget"
                return self._emit("budget",
                                  m.cpu.state.rip - self.load_base, None)
            # Normalize to link-time vaddrs so the event stream is
            # invariant under the runtime load base (a rewritten PIE or
            # shared object must behave identically wherever it lands).
            rip = m.cpu.state.rip - self.load_base
            if not self._skip_site_check and rip in self.sites:
                self._skip_site_check = True
                if rip in self.b0_sites:
                    self.b0_visits += 1
                return self._emit("site", rip, None)
            self._skip_site_check = False
            try:
                tag = m.step_once()
            except VmError as exc:
                self.finished = True
                self.reason = "error"
                return self._emit("error", rip, str(exc))
            if tag is None:
                continue
            if tag == "trap":
                # B0 emulation: not a stream event (the original image
                # never traps); accounted for against b0_visits instead.
                continue
            if tag == "syscall":
                new = bytes(m.stdout[self._stdout_seen:])
                if new:
                    self._stdout_seen = len(m.stdout)
                    return self._emit("write", rip, new)
                continue
            # "exit" / "hlt"
            self.finished = True
            self.reason = tag
            return self._emit(tag, rip, m.exit_code)

    def _emit(self, kind: str, vaddr: int | None, payload) -> tuple:
        self.events += 1
        return (kind, vaddr, payload)

    def summary(self) -> RunSummary:
        m = self.machine
        return RunSummary(
            exit_code=m.exit_code,
            stdout=bytes(m.stdout),
            instructions=m.cpu.icount,
            traps=m.traps,
            events=self.events,
            reason=self.reason if self.finished else "running",
        )


def _register_delta(a: Machine, b: Machine) -> dict[str, tuple[int, int]]:
    delta = {}
    for i, name in enumerate(REG_NAMES):
        va, vb = a.cpu.state.regs[i], b.cpu.state.regs[i]
        if va != vb:
            delta[name] = (va, vb)
    if a.cpu.state.rip != b.cpu.state.rip:
        delta["rip"] = (a.cpu.state.rip, b.cpu.state.rip)
    return delta


def _memory_delta(a: Machine, b: Machine, limit: int = 4) -> list[dict]:
    """First differing byte runs of commonly-mapped writable pages."""
    out: list[dict] = []
    common = sorted(set(a.mem.pages) & set(b.mem.pages))
    for page_no in common:
        if len(out) >= limit:
            break
        frame_a, prot_a = a.mem.pages[page_no]
        frame_b, prot_b = b.mem.pages[page_no]
        if not (prot_a & PROT_WRITE and prot_b & PROT_WRITE):
            continue
        da, db = bytes(frame_a.data()), bytes(frame_b.data())
        if da == db:
            continue
        lo = next(i for i in range(len(da)) if da[i : i + 1] != db[i : i + 1])
        hi = min(lo + 16, len(da))
        out.append({
            "vaddr": hex(page_no * PAGE_SIZE + lo),
            "original": da[lo:hi].hex(),
            "rewritten": db[lo:hi].hex(),
        })
    return out


def _event_repr(event: tuple) -> str:
    kind, vaddr, payload = event
    where = f" @ {vaddr:#x}" if isinstance(vaddr, int) else ""
    extra = ""
    if kind == "write":
        extra = f" {payload.hex() if isinstance(payload, bytes) else payload}"
    elif payload is not None:
        extra = f" {payload}"
    return f"{kind}{where}{extra}"


def check_equivalence(
    original: bytes,
    rewritten: bytes,
    *,
    sites: frozenset[int] | set[int] | tuple[int, ...] = (),
    traps: dict[int, bytes] | None = None,
    stdin: bytes = b"",
    max_instructions: int = DEFAULT_BUDGET,
    max_events: int = DEFAULT_MAX_EVENTS,
    load_base: int = 0,
    entry_vaddr: int | None = None,
    entry_from_init: bool = False,
    self_paths: tuple[str, ...] = (),
) -> EquivalenceReport:
    """Differentially execute *original* and *rewritten* and compare.

    *sites* is the set of patch-site vaddrs to watch (ordered visits must
    match); *traps* maps B0 site vaddrs to the displaced instruction's
    original bytes, registered identically on both machines (the original
    image contains no ``int3`` at those sites, so its handlers stay
    inert).  Returns an :class:`EquivalenceReport`; a verdict of
    ``"unsupported"`` means the *original* image itself cannot be judged
    by the VM (it faulted or exhausted the instruction budget), so no
    claim is made either way.

    *load_base* maps both images at a nonzero base (dlopen-style, only
    meaningful for ET_DYN/PIE images); *sites*, *traps* and all reported
    event vaddrs stay link-time, so reports from different bases are
    directly comparable.  *entry_vaddr* overrides the entry point with a
    link-time vaddr — e.g. a shared object's ``DT_INIT`` target.
    *entry_from_init* instead enters each image at its *own* current
    init hook (DT_INIT / first INIT_ARRAY slot), which is how the
    dynamic linker reaches a library — and how the rewritten object's
    loader stub gets control.  *self_paths* lists extra paths at which
    the VM's ``open`` serves the image (a rewritten library reopens
    itself by its install path).
    """
    watch = frozenset(sites)
    handlers = dict(traps or {})
    orig = _Cursor(original, sites=watch, traps=handlers, stdin=stdin,
                   budget=max_instructions, load_base=load_base,
                   entry_vaddr=entry_vaddr, entry_from_init=entry_from_init,
                   self_paths=self_paths)
    new = _Cursor(rewritten, sites=watch, traps=handlers, stdin=stdin,
                  budget=max_instructions * REWRITTEN_BUDGET_FACTOR + 10_000,
                  load_base=load_base, entry_vaddr=entry_vaddr,
                  entry_from_init=entry_from_init, self_paths=self_paths)

    compared = 0
    divergence: Divergence | None = None
    verdict = "equivalent"
    while compared < max_events:
        ev_orig = orig.next_event()
        ev_new = new.next_event()
        compared += 1
        if ev_orig[0] in ("error", "budget"):
            # The VM cannot faithfully run the original: no verdict.
            verdict = "unsupported"
            divergence = Divergence(
                kind=ev_orig[0],
                detail=f"original run is not VM-checkable: {_event_repr(ev_orig)}",
                vaddr=ev_orig[1],
                step_original=orig.machine.cpu.icount,
                step_rewritten=new.machine.cpu.icount,
                event_index=compared - 1,
            )
            break
        if not _events_match(ev_orig, ev_new):
            verdict = "divergent"
            divergence = Divergence(
                kind="error" if ev_new[0] == "error" else (
                    "budget" if ev_new[0] == "budget" else "events"),
                detail=(f"event {compared - 1}: original "
                        f"{_event_repr(ev_orig)} != rewritten "
                        f"{_event_repr(ev_new)}"),
                vaddr=ev_new[1] if ev_new[1] is not None else ev_orig[1],
                step_original=orig.machine.cpu.icount,
                step_rewritten=new.machine.cpu.icount,
                event_index=compared - 1,
                register_delta=_register_delta(orig.machine, new.machine),
                memory_delta=_memory_delta(orig.machine, new.machine),
            )
            break
        if orig.finished and new.finished:
            break
    else:
        verdict = "unsupported"
        divergence = Divergence(
            kind="budget",
            detail=f"event budget of {max_events} exhausted before both "
                   "runs finished",
            step_original=orig.machine.cpu.icount,
            step_rewritten=new.machine.cpu.icount,
            event_index=compared,
        )

    if verdict == "equivalent":
        so, sn = orig.summary(), new.summary()
        if so.exit_code != sn.exit_code:
            verdict = "divergent"
            divergence = Divergence(
                kind="exit_code",
                detail=f"exit {so.exit_code} != {sn.exit_code}",
                step_original=so.instructions, step_rewritten=sn.instructions,
            )
        elif so.stdout != sn.stdout:
            verdict = "divergent"
            divergence = Divergence(
                kind="stdout",
                detail=(f"stdout differs: {len(so.stdout)} vs "
                        f"{len(sn.stdout)} bytes"),
                step_original=so.instructions, step_rewritten=sn.instructions,
            )
        elif handlers and new.machine.traps != orig.b0_visits:
            # The ordered trap sequence is the B0-site subsequence of the
            # compared site stream; after a clean stream match only the
            # totals can still disagree (e.g. a trap at a never-matched
            # address).
            verdict = "divergent"
            divergence = Divergence(
                kind="traps",
                detail=(f"rewritten fired {new.machine.traps} B0 traps, "
                        f"original visited B0 sites {orig.b0_visits} times"),
                step_original=so.instructions, step_rewritten=sn.instructions,
            )

    return EquivalenceReport(
        verdict=verdict,
        original=orig.summary(),
        rewritten=new.summary(),
        divergence=divergence,
        events_compared=compared,
    )


def _events_match(a: tuple, b: tuple) -> bool:
    """Event equality; terminal exits compare the exit code as payload."""
    return a == b


# -- rewrite-report helpers -------------------------------------------------


def sites_and_traps(
    data: bytes,
    b0_sites: list[int] | tuple[int, ...] = (),
    matcher=None,
    *,
    frontend: str = "linear",
) -> tuple[frozenset[int], dict[int, bytes]]:
    """Disassemble *data* and derive the oracle inputs for a rewrite.

    Returns ``(watch_sites, traps)``: the vaddrs *matcher* selects (all
    instructions when ``None``), and the original instruction bytes for
    every B0 site in *b0_sites* (needed to emulate the displaced
    instruction under ``int3``).
    """
    # Local imports: repro.frontend pulls in the CLI, which imports the
    # pipeline, which must stay importable without this module.
    from repro.elf.reader import ElfFile
    from repro.frontend.lineardisasm import disassemble_functions, disassemble_text
    from repro.frontend.matchers import MATCHERS

    elf = ElfFile(data)
    if frontend == "symbols":
        instructions = disassemble_functions(elf)
    else:
        instructions = disassemble_text(elf)
    if isinstance(matcher, str):
        matcher = MATCHERS[matcher]
    sites = frozenset(
        i.address for i in instructions if matcher is None or matcher(i)
    )
    by_addr = {i.address: i for i in instructions}
    traps = {}
    for site in b0_sites:
        insn = by_addr.get(site)
        if insn is not None:
            traps[site] = bytes(insn.raw)
    return sites, traps


def check_rewrite(
    original: bytes,
    rewritten: bytes,
    *,
    b0_sites: list[int] | tuple[int, ...] = (),
    matcher=None,
    frontend: str = "linear",
    stdin: bytes = b"",
    max_instructions: int = DEFAULT_BUDGET,
    load_base: int = 0,
    entry_from_init: bool = False,
    self_paths: tuple[str, ...] = (),
) -> EquivalenceReport:
    """One-call oracle for a finished rewrite: derive the watch set and
    B0 trap handlers from the original image, then run
    :func:`check_equivalence`."""
    sites, traps = sites_and_traps(original, b0_sites, matcher,
                                   frontend=frontend)
    return check_equivalence(
        original, rewritten, sites=sites, traps=traps, stdin=stdin,
        max_instructions=max_instructions, load_base=load_base,
        entry_from_init=entry_from_init, self_paths=self_paths,
    )
