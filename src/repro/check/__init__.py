"""Semantic-equivalence checking: the standing behavioural oracle.

The structural :class:`~repro.core.pipeline.VerifyPass` only proves the
rewriter produced well-formed bytes; the broad rewriter surveys show
that real rewriters fail on *behaviour*, not on byte shape.  This
subpackage wires the two halves the repo already owns — the
:mod:`repro.vm` interpreter and the :mod:`repro.synth` generator — into
a first-class differential-testing subsystem:

* :mod:`repro.check.oracle` — run original and rewritten ELF images on
  :class:`~repro.vm.machine.Machine` under identical trap handlers and
  compare observables (exit status, output bytes, and the ordered
  trap/patch-site event sequence), with first-divergence diagnostics;
* :mod:`repro.check.campaign` — a seeded, deterministic campaign runner
  sweeping synthesis profiles x patch configurations, with parameter
  shrinking and replayable ``.repro.json`` failure artifacts.

The pipeline's opt-in :class:`~repro.core.pipeline.EquivalencePass`
(``RewriteOptions(check=True)``) and the CLI's ``--check`` /
``--check-seed`` modes are thin wrappers over these two modules.
"""

from repro.check.oracle import (
    Divergence,
    EquivalenceReport,
    RunSummary,
    check_equivalence,
    check_rewrite,
    sites_and_traps,
)
from repro.check.campaign import (
    CampaignConfig,
    CampaignFailure,
    CampaignResult,
    PatchConfig,
    default_patch_configs,
    replay_artifact,
    run_campaign,
    shrink_params,
)

__all__ = [
    "Divergence",
    "EquivalenceReport",
    "RunSummary",
    "check_equivalence",
    "check_rewrite",
    "sites_and_traps",
    "CampaignConfig",
    "CampaignFailure",
    "CampaignResult",
    "PatchConfig",
    "default_patch_configs",
    "replay_artifact",
    "run_campaign",
    "shrink_params",
]
