"""Coverage-map instrumentation (the fuzzing use case of the paper's
introduction, citing full-speed coverage-guided tracing).

Every matched site gets its **own** 64-bit counter in a shared coverage
map segment — an AFL-style bitmap, but with exact hit counts.  Because
E9Patch-style rewriting has no basic-block information by design, sites
are selected with the control-flow-agnostic A1 matcher (direct jumps),
the paper's stand-in for basic-block counting.

The map lives in an appended read-write segment of the patched binary,
so it exists in native runs too; the VM-based :class:`CoverageReport`
reads it back after execution for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.observe import Observer
from repro.core.pipeline import MatchPass
from repro.core.rewriter import RewriteOptions, RewriteResult, Rewriter
from repro.core.strategy import PatchRequest
from repro.core.trampoline import Counter
from repro.frontend.matchers import MATCHERS, Matcher
from repro.frontend.tool import prepare_binary
from repro.vm.machine import Machine

SLOT_SIZE = 8
PAGE = 4096


@dataclass
class CoverageInstrumenter:
    """Instrument a binary with one counter slot per matched site."""

    matcher: Matcher | str = "jumps"
    options: RewriteOptions = field(default_factory=lambda: RewriteOptions(mode="loader"))
    observer: Observer | None = None

    def instrument(self, data: bytes) -> "InstrumentedBinary":
        matcher = (MATCHERS[self.matcher]
                   if isinstance(self.matcher, str) else self.matcher)
        base = prepare_binary(data, observer=self.observer)
        MatchPass(matcher).run(base)
        sites = base.sites

        rewriter = Rewriter(base.elf, base.instructions, self.options,
                            observer=base.observer)
        map_bytes = max(PAGE, -(-len(sites) * SLOT_SIZE // PAGE) * PAGE)
        map_vaddr = rewriter.add_runtime_data(map_bytes)

        requests = []
        slots: dict[int, int] = {}
        for index, insn in enumerate(sites):
            slot_vaddr = map_vaddr + index * SLOT_SIZE
            slots[insn.address] = slot_vaddr
            requests.append(
                PatchRequest(insn=insn, instrumentation=Counter(slot_vaddr))
            )
        result = rewriter.rewrite(requests)
        return InstrumentedBinary(
            result=result, map_vaddr=map_vaddr, slots=slots
        )


@dataclass
class InstrumentedBinary:
    """A coverage-instrumented binary plus its map layout."""

    result: RewriteResult
    map_vaddr: int
    slots: dict[int, int]  # site vaddr -> counter slot vaddr

    @property
    def data(self) -> bytes:
        return self.result.data

    def run_with_coverage(self, **machine_kwargs) -> "CoverageReport":
        """Execute in the VM and collect the map."""
        machine = Machine(self.data, **machine_kwargs)
        run = machine.run()
        counts = {
            site: machine.mem.read_u64(slot)
            for site, slot in self.slots.items()
        }
        return CoverageReport(run=run, counts=counts)


@dataclass
class CoverageReport:
    """Hit counts per instrumented site."""

    run: object
    counts: dict[int, int]

    @property
    def total_sites(self) -> int:
        return len(self.counts)

    @property
    def covered_sites(self) -> int:
        return sum(1 for c in self.counts.values() if c)

    @property
    def coverage_pct(self) -> float:
        if not self.counts:
            return 0.0
        return 100.0 * self.covered_sites / self.total_sites

    def uncovered(self) -> list[int]:
        """Site addresses never executed (fuzzing targets)."""
        return sorted(a for a, c in self.counts.items() if not c)

    def hottest(self, n: int = 10) -> list[tuple[int, int]]:
        return sorted(self.counts.items(), key=lambda kv: -kv[1])[:n]

    def diff(self, other: "CoverageReport") -> list[int]:
        """Sites this run covered that *other* did not (new coverage —
        the signal a fuzzer maximizes)."""
        return sorted(
            a for a, c in self.counts.items()
            if c and not other.counts.get(a)
        )
