"""Execution tracing (the paper's debugging use case).

Each instrumented site appends its address to a ring buffer in an
appended read-write segment — a control-flow trace recorded by a binary
that was never recompiled.  The buffer layout is::

    +0x00: u64 head        (total records written; monotonically grows)
    +0x08: u64 capacity    (power of two)
    +0x10: u64 entries[capacity]

The trampoline body preserves flags and registers, so traced and
untraced runs behave identically (checked by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.observe import Observer
from repro.core.pipeline import MatchPass
from repro.core.rewriter import RewriteOptions, RewriteResult, Rewriter
from repro.core.strategy import PatchRequest
from repro.core.trampoline import Instrumentation
from repro.frontend.matchers import MATCHERS, Matcher
from repro.frontend.tool import prepare_binary
from repro.vm.machine import Machine
from repro.x86 import encoder as enc

HEADER_SIZE = 16


class TraceRecord(Instrumentation):
    """Append the site address to the ring buffer."""

    name = "trace"

    def __init__(self, buffer_vaddr: int, capacity: int) -> None:
        if capacity & (capacity - 1):
            raise ValueError("capacity must be a power of two")
        self.buffer_vaddr = buffer_vaddr
        self.capacity = capacity

    def emit(self, asm: enc.Assembler, insn) -> None:
        asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
        asm.pushfq()
        asm.push(enc.RAX)
        asm.push(enc.RCX)
        asm.push(enc.RDX)
        asm.push(enc.R11)
        asm.mov_imm64(enc.RAX, self.buffer_vaddr)
        asm.mov_load(enc.RCX, enc.RAX, 0)  # rcx = head
        asm.mov_reg(enc.RDX, enc.RCX)
        # rdx = head & (capacity - 1)
        asm.raw(b"\x48\x81\xe2" + (self.capacity - 1).to_bytes(4, "little"))
        asm.mov_imm64(enc.R11, insn.address)  # the record
        # entries[rdx] = r11:  mov [rax + rdx*8 + 16], r11
        asm.raw(b"\x4c\x89\x5c\xd0\x10")
        asm.add_imm(enc.RCX, 1)
        asm.mov_store(enc.RAX, enc.RCX, 0)  # head = rcx
        asm.pop(enc.R11)
        asm.pop(enc.RDX)
        asm.pop(enc.RCX)
        asm.pop(enc.RAX)
        asm.popfq()
        asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # lea 0x80(%rsp), %rsp


@dataclass
class Tracer:
    """Instrument a binary so matched sites record an execution trace."""

    matcher: Matcher | str = "jumps"
    capacity: int = 4096
    options: RewriteOptions = field(default_factory=lambda: RewriteOptions(mode="loader"))
    observer: Observer | None = None

    def instrument(self, data: bytes) -> "TracedBinary":
        matcher = (MATCHERS[self.matcher]
                   if isinstance(self.matcher, str) else self.matcher)
        base = prepare_binary(data, observer=self.observer)
        MatchPass(matcher).run(base)
        sites = base.sites

        rewriter = Rewriter(base.elf, base.instructions, self.options,
                            observer=base.observer)
        size = HEADER_SIZE + 8 * self.capacity
        buffer_vaddr = rewriter.add_runtime_data(size)
        instr = TraceRecord(buffer_vaddr, self.capacity)
        result = rewriter.rewrite(
            [PatchRequest(insn=i, instrumentation=instr) for i in sites]
        )
        return TracedBinary(result=result, buffer_vaddr=buffer_vaddr,
                            capacity=self.capacity)


@dataclass
class TracedBinary:
    result: RewriteResult
    buffer_vaddr: int
    capacity: int

    @property
    def data(self) -> bytes:
        return self.result.data

    def run_with_trace(self, **machine_kwargs) -> "Trace":
        machine = Machine(self.data, **machine_kwargs)
        # Pre-set the capacity header so natively-run binaries could
        # share the layout (the VM map is zero-filled; head starts 0).
        machine.mem.write_u64(self.buffer_vaddr + 8, self.capacity)
        run = machine.run()
        head = machine.mem.read_u64(self.buffer_vaddr)
        count = min(head, self.capacity)
        start = head - count
        records = []
        for i in range(start, head):
            slot = self.buffer_vaddr + HEADER_SIZE + 8 * (i % self.capacity)
            records.append(machine.mem.read_u64(slot))
        return Trace(run=run, total=head, records=records)


@dataclass
class Trace:
    """The recovered execution trace."""

    run: object
    total: int  # records ever written (may exceed len(records))
    records: list[int]

    @property
    def truncated(self) -> bool:
        return self.total > len(self.records)

    def transitions(self) -> list[tuple[int, int]]:
        """Consecutive (from_site, to_site) pairs — a dynamic edge list
        recovered with zero static control-flow knowledge."""
        return list(zip(self.records, self.records[1:]))
