"""Built applications on top of the rewriter (the paper's Section 1 use
cases): coverage instrumentation for fuzzing, heap hardening (in
:mod:`repro.lowfat`), binary patching (see ``examples/patch_cve.py``)."""

from repro.apps.coverage import CoverageInstrumenter, CoverageReport

__all__ = ["CoverageInstrumenter", "CoverageReport"]
