"""A miniature coverage-guided fuzzer built on the rewriter.

Closes the loop the paper's introduction motivates (binary-only
coverage-guided tracing): the target binary is instrumented with the
:mod:`repro.apps.coverage` per-site counters — no CFG, no source — and a
mutation loop keeps inputs that light up new coverage.

:func:`build_fuzz_target` produces the classic fuzzing benchmark shape:
a binary that reads bytes from stdin and only reaches deeper code when
successive "magic" bytes match, "crashing" (a distinctive exit code)
at full depth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.coverage import CoverageInstrumenter, CoverageReport
from repro.elf import constants as elfc
from repro.elf.builder import TinyProgram
from repro.x86 import encoder as enc

CRASH_EXIT_CODE = 101


def build_fuzz_target(magic: bytes = b"E9PATCH!", *, seed: int = 0) -> bytes:
    """Build a stdin-driven target guarded by successive magic bytes.

    Depth ``k`` is reached only when the first ``k`` input bytes equal
    *magic*; each new depth emits a progress byte, and matching all of
    them "crashes" (exit 101).
    """
    rng = random.Random(seed)
    prog = TinyProgram()
    prog.add_data("buf", bytes(16))
    prog.add_data("mark", b"?")
    a = prog.text

    # read(0, buf, len(magic))
    a.mov_imm32(enc.RDI, 0)
    a.mov_label64(enc.RSI, "buf")
    a.mov_imm32(enc.RDX, len(magic))
    a.mov_imm32(enc.RAX, elfc.SYS_READ)
    a.syscall()

    a.mov_label64(enc.RBX, "buf")
    for depth, byte in enumerate(magic):
        # if buf[depth] != byte: exit(depth)
        a.raw(bytes((0x80, 0x7B, depth, byte)))  # cmp byte [rbx+depth], byte
        a.jcc(0x5, f"fail{depth}")  # jne
        # progress marker: write one byte ('0'+depth) to stdout
        a.mov_label64(enc.RSI, "mark")
        value = 0x30 + depth + rng.randrange(0, 1)
        a.raw(b"\xc6\x06" + bytes((value,)))  # mov byte [rsi], value
        a.mov_imm32(enc.RDI, 1)
        a.mov_imm32(enc.RDX, 1)
        a.mov_imm32(enc.RAX, elfc.SYS_WRITE)
        a.syscall()
        a.mov_label64(enc.RBX, "buf")  # restore clobbered base
    # Full match: the "crash".
    a.mov_imm32(enc.RDI, CRASH_EXIT_CODE)
    a.mov_imm32(enc.RAX, elfc.SYS_EXIT)
    a.syscall()
    for depth in range(len(magic)):
        a.label(f"fail{depth}")
        a.mov_imm32(enc.RDI, depth)
        a.mov_imm32(enc.RAX, elfc.SYS_EXIT)
        a.syscall()

    a.labels["buf"] = prog.data_vaddr("buf") - a.base
    a.labels["mark"] = prog.data_vaddr("mark") - a.base
    return prog.build()


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    crashed: bool
    crashing_input: bytes | None
    executions: int
    corpus: list[bytes]
    coverage_history: list[int] = field(default_factory=list)

    @property
    def final_coverage(self) -> int:
        return self.coverage_history[-1] if self.coverage_history else 0


@dataclass
class Fuzzer:
    """Random byte-mutation fuzzer driven by the coverage map."""

    target: bytes  # the *instrumented* binary is built internally
    input_size: int = 8
    seed: int = 1
    max_instructions: int = 200_000

    def __post_init__(self) -> None:
        self.instrumented = CoverageInstrumenter(matcher="jumps").instrument(
            self.target)
        self.rng = random.Random(self.seed)

    def _execute(self, data: bytes) -> CoverageReport:
        return self.instrumented.run_with_coverage(
            stdin=data, max_instructions=self.max_instructions
        )

    def _mutate(self, data: bytes) -> bytes:
        out = bytearray(data)
        pos = self.rng.randrange(len(out))  # single-byte mutations: less
        out[pos] = self.rng.randrange(256)  # destructive of past progress
        return bytes(out)

    def run(self, budget: int = 2000) -> FuzzResult:
        """Fuzz until the crash exit code appears or *budget* runs out."""
        corpus: list[bytes] = [bytes(self.input_size)]
        covered: set[int] = set()
        history: list[int] = []
        executions = 0

        while executions < budget:
            parent = self.rng.choice(corpus)
            candidate = self._mutate(parent)
            report = self._execute(candidate)
            executions += 1
            if report.run.exit_code == CRASH_EXIT_CODE:
                history.append(len(covered))
                return FuzzResult(True, candidate, executions, corpus, history)
            new = {a for a, c in report.counts.items() if c} - covered
            if new:
                covered |= new
                corpus.append(candidate)
            history.append(len(covered))
        return FuzzResult(False, None, executions, corpus, history)
