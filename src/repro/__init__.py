"""E9Patch reproduction: static binary rewriting without control flow recovery.

Public API (see README.md for a quickstart)::

    from repro import (
        ElfFile, Rewriter, RewriteOptions, PatchRequest,
        disassemble_text, instrument_elf, run_elf,
    )

The subpackages:

* :mod:`repro.x86` -- instruction decoding/encoding/formatting
* :mod:`repro.elf` -- ELF64 reading, in-place rewriting, building
* :mod:`repro.core` -- pun math, tactics, strategy, grouping, Rewriter
* :mod:`repro.frontend` -- disassembly, matchers, CLI, JSON-RPC protocol
* :mod:`repro.vm` -- the x86-64 interpreter testbed
* :mod:`repro.lowfat` -- low-fat pointer heap hardening
* :mod:`repro.synth` -- synthetic workload generation
* :mod:`repro.eval` -- table/figure regeneration harnesses
"""

__version__ = "1.0.0"

from repro.apps.coverage import CoverageInstrumenter, CoverageReport
from repro.apps.fuzzer import Fuzzer, build_fuzz_target
from repro.apps.tracer import Trace, TracedBinary, Tracer
from repro.core.rewriter import RewriteOptions, RewriteResult, Rewriter
from repro.core.strategy import PatchRequest, TacticToggles
from repro.core.tactics import Tactic
from repro.core.templates import TrampolineTemplate, load_template
from repro.core.trampoline import (
    CallFunction,
    Counter,
    Empty,
    Instrumentation,
)
from repro.elf.builder import TinyProgram
from repro.elf.reader import ElfFile
from repro.errors import ReproError
from repro.frontend.lineardisasm import disassemble_text
from repro.frontend.match_expr import compile_matcher
from repro.frontend.partial import patch_addresses
from repro.frontend.protocol import E9PatchSession
from repro.frontend.tool import instrument_elf, instrument_elf_auto
from repro.vm.machine import Machine, run_elf
from repro.x86.decoder import decode, decode_buffer

__all__ = [
    "__version__",
    "ReproError",
    # apps
    "CoverageInstrumenter",
    "CoverageReport",
    "Fuzzer",
    "build_fuzz_target",
    "Tracer",
    "TracedBinary",
    "Trace",
    # core
    "Rewriter",
    "RewriteOptions",
    "RewriteResult",
    "PatchRequest",
    "TacticToggles",
    "Tactic",
    "Instrumentation",
    "Empty",
    "Counter",
    "CallFunction",
    "TrampolineTemplate",
    "load_template",
    # elf
    "ElfFile",
    "TinyProgram",
    # frontend
    "disassemble_text",
    "compile_matcher",
    "instrument_elf",
    "instrument_elf_auto",
    "patch_addresses",
    "E9PatchSession",
    # vm
    "Machine",
    "run_elf",
    # x86
    "decode",
    "decode_buffer",
]
