"""Static rewrite-plan linter: re-derive and check emitted invariants.

The PR-5 VM oracle proves a rewrite correct by *executing* it — too slow
to run on every rewrite.  This linter proves a complementary set of
invariants *statically*, straight from the emitted artifacts, in
milliseconds:

* **site integrity** — every patched site in the final image decodes to
  the expected shape (``int3`` for B0, a direct-jump chain for
  everything else) and the chain reaches that site's own trampoline
  within a bounded number of hops (T3's short-jump indirection included);
  punned displacement bytes that would send the chain somewhere else are
  caught here, because the check decodes the *final* bytes, not the
  planner's intent;
* **layout** — no trampoline overlaps another trampoline, a metadata
  segment (loader stub, relocated phdr table), an instrumentation data
  segment, or the original image;
* **image bytes** — each trampoline's encoded bytes are actually present
  in the output file at the address the loader will map them to (via
  PT_LOAD in phdr mode, via the recorded blob maps in loader mode);
* **replay equivalence** — the relocated copy of every displaced
  instruction is decode-equivalent to the original: same absolute branch
  target, same rip-relative effective address, or byte-identical body;
* **jump-back** — every fall-through trampoline ends in ``jmp rel32``
  landing *exactly* at the displaced instruction's end.  This is the
  check that catches the ``REPRO_CHECK_INJECT_BUG`` displacement
  miscompile statically, without running a single instruction;
* **CET landing pads** — patching or evicting an ``endbr64`` destroys a
  landing pad for indirect branches (warning: our synthetic corpus never
  branches indirectly, real CET binaries do).

Findings are typed (:class:`Finding`: severity, check id, vaddr,
message).  :class:`LintPass` runs after ``EmitPass``, publishes
``lint.*`` counters, stores the :class:`LintReport` on the context, and
raises :class:`LintError` (a :class:`~repro.errors.PatchError` carrying
the report) when any error-severity finding exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.facts import is_endbr64
from repro.core.pipeline import PipelinePass, RewriteContext
from repro.core.tactics import Tactic
from repro.core.trampoline import (
    JMP_BACK_SIZE,
    Trampoline,
    _no_return,
    relocated_size,
)
from repro.elf import constants as elfc
from repro.elf.reader import ElfFile
from repro.errors import DecodeError, PatchError
from repro.x86.decoder import decode
from repro.x86.insn import Instruction
from repro.x86.tables import Flow

__all__ = ["Finding", "LintError", "LintPass", "LintReport", "lint_context"]

#: Maximum direct-jump hops from a patch site to its trampoline
#: (B1/B2/T1/T2 need one; T3 needs two: short jump, then punned jump).
_MAX_HOPS = 4

#: Decode window at a patch site (longest padded jump).
_SITE_WINDOW = 16


@dataclass(frozen=True)
class Finding:
    """One linter diagnosis, anchored to a virtual address."""

    severity: str  # "error" | "warn"
    check: str  # "site" | "reach" | "overlap" | "image-bytes" | ...
    vaddr: int
    message: str

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "check": self.check,
            "vaddr": self.vaddr,
            "message": self.message,
        }

    def __str__(self) -> str:
        return f"{self.severity}[{self.check}] {self.vaddr:#x}: {self.message}"


@dataclass
class LintReport:
    """All findings from one lint run, plus coverage counts."""

    findings: list[Finding] = field(default_factory=list)
    sites_checked: int = 0
    trampolines_checked: int = 0

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warn"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "sites_checked": self.sites_checked,
            "trampolines_checked": self.trampolines_checked,
            "findings": [f.to_dict() for f in self.findings],
        }


class LintError(PatchError):
    """Raised by :class:`LintPass` when error-severity findings exist.

    Carries the full :class:`LintReport` so callers (the ``repro lint``
    CLI, the eval matrix) can surface every finding, not just the first.
    """

    def __init__(self, report: LintReport) -> None:
        first = report.errors[0]
        super().__init__(
            f"lint: {len(report.errors)} error(s); first: {first}"
        )
        self.report = report


class _OutputImage:
    """Byte access into the *emitted* file by virtual address.

    Original-image and phdr-mode trampoline addresses resolve through the
    output's PT_LOAD table; loader-mode trampoline blocks have no
    file-backed PT_LOAD (the stub mmaps them at runtime), so those reads
    go through the pipeline's recorded ``blob_maps``.
    """

    def __init__(self, output: bytes,
                 blob_maps: list[tuple[int, int, int]]) -> None:
        self.elf = ElfFile(output)
        self.maps = blob_maps

    def read(self, vaddr: int, size: int) -> bytes | None:
        # Piecewise: a trampoline may straddle two adjacent block
        # mappings (the allocator packs across page boundaries; the
        # grouped loader maps each block separately).
        out = bytearray()
        while len(out) < size:
            chunk = self._read_some(vaddr + len(out), size - len(out))
            if not chunk:
                return None
            out += chunk
        return bytes(out)

    def _read_some(self, vaddr: int, size: int) -> bytes | None:
        for base, msize, off in self.maps:
            if base <= vaddr < base + msize:
                avail = min(size, base + msize - vaddr)
                lo = off + (vaddr - base)
                chunk = self.elf.data[lo : lo + avail]
                return bytes(chunk) if len(chunk) == avail else None
        for p in self.elf.phdrs:
            if p.type == elfc.PT_LOAD and p.vaddr <= vaddr < p.vaddr + p.filesz:
                avail = min(size, p.vaddr + p.filesz - vaddr)
                lo = p.offset + (vaddr - p.vaddr)
                chunk = self.elf.data[lo : lo + avail]
                return bytes(chunk) if len(chunk) == avail else None
        return None


def _parse_tag(tag: str) -> tuple[str, int] | None:
    """Split an address-qualified trampoline tag (``patch@0x401000``)."""
    kind, sep, addr = tag.partition("@")
    if not sep or kind not in ("patch", "evictee"):
        return None
    try:
        return kind, int(addr, 16)
    except ValueError:
        return None


def lint_context(ctx: RewriteContext) -> LintReport:
    """Statically check an emitted rewrite context's invariants."""
    if ctx.output is None or ctx.plan is None:
        raise PatchError("lint needs an emitted context (plan + output)")
    report = LintReport()
    img = _OutputImage(ctx.output, ctx.blob_maps)
    by_addr = {i.address: i for i in (ctx.instructions or ())}

    _check_layout(ctx, report)
    for patch in ctx.plan.patches:
        _check_site(ctx, img, by_addr, patch, report)
        report.sites_checked += 1
    for patch in ctx.plan.patches:
        for tramp in patch.trampolines:
            _check_trampoline(img, by_addr, tramp, report, cet=ctx.cet)
            report.trampolines_checked += 1
    return report


# -- layout ------------------------------------------------------------------


def _check_layout(ctx: RewriteContext, report: LintReport) -> None:
    """No trampoline may overlap another extent the output relies on."""
    extents: list[tuple[int, int, str]] = []
    for t in ctx.trampolines:
        extents.append((t.vaddr, t.end, f"trampoline {t.tag or '?'}"))
    for vaddr, size in ctx.meta_segments:
        extents.append((vaddr, vaddr + size, "metadata segment"))
    for vaddr, size in ctx.data_segments:
        extents.append((vaddr, vaddr + size, "data segment"))
    for p in ctx.elf.phdrs:
        if p.type == elfc.PT_LOAD:
            extents.append((p.vaddr, p.vaddr + p.memsz, "original image"))
    extents.sort(key=lambda e: (e[0], e[1]))
    for (lo_a, hi_a, what_a), (lo_b, hi_b, what_b) in zip(extents,
                                                          extents[1:]):
        if hi_a <= lo_b:
            continue
        if what_a == what_b == "original image":
            continue  # the input's own layout is not ours to judge
        report.findings.append(Finding(
            severity="error", check="overlap", vaddr=lo_b,
            message=(f"{what_b} [{lo_b:#x}, {hi_b:#x}) overlaps "
                     f"{what_a} [{lo_a:#x}, {hi_a:#x})"),
        ))


# -- patch sites -------------------------------------------------------------


def _check_site(ctx: RewriteContext, img: _OutputImage,
                by_addr: dict[int, Instruction], patch,
                report: LintReport) -> None:
    site = patch.site
    original = by_addr.get(site)
    if original is not None and is_endbr64(original):
        # In CET mode this is a rewriter bug (the tactics refuse these
        # sites); for non-CET inputs it stays advisory.
        report.findings.append(Finding(
            severity="error" if ctx.cet else "warn",
            check="endbr", vaddr=site,
            message="patched instruction is an endbr64 landing pad; "
                    "CET indirect branches to it will fault",
        ))

    if patch.tactic == Tactic.B0:
        head = img.read(site, 1)
        if head != b"\xcc":
            report.findings.append(Finding(
                severity="error", check="site", vaddr=site,
                message=f"B0 site byte is {head!r}, expected int3",
            ))
        return

    expected = next(
        (t.vaddr for t in patch.trampolines
         if t.tag.startswith("patch")), None,
    )
    if expected is None:
        report.findings.append(Finding(
            severity="error", check="site", vaddr=site,
            message=f"{patch.tactic.name} patch has no patch trampoline",
        ))
        return

    # Follow the final image's direct-jump chain from the site; it must
    # land on this site's trampoline within _MAX_HOPS.  Decoding the
    # emitted bytes (rather than trusting the plan) is what makes punned
    # displacement corruption visible.
    at = site
    for _ in range(_MAX_HOPS):
        raw = img.read(at, _SITE_WINDOW) or img.read(at, 5) or img.read(at, 2)
        if raw is None:
            report.findings.append(Finding(
                severity="error", check="reach", vaddr=at,
                message=f"jump chain from site {site:#x} reaches "
                        f"unreadable address {at:#x}",
            ))
            return
        try:
            insn = decode(raw, address=at)
        except DecodeError as exc:
            report.findings.append(Finding(
                severity="error", check="reach", vaddr=at,
                message=f"jump chain from site {site:#x} fails to "
                        f"decode at {at:#x}: {exc}",
            ))
            return
        if insn.flow != Flow.JMP or insn.target is None:
            report.findings.append(Finding(
                severity="error", check="reach", vaddr=at,
                message=f"jump chain from site {site:#x} hits "
                        f"non-jump {insn.mnemonic} at {at:#x}",
            ))
            return
        at = insn.target
        if at == expected:
            return
    report.findings.append(Finding(
        severity="error", check="reach", vaddr=site,
        message=f"jump chain from site {site:#x} does not reach its "
                f"trampoline at {expected:#x} within {_MAX_HOPS} hops",
    ))


# -- trampolines -------------------------------------------------------------


def _check_trampoline(img: _OutputImage, by_addr: dict[int, Instruction],
                      tramp: Trampoline, report: LintReport,
                      *, cet: bool = False) -> None:
    parsed = _parse_tag(tramp.tag)
    if parsed is None:
        return  # runtime blobs and legacy tags: nothing to re-derive
    kind, addr = parsed
    insn = by_addr.get(addr)
    if insn is None:
        report.findings.append(Finding(
            severity="error", check="replay", vaddr=tramp.vaddr,
            message=f"{kind} trampoline names unknown instruction "
                    f"{addr:#x}",
        ))
        return

    if kind == "evictee" and is_endbr64(insn):
        report.findings.append(Finding(
            severity="error" if cet else "warn",
            check="endbr", vaddr=addr,
            message="evicted instruction is an endbr64 landing pad; "
                    "CET indirect branches to it will fault",
        ))

    emitted = img.read(tramp.vaddr, len(tramp.code))
    if emitted != tramp.code:
        report.findings.append(Finding(
            severity="error", check="image-bytes", vaddr=tramp.vaddr,
            message=f"trampoline bytes at {tramp.vaddr:#x} differ "
                    "between plan and emitted file",
        ))
        # Keep going: the remaining checks run on the planned bytes.

    reloc_sz = relocated_size(insn)
    back = 0 if _no_return(insn) else JMP_BACK_SIZE
    instr_off = len(tramp.code) - reloc_sz - back
    if instr_off < 0:
        report.findings.append(Finding(
            severity="error", check="replay", vaddr=tramp.vaddr,
            message=f"trampoline too small ({len(tramp.code)} bytes) for "
                    f"relocated {insn.mnemonic} (+{reloc_sz}) and return",
        ))
        return

    _check_replay(tramp, insn, instr_off, reloc_sz, report)

    if back:
        tail_vaddr = tramp.end - JMP_BACK_SIZE
        try:
            jback = decode(tramp.code[-JMP_BACK_SIZE:], address=tail_vaddr)
        except DecodeError as exc:
            report.findings.append(Finding(
                severity="error", check="jump-back", vaddr=tail_vaddr,
                message=f"jump-back fails to decode: {exc}",
            ))
            return
        if jback.flow != Flow.JMP or jback.target != insn.end:
            report.findings.append(Finding(
                severity="error", check="jump-back", vaddr=tail_vaddr,
                message=(f"jump-back targets "
                         f"{jback.target:#x}" if jback.target is not None
                         else "jump-back is not a direct jump")
                + f", expected {insn.end:#x} "
                  f"(end of {insn.mnemonic} at {insn.address:#x})",
            ))


def _check_replay(tramp: Trampoline, insn: Instruction, instr_off: int,
                  reloc_sz: int, report: LintReport) -> None:
    """Decode-level equivalence of the relocated displaced instruction."""
    vaddr = tramp.vaddr + instr_off
    chunk = tramp.code[instr_off : instr_off + reloc_sz]

    def fail(message: str) -> None:
        report.findings.append(Finding(
            severity="error", check="replay", vaddr=vaddr, message=message,
        ))

    if insn.flow == Flow.LOOP:
        # Expanded branch-out pattern: loopcc +2; jmp rel8 +5; jmp target.
        bad = (len(chunk) != 9 or chunk[0] != insn.opcode or chunk[1] != 2
               or chunk[2:4] != b"\xeb\x05")
        if bad:
            fail(f"relocated {insn.mnemonic} does not use the expected "
                 "loop branch-out pattern")
            return
        try:
            out = decode(chunk[4:9], address=vaddr + 4)
        except DecodeError as exc:
            fail(f"loop branch-out target fails to decode: {exc}")
            return
        if out.target != insn.target:
            fail(f"relocated {insn.mnemonic} branches to {out.target:#x}, "
                 f"original target {insn.target:#x}")
        return

    try:
        new = decode(chunk, address=vaddr)
    except DecodeError as exc:
        fail(f"relocated {insn.mnemonic} fails to decode: {exc}")
        return
    if new.length != reloc_sz:
        fail(f"relocated {insn.mnemonic} decodes to {new.length} bytes, "
             f"expected {reloc_sz}")
        return

    if insn.flow in (Flow.JMP, Flow.JCC, Flow.CALL) and insn.is_direct_branch:
        if new.flow != insn.flow:
            fail(f"relocated {insn.mnemonic} decodes as {new.mnemonic}")
            return
        if insn.flow == Flow.JCC and (new.opcode & 0xF) != (insn.opcode & 0xF):
            fail(f"relocated {insn.mnemonic} changed condition code")
            return
        if new.target != insn.target:
            fail(f"relocated {insn.mnemonic} branches to "
                 f"{new.target:#x} instead of {insn.target:#x}")
        return

    if insn.rip_relative:
        orig_eff = insn.end + (insn.disp or 0)
        new_eff = new.end + (new.disp or 0)
        if (new.opcode, new.opmap, new.modrm) != (insn.opcode, insn.opmap,
                                                  insn.modrm):
            fail(f"relocated {insn.mnemonic} changed encoding")
            return
        if new_eff != orig_eff:
            fail(f"relocated {insn.mnemonic} rip-relative operand points "
                 f"at {new_eff:#x} instead of {orig_eff:#x}")
        return

    if chunk != insn.raw:
        fail(f"relocated {insn.mnemonic} bytes differ from the original "
             "position-independent instruction")


# -- the pipeline pass -------------------------------------------------------


class LintPass(PipelinePass):
    """Run the linter after emission; error findings fail the rewrite.

    Publishes ``lint.sites``, ``lint.trampolines``, ``lint.errors`` and
    ``lint.warnings`` counters and stores the report on ``ctx.lint``
    (surfaced as ``RewriteResult.lint``) before raising, so findings
    stay reachable from :class:`LintError` handlers.
    """

    name = "lint"

    def execute(self, ctx: RewriteContext) -> None:
        report = lint_context(ctx)
        ctx.lint = report
        obs = ctx.observer
        obs.count("lint.sites", report.sites_checked)
        obs.count("lint.trampolines", report.trampolines_checked)
        obs.count("lint.errors", len(report.errors))
        obs.count("lint.warnings", len(report.warnings))
        if not report.ok:
            raise LintError(report)
