"""Semantic facts per instruction, from dense precompiled tables.

The rewriter's :mod:`repro.x86.tables` answer layout questions (lengths,
control flow, "does it write its r/m operand"); this module answers the
*semantic* questions the liveness pass and the ``match_expr`` DSL need:
which registers an instruction reads and writes, which flags it uses and
defines, and what kind of memory it touches.

Facts come in two strengths, and the distinction is what keeps every
consumer sound:

* **may** sets (``regs_written``, ``flags_written``) over-approximate:
  anything that could possibly change is included.  The differential VM
  test checks exactly this — a register the engine claims "not written"
  must never change under single-step execution.
* **must** sets (``regs_killed``, ``flags_killed``) under-approximate:
  only effects guaranteed on every execution, at full width (a 32-bit
  register write zero-extends and therefore kills the 64-bit register;
  8/16-bit writes merge and kill nothing).  Liveness may only treat a
  value as dead past a *must* kill.

Unknown instructions (any opcode without a table entry, VEX/EVEX, the
0F38/0F3A maps) resolve to :data:`UNKNOWN_FACTS`: ``known=False``,
everything read, nothing killed — the conservative fixpoint.

The tables are dense 256-entry lists indexed by opcode (one per opcode
map), not dicts: one index per lookup, no hashing, matching the decoder's
own table style.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86 import prefixes as pfx
from repro.x86.insn import Instruction, OperandKind

__all__ = [
    "CF", "PF", "AF", "ZF", "SF", "OF", "DF",
    "STATUS_FLAGS", "ALL_FLAGS", "ALL_REGS",
    "FLAG_NAMES", "InsnFacts", "UNKNOWN_FACTS",
    "facts_for", "is_endbr64", "flag_mask_names", "reg_mask_names",
]

# -- flag bits (one per tracked RFLAGS bit) ---------------------------------

CF = 1 << 0
PF = 1 << 1
AF = 1 << 2
ZF = 1 << 3
SF = 1 << 4
OF = 1 << 5
DF = 1 << 6

#: The six status flags the ALU defines (DF is control, not status).
STATUS_FLAGS = CF | PF | AF | ZF | SF | OF
ALL_FLAGS = STATUS_FLAGS | DF

FLAG_NAMES = {CF: "cf", PF: "pf", AF: "af", ZF: "zf", SF: "sf",
              OF: "of", DF: "df"}

#: All 16 general-purpose registers as a bit mask (bit n = register n,
#: ModRM/REX numbering: rax=0 .. r15=15).
ALL_REGS = 0xFFFF

_RSP = 4
_RBP = 5

# ALU flag behaviour, shared by many entries.
_ARITH = STATUS_FLAGS  # add/sub/cmp/neg: all six defined
_LOGIC = CF | PF | ZF | SF | OF  # and/or/xor/test: AF undefined
_INCDEC = PF | AF | ZF | SF | OF  # inc/dec: CF preserved

#: Flags read by each condition code (jcc/setcc/cmovcc, cc = opcode & 0xF).
CC_FLAGS = (
    OF, OF,  # o / no
    CF, CF,  # b / ae
    ZF, ZF,  # e / ne
    CF | ZF, CF | ZF,  # be / a
    SF, SF,  # s / ns
    PF, PF,  # p / np
    SF | OF, SF | OF,  # l / ge
    ZF | SF | OF, ZF | SF | OF,  # le / g
)


def flag_mask_names(mask: int) -> list[str]:
    """Human-readable names for a flag mask (lint/debug output)."""
    return [name for bit, name in FLAG_NAMES.items() if mask & bit]


def reg_mask_names(mask: int) -> list[str]:
    """Human-readable register names for a register mask."""
    from repro.x86.insn import REG_NAMES_64

    return [REG_NAMES_64[i] for i in range(16) if mask >> i & 1]


@dataclass(frozen=True)
class InsnFacts:
    """Resolved semantic facts for one decoded instruction."""

    known: bool
    regs_read: int = 0  # may-read register mask
    regs_written: int = 0  # may-write register mask
    regs_killed: int = 0  # must-kill mask (full-width writes only)
    flags_read: int = 0  # may-use flag mask
    flags_written: int = 0  # may-modify flag mask
    flags_killed: int = 0  # must-define flag mask
    mem_class: str | None = None  # "stack" | "global" | "heap" | None
    mem_width: int = 0  # access width in bytes (0 = n/a / unknown)
    mem_read: bool = False
    mem_write: bool = False

    @property
    def preserves_flags(self) -> bool:
        """True when the instruction provably leaves every flag alone."""
        return self.known and self.flags_written == 0

    def reads_reg(self, reg: int) -> bool:
        return bool(self.regs_read >> reg & 1)

    def writes_reg(self, reg: int) -> bool:
        return bool(self.regs_written >> reg & 1)

    def kills_reg(self, reg: int) -> bool:
        return bool(self.regs_killed >> reg & 1)


#: The conservative answer for anything the tables do not cover.
UNKNOWN_FACTS = InsnFacts(
    known=False,
    regs_read=ALL_REGS,
    regs_written=ALL_REGS,
    regs_killed=0,
    flags_read=ALL_FLAGS,
    flags_written=ALL_FLAGS,
    flags_killed=0,
)


# -- operand-role templates --------------------------------------------------


@dataclass(frozen=True)
class _Op:
    """One opcode's operand roles, resolved per instruction by
    :func:`facts_for`.

    ``rm_*``/``reg_*`` describe the ModRM operands; ``plusr_*`` the
    register encoded in the opcode's low three bits (push/pop/xchg/
    mov-imm/bswap); the ``reads``/``writes``/``kills`` masks are implicit
    registers (``push`` touches ``rsp``, ``mul`` writes ``rdx``...).
    """

    rm_r: bool = False
    rm_w: bool = False
    rm_byte: bool = False  # rm operand is 8-bit regardless of opsize (movzx)
    reg_r: bool = False
    reg_w: bool = False
    plusr_r: bool = False
    plusr_w: bool = False
    reads: int = 0
    writes: int = 0
    kills: int = 0
    flags_r: int = 0
    flags_w: int = 0
    flags_must: int = 0
    byte_op: bool = False  # 8-bit operand size (no 66/REX.W sizing)
    no_mem: bool = False  # mem-form r/m is address-only (lea, multi-byte nop)
    cc_uses: bool = False  # opcode & 0xF selects a condition code
    string_op: bool = False  # rep-prefixable rsi/rdi stepper
    mem_stack: bool = False  # implicit stack access (push/pop/pushf/popf)


def _alu(flags_must: int, *, cmp_like: bool = False, uses_cf: bool = False,
         byte_op: bool = False, direction_rm: bool = True) -> _Op:
    """Classic two-operand ALU template (00-3B block layout)."""
    return _Op(
        rm_r=True, rm_w=direction_rm and not cmp_like,
        reg_r=True, reg_w=not direction_rm and not cmp_like,
        flags_r=CF if uses_cf else 0,
        flags_w=STATUS_FLAGS, flags_must=flags_must,
        byte_op=byte_op,
    )


def _bit(reg: int) -> int:
    return 1 << reg


_B = _bit  # local shorthand for table construction

# -- one-byte opcode map -----------------------------------------------------

_ONE: list[object | None] = [None] * 256
_TWO: list[object | None] = [None] * 256


def _fill(table: list, spec: dict) -> None:
    for opcodes, entry in spec.items():
        if isinstance(opcodes, int):
            opcodes = (opcodes,)
        for op in opcodes:
            table[op] = entry


# The 00-3B two-operand ALU block: each group of four direction/size
# variants shares flag behaviour; 04/05-style AL/eAX-immediate forms are
# implicit-register ops.
for base, must, cf_in in (
    (0x00, _ARITH, False),  # add
    (0x08, _LOGIC, False),  # or
    (0x10, _ARITH, True),   # adc
    (0x18, _ARITH, True),   # sbb
    (0x20, _LOGIC, False),  # and
    (0x28, _ARITH, False),  # sub
    (0x30, _LOGIC, False),  # xor
    (0x38, _ARITH, False),  # cmp
):
    cmp_like = base == 0x38
    _ONE[base + 0] = _alu(must, cmp_like=cmp_like, uses_cf=cf_in,
                          byte_op=True)
    _ONE[base + 1] = _alu(must, cmp_like=cmp_like, uses_cf=cf_in)
    _ONE[base + 2] = _alu(must, cmp_like=cmp_like, uses_cf=cf_in,
                          byte_op=True, direction_rm=False)
    _ONE[base + 3] = _alu(must, cmp_like=cmp_like, uses_cf=cf_in,
                          direction_rm=False)
    # AL, imm8 / eAX, imm32
    ax_w = 0 if cmp_like else _B(0)
    _ONE[base + 4] = _Op(reads=_B(0), writes=ax_w,
                         flags_r=CF if cf_in else 0,
                         flags_w=STATUS_FLAGS, flags_must=must, byte_op=True)
    _ONE[base + 5] = _Op(reads=_B(0), writes=ax_w, kills=ax_w,
                         flags_r=CF if cf_in else 0,
                         flags_w=STATUS_FLAGS, flags_must=must)

_PUSH_R = _Op(plusr_r=True, reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
              mem_stack=True)
_POP_R = _Op(plusr_w=True, reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
             mem_stack=True)

# grp2 shifts/rotates: a zero count changes nothing, so every flag is
# may-written and none must-defined; rcl/rcr additionally read CF.
_SHIFT = _Op(rm_r=True, rm_w=True, flags_r=CF, flags_w=STATUS_FLAGS)
_SHIFT8 = _Op(rm_r=True, rm_w=True, flags_r=CF, flags_w=STATUS_FLAGS,
              byte_op=True)
_SHIFT_CL = _Op(rm_r=True, rm_w=True, reads=_B(1), flags_r=CF,
                flags_w=STATUS_FLAGS)
_SHIFT8_CL = _Op(rm_r=True, rm_w=True, reads=_B(1), flags_r=CF,
                 flags_w=STATUS_FLAGS, byte_op=True)

_STRING = {
    # movs: [rsi] -> [rdi], step both
    0xA4: _Op(reads=_B(6) | _B(7), writes=_B(6) | _B(7), flags_r=DF,
              byte_op=True, string_op=True),
    0xA5: _Op(reads=_B(6) | _B(7), writes=_B(6) | _B(7), flags_r=DF,
              string_op=True),
    # cmps: compare [rsi], [rdi]
    0xA6: _Op(reads=_B(6) | _B(7), writes=_B(6) | _B(7), flags_r=DF,
              flags_w=STATUS_FLAGS, flags_must=_ARITH, byte_op=True,
              string_op=True),
    0xA7: _Op(reads=_B(6) | _B(7), writes=_B(6) | _B(7), flags_r=DF,
              flags_w=STATUS_FLAGS, flags_must=_ARITH, string_op=True),
    # stos: al/eax/rax -> [rdi]
    0xAA: _Op(reads=_B(0) | _B(7), writes=_B(7), flags_r=DF, byte_op=True,
              string_op=True),
    0xAB: _Op(reads=_B(0) | _B(7), writes=_B(7), flags_r=DF, string_op=True),
    # lods: [rsi] -> al/eax/rax
    0xAC: _Op(reads=_B(6), writes=_B(0) | _B(6), flags_r=DF, byte_op=True,
              string_op=True),
    0xAD: _Op(reads=_B(6), writes=_B(0) | _B(6), flags_r=DF, string_op=True),
    # scas: compare al/eax/rax with [rdi]
    0xAE: _Op(reads=_B(0) | _B(7), writes=_B(7), flags_r=DF,
              flags_w=STATUS_FLAGS, flags_must=_ARITH, byte_op=True,
              string_op=True),
    0xAF: _Op(reads=_B(0) | _B(7), writes=_B(7), flags_r=DF,
              flags_w=STATUS_FLAGS, flags_must=_ARITH, string_op=True),
}

_fill(_ONE, {
    tuple(range(0x50, 0x58)): _PUSH_R,
    tuple(range(0x58, 0x60)): _POP_R,
    0x63: _Op(rm_r=True, reg_w=True),  # movsxd (32-bit source read)
    0x68: _Op(reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
              mem_stack=True),  # push imm32
    0x69: _Op(rm_r=True, reg_w=True, flags_w=STATUS_FLAGS,
              flags_must=CF | OF),  # imul r, rm, imm32
    0x6A: _Op(reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
              mem_stack=True),  # push imm8
    0x6B: _Op(rm_r=True, reg_w=True, flags_w=STATUS_FLAGS,
              flags_must=CF | OF),  # imul r, rm, imm8
    tuple(range(0x70, 0x80)): _Op(cc_uses=True),  # jcc rel8
    # grp1 (80=byte, 81/83=word): /7 is cmp (no write); adc/sbb read CF
    0x80: tuple(
        _Op(rm_r=True, rm_w=(sel != 7),
            flags_r=CF if sel in (2, 3) else 0,
            flags_w=STATUS_FLAGS,
            flags_must=_LOGIC if sel in (1, 4, 6) else _ARITH,
            byte_op=True)
        for sel in range(8)
    ),
    (0x81, 0x83): tuple(
        _Op(rm_r=True, rm_w=(sel != 7),
            flags_r=CF if sel in (2, 3) else 0,
            flags_w=STATUS_FLAGS,
            flags_must=_LOGIC if sel in (1, 4, 6) else _ARITH)
        for sel in range(8)
    ),
    0x84: _Op(rm_r=True, reg_r=True, flags_w=STATUS_FLAGS,
              flags_must=_LOGIC, byte_op=True),  # test rm8, r8
    0x85: _Op(rm_r=True, reg_r=True, flags_w=STATUS_FLAGS,
              flags_must=_LOGIC),  # test rm, r
    0x86: _Op(rm_r=True, rm_w=True, reg_r=True, reg_w=True,
              byte_op=True),  # xchg rm8, r8
    0x87: _Op(rm_r=True, rm_w=True, reg_r=True, reg_w=True),  # xchg rm, r
    0x88: _Op(rm_w=True, reg_r=True, byte_op=True),  # mov rm8, r8
    0x89: _Op(rm_w=True, reg_r=True),  # mov rm, r
    0x8A: _Op(rm_r=True, reg_w=True, byte_op=True),  # mov r8, rm8
    0x8B: _Op(rm_r=True, reg_w=True),  # mov r, rm
    0x8D: _Op(reg_w=True, no_mem=True),  # lea
    0x8F: (_Op(rm_w=True, reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
               mem_stack=True),) + (None,) * 7,  # pop rm (/0)
    0x90: _Op(),  # nop (xchg eax,eax; rex variants handled below)
    tuple(range(0x91, 0x98)): _Op(plusr_r=True, plusr_w=True,
                                  reads=_B(0), writes=_B(0)),  # xchg rax, r
    0x98: _Op(reads=_B(0), writes=_B(0)),  # cbw/cwde/cdqe
    0x99: _Op(reads=_B(0), writes=_B(2)),  # cwd/cdq/cqo
    0x9C: _Op(reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
              flags_r=ALL_FLAGS, mem_stack=True),  # pushfq
    0x9D: _Op(reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
              flags_w=ALL_FLAGS, flags_must=ALL_FLAGS,
              mem_stack=True),  # popfq
    0x9E: _Op(reads=_B(0), flags_w=CF | PF | AF | ZF | SF,
              flags_must=CF | PF | AF | ZF | SF),  # sahf
    0x9F: _Op(writes=_B(0), flags_r=CF | PF | AF | ZF | SF),  # lahf
    # moffs forms: absolute-address loads/stores through rax
    0xA0: _Op(writes=_B(0), byte_op=True),
    0xA1: _Op(writes=_B(0)),
    0xA2: _Op(reads=_B(0), byte_op=True),
    0xA3: _Op(reads=_B(0)),
    0xA8: _Op(reads=_B(0), flags_w=STATUS_FLAGS, flags_must=_LOGIC,
              byte_op=True),  # test al, imm8
    0xA9: _Op(reads=_B(0), flags_w=STATUS_FLAGS,
              flags_must=_LOGIC),  # test eax, imm32
    tuple(range(0xB0, 0xB8)): _Op(plusr_w=True, byte_op=True),  # mov r8, imm
    tuple(range(0xB8, 0xC0)): _Op(plusr_w=True),  # mov r, imm (kills)
    (0xC0, 0xD0): tuple(_SHIFT8 for _ in range(8)),
    (0xC1, 0xD1): tuple(_SHIFT for _ in range(8)),
    0xD2: tuple(_SHIFT8_CL for _ in range(8)),
    0xD3: tuple(_SHIFT_CL for _ in range(8)),
    0xC6: (_Op(rm_w=True, byte_op=True),) + (None,) * 7,  # mov rm8, imm8
    0xC7: (_Op(rm_w=True),) + (None,) * 7,  # mov rm, imm32
    0xC9: _Op(reads=_B(_RBP) | _B(_RSP), writes=_B(_RSP) | _B(_RBP),
              kills=_B(_RSP) | _B(_RBP), mem_stack=True),  # leave
    # Direct branches transfer control with no register or memory
    # effects; loopcc additionally decrements rcx (loope/loopne read
    # ZF).  Direct call (E8) is deliberately absent: it writes the
    # return address and the callee may clobber anything.
    0xE0: _Op(reads=_B(1), writes=_B(1), kills=_B(1),
              flags_r=ZF),  # loopne
    0xE1: _Op(reads=_B(1), writes=_B(1), kills=_B(1),
              flags_r=ZF),  # loope
    0xE2: _Op(reads=_B(1), writes=_B(1), kills=_B(1)),  # loop
    0xE3: _Op(reads=_B(1)),  # jrcxz
    0xE9: _Op(),  # jmp rel32
    0xEB: _Op(),  # jmp rel8
    0xF5: _Op(flags_r=CF, flags_w=CF, flags_must=CF),  # cmc
    # grp3 byte form: test /0 /1, not /2, neg /3, then mul/imul/div/idiv
    # against AL with the result in AX (rdx untouched).
    0xF6: (
        _Op(rm_r=True, flags_w=STATUS_FLAGS, flags_must=_LOGIC,
            byte_op=True),
        _Op(rm_r=True, flags_w=STATUS_FLAGS, flags_must=_LOGIC,
            byte_op=True),
        _Op(rm_r=True, rm_w=True, byte_op=True),  # not: no flags
        _Op(rm_r=True, rm_w=True, flags_w=STATUS_FLAGS, flags_must=_ARITH,
            byte_op=True),
        _Op(rm_r=True, reads=_B(0), writes=_B(0), flags_w=STATUS_FLAGS,
            flags_must=CF | OF, byte_op=True),  # mul
        _Op(rm_r=True, reads=_B(0), writes=_B(0), flags_w=STATUS_FLAGS,
            flags_must=CF | OF, byte_op=True),  # imul
        _Op(rm_r=True, reads=_B(0), writes=_B(0), flags_w=STATUS_FLAGS,
            byte_op=True),  # div: all flags undefined
        _Op(rm_r=True, reads=_B(0), writes=_B(0), flags_w=STATUS_FLAGS,
            byte_op=True),  # idiv
    ),
    # grp3 word form: mul/imul/div/idiv use rdx:rax.
    0xF7: (
        _Op(rm_r=True, flags_w=STATUS_FLAGS, flags_must=_LOGIC),
        _Op(rm_r=True, flags_w=STATUS_FLAGS, flags_must=_LOGIC),
        _Op(rm_r=True, rm_w=True),  # not: no flags
        _Op(rm_r=True, rm_w=True, flags_w=STATUS_FLAGS, flags_must=_ARITH),
        _Op(rm_r=True, reads=_B(0), writes=_B(0) | _B(2),
            flags_w=STATUS_FLAGS, flags_must=CF | OF),  # mul
        _Op(rm_r=True, reads=_B(0), writes=_B(0) | _B(2),
            flags_w=STATUS_FLAGS, flags_must=CF | OF),  # imul
        _Op(rm_r=True, reads=_B(0) | _B(2), writes=_B(0) | _B(2),
            flags_w=STATUS_FLAGS),  # div: all flags undefined
        _Op(rm_r=True, reads=_B(0) | _B(2), writes=_B(0) | _B(2),
            flags_w=STATUS_FLAGS),  # idiv
    ),
    0xF8: _Op(flags_w=CF, flags_must=CF),  # clc
    0xF9: _Op(flags_w=CF, flags_must=CF),  # stc
    0xFC: _Op(flags_w=DF, flags_must=DF),  # cld
    0xFD: _Op(flags_w=DF, flags_must=DF),  # std
    # grp4: inc/dec rm8
    0xFE: (_Op(rm_r=True, rm_w=True, flags_w=_INCDEC, flags_must=_INCDEC,
               byte_op=True),
           _Op(rm_r=True, rm_w=True, flags_w=_INCDEC, flags_must=_INCDEC,
               byte_op=True)) + (None,) * 6,
    # grp5: inc/dec rm; call/jmp are Flow.GROUP5 (liveness stops there
    # anyway), push /6 reads its operand
    0xFF: (
        _Op(rm_r=True, rm_w=True, flags_w=_INCDEC, flags_must=_INCDEC),
        _Op(rm_r=True, rm_w=True, flags_w=_INCDEC, flags_must=_INCDEC),
        None, None, None, None,
        _Op(rm_r=True, reads=_B(_RSP), writes=_B(_RSP), kills=_B(_RSP),
            mem_stack=True, no_mem=False),  # push rm
        None,
    ),
})
_fill(_ONE, _STRING)

# mov with byte/word immediate into the byte registers never kills; the
# 32/64-bit B8+r form zero-extends and kills — encode that by resolving
# kill from operand size in facts_for (plusr_w + opsize >= 4).

# -- 0F (two-byte) opcode map ------------------------------------------------

_CMOV = _Op(rm_r=True, reg_r=True, reg_w=True, cc_uses=True)
_SETCC = _Op(rm_w=True, byte_op=True, cc_uses=True)
_BT_W = _Op(rm_r=True, rm_w=True, reg_r=True, flags_w=STATUS_FLAGS,
            flags_must=CF)

_fill(_TWO, {
    0x05: None,  # syscall: kernel-defined effects; stays unknown
    0x1F: (_Op(no_mem=True, rm_r=False),) * 8,  # multi-byte nop (any /reg)
    tuple(range(0x40, 0x50)): _CMOV,  # cmovcc
    tuple(range(0x80, 0x90)): _Op(cc_uses=True),  # jcc rel32
    tuple(range(0x90, 0xA0)): tuple(_SETCC for _ in range(8)),  # setcc
    0xA3: _Op(rm_r=True, reg_r=True, flags_w=STATUS_FLAGS,
              flags_must=CF),  # bt
    0xAB: _BT_W,  # bts
    0xAF: _Op(rm_r=True, reg_r=True, reg_w=True, flags_w=STATUS_FLAGS,
              flags_must=CF | OF),  # imul r, rm
    0xB0: _Op(rm_r=True, rm_w=True, reg_r=True, reads=_B(0), writes=_B(0),
              flags_w=STATUS_FLAGS, flags_must=_ARITH,
              byte_op=True),  # cmpxchg rm8
    0xB1: _Op(rm_r=True, rm_w=True, reg_r=True, reads=_B(0), writes=_B(0),
              flags_w=STATUS_FLAGS, flags_must=_ARITH),  # cmpxchg
    0xB3: _BT_W,  # btr
    0xB6: _Op(rm_r=True, rm_byte=True, reg_w=True),  # movzx r, rm8
    0xB7: _Op(rm_r=True, reg_w=True),  # movzx r, rm16
    0xB8: _Op(rm_r=True, reg_w=True, flags_w=STATUS_FLAGS,
              flags_must=_LOGIC),  # popcnt (with F3)
    0xBB: _BT_W,  # btc
    0xBC: _Op(rm_r=True, reg_w=True, flags_w=STATUS_FLAGS,
              flags_must=ZF),  # bsf (dst undefined on ZF=1: write, no kill)
    0xBD: _Op(rm_r=True, reg_w=True, flags_w=STATUS_FLAGS,
              flags_must=ZF),  # bsr
    0xBE: _Op(rm_r=True, rm_byte=True, reg_w=True),  # movsx r, rm8
    0xBF: _Op(rm_r=True, reg_w=True),  # movsx r, rm16
    0xC0: _Op(rm_r=True, rm_w=True, reg_r=True, reg_w=True,
              flags_w=STATUS_FLAGS, flags_must=_ARITH,
              byte_op=True),  # xadd rm8
    0xC1: _Op(rm_r=True, rm_w=True, reg_r=True, reg_w=True,
              flags_w=STATUS_FLAGS, flags_must=_ARITH),  # xadd
    tuple(range(0xC8, 0xD0)): _Op(plusr_r=True, plusr_w=True),  # bswap
})

# Opcodes whose register destinations never kill even at 32/64-bit width
# (the value is conditional or undefined on some path).
_NO_KILL_REG_W = {
    (1, op) for op in tuple(range(0x40, 0x50)) + (0xBC, 0xBD)
}


def is_endbr64(insn: Instruction) -> bool:
    """True for the CET landing-pad instruction ``endbr64`` (F3 0F 1E FA).

    The decoder classifies it under the generic two-byte fallback; the
    linter needs the precise identification because overwriting a landing
    pad breaks every indirect branch that targets it on CET hardware.
    """
    return (
        insn.opmap == 1
        and insn.opcode == 0x1E
        and insn.modrm == 0xFA
        and pfx.REP in insn.legacy_prefixes
    )


_ENDBR_FACTS = InsnFacts(known=True)  # architectural no-op


def _opsize(insn: Instruction, entry: _Op) -> int:
    if entry.byte_op:
        return 1
    if pfx.OPSIZE in insn.legacy_prefixes:
        return 2
    if insn.rex is not None and insn.rex & pfx.REX_W:
        return 8
    return 4


def _mem_regs(insn: Instruction) -> int:
    """Registers read to form a (non-rip) memory operand's address."""
    mask = 0
    base = insn.mem_base
    if base is not None:
        mask |= 1 << base
    if insn.modrm is not None and (insn.modrm & 7) == 4 and insn.sib is not None:
        index = (insn.sib >> 3) & 7
        rex_x = insn.rex is not None and insn.rex & pfx.REX_X
        if rex_x:
            index |= 8
        if index != _RSP:  # index 4 without REX.X means "no index"
            mask |= 1 << index
    return mask


def _mem_class(insn: Instruction) -> str:
    """stack / global / heap classification of a ModRM memory operand."""
    if insn.rm_kind == OperandKind.MEM_RIP:
        return "global"
    base = insn.mem_base
    if base is None:
        return "global"  # absolute disp32 (SIB, no base)
    if base in (_RSP, _RBP):
        return "stack"
    return "heap"


# REX.B 0x90 is xchg rax, r8 — emphatically not a nop.
_XCHG_AX = _Op(plusr_r=True, plusr_w=True, reads=_B(0), writes=_B(0))

#: mem_stack opcodes whose implicit stack access is a store (push forms
#: and pushfq); everything else with mem_stack reads the stack (pops).
_STACK_WRITE_OPS = frozenset(range(0x50, 0x58)) | {0x68, 0x6A, 0x9C, 0xFF}


def _gpr8(insn: Instruction, reg: int) -> int:
    """Map an 8-bit register operand number to the GPR it aliases.

    Without a REX prefix, byte-register numbers 4-7 name AH/CH/DH/BH,
    which live inside rax..rbx — reporting them as rsp..rdi would make
    the may-write set *miss* the register that actually changes.
    """
    if insn.rex is None and 4 <= reg <= 7:
        return reg - 4
    return reg


def facts_for(insn: Instruction) -> InsnFacts:
    """Resolve *insn* against the fact tables.

    Returns :data:`UNKNOWN_FACTS` (``known=False``, everything live) for
    any opcode outside the tables — VEX/EVEX encodings, the 0F38/0F3A
    maps, privileged/system opcodes — so consumers degrade conservatively
    rather than wrongly.
    """
    if insn.vex is not None:
        return UNKNOWN_FACTS
    if is_endbr64(insn):
        return _ENDBR_FACTS
    if insn.opmap == 0:
        entry = _ONE[insn.opcode]
        if (insn.opcode == 0x90 and insn.rex is not None
                and insn.rex & pfx.REX_B):
            entry = _XCHG_AX
    elif insn.opmap == 1:
        entry = _TWO[insn.opcode]
        if insn.opcode == 0xB8 and pfx.REP not in insn.legacy_prefixes:
            return UNKNOWN_FACTS  # 0F B8 is popcnt only under F3
    else:
        return UNKNOWN_FACTS
    if isinstance(entry, tuple):  # opcode group: ModRM.reg selects
        sel = insn.reg_raw
        entry = entry[sel] if sel is not None else None
    if entry is None:
        return UNKNOWN_FACTS

    opsize = _opsize(insn, entry)
    kill_width = opsize >= 4  # 32-bit writes zero-extend; 8/16-bit merge
    reads = entry.reads
    writes = entry.writes
    kills = entry.kills  # implicit kills (rsp adjusts) are always 64-bit
    mem_class: str | None = None
    mem_width = 0
    mem_read = False
    mem_write = False

    if entry.rm_r or entry.rm_w:
        if insn.modrm is None:
            return UNKNOWN_FACTS
        if insn.rm_kind == OperandKind.REG:
            rm = insn.rm
            if entry.byte_op or entry.rm_byte:
                rm = _gpr8(insn, rm)
            bit = 1 << rm
            if entry.rm_r:
                reads |= bit
            if entry.rm_w:
                writes |= bit
                if kill_width:
                    kills |= bit
        else:
            reads |= _mem_regs(insn)
            mem_class = _mem_class(insn)
            mem_width = 1 if entry.rm_byte else opsize
            mem_read = entry.rm_r
            mem_write = entry.rm_w
    elif entry.no_mem and insn.modrm is not None:
        # Address-only operand (lea, long nop): base/index registers are
        # read to little effect, memory is never touched.
        if insn.rm_kind == OperandKind.MEM:
            reads |= _mem_regs(insn)

    if entry.reg_r or entry.reg_w:
        if insn.modrm is None:
            return UNKNOWN_FACTS
        reg = insn.reg
        if entry.byte_op:
            reg = _gpr8(insn, reg)
        bit = 1 << reg
        if entry.reg_r:
            reads |= bit
        if entry.reg_w:
            writes |= bit
            if kill_width and (insn.opmap, insn.opcode) not in _NO_KILL_REG_W:
                kills |= bit

    if entry.plusr_r or entry.plusr_w:
        reg = insn.opcode & 7
        if insn.rex is not None and insn.rex & pfx.REX_B:
            reg |= 8
        if entry.byte_op:
            reg = _gpr8(insn, reg)
        bit = 1 << reg
        if entry.plusr_r:
            reads |= bit
        if entry.plusr_w:
            writes |= bit
            if kill_width:
                kills |= bit

    flags_r = entry.flags_r
    if entry.cc_uses:
        flags_r |= CC_FLAGS[insn.opcode & 0xF]

    if entry.string_op:
        # String steps use rsi/rdi width-8 pointers; a REP/REPNE prefix
        # adds the rcx counter (read and written, never killed: cmps/scas
        # may stop early at a data-dependent count).
        if (pfx.REP in insn.legacy_prefixes
                or pfx.REPNE in insn.legacy_prefixes):
            reads |= _B(1)
            writes |= _B(1)
        op = insn.opcode
        mem_class = "heap"  # pointer-typed rsi/rdi: unclassifiable target
        mem_width = opsize
        mem_write = op in (0xA4, 0xA5, 0xAA, 0xAB)  # movs / stos store
        mem_read = op not in (0xAA, 0xAB)  # everything but stos loads
    elif entry.mem_stack and mem_class is None:
        mem_class = "stack"
        mem_width = 8
        mem_write = insn.opcode in _STACK_WRITE_OPS
        mem_read = not mem_write
    elif insn.opmap == 0 and 0xA0 <= insn.opcode <= 0xA3:
        mem_class = "global"  # moffs absolute address
        mem_width = opsize
        mem_write = insn.opcode >= 0xA2
        mem_read = not mem_write

    return InsnFacts(
        known=True,
        regs_read=reads,
        regs_written=writes,
        regs_killed=kills,
        flags_read=flags_r,
        flags_written=entry.flags_w,
        flags_killed=entry.flags_must,
        mem_class=mem_class,
        mem_width=mem_width,
        mem_read=mem_read,
        mem_write=mem_write,
    )
