"""Static analyses over decoded instruction streams.

Three layers, each feeding the next:

* :mod:`repro.analysis.facts` — a semantic-fact engine: dense
  precompiled per-opcode tables resolving every decoded instruction to
  the registers it reads/writes/kills, the flags it uses/defines, and
  its memory-access class, with an explicit ``known`` bit so every
  consumer can stay conservative on gaps;
* :mod:`repro.analysis.liveness` — conservative backward liveness over
  the fact stream (any unknown control flow = everything live), whose
  dead-register/dead-flag answers let trampoline bodies shrink their
  save/restore sets (``RewriteOptions(liveness=True)``);
* :mod:`repro.analysis.lint` — a rewrite-plan linter that statically
  re-derives the invariants of an emitted rewrite (``repro lint``,
  :class:`~repro.analysis.lint.LintPass`).

See ``docs/ANALYSIS.md``.
"""

from repro.analysis.facts import InsnFacts, facts_for, is_endbr64
from repro.analysis.liveness import LivenessAnalysis, SiteLiveness

__all__ = [
    "InsnFacts",
    "facts_for",
    "is_endbr64",
    "LivenessAnalysis",
    "SiteLiveness",
    "Finding",
    "LintPass",
    "LintReport",
    "lint_context",
]

_LINT_EXPORTS = ("Finding", "LintPass", "LintReport", "lint_context")


def __getattr__(name: str):
    # The lint layer imports repro.core (which imports the fact engine);
    # loading it lazily keeps ``repro.core.trampoline -> repro.analysis``
    # acyclic while preserving ``from repro.analysis import LintPass``.
    if name in _LINT_EXPORTS:
        from repro.analysis import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
