"""Conservative backward liveness over linearly decoded regions.

The rewriter's trampolines save and restore every scratch register plus
the flags because, without control-flow recovery, nothing is known about
what the interrupted code still needs.  This pass recovers exactly
enough to shrink those saves: for each instruction address, the set of
registers and flags whose *current* value may still be consumed before
being overwritten.  Anything provably dead at a patch site is free real
estate for the instrumentation body.

Soundness over precision, in three layers:

* per-instruction facts come from :mod:`repro.analysis.facts`, whose
  unknown fallback reads everything and kills nothing — an unknown
  instruction therefore forces everything live across it;
* control flow is resolved only where it is syntactically certain:
  straight-line fall-through, direct ``jmp``, and the two-successor
  union for ``jcc``/``loop``.  Every other flow (``call``, ``ret``,
  indirect branches, ``syscall``, decode gaps) feeds the ⊤ live-out —
  *everything live* — exactly like E9Patch's own no-CFG stance;
* the fixpoint iterates **downward from ⊤** (all live) for a bounded
  number of reverse passes.  Each update recomputes a live-in from
  successor live-ins that over-approximate the least fixpoint, so every
  intermediate state also over-approximates it: stopping after any
  number of passes is sound, only precision is lost.  Two passes settle
  acyclic fall-through chains (one to seed, one to propagate across
  backward jumps); loops simply stay at ⊤, which is correct.

Results are exposed per address through :meth:`LivenessAnalysis.at`, and
the whole analysis is lazy: constructing one costs nothing until the
first query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.facts import (
    ALL_FLAGS,
    ALL_REGS,
    facts_for,
    flag_mask_names,
    reg_mask_names,
)
from repro.x86.insn import Instruction
from repro.x86.tables import Flow

__all__ = ["LivenessAnalysis", "SiteLiveness"]

#: Number of reverse sweeps.  One pass settles pure fall-through; the
#: second tightens across resolved backward branches.  More passes only
#: refine loop bodies, which our conservative ⊤ join keeps live anyway.
_DEFAULT_PASSES = 2


@dataclass(frozen=True)
class SiteLiveness:
    """Live-in masks at one instruction address.

    ``live_regs``/``live_flags`` are may-live: a set bit means the value
    *might* still be needed.  The complementary ``dead_*`` masks are the
    actionable ones — a dead register may be clobbered without saving.
    """

    address: int
    live_regs: int = ALL_REGS
    live_flags: int = ALL_FLAGS

    @property
    def dead_regs(self) -> int:
        return ALL_REGS & ~self.live_regs

    @property
    def dead_flags(self) -> int:
        return ALL_FLAGS & ~self.live_flags

    def reg_is_dead(self, reg: int) -> bool:
        return not self.live_regs >> reg & 1

    def flags_are_dead(self, mask: int) -> bool:
        """True when every flag in *mask* is provably dead."""
        return not self.live_flags & mask

    def describe(self) -> str:
        regs = reg_mask_names(self.dead_regs) or ["-"]
        flags = flag_mask_names(self.dead_flags) or ["-"]
        return (f"dead regs: {', '.join(regs)}; "
                f"dead flags: {', '.join(flags)}")


#: The ⊤ answer handed out for addresses outside the analyzed region.
_TOP = SiteLiveness(address=0)


class LivenessAnalysis:
    """Backward liveness over one decoded instruction sequence.

    The instruction list is the decoder's linear output for a region;
    instructions must be address-sorted (the decoder guarantees this).
    The fixpoint arrays are computed lazily on the first :meth:`at`.
    """

    def __init__(self, instructions: list[Instruction],
                 passes: int = _DEFAULT_PASSES) -> None:
        self._instructions = instructions
        self._passes = passes
        self._live: dict[int, tuple[int, int]] | None = None

    # -- queries -----------------------------------------------------------

    def at(self, address: int) -> SiteLiveness:
        """Live-in masks at *address* (⊤ for unanalyzed addresses)."""
        if self._live is None:
            self._live = self._solve()
        masks = self._live.get(address)
        if masks is None:
            return SiteLiveness(address=address)
        return SiteLiveness(address=address, live_regs=masks[0],
                            live_flags=masks[1])

    # -- fixpoint ----------------------------------------------------------

    def _solve(self) -> dict[int, tuple[int, int]]:
        insns = self._instructions
        n = len(insns)
        if n == 0:
            return {}

        index_of = {insn.address: i for i, insn in enumerate(insns)}
        facts = [facts_for(insn) for insn in insns]

        # Successor shape per instruction, precomputed once:
        #   None          -> ⊤ live-out (unknown / unresolved flow)
        #   (i,)          -> single successor index
        #   (i, j)        -> jcc/loop: union of both successor live-ins
        succs: list[tuple[int, ...] | None] = [None] * n
        for i, insn in enumerate(insns):
            flow = insn.flow
            if flow == Flow.NONE:
                nxt = index_of.get(insn.end)
                succs[i] = None if nxt is None else (nxt,)
            elif flow == Flow.JMP:
                tgt = index_of.get(insn.target)
                succs[i] = None if tgt is None else (tgt,)
            elif flow in (Flow.JCC, Flow.LOOP):
                nxt = index_of.get(insn.end)
                tgt = index_of.get(insn.target)
                if nxt is None or tgt is None:
                    succs[i] = None
                else:
                    succs[i] = (nxt, tgt)
            # CALL / RET / GROUP5 / SYSCALL / INT3 / INT / HLT: leave None.

        live_regs = [ALL_REGS] * n
        live_flags = [ALL_FLAGS] * n
        for _ in range(self._passes):
            changed = False
            for i in range(n - 1, -1, -1):
                succ = succs[i]
                if succ is None:
                    out_regs, out_flags = ALL_REGS, ALL_FLAGS
                else:
                    out_regs = out_flags = 0
                    for s in succ:
                        out_regs |= live_regs[s]
                        out_flags |= live_flags[s]
                f = facts[i]
                in_regs = (out_regs & ~f.regs_killed) | f.regs_read
                in_flags = (out_flags & ~f.flags_killed) | f.flags_read
                if in_regs != live_regs[i] or in_flags != live_flags[i]:
                    live_regs[i] = in_regs
                    live_flags[i] = in_flags
                    changed = True
            if not changed:
                break

        return {
            insn.address: (live_regs[i], live_flags[i])
            for i, insn in enumerate(insns)
        }
