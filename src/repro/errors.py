"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so that
callers can catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DecodeError(ReproError):
    """An instruction could not be decoded at the given offset."""

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"{message} (at offset {offset:#x})"
        super().__init__(message)
        self.offset = offset


class EncodeError(ReproError):
    """An instruction could not be encoded with the given operands."""


class ElfError(ReproError):
    """An ELF file is malformed or unsupported."""


class PatchError(ReproError):
    """A patch operation could not be applied."""


class AllocationError(PatchError):
    """No trampoline address satisfying the pun constraints is available."""


class LockViolation(PatchError):
    """A tactic attempted to modify a locked byte."""


class VmError(ReproError):
    """The VM encountered an unrecoverable condition."""


class VmFault(VmError):
    """A memory access fault inside the VM (unmapped page / bad permission)."""

    def __init__(self, message: str, address: int | None = None) -> None:
        if address is not None:
            message = f"{message} (address {address:#x})"
        super().__init__(message)
        self.address = address
