"""Vectorized linear-sweep decode: dense tables, zero-copy streams, chunking.

The scalar :func:`repro.x86.decoder.decode` fast path costs ~400 ns per
instruction in attribute and tuple traffic alone — fine for one binary,
hopeless for the browser-scale (50–100 MB) text sections E9Patch brags
about.  This module rebuilds bulk decoding around three observations:

1. **Instruction length is a pure, local function of the bytes.**  For
   every offset ``i`` the total length ``L[i]`` (and a small set of
   *candidate bits* — could this be a jump / call / memory write?)
   depends only on ``data[i : i+21]``.  So lengths for *all* offsets can
   be computed at once with flat precompiled uint16 fact tables
   (:func:`_pack` over the decoder's dense ``_D1``/``_D2`` maps) and
   NumPy uint8 arithmetic — no per-instruction Python at all.

2. **The instruction *chain* is a pointer jungle over those lengths.**
   ``next[i] = i + max(L[i], 1)`` is composed in O(log) doubling steps
   (``n16 = next^16``); a Python loop then touches only every 16th
   instruction (the *anchors*) and the intervening 15 starts are filled
   by vectorized gathers.  Work is windowed (2 MB) so the dozens of
   temporaries stay cache-resident.

3. **Linear sweep self-synchronizes.**  Chunks decoded independently
   from conservative boundaries converge to the true stream after a few
   instructions, so large buffers can be scanned by
   :class:`~repro.core.parallel.BatchExecutor` workers and spliced back
   with a boundary-reconciliation pass (see :func:`_decode_chunked`).

The result is an :class:`InstructionStream`: a lazy, zero-copy sequence
of instruction *positions* that materializes real
:class:`~repro.x86.insn.Instruction` objects (via the scalar decoder —
the single source of truth) only when consumers index into it.  Byte
identity with ``decode_buffer``/``decode_reference`` is therefore
structural: every materialized object *is* a scalar-decoder object, and
the vectorized part only ever computes *where instructions start*, which
is differentially tested against the scalar walk at every offset.

Everything degrades gracefully: without NumPy (or below a size floor)
:func:`decode_stream` falls back to the scalar sweep and returns the
same stream type with the same semantics.
"""

from __future__ import annotations

import bisect
from array import array
from typing import Callable, Iterable, Sequence

from repro.errors import DecodeError
from repro.x86 import decoder as _dec
from repro.x86 import prefixes as _pfx
from repro.x86.decoder import MAX_INSN_LEN, decode, decode_buffer
from repro.x86.insn import Instruction
from repro.x86.tables import (
    F_GROUP_WRITE,
    F_INVALID64,
    F_STRING_WRITE,
    F_WRITES_RM,
)

try:  # NumPy is an optional accelerator (the ``perf`` extra), never required.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on stdlib-only hosts
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "HAVE_NUMPY",
    "InstructionStream",
    "decode_stream",
]

# Candidate/validity bits kept per instruction start.  The JUMP/CALL/
# WRITE bits are conservative *supersets* of the frontend matchers (see
# InstructionStream.select): vectorized selection may only ever
# over-approximate, the exact Python predicate always runs last.
SB_JUMP = 1  # Flow.JMP / Flow.JCC
SB_CALL = 2  # Flow.CALL (direct rel32 call)
SB_WRITE = 4  # may write memory (modrm store, group store, string store)
SB_VALID = 8  # position decodes (not a "(bad)" byte)

#: Sentinel length for VEX/EVEX-prefixed positions: the dense scan only
#: classifies the three escape bytes; the scalar decoder resolves them.
_VEX_SENTINEL = 255

#: Real-byte lookahead a window scan needs so every position < window end
#: is computed exactly as in a whole-buffer scan.  A *valid* instruction
#: reads at most 15 bytes; longer speculative gathers only feed lengths
#: that exceed 15 and are invalidated regardless of the garbage read.
_LOOKAHEAD = 18

_WINDOW = 1 << 21  # scan window: big enough to amortize, small enough to cache
_MIN_VECTOR = 4096  # below this the numpy fixed costs beat the scalar loop
_CHUNK_THRESHOLD = 8 << 20  # don't fan out buffers smaller than this
_MIN_CHUNK = 1 << 20  # never ship chunks smaller than this to a worker


# ---------------------------------------------------------------------------
# Dense fact tables, precompiled once at import.
# ---------------------------------------------------------------------------


def _pack(entry) -> int:
    """Pack one decoder table entry into the uint16 scan fact word.

    Layout: ``imm_code`` (bits 0-3) | ``has_modrm`` (4) | ``invalid``
    (5) | ``may_write_rm`` (6) | ``string_write`` (7) | ``flow`` (8-11).
    ``may_write_rm`` folds ``F_GROUP_WRITE`` in unconditionally — the
    scan cannot see modrm.reg cheaply, and a superset is all the
    candidate bits promise.
    """
    if entry is None or (entry[4] & F_INVALID64):
        return 1 << 5
    flags = entry[4]
    packed = entry[2] & 15
    if entry[1]:
        packed |= 1 << 4
    if flags & (F_WRITES_RM | F_GROUP_WRITE):
        packed |= 1 << 6
    if flags & F_STRING_WRITE:
        packed |= 1 << 7
    return packed | (entry[3].value << 8)


if HAVE_NUMPY:
    _LUT0 = _np.array([_pack(_dec._D1[op]) for op in range(256)], _np.uint16)
    _LUT1 = _np.array([_pack(_dec._D2[op]) for op in range(256)], _np.uint16)
    _C38 = _np.uint16(_pack(_dec._E38))
    _C3A = _np.uint16(_pack(_dec._E3A))
    _PFXB = sorted(_pfx.LEGACY_PREFIXES)


def _cand_of(insn: Instruction) -> int:
    """Candidate bits of a scalar-decoded instruction (VEX resolution)."""
    bits = 0
    flow = insn.flow.value
    if flow == 1 or flow == 2:
        bits |= SB_JUMP
    elif flow == 3:
        bits |= SB_CALL
    if insn.writes_rm or insn.string_write:
        bits |= SB_WRITE
    return bits


# ---------------------------------------------------------------------------
# The vectorized scan: lengths + candidate bits for *every* offset.
# ---------------------------------------------------------------------------


def _scan(buf):
    """Per-offset lengths and candidate bits over *buf*.

    Returns ``(L, cand)`` uint8 arrays of ``len(buf)``: ``L[i]`` is the
    instruction length decoding at ``i`` (0 = invalid byte,
    ``_VEX_SENTINEL`` = VEX/EVEX — resolve with the scalar decoder),
    ``cand[i]`` the SB_* candidate bits (0 unless ``L[i]`` is valid).

    Truncation is judged against ``len(buf)``; callers scanning a window
    of a larger buffer must extend the slice by ``_LOOKAHEAD`` real
    bytes and keep only the window-sized prefix of the result.
    """
    n = len(buf)
    pad = 24
    BP = _np.zeros(n + 40, _np.uint8)
    BP[:n] = _np.frombuffer(buf, _np.uint8)
    B = [BP[s : s + n] for s in range(8)]
    B0 = B[0]

    # Legacy-prefix run length via doubling: r[i] = min(run at i, 16).
    P = B0 == _PFXB[0]
    for v in _PFXB[1:]:
        P |= B0 == v
    Pn = _np.zeros(n + pad, _np.uint8)
    Pn[:n] = P
    r = Pn.copy()
    for k in (1, 2, 4, 8):
        r[: n + pad - k] += (r[: n + pad - k] == k) * r[k:]
    npfx = r[:n]
    haspfx = P

    # Common path (no legacy prefixes): pure uint8 blends, no gathers.
    isrex = (B0 >= 0x40) & (B0 < 0x50)
    rex8 = isrex.view(_np.uint8)
    nrex8 = rex8 ^ 1
    bk = B0 * nrex8 + B[1] * rex8
    is0f = bk == 0x0F
    b2 = B[1] * nrex8 + B[2] * rex8
    is38 = is0f & (b2 == 0x38)
    is3a = is0f & (b2 == 0x3A)
    esc3 = (is38 | is3a).view(_np.uint8)
    is0f8 = is0f.view(_np.uint8)
    is2 = is0f8 & (esc3 ^ 1)

    F = _LUT0[bk]
    F1 = _LUT1[b2]
    not0f = (is0f8 ^ 1).astype(_np.uint16)
    F = (
        F * not0f
        + F1 * is2.astype(_np.uint16)
        + _C38 * is38.view(_np.uint8).astype(_np.uint16)
        + _C3A * is3a.view(_np.uint8).astype(_np.uint16)
    )

    ic = (F & 15).astype(_np.uint8)
    hasmod = ((F >> 4) & 1).astype(_np.uint8)
    inv = ((F >> 5) & 1).astype(_np.uint8)
    wrm = ((F >> 6) & 1).astype(_np.uint8)
    strw = ((F >> 7) & 1).astype(_np.uint8)
    flw = (F >> 8).astype(_np.uint8) & 15

    nop = 1 + is0f8 + esc3  # opcode bytes: 1..3
    mrel = rex8 + nop  # modrm offset from the first byte: 1..4
    e1 = (mrel == 1).view(_np.uint8)
    e2 = (mrel == 2).view(_np.uint8)
    e3 = (mrel == 3).view(_np.uint8)
    e4 = (mrel == 4).view(_np.uint8)
    mb = B[1] * e1 + B[2] * e2 + B[3] * e3 + B[4] * e4
    sibb = B[2] * e1 + B[3] * e2 + B[4] * e3 + B[5] * e4
    mod = mb >> 6
    rm = mb & 7
    mem = hasmod & (mod != 3).view(_np.uint8)
    hassib = mem & (rm == 4).view(_np.uint8)
    d4 = mem & (
        ((mod == 2) | ((mod == 0) & ((rm == 5) | ((rm == 4) & ((sibb & 7) == 5))))).view(
            _np.uint8
        )
    )
    d1 = mem & (mod == 1).view(_np.uint8)
    disp = d1 + d4 * 4

    rexw = rex8 & ((B0 & 0x08) != 0).view(_np.uint8)
    modreg = (mb >> 3) & 7
    # imm length; common path has no 66/67 so z=4, moffs=8.
    ilen = ((ic == 1) | (ic == 6)).view(_np.uint8)
    ilen += ((ic == 2).view(_np.uint8)) * 2
    ilen += (((ic == 3) | (ic == 7)).view(_np.uint8)) * 4
    ilen += ((ic == 4).view(_np.uint8)) * (4 + 4 * rexw)
    ilen += ((ic == 5).view(_np.uint8)) * 3
    ilen += ((ic == 8).view(_np.uint8)) * 8
    g3 = ((ic == 9).view(_np.uint8)) & hasmod & ((modreg < 2).view(_np.uint8))
    ilen += g3 * (1 + 3 * ((bk != 0xF6).view(_np.uint8)))

    L = rex8 + nop + hasmod + hassib + disp + ilen
    isvex = (B0 == 0xC4) | (B0 == 0xC5) | (B0 == 0x62)
    ok = (inv ^ 1) & ((isvex | haspfx).view(_np.uint8) ^ 1)
    L = L * ok
    cand = ((flw == 1) | (flw == 2)).view(_np.uint8)
    cand += (flw == 3).view(_np.uint8) * 2
    cand += (strw | (wrm & mem)) * 4
    cand = cand * ok
    L += isvex.view(_np.uint8) * _VEX_SENTINEL  # prefix positions fixed below

    # Sparse fixup: positions that start with legacy prefixes (~0-10 %).
    pf = _np.nonzero(haspfx)[0]
    if len(pf):
        npfxp = npfx[pf].astype(_np.int64)
        # 66/67 presence inside each run: doubling with carry.  Sound
        # because the terminating byte of a run is a non-prefix byte and
        # can therefore never equal 0x66/0x67 itself.
        g66 = _np.zeros(n + pad, _np.uint8)
        g66[:n] = B0 == 0x66
        g67 = _np.zeros(n + pad, _np.uint8)
        g67[:n] = B0 == 0x67
        rr = Pn.copy()
        for k in (1, 2, 4, 8):
            cont = (rr[: n + pad - k] == k).view(_np.uint8)
            g66[: n + pad - k] |= cont * g66[k:]
            g67[: n + pad - k] |= cont * g67[k:]
            rr[: n + pad - k] += cont * rr[k:]
        j = pf + npfxp
        opsz = g66[pf].astype(bool)
        adsz = g67[pf].astype(bool)
        bjp = BP[j]
        isrexp = (bjp >= 0x40) & (bjp < 0x50)
        rexp = isrexp.astype(_np.int64)
        kp = j + rexp
        bkp = BP[kp]
        is0fp = bkp == 0x0F
        b2p = BP[kp + 1]
        is38p = is0fp & (b2p == 0x38)
        is3ap = is0fp & (b2p == 0x3A)
        nopp = 1 + is0fp.astype(_np.int64) + (is38p | is3ap).astype(_np.int64)
        Fp = _np.where(
            is0fp,
            _np.where(is38p, _C38, _np.where(is3ap, _C3A, _LUT1[b2p])),
            _LUT0[bkp],
        )
        icp = (Fp & 15).astype(_np.uint8)
        hasmodp = ((Fp >> 4) & 1).astype(_np.int64)
        invp = ((Fp >> 5) & 1).astype(bool)
        wrmp = ((Fp >> 6) & 1).astype(bool)
        strwp = ((Fp >> 7) & 1).astype(bool)
        flwp = (Fp >> 8) & 15
        mp = kp + nopp
        mbp = BP[mp]
        modp = mbp >> 6
        rmp = mbp & 7
        memp = (hasmodp == 1) & (modp != 3)
        sibp = memp & (rmp == 4)
        sibbp = BP[mp + 1]
        dispp = _np.where(
            memp,
            _np.where(
                modp == 1,
                1,
                _np.where(
                    modp == 2,
                    4,
                    _np.where(
                        rmp == 5,
                        4,
                        _np.where((rmp == 4) & ((sibbp & 7) == 5), 4, 0),
                    ),
                ),
            ),
            0,
        ).astype(_np.int64)
        rexwp = isrexp & ((bjp & 8) != 0)
        modregp = (mbp >> 3) & 7
        zl = _np.where(opsz, 2, 4).astype(_np.int64)
        ilenp = _np.zeros(len(pf), _np.int64)
        ilenp = _np.where((icp == 1) | (icp == 6), 1, ilenp)
        ilenp = _np.where(icp == 2, 2, ilenp)
        ilenp = _np.where((icp == 3) | (icp == 7), zl, ilenp)
        ilenp = _np.where(icp == 4, _np.where(rexwp, 8, zl), ilenp)
        ilenp = _np.where(icp == 5, 3, ilenp)
        ilenp = _np.where(icp == 8, _np.where(adsz, 4, 8), ilenp)
        g3p = (icp == 9) & (hasmodp == 1) & (modregp < 2)
        ilenp = _np.where(g3p, _np.where(bkp == 0xF6, 1, zl), ilenp)
        Lp = npfxp + rexp + nopp + hasmodp + sibp.astype(_np.int64) + dispp + ilenp
        vexp = ~isrexp & ((bjp == 0xC4) | (bjp == 0xC5) | (bjp == 0x62))
        okp = ~invp & ~vexp & (Lp <= 15)
        candp = ((flwp == 1) | (flwp == 2)).astype(_np.uint8)
        candp += (flwp == 3).astype(_np.uint8) * 2
        candp += (strwp | (wrmp & memp)).astype(_np.uint8) * 4
        Lp = _np.where(okp, Lp, 0)
        Lp = _np.where(vexp, _VEX_SENTINEL, Lp)
        L[pf] = Lp.astype(_np.uint8)
        cand[pf] = _np.where(okp, candp, 0)

    # Tail truncation: only the last 16 positions can run off the end.
    t0 = max(0, n - 16)
    Lt = L[t0:].astype(_np.int64)
    idxt = _np.arange(t0, n)
    bad = (Lt != _VEX_SENTINEL) & (idxt + Lt > n)
    L[t0:][bad] = 0
    cand[t0:][bad] = 0
    # The common-path sum can reach 18; anything over 15 is invalid.
    over = (L > 15) & (L != _VEX_SENTINEL)
    L[over] = 0
    cand[over] = 0
    return L, cand


# ---------------------------------------------------------------------------
# Fused scan + pointer-jump walk (windowed).
# ---------------------------------------------------------------------------


def _vector_walk(buf, stop: int, entry: int):
    """Walk the instruction chain of ``buf[:stop]`` starting at *entry*.

    *buf* may extend past *stop* (chunk overhang); those bytes feed the
    scan's lookahead only.  Returns ``(starts, mbits, exit)``: int32
    start offsets in ``[entry, stop)``, their uint8 SB_* bits, and the
    first chain offset ``>= stop``.
    """
    nbuf = len(buf)
    mv = memoryview(buf)
    parts_s = []
    parts_m = []
    pos = entry
    lo = 0
    while lo < stop:
        hi = min(stop, lo + _WINDOW)
        if pos >= hi:  # an instruction straddles this whole window
            lo = hi
            continue
        wn = hi - lo
        ext = min(nbuf, hi + _LOOKAHEAD)
        L, cand = _scan(mv[lo:ext])
        L = L[:wn]
        cand = cand[:wn]
        sent = _np.nonzero(L == _VEX_SENTINEL)[0]
        if len(sent):
            # VEX/EVEX positions: resolve against the real buffer so
            # truncation at the true end is judged exactly.
            for i in sent.tolist():
                try:
                    insn = decode(buf, lo + i)
                except DecodeError:
                    L[i] = 0
                    cand[i] = 0
                else:
                    L[i] = insn._len
                    cand[i] = _cand_of(insn)
        step = _np.maximum(L, 1).astype(_np.int32)
        nxt = _np.arange(wn + 24, dtype=_np.int32)
        nxt[:wn] += step
        # nxt is the identity past wn: composed pointers stall there, so
        # every chain position >= wn maps to itself (the window exit).
        n2 = nxt[nxt]
        n4 = n2[n2]
        n8 = n4[n4]
        n16 = n8[n8]
        off = pos - lo
        anchors = []
        aap = anchors.append
        jump16 = n16.item
        while off < wn:
            aap(off)
            off = jump16(off)
        A = _np.array(anchors, _np.int32)
        cols = _np.empty((16, len(A)), _np.int32)
        cols[0] = A
        cur = A
        for j in range(1, 16):
            cur = nxt[cur]
            cols[j] = cur
        starts = cols.T.ravel()
        end = int(_np.searchsorted(starts, wn))
        starts = starts[:end]
        parts_s.append(starts + lo)
        valid = (L[starts] > 0).view(_np.uint8) * _np.uint8(SB_VALID)
        parts_m.append(cand[starts] | valid)
        last = int(starts[-1])
        pos = lo + last + int(step[last])
        lo = hi
    if parts_s:
        return _np.concatenate(parts_s), _np.concatenate(parts_m), pos
    return _np.empty(0, _np.int32), _np.empty(0, _np.uint8), pos


def _scalar_bits(buf, off: int):
    """``(step, mbits)`` at *off*, exactly as the vectorized sweep sees it.

    Used by seam reconciliation so a spliced stream is bit-identical to
    the serial one: the 40-byte slice reproduces the window scan's view
    of this position (same lookahead, same truncation judgement).
    """
    end = min(len(buf), off + _LOOKAHEAD + 24)
    L, cand = _scan(memoryview(buf)[off:end])
    ln = int(L[0])
    if ln == _VEX_SENTINEL:
        try:
            insn = decode(buf, off)
        except DecodeError:
            return 1, 0
        return insn._len, _cand_of(insn) | SB_VALID
    if ln == 0:
        return 1, 0
    return ln, int(cand[0]) | SB_VALID


# ---------------------------------------------------------------------------
# Chunked parallel decode with boundary reconciliation.
# ---------------------------------------------------------------------------

#: ``endbr64`` — the IBT landing pad CET compilers plant at every
#: indirectly-reachable function entry.  (Defined locally: repro.x86 is
#: a leaf package and must not import repro.elf.)
_ENDBR64 = b"\xf3\x0f\x1e\xfa"

#: How far past a chunk boundary to look for an ``endbr64`` anchor.
_ENDBR_SNAP_WINDOW = 4096


def _snap_spans_to_endbr(mv, spans):
    """Snap interior chunk boundaries forward to the next ``endbr64``.

    CET binaries plant ``endbr64`` (f3 0f 1e fa) at function entries, so
    the pattern almost always sits on a true instruction start.  A chunk
    whose base is such an anchor agrees with the carried chain
    immediately and its seam reconciles in zero scalar steps.  This is
    placement only — reconciliation still verifies every seam against
    the true chain, so an anchor that is really immediate data costs a
    few ``reconcile_retries`` but never correctness.

    Returns ``(spans, snapped)`` where *snapped* counts moved
    boundaries.
    """
    if len(spans) <= 1:
        return spans, 0
    bounds = [b for b, _ in spans] + [spans[-1][1]]
    snapped = 0
    for i in range(1, len(bounds) - 1):
        b = bounds[i]
        limit = min(bounds[i + 1], b + _ENDBR_SNAP_WINDOW)
        hit = bytes(mv[b:limit]).find(_ENDBR64)
        if hit > 0 and bounds[i - 1] < b + hit < bounds[i + 1]:
            bounds[i] = b + hit
            snapped += 1
    return list(zip(bounds[:-1], bounds[1:])), snapped


def _scan_chunk(payload):
    """Worker: scan one chunk (core + overhang bytes) from its base."""
    blob, core = payload
    starts, mbits, exit_off = _vector_walk(blob, core, 0)
    return starts.tobytes(), mbits.tobytes(), exit_off


def _decode_chunked(buf, address: int, executor, chunk_size: int):
    """Decode *buf* as parallel chunks, splicing at reconciled seams.

    Each chunk is scanned from its base — a conservative candidate
    boundary, not necessarily a true instruction start.  Reconciliation
    walks the true chain (carried from chunk to chunk) forward with
    scalar steps until it lands on a start the worker also produced;
    from that point on the streams are provably identical, because the
    length at an offset is a pure function of ``(buf, offset)``.  The
    scalar steps are counted as ``reconcile_retries``.
    """
    from repro.core.parallel import chunk_spans

    n = len(buf)
    mv = memoryview(buf)
    spans, snapped = _snap_spans_to_endbr(mv, chunk_spans(n, chunk_size))
    payloads = [
        (bytes(mv[base : min(n, hi + MAX_INSN_LEN - 1)]), hi - base)
        for base, hi in spans
    ]
    if executor is not None:
        results = executor.map(_scan_chunk, payloads)
    else:
        results = [_scan_chunk(p) for p in payloads]

    parts_s = []
    parts_m = []
    pend_s: list[int] = []
    pend_m: list[int] = []

    def flush():
        if pend_s:
            parts_s.append(_np.array(pend_s, _np.int32))
            parts_m.append(_np.array(pend_m, _np.uint8))
            pend_s.clear()
            pend_m.clear()

    retries = 0
    cursor = 0
    for (base, hi), (sblob, mblob, exit_rel) in zip(spans, results):
        if cursor >= hi:  # true chain already carried past this chunk
            continue
        s = _np.frombuffer(sblob, _np.int32)
        m = _np.frombuffer(mblob, _np.uint8)
        core = hi - base
        rel = cursor - base
        synced = -1
        while rel < core:
            k = int(_np.searchsorted(s, rel))
            if k < len(s) and int(s[k]) == rel:
                synced = k
                break
            step, bits = _scalar_bits(buf, cursor)
            pend_s.append(cursor)
            pend_m.append(bits)
            retries += 1
            cursor += step
            rel = cursor - base
        if synced < 0:
            continue
        flush()
        parts_s.append(s[synced:] + base)
        parts_m.append(m[synced:])
        cursor = base + exit_rel
    flush()
    if parts_s:
        starts = _np.concatenate(parts_s)
        mbits = _np.concatenate(parts_m)
    else:
        starts = _np.empty(0, _np.int32)
        mbits = _np.empty(0, _np.uint8)
    return InstructionStream(
        buf,
        address,
        starts,
        mbits,
        chunks=len(spans),
        reconcile_retries=retries,
        endbr_snaps=snapped,
    )


# ---------------------------------------------------------------------------
# The lazy instruction stream.
# ---------------------------------------------------------------------------

_MATCHER_BITS = None


def _matcher_bit(fn) -> int | None:
    """SB_* candidate bit for a known frontend matcher, else None."""
    global _MATCHER_BITS
    if _MATCHER_BITS is None:
        from repro.frontend import matchers as _m

        _MATCHER_BITS = {
            _m.match_all: SB_VALID,
            _m.match_jumps: SB_JUMP,
            _m.match_calls: SB_CALL,
            _m.match_heap_writes: SB_WRITE,
        }
    return _MATCHER_BITS.get(fn)


class InstructionStream(Sequence):
    """Lazy, zero-copy sequence of decoded instructions.

    Holds one shared buffer plus per-instruction start offsets and
    candidate bits; ``stream[i]`` materializes an
    :class:`~repro.x86.insn.Instruction` through the scalar decoder on
    first access (memoized).  Iteration therefore yields exactly what
    :func:`~repro.x86.decoder.decode_buffer` would return for the same
    bytes — the stream only precomputes *where* instructions start.
    """

    __slots__ = (
        "_buf",
        "address",
        "_starts",
        "_mbits",
        "_cache",
        "chunks",
        "reconcile_retries",
        "endbr_snaps",
    )

    def __init__(
        self,
        buf,
        address: int,
        starts,
        mbits,
        *,
        chunks: int = 1,
        reconcile_retries: int = 0,
        endbr_snaps: int = 0,
    ) -> None:
        self._buf = buf
        self.address = address
        self._starts = starts
        self._mbits = mbits
        self._cache: dict[int, Instruction] = {}
        self.chunks = chunks
        self.reconcile_retries = reconcile_retries
        self.endbr_snaps = endbr_snaps

    # -- sizing ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def total_bytes(self) -> int:
        """Bytes covered by the stream (the decoded region's size)."""
        return len(self._buf)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<InstructionStream {len(self)} insns / {self.total_bytes} B "
            f"@ {self.address:#x} chunks={self.chunks}>"
        )

    # -- element access --------------------------------------------------

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self._starts)))]
        n = len(self._starts)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError("instruction index out of range")
        insn = self._cache.get(i)
        if insn is None:
            insn = self._materialize(i)
            self._cache[i] = insn
        return insn

    def _materialize(self, i: int) -> Instruction:
        off = int(self._starts[i])
        if self._mbits[i] & SB_VALID:
            return decode(self._buf, off, self.address + off)
        return Instruction(
            raw=bytes(self._buf[off : off + 1]),
            mnemonic="(bad)",
            address=self.address + off,
        )

    def __iter__(self):
        for i in range(len(self._starts)):
            yield self[i]

    # -- bulk accessors (the reason this type exists) --------------------

    def addresses_list(self) -> list[int]:
        """All instruction addresses, ascending, as plain ints."""
        base = self.address
        starts = self._starts
        if HAVE_NUMPY and isinstance(starts, _np.ndarray):
            return (starts.astype(_np.int64) + base).tolist()
        return [s + base for s in starts]

    def start_offsets(self) -> list[int]:
        """All instruction start offsets, ascending, as plain ints."""
        starts = self._starts
        if HAVE_NUMPY and isinstance(starts, _np.ndarray):
            return starts.tolist()
        return list(starts)

    def select(self, matcher: Callable[[Instruction], bool]) -> list[Instruction]:
        """``[i for i in self if matcher(i)]``, accelerated when possible.

        For the stock frontend matchers the candidate bits prune the
        stream first; the exact predicate still runs on every candidate,
        so the result is identical to the brute-force filter (the bits
        are supersets by construction).
        """
        bit = _matcher_bit(matcher)
        if bit is None:
            return [insn for insn in self if matcher(insn)]
        mbits = self._mbits
        if HAVE_NUMPY and isinstance(mbits, _np.ndarray):
            idx = _np.nonzero(mbits & _np.uint8(bit))[0].tolist()
        else:
            idx = [i for i, b in enumerate(mbits) if b & bit]
        out = []
        for i in idx:
            insn = self[i]
            if matcher(insn):
                out.append(insn)
        return out

    def site_indices(self, sites: Iterable[Instruction]) -> list[int]:
        """Stream indices of *sites* (instructions of this stream)."""
        starts = self._starts
        base = self.address
        isnp = HAVE_NUMPY and isinstance(starts, _np.ndarray)
        n = len(starts)
        out = []
        for site in sites:
            off = site.address - base
            if isnp:
                k = int(_np.searchsorted(starts, off))
            else:
                k = bisect.bisect_left(starts, off)
            if k >= n or int(starts[k]) != off:
                raise ValueError(
                    f"address {site.address:#x} is not an instruction start"
                )
            out.append(k)
        return out

    # -- pickling (artifact cache, worker transport) ---------------------

    def __reduce__(self):
        if HAVE_NUMPY and isinstance(self._starts, _np.ndarray):
            sblob = _np.ascontiguousarray(self._starts, _np.int32).tobytes()
            mblob = _np.ascontiguousarray(self._mbits, _np.uint8).tobytes()
        else:
            sblob = self._starts.tobytes()
            mblob = bytes(self._mbits)
        return (
            _rebuild_stream,
            (
                bytes(self._buf),
                self.address,
                sblob,
                mblob,
                self.chunks,
                self.reconcile_retries,
                self.endbr_snaps,
            ),
        )


def _rebuild_stream(buf, address, sblob, mblob, chunks, retries, snaps=0):
    """Unpickle an :class:`InstructionStream` (NumPy optional)."""
    if HAVE_NUMPY:
        starts = _np.frombuffer(sblob, _np.int32)
        mbits = _np.frombuffer(mblob, _np.uint8)
    else:
        starts = array("i")
        starts.frombytes(sblob)
        mbits = mblob
    return InstructionStream(
        buf, address, starts, mbits, chunks=chunks, reconcile_retries=retries,
        endbr_snaps=snaps,
    )


def _stream_from_insns(buf, address: int, insns: list[Instruction]):
    """Wrap an eager scalar decode as a stream (fallback path)."""
    offs = [i.address - address for i in insns]
    bits = [
        0 if i.mnemonic == "(bad)" else SB_VALID | _cand_of(i) for i in insns
    ]
    if HAVE_NUMPY:
        starts = _np.array(offs, _np.int32) if offs else _np.empty(0, _np.int32)
        mbits = _np.array(bits, _np.uint8) if bits else _np.empty(0, _np.uint8)
    else:
        starts = array("i", offs)
        mbits = bytes(bits)
    stream = InstructionStream(buf, address, starts, mbits, chunks=1)
    stream._cache = dict(enumerate(insns))
    return stream


def _freeze(data):
    """A stable, readonly view of *data* the stream can hold forever."""
    if type(data) is bytes:
        return data
    if isinstance(data, memoryview):
        if data.readonly and data.contiguous and data.itemsize == 1:
            return data
        return bytes(data)
    return bytes(data)


def decode_stream(
    data,
    address: int = 0,
    *,
    executor=None,
    chunk_size: int | None = None,
    min_vector_bytes: int | None = None,
) -> InstructionStream:
    """Linear-sweep decode *data* into a lazy :class:`InstructionStream`.

    Semantics are exactly :func:`~repro.x86.decoder.decode_buffer` —
    undecodable bytes become single-byte ``(bad)`` entries — but the
    sweep is vectorized when NumPy is available and, for buffers of at
    least ``_CHUNK_THRESHOLD`` bytes with a parallel *executor*
    (:class:`~repro.core.parallel.BatchExecutor`), split into chunks
    decoded concurrently and spliced with boundary reconciliation.

    ``chunk_size`` forces chunked decode regardless of size or executor
    (chunks run in-process if no executor is given) — used by tests and
    benchmarks to exercise seams.  ``min_vector_bytes`` overrides the
    scalar/vector crossover (0 forces the vectorized path).
    """
    buf = _freeze(data)
    n = len(buf)
    floor = _MIN_VECTOR if min_vector_bytes is None else min_vector_bytes
    if not HAVE_NUMPY or n < floor:
        return _stream_from_insns(buf, address, decode_buffer(buf, address))
    if chunk_size is None:
        if (
            executor is None
            or n < _CHUNK_THRESHOLD
            or not executor.would_parallelize(2)
        ):
            starts, mbits, _ = _vector_walk(buf, n, 0)
            return InstructionStream(buf, address, starts, mbits, chunks=1)
        chunk_size = max(_MIN_CHUNK, -(-n // executor.jobs))
    return _decode_chunked(buf, address, executor, chunk_size)
