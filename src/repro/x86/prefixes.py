"""Legacy and REX prefix model for x86-64 instruction decoding.

x86-64 instructions may begin with any number of *legacy prefixes* (in
practice at most one per group), optionally followed by a single REX
prefix that must immediately precede the opcode.  The decoder consumes
prefixes greedily; the encoder uses :data:`PAD_PREFIXES` to lengthen a
jump without changing its semantics (tactic T1 of the paper).
"""

from __future__ import annotations

# --- Legacy prefix groups -------------------------------------------------

LOCK = 0xF0
REPNE = 0xF2
REP = 0xF3

SEG_CS = 0x2E
SEG_SS = 0x36
SEG_DS = 0x3E
SEG_ES = 0x26
SEG_FS = 0x64
SEG_GS = 0x65

OPSIZE = 0x66  # operand-size override
ADDRSIZE = 0x67  # address-size override

GROUP1 = frozenset({LOCK, REPNE, REP})
GROUP2 = frozenset({SEG_CS, SEG_SS, SEG_DS, SEG_ES, SEG_FS, SEG_GS})
GROUP3 = frozenset({OPSIZE})
GROUP4 = frozenset({ADDRSIZE})

LEGACY_PREFIXES = GROUP1 | GROUP2 | GROUP3 | GROUP4

# --- REX ------------------------------------------------------------------

REX_BASE = 0x40  # 0x40..0x4F

REX_W = 0x08
REX_R = 0x04
REX_X = 0x02
REX_B = 0x01


def is_rex(byte: int) -> bool:
    """Return True if *byte* is a REX prefix (0x40-0x4F)."""
    return 0x40 <= byte <= 0x4F


def is_legacy_prefix(byte: int) -> bool:
    """Return True if *byte* is a legacy prefix byte."""
    return byte in LEGACY_PREFIXES


# Prefixes that are *semantically redundant* on a relative near jump and can
# therefore be used as padding for tactic T1.  Segment overrides are ignored
# by jumps; a plain REX prefix (0x40-0x4F without an opcode that uses its
# bits) is likewise ignored.  The paper's Figure 1 uses REX=0x48 and ES=0x26.
#
# Order matters: the decoder must still see the byte sequence as one valid
# jump instruction.  Legacy prefixes must precede REX, and REX must be the
# byte immediately before the opcode, so when padding with ``n`` bytes we
# emit ``(n-1) segment overrides + one REX`` or ``n`` segment overrides.
PAD_PREFIXES = (SEG_CS, SEG_SS, SEG_DS, SEG_ES, SEG_FS, SEG_GS)

PAD_REX = 0x48


def jump_padding(n: int) -> bytes:
    """Return *n* prefix bytes that do not change a ``jmpq rel32``.

    The returned sequence keeps the encoding architecturally valid: any
    number of segment-override prefixes followed by at most one trailing
    REX prefix.

    >>> jump_padding(0)
    b''
    >>> jump_padding(1)
    b'H'
    >>> len(jump_padding(7))
    7
    """
    if n < 0:
        raise ValueError("padding length must be non-negative")
    if n == 0:
        return b""
    pads = []
    for i in range(n - 1):
        pads.append(PAD_PREFIXES[i % len(PAD_PREFIXES)])
    pads.append(PAD_REX)
    return bytes(pads)
