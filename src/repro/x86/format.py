"""AT&T-syntax operand formatting for decoded instructions.

Gives :class:`Instruction` human-readable rendering comparable to
``objdump``'s (and validated against it in the test suite for the
instruction forms the rewriter deals in).  Formatting is best-effort: for
exotic opcodes ``format_operands`` returns ``None`` and callers fall
back to raw bytes.
"""

from __future__ import annotations

from repro.x86 import prefixes as pfx
from repro.x86.insn import Instruction

REG64 = ("rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
         "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15")
REG32 = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
         "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d")
REG16 = ("ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
         "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w")
REG8 = ("al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
        "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b")
REG8_LEGACY = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")


def reg_name(reg: int, size: int, *, rex: bool = True) -> str:
    """AT&T register name for the encoded register number."""
    if size == 8:
        return "%" + REG64[reg]
    if size == 4:
        return "%" + REG32[reg]
    if size == 2:
        return "%" + REG16[reg]
    if not rex and reg < 8:
        return "%" + REG8_LEGACY[reg]
    return "%" + REG8[reg]


def _hex(value: int) -> str:
    """objdump-style hex: 0x10 / -0x8."""
    return f"-{-value:#x}" if value < 0 else f"{value:#x}"


def _imm_hex(insn: Instruction, size: int) -> str:
    """objdump-style immediate: sign-extended to the operand size, then
    printed as unsigned hex."""
    value = insn.imm or 0
    if insn.imm_size < size:  # sign-extended encodings (e.g. 83 /r imm8)
        bit = 1 << (insn.imm_size * 8 - 1)
        value = (value ^ bit) - bit
    mask = (1 << (size * 8)) - 1
    return f"{value & mask:#x}"


def _opsize(insn: Instruction) -> int:
    if insn.rex is not None and insn.rex & pfx.REX_W:
        return 8
    if pfx.OPSIZE in insn.legacy_prefixes:
        return 2
    return 4


def _reg_operand(insn: Instruction, size: int, reg: int) -> str:
    return reg_name(reg, size, rex=insn.rex is not None)


class _NoOperands(Exception):
    """Internal: the instruction lacks the fields its opcode implies
    (e.g. a (bad) pseudo-instruction from a robust linear sweep)."""


_SEGMENTS = {pfx.SEG_FS: "%fs:", pfx.SEG_GS: "%gs:", pfx.SEG_CS: "%cs:",
             pfx.SEG_SS: "%ss:", pfx.SEG_DS: "%ds:", pfx.SEG_ES: "%es:"}


def _segment(insn: Instruction) -> str:
    for byte in insn.legacy_prefixes:
        if byte in _SEGMENTS:
            return _SEGMENTS[byte]
    return ""


def format_mem(insn: Instruction) -> str:
    """The ModRM memory operand, AT&T style."""
    if insn.modrm is None:
        raise _NoOperands
    mod = insn.mod
    rm = insn.modrm & 7
    rex = insn.rex or 0
    disp = insn.disp or 0
    seg = _segment(insn)
    asize = 4 if pfx.ADDRSIZE in insn.legacy_prefixes else 8

    if mod == 0 and rm == 5:
        rip = "%eip" if asize == 4 else "%rip"
        return f"{seg}{_hex(disp)}({rip})"

    parts = ""
    no_base = False
    if rm == 4:
        assert insn.sib is not None
        scale = 1 << (insn.sib >> 6)
        index = (insn.sib >> 3) & 7
        base = insn.sib & 7
        if rex & pfx.REX_X:
            index |= 8
        if rex & pfx.REX_B:
            base |= 8
        base_str = ""
        if (base & 7) == 5 and mod == 0:
            no_base = True
        else:
            base_str = reg_name(base, asize)
        if index != 4 or (rex & pfx.REX_X):
            parts = f"({base_str},{reg_name(index, asize)},{scale})"
        else:
            parts = f"({base_str})"
        if no_base and "," not in parts:
            parts = ""
    else:
        if rex & pfx.REX_B:
            rm |= 8
        parts = f"({reg_name(rm, asize)})"

    if no_base and not parts:
        # Absolute address: objdump prints the 64-bit unsigned value.
        return f"{seg}{disp & 0xFFFFFFFFFFFFFFFF:#x}"
    if insn.disp_size or not parts:
        return f"{seg}{_hex(disp)}{parts}"
    return f"{seg}{parts}"


def _rm_operand(insn: Instruction, size: int) -> str:
    if insn.modrm is None:
        raise _NoOperands
    if insn.mod == 3:
        return _reg_operand(insn, size, insn.rm or 0)
    return format_mem(insn)


_ALU = {0x00: "add", 0x08: "or", 0x10: "adc", 0x18: "sbb",
        0x20: "and", 0x28: "sub", 0x30: "xor", 0x38: "cmp"}
_GRP1 = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")
_SHIFT = ("rol", "ror", "rcl", "rcr", "shl", "shr", "shl", "sar")


def format_operands(insn: Instruction) -> str | None:  # noqa: C901
    """AT&T operand string (sources first), or None when unsupported."""
    if insn.mnemonic == "(bad)":
        return None
    op = insn.opcode
    if insn.opmap == 1:
        return _format_operands_0f(insn)
    if insn.opmap != 0:
        return None

    # ALU block.
    if op <= 0x3D and (op & 7) <= 5:
        kind = op & 7
        size = 1 if kind in (0, 2, 4) else _opsize(insn)
        if kind in (0, 1):
            return f"{_reg_operand(insn, size, insn.reg or 0)},{_rm_operand(insn, size)}"
        if kind in (2, 3):
            return f"{_rm_operand(insn, size)},{_reg_operand(insn, size, insn.reg or 0)}"
        return f"${_imm_hex(insn, size)},{_reg_operand(insn, size, 0)}"

    if 0x50 <= op <= 0x57 or 0x58 <= op <= 0x5F:
        reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
        return reg_name(reg, 8)
    if op in (0x68, 0x6A):
        return f"${_imm_hex(insn, _opsize(insn))}"
    if op == 0x63:
        return f"{_rm_operand(insn, 4)},{_reg_operand(insn, _opsize(insn), insn.reg or 0)}"
    if op in (0x69, 0x6B):
        size = _opsize(insn)
        return (f"${_imm_hex(insn, size)},{_rm_operand(insn, size)},"
                f"{_reg_operand(insn, size, insn.reg or 0)}")

    if 0x70 <= op <= 0x7F or op in (0xE8, 0xE9, 0xEB) or 0xE0 <= op <= 0xE3:
        return f"{insn.target:x}" if insn.target is not None else None

    if op in (0x80, 0x81, 0x83):
        size = 1 if op == 0x80 else _opsize(insn)
        return f"${_imm_hex(insn, size)},{_rm_operand(insn, size)}"
    if op in (0x84, 0x85):
        size = 1 if op == 0x84 else _opsize(insn)
        return f"{_reg_operand(insn, size, insn.reg or 0)},{_rm_operand(insn, size)}"
    if op in (0x86, 0x87):
        size = 1 if op == 0x86 else _opsize(insn)
        return f"{_reg_operand(insn, size, insn.reg or 0)},{_rm_operand(insn, size)}"
    if op in (0x88, 0x89):
        size = 1 if op == 0x88 else _opsize(insn)
        return f"{_reg_operand(insn, size, insn.reg or 0)},{_rm_operand(insn, size)}"
    if op in (0x8A, 0x8B):
        size = 1 if op == 0x8A else _opsize(insn)
        return f"{_rm_operand(insn, size)},{_reg_operand(insn, size, insn.reg or 0)}"
    if op == 0x8D:
        return f"{format_mem(insn)},{_reg_operand(insn, _opsize(insn), insn.reg or 0)}"
    if op == 0x8F:
        return _rm_operand(insn, 8)

    if op == 0x90 and insn.rex is None:
        return ""
    if 0xB0 <= op <= 0xB7:
        reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
        return f"${_hex(insn.imm or 0)},{_reg_operand(insn, 1, reg)}"
    if 0xB8 <= op <= 0xBF:
        reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
        return f"${_hex(insn.imm or 0)},{reg_name(reg, _opsize(insn))}"

    if op in (0xC0, 0xC1):
        size = 1 if op == 0xC0 else _opsize(insn)
        return f"${_hex(insn.imm or 0)},{_rm_operand(insn, size)}"
    if op in (0xD0, 0xD1):
        size = 1 if op == 0xD0 else _opsize(insn)
        return _rm_operand(insn, size)
    if op in (0xD2, 0xD3):
        size = 1 if op == 0xD2 else _opsize(insn)
        return f"%cl,{_rm_operand(insn, size)}"
    if op == 0xC2:
        return f"${_hex(insn.imm or 0)}"
    if op in (0xC3, 0xC9, 0xCC, 0x9C, 0x9D, 0x98, 0x99):
        return ""
    if op in (0xC6, 0xC7):
        size = 1 if op == 0xC6 else _opsize(insn)
        return f"${_imm_hex(insn, size)},{_rm_operand(insn, size)}"

    if op in (0xF6, 0xF7):
        size = 1 if op == 0xF6 else _opsize(insn)
        kind = insn.reg_raw or 0
        if kind in (0, 1):
            return f"${_imm_hex(insn, size)},{_rm_operand(insn, size)}"
        return _rm_operand(insn, size)
    if op == 0xFE:
        return _rm_operand(insn, 1)
    if op == 0xFF:
        kind = insn.reg_raw or 0
        size = _opsize(insn) if kind in (0, 1) else 8
        operand = _rm_operand(insn, size)
        if kind in (2, 3, 4, 5):
            return f"*{operand}"
        return operand

    return None


def _format_operands_0f(insn: Instruction) -> str | None:
    op = insn.opcode
    if 0x80 <= op <= 0x8F:
        return f"{insn.target:x}" if insn.target is not None else None
    if 0x90 <= op <= 0x9F:
        return _rm_operand(insn, 1)
    if 0x40 <= op <= 0x4F:  # cmov
        size = _opsize(insn)
        return f"{_rm_operand(insn, size)},{_reg_operand(insn, size, insn.reg or 0)}"
    if op in (0xB6, 0xB7, 0xBE, 0xBF):  # movzx/movsx
        src = 1 if op in (0xB6, 0xBE) else 2
        return f"{_rm_operand(insn, src)},{_reg_operand(insn, _opsize(insn), insn.reg or 0)}"
    if op == 0xAF:
        size = _opsize(insn)
        return f"{_rm_operand(insn, size)},{_reg_operand(insn, size, insn.reg or 0)}"
    if op == 0x05:
        return ""
    if 0xC8 <= op <= 0xCF:
        reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
        return reg_name(reg, _opsize(insn))
    return None


def format_insn(insn: Instruction) -> str:
    """``mnemonic operands`` (falls back to bytes for exotic opcodes)."""
    try:
        operands = format_operands(insn)
    except _NoOperands:
        operands = None
    if operands is None:
        return f"{insn.mnemonic} <{insn.raw.hex()}>"
    if operands:
        return f"{insn.mnemonic} {operands}"
    return insn.mnemonic
