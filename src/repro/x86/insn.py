"""Instruction model: the decoded form of one x86-64 instruction.

An :class:`Instruction` records the exact byte layout (prefixes, opcode,
ModRM/SIB, displacement, immediate) plus the semantic facts the binary
rewriter needs.  It deliberately does *not* model full operand semantics;
the rewriter (like E9Patch itself) cares about lengths, byte values,
control flow and memory-write classification.

``Instruction`` is a ``__slots__`` class rather than a dataclass: the
decoder creates one per instruction over multi-megabyte code sections,
so attribute storage must be flat and ``raw`` is a *lazy view* — the
underlying buffer plus ``(start, length)`` — materialized into a
``bytes`` object only when first read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.x86 import prefixes as pfx
from repro.x86.tables import Flow


class OperandKind(enum.Enum):
    """Coarse classification of the ModRM r/m operand."""

    NONE = 0  # no ModRM, or not applicable
    REG = 1  # mod == 3: register operand
    MEM = 2  # memory operand (non rip-relative)
    MEM_RIP = 3  # rip-relative memory operand


# Register numbers (ModRM encoding, before REX extension).
RSP = 4
RBP = 5
R12 = 12
R13 = 13

REG_NAMES_64 = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: Public fields, in the order of the historical dataclass definition
#: (pickling, equality, and ``__repr__`` all use this order).
_FIELDS = (
    "raw", "mnemonic", "address", "legacy_prefixes", "rex", "vex",
    "opmap", "opcode", "opcode_offset", "modrm", "sib", "disp",
    "disp_offset", "disp_size", "imm", "imm_offset", "imm_size",
    "flow", "writes_rm", "string_write",
)


class Instruction:
    """One decoded x86-64 instruction.

    Offsets (``disp_offset`` / ``imm_offset``) are relative to the start of
    the instruction so that byte-level tools (pun search, relocation) can
    address individual fields of ``raw``.
    """

    __slots__ = (
        "_raw", "_data", "_start", "_len",
        "mnemonic", "address", "_legacy", "rex", "vex",
        "opmap", "opcode", "opcode_offset", "modrm", "sib", "disp",
        "disp_offset", "disp_size", "imm", "imm_offset", "imm_size",
        "flow", "writes_rm", "string_write",
    )

    def __init__(
        self,
        raw: bytes = b"",
        mnemonic: str = "",
        address: int = 0,
        legacy_prefixes: bytes = b"",
        rex: int | None = None,
        vex: bytes | None = None,  # full VEX/EVEX prefix incl. leading byte
        opmap: int = 0,  # 0 = one-byte map, 1 = 0F, 2 = 0F38, 3 = 0F3A
        opcode: int = 0,
        opcode_offset: int = 0,
        modrm: int | None = None,
        sib: int | None = None,
        disp: int | None = None,
        disp_offset: int = 0,
        disp_size: int = 0,
        imm: int | None = None,
        imm_offset: int = 0,
        imm_size: int = 0,
        flow: Flow = Flow.NONE,
        writes_rm: bool = False,  # writes its ModRM r/m operand
        string_write: bool = False,  # implicit store through %rdi / moffs
    ) -> None:
        self._raw = raw
        self._data = None
        self._start = 0
        self._len = len(raw)
        self.mnemonic = mnemonic
        self.address = address
        self._legacy = legacy_prefixes
        self.rex = rex
        self.vex = vex
        self.opmap = opmap
        self.opcode = opcode
        self.opcode_offset = opcode_offset
        self.modrm = modrm
        self.sib = sib
        self.disp = disp
        self.disp_offset = disp_offset
        self.disp_size = disp_size
        self.imm = imm
        self.imm_offset = imm_offset
        self.imm_size = imm_size
        self.flow = flow
        self.writes_rm = writes_rm
        self.string_write = string_write

    # -- lazy raw bytes ----------------------------------------------------

    @property
    def raw(self) -> bytes:
        """The instruction's exact bytes (materialized on first access)."""
        r = self._raw
        if r is None:
            start = self._start
            r = self._raw = bytes(self._data[start : start + self._len])
            self._data = None
        return r

    @raw.setter
    def raw(self, value: bytes) -> None:
        self._raw = value
        self._data = None
        self._len = len(value)

    @property
    def legacy_prefixes(self) -> bytes:
        """Legacy prefix bytes (lazy: the decoder stores only the count).

        The prefixes are always the first ``n`` bytes of :attr:`raw`, so
        the fast decoder records just ``n`` and the bytes are sliced out
        on first access.
        """
        v = self._legacy
        if type(v) is int:
            v = self._legacy = bytes(self.raw[:v])
        return v

    @legacy_prefixes.setter
    def legacy_prefixes(self, value) -> None:
        self._legacy = value

    # -- layout ------------------------------------------------------------

    @property
    def length(self) -> int:
        return self._len

    @property
    def end(self) -> int:
        """Address of the next instruction."""
        return self.address + self._len

    # -- ModRM helpers -----------------------------------------------------

    @property
    def mod(self) -> int | None:
        return None if self.modrm is None else self.modrm >> 6

    @property
    def reg(self) -> int | None:
        """ModRM.reg field, extended with REX.R / VEX.R."""
        if self.modrm is None:
            return None
        reg = (self.modrm >> 3) & 7
        if self.rex is not None and self.rex & pfx.REX_R:
            reg |= 8
        return reg

    @property
    def reg_raw(self) -> int | None:
        """ModRM.reg field without REX extension (group selector)."""
        return None if self.modrm is None else (self.modrm >> 3) & 7

    @property
    def rm(self) -> int | None:
        if self.modrm is None:
            return None
        rm = self.modrm & 7
        if self.rex is not None and self.rex & pfx.REX_B:
            rm |= 8
        return rm

    @property
    def rm_kind(self) -> OperandKind:
        if self.modrm is None:
            return OperandKind.NONE
        if self.mod == 3:
            return OperandKind.REG
        if self.mod == 0 and (self.modrm & 7) == 5:
            return OperandKind.MEM_RIP
        return OperandKind.MEM

    @property
    def rip_relative(self) -> bool:
        """True if the instruction has a rip-relative memory operand."""
        return self.rm_kind == OperandKind.MEM_RIP

    @property
    def has_mem_operand(self) -> bool:
        return self.rm_kind in (OperandKind.MEM, OperandKind.MEM_RIP)

    @property
    def mem_base(self) -> int | None:
        """Base register of a memory operand (REX-extended), or None.

        Returns None for rip-relative operands and for SIB forms with no
        base (mod=0, base=101).
        """
        if self.rm_kind != OperandKind.MEM:
            return None
        rm = self.modrm & 7
        rexb = 8 if (self.rex is not None and self.rex & pfx.REX_B) else 0
        if rm != 4:
            return rm | rexb
        assert self.sib is not None
        base = self.sib & 7
        if base == 5 and self.mod == 0:
            return None  # disp32, no base register
        return base | rexb

    # -- control flow -------------------------------------------------------

    @property
    def is_direct_branch(self) -> bool:
        """jmp/jcc/call/loop with an encoded relative displacement."""
        return self.flow in (Flow.JMP, Flow.JCC, Flow.CALL, Flow.LOOP)

    @property
    def is_jump(self) -> bool:
        """Direct relative jmp or jcc (the paper's A1 instrumentation set)."""
        return self.flow in (Flow.JMP, Flow.JCC)

    @property
    def is_indirect_call(self) -> bool:
        from repro.x86.tables import GRP5_CALL_REGS

        return self.flow == Flow.GROUP5 and self.reg_raw in GRP5_CALL_REGS

    @property
    def is_indirect_jump(self) -> bool:
        from repro.x86.tables import GRP5_JMP_REGS

        return self.flow == Flow.GROUP5 and self.reg_raw in GRP5_JMP_REGS

    @property
    def is_ret(self) -> bool:
        return self.flow == Flow.RET

    @property
    def rel(self) -> int | None:
        """Signed branch displacement for direct branches, else None."""
        if self.is_direct_branch:
            return self.imm
        return None

    @property
    def target(self) -> int | None:
        """Absolute branch target for direct branches, else None."""
        if self.rel is None:
            return None
        return self.end + self.rel

    # -- value semantics ----------------------------------------------------

    def _astuple(self) -> tuple:
        return tuple(getattr(self, name) for name in _FIELDS)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Instruction:
            return NotImplemented
        return self._astuple() == other._astuple()

    __hash__ = None  # mutable, like the historical dataclass

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={getattr(self, n)!r}" for n in _FIELDS)
        return f"Instruction({body})"

    # -- pickling (materialize the lazy view; never ship the buffer) --------

    def __getstate__(self) -> tuple:
        return self._astuple()

    def __setstate__(self, state: tuple) -> None:
        raw, rest = state[0], state[1:]
        self._raw = raw
        self._data = None
        self._start = 0
        self._len = len(raw)
        for name, value in zip(_FIELDS[1:], rest):
            setattr(self, name, value)

    def __reduce__(self) -> tuple:
        return (_unpickle_insn, (self._astuple(),))

    # -- rendering -----------------------------------------------------------

    def __str__(self) -> str:
        from repro.x86.format import format_insn

        hexbytes = " ".join(f"{b:02x}" for b in self.raw)
        loc = f"{self.address:#x}: " if self.address else ""
        return f"{loc}{hexbytes:<30} {format_insn(self)}"


def _unpickle_insn(state: tuple) -> Instruction:
    insn = Instruction.__new__(Instruction)
    insn.__setstate__(state)
    return insn


@dataclass
class DecodedRegion:
    """A linearly decoded code region (the frontend's unit of work)."""

    address: int
    data: bytes
    instructions: list[Instruction] = field(default_factory=list)

    def at(self, address: int) -> Instruction | None:
        """Return the instruction starting at *address*, if any."""
        lo, hi = 0, len(self.instructions)
        while lo < hi:
            mid = (lo + hi) // 2
            insn = self.instructions[mid]
            if insn.address < address:
                lo = mid + 1
            elif insn.address > address:
                hi = mid
            else:
                return insn
        return None
