"""x86-64 instruction substrate: exact length decoding, semantics, encoding.

This subpackage is a from-scratch replacement for an external disassembler
library.  The rewriter only needs *exact instruction lengths and byte
values* (for instruction punning) plus a handful of semantic facts
(branch classification, memory-write detection, rip-relative operands),
all of which are computed here directly from the Intel encoding grammar.
"""

from repro.x86.insn import Instruction, OperandKind
from repro.x86.decoder import decode, decode_all, decode_buffer
from repro.x86.encoder import (
    encode_jmp_rel32,
    encode_jmp_rel8,
    encode_jcc_rel32,
    encode_call_rel32,
    encode_int3,
    encode_nop,
    encode_ret,
    Assembler,
)
from repro.x86.flow import (
    is_patchable_jump,
    is_heap_write,
    branch_target,
)

__all__ = [
    "Instruction",
    "OperandKind",
    "decode",
    "decode_all",
    "decode_buffer",
    "encode_jmp_rel32",
    "encode_jmp_rel8",
    "encode_jcc_rel32",
    "encode_call_rel32",
    "encode_int3",
    "encode_nop",
    "encode_ret",
    "Assembler",
    "is_patchable_jump",
    "is_heap_write",
    "branch_target",
]
