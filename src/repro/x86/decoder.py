"""Exact x86-64 instruction length decoder.

Implements the Intel encoding grammar for 64-bit mode: legacy prefixes,
REX, VEX (C4/C5), EVEX (62), the one/two/three-byte opcode maps, ModRM,
SIB, displacement, and immediates.  Lengths are exact; the test suite
validates against ``objdump`` on compiler output.
"""

from __future__ import annotations

from repro.errors import DecodeError
from repro.x86 import prefixes as pfx
from repro.x86 import tables
from repro.x86.insn import DecodedRegion, Instruction
from repro.x86.tables import (
    F_GROUP_WRITE,
    F_INVALID64,
    F_STRING_WRITE,
    F_WRITES_RM,
    Imm,
    OpSpec,
)

MAX_INSN_LEN = 15

_GRP1_NAMES = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")
_GRP2_NAMES = ("rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar")
_GRP3_NAMES = ("test", "test", "not", "neg", "mul", "imul", "div", "idiv")
_GRP5_NAMES = ("inc", "dec", "call", "lcall", "jmp", "ljmp", "push", "(bad)")


def _signed(value: int, size: int) -> int:
    """Interpret *size* little-endian bytes as a signed integer."""
    bit = 1 << (size * 8 - 1)
    return (value ^ bit) - bit


class _Cursor:
    """Byte cursor with bounds checking over the instruction window."""

    __slots__ = ("data", "start", "pos", "limit")

    def __init__(self, data: bytes, start: int) -> None:
        self.data = data
        self.start = start
        self.pos = start
        self.limit = min(len(data), start + MAX_INSN_LEN)

    def peek(self) -> int:
        if self.pos >= self.limit:
            raise DecodeError("truncated instruction", offset=self.start)
        return self.data[self.pos]

    def take(self) -> int:
        byte = self.peek()
        self.pos += 1
        return byte

    def take_n(self, n: int) -> int:
        """Take *n* bytes as a little-endian unsigned integer."""
        if self.pos + n > self.limit:
            raise DecodeError("truncated instruction", offset=self.start)
        value = int.from_bytes(self.data[self.pos : self.pos + n], "little")
        self.pos += n
        return value

    @property
    def offset(self) -> int:
        """Offset from instruction start."""
        return self.pos - self.start


def _decode_modrm(cur: _Cursor, insn: Instruction, addrsize32: bool) -> None:
    """Decode ModRM, optional SIB, and displacement into *insn*."""
    modrm = cur.take()
    insn.modrm = modrm
    mod = modrm >> 6
    rm = modrm & 7

    disp_size = 0
    if mod == 0:
        if rm == 4:
            insn.sib = cur.take()
            if (insn.sib & 7) == 5:
                disp_size = 4
        elif rm == 5:
            disp_size = 4  # rip-relative (eip-relative with 0x67)
    elif mod == 1:
        if rm == 4:
            insn.sib = cur.take()
        disp_size = 1
    elif mod == 2:
        if rm == 4:
            insn.sib = cur.take()
        disp_size = 4
    # mod == 3: register operand, no displacement.

    if disp_size:
        insn.disp_offset = cur.offset
        insn.disp_size = disp_size
        insn.disp = _signed(cur.take_n(disp_size), disp_size)


def _imm_bytes(kind: Imm, opsize16: bool, rexw: bool, opcode: int,
               modrm_reg: int | None, addrsize32: bool) -> int:
    """Return the immediate length in bytes for the given context."""
    if kind == Imm.NONE:
        return 0
    if kind in (Imm.IB, Imm.REL8):
        return 1
    if kind == Imm.IW:
        return 2
    if kind == Imm.IZ:
        return 2 if opsize16 else 4
    if kind == Imm.REL32:
        return 2 if opsize16 else 4
    if kind == Imm.IV:
        if rexw:
            return 8
        return 2 if opsize16 else 4
    if kind == Imm.IW_IB:
        return 3
    if kind == Imm.MOFFS:
        return 4 if addrsize32 else 8
    if kind == Imm.GROUP3:
        if modrm_reg in (0, 1):  # test r/m, imm
            if opcode == 0xF6:
                return 1
            return 2 if opsize16 else 4
        return 0
    raise AssertionError(f"unhandled immediate kind {kind}")


def _refine_mnemonic(spec: OpSpec, opcode: int, reg: int | None) -> str:
    """Resolve group mnemonics using the ModRM.reg selector."""
    name = spec.mnemonic
    if reg is None:
        return name
    if name == "grp1":
        return _GRP1_NAMES[reg]
    if name == "grp2":
        return _GRP2_NAMES[reg]
    if name == "grp3":
        return _GRP3_NAMES[reg]
    if name == "grp4":
        return ("inc", "dec")[reg] if reg < 2 else "(bad)"
    if name == "grp5":
        return _GRP5_NAMES[reg]
    return name


def decode(data: bytes, offset: int = 0, address: int | None = None) -> Instruction:
    """Decode one instruction from *data* at *offset*.

    *address* is the virtual address of the instruction (defaults to
    *offset*), used for branch-target computation and display.

    Raises :class:`DecodeError` for invalid or truncated encodings.
    """
    if offset >= len(data):
        raise DecodeError("offset beyond end of buffer", offset=offset)
    cur = _Cursor(data, offset)

    # --- legacy prefixes ---------------------------------------------------
    legacy = bytearray()
    while True:
        byte = cur.peek()
        if pfx.is_legacy_prefix(byte):
            legacy.append(cur.take())
            if len(legacy) > 14:
                raise DecodeError("prefix run exceeds instruction limit", offset=offset)
        else:
            break

    opsize16 = pfx.OPSIZE in legacy
    addrsize32 = pfx.ADDRSIZE in legacy
    rep = pfx.REP in legacy
    repne = pfx.REPNE in legacy

    insn = Instruction(raw=b"", mnemonic="", address=offset if address is None else address)
    insn.legacy_prefixes = bytes(legacy)

    # --- REX ----------------------------------------------------------------
    byte = cur.peek()
    if pfx.is_rex(byte):
        insn.rex = cur.take()
        byte = cur.peek()

    rexw = bool(insn.rex and insn.rex & pfx.REX_W)

    # --- VEX / EVEX ----------------------------------------------------------
    if insn.rex is None and byte in (0xC4, 0xC5, 0x62):
        return _decode_vex(cur, insn, opsize16, offset, data)

    # --- opcode ----------------------------------------------------------------
    opcode = cur.take()
    opmap = 0
    if opcode == 0x0F:
        opcode = cur.take()
        opmap = 1
        if opcode == 0x38:
            opcode = cur.take()
            opmap = 2
        elif opcode == 0x3A:
            opcode = cur.take()
            opmap = 3

    if opmap == 0:
        spec = tables.ONE_BYTE.get(opcode)
        if spec is None:
            raise DecodeError(f"unknown opcode {opcode:#04x}", offset=offset)
    elif opmap == 1:
        spec = tables.two_byte_spec(opcode)
    elif opmap == 2:
        spec = tables.THREE_BYTE_38_DEFAULT
        if opcode in tables.THREE_BYTE_38_STORES:
            spec = OpSpec(spec.mnemonic, modrm=True, flags=F_WRITES_RM)
    else:
        spec = tables.THREE_BYTE_3A_DEFAULT
        if opcode in tables.THREE_BYTE_3A_STORES:
            spec = OpSpec(spec.mnemonic, modrm=True, imm=Imm.IB, flags=F_WRITES_RM)

    if spec.flags & F_INVALID64:
        raise DecodeError(f"opcode {opcode:#04x} invalid in 64-bit mode", offset=offset)

    insn.opmap = opmap
    insn.opcode = opcode
    insn.opcode_offset = cur.offset - 1

    # --- ModRM / SIB / displacement ----------------------------------------
    if spec.modrm:
        _decode_modrm(cur, insn, addrsize32)

    # --- immediate -----------------------------------------------------------
    imm_len = _imm_bytes(spec.imm, opsize16, rexw, opcode, insn.reg_raw, addrsize32)
    if imm_len:
        insn.imm_offset = cur.offset
        insn.imm_size = imm_len
        value = cur.take_n(imm_len)
        if spec.imm in (Imm.REL8, Imm.REL32):
            insn.imm = _signed(value, imm_len)
        else:
            insn.imm = value

    # --- semantics ------------------------------------------------------------
    insn.flow = spec.flow
    insn.mnemonic = _refine_mnemonic(spec, opcode, insn.reg_raw)
    if rep and spec.mnemonic in ("nop",) and opmap == 0 and opcode == 0x90:
        insn.mnemonic = "pause"
    if opmap == 1 and opcode == 0xB8 and rep:
        insn.mnemonic = "popcnt"

    key = opcode if opmap == 0 else (0x0F00 | opcode)
    if spec.flags & F_WRITES_RM:
        insn.writes_rm = True
    elif spec.flags & F_GROUP_WRITE:
        regs = tables.GROUP_WRITES.get(key, frozenset())
        insn.writes_rm = insn.reg_raw in regs
    if spec.flags & F_STRING_WRITE:
        insn.string_write = True

    insn.raw = bytes(data[offset : cur.pos])
    return insn


def _decode_vex(cur: _Cursor, insn: Instruction, opsize16: bool,
                offset: int, data: bytes) -> Instruction:
    """Decode a VEX- or EVEX-prefixed instruction (length-exact)."""
    lead = cur.take()
    if lead == 0xC5:  # 2-byte VEX
        p1 = cur.take()
        insn.vex = bytes((lead, p1))
        map_select = 1
    elif lead == 0xC4:  # 3-byte VEX
        p1 = cur.take()
        p2 = cur.take()
        insn.vex = bytes((lead, p1, p2))
        map_select = p1 & 0x1F
    else:  # 0x62: EVEX
        p0 = cur.take()
        p1 = cur.take()
        p2 = cur.take()
        insn.vex = bytes((lead, p0, p1, p2))
        map_select = p0 & 0x07

    opcode = cur.take()
    insn.opmap = map_select
    insn.opcode = opcode
    insn.opcode_offset = cur.offset - 1
    insn.mnemonic = f"vex.m{map_select}.{opcode:02x}"

    # All VEX/EVEX instructions have ModRM except vzeroupper/vzeroall
    # (map 1 opcode 0x77).
    has_modrm = not (map_select == 1 and opcode == 0x77)
    if has_modrm:
        _decode_modrm(cur, insn, addrsize32=False)
    else:
        insn.mnemonic = "vzeroupper"

    kind = tables.vex_imm_kind(map_select, opcode)
    imm_len = _imm_bytes(kind, opsize16, False, opcode, insn.reg_raw, False)
    if imm_len:
        insn.imm_offset = cur.offset
        insn.imm_size = imm_len
        insn.imm = cur.take_n(imm_len)

    # Store detection for the common VEX mov-store forms (map 1).
    if map_select == 1 and opcode in (0x11, 0x13, 0x17, 0x29, 0x2B, 0x7F, 0xD6, 0xE7):
        insn.writes_rm = True

    insn.raw = bytes(data[offset : cur.pos])
    return insn


def decode_all(data: bytes, address: int = 0) -> DecodedRegion:
    """Linearly decode an entire buffer, raising on any invalid byte."""
    region = DecodedRegion(address=address, data=data)
    off = 0
    while off < len(data):
        insn = decode(data, off, address=address + off)
        region.instructions.append(insn)
        off += insn.length
    return region


def decode_buffer(data: bytes, address: int = 0) -> list[Instruction]:
    """Like :func:`decode_all` but skipping undecodable bytes.

    On a decode error, a single byte is skipped (recorded as a ``(bad)``
    pseudo-instruction) and decoding resumes — the behaviour of a robust
    linear-sweep frontend over sections that mix code and data.
    """
    out: list[Instruction] = []
    off = 0
    while off < len(data):
        try:
            insn = decode(data, off, address=address + off)
        except DecodeError:
            insn = Instruction(
                raw=data[off : off + 1], mnemonic="(bad)", address=address + off
            )
        out.append(insn)
        off += insn.length
    return out
