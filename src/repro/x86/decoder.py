"""Exact x86-64 instruction length decoder.

Implements the Intel encoding grammar for 64-bit mode: legacy prefixes,
REX, VEX (C4/C5), EVEX (62), the one/two/three-byte opcode maps, ModRM,
SIB, displacement, and immediates.  Lengths are exact; the test suite
validates against ``objdump`` on compiler output.

Two implementations live here:

* :func:`decode` — the fast path.  A single-pass loop over a precomputed
  256-entry first-byte dispatch table (``_FIRST``: opcode / legacy
  prefix / REX / VEX-escape) with per-opcode spec tuples (``_D1`` /
  ``_D2``) that pre-resolve mnemonic-group tables and group-write sets,
  so the hot loop performs no dict lookups, no cursor-object method
  calls, and no byte slicing (``Instruction.raw`` stays a lazy view).
* :func:`decode_reference` — the original cursor-based implementation,
  retained verbatim as the oracle for the differential test suite and
  the bench byte-identity check.

Both raise :class:`DecodeError` with identical messages for identical
inputs; ``tests/x86/test_decoder_differential.py`` enforces this.
"""

from __future__ import annotations

from repro.errors import DecodeError
from repro.x86 import prefixes as pfx
from repro.x86 import tables
from repro.x86.insn import DecodedRegion, Instruction
from repro.x86.tables import (
    F_GROUP_WRITE,
    F_INVALID64,
    F_STRING_WRITE,
    F_WRITES_RM,
    Imm,
    OpSpec,
)

MAX_INSN_LEN = 15

_GRP1_NAMES = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")
_GRP2_NAMES = ("rol", "ror", "rcl", "rcr", "shl", "shr", "sal", "sar")
_GRP3_NAMES = ("test", "test", "not", "neg", "mul", "imul", "div", "idiv")
_GRP5_NAMES = ("inc", "dec", "call", "lcall", "jmp", "ljmp", "push", "(bad)")


def _signed(value: int, size: int) -> int:
    """Interpret *size* little-endian bytes as a signed integer."""
    bit = 1 << (size * 8 - 1)
    return (value ^ bit) - bit


# ---------------------------------------------------------------------------
# Fast-path dispatch tables.
# ---------------------------------------------------------------------------
# First-byte classification: what role a byte plays at the start of an
# instruction (after any bytes already consumed).
_OPC, _PFX, _REX, _VEX = 0, 1, 2, 3

_FIRST = bytearray(256)
for _b in pfx.LEGACY_PREFIXES:
    _FIRST[_b] = _PFX
for _b in range(0x40, 0x50):
    _FIRST[_b] = _REX
for _b in (0xC4, 0xC5, 0x62):
    _FIRST[_b] = _VEX

# ModRM-group mnemonics resolved by modrm.reg; grp4 pads the historical
# "reg < 2 else (bad)" rule out to a full 8-entry table.
_GROUP_NAMES: dict[str, tuple[str, ...]] = {
    "grp1": _GRP1_NAMES,
    "grp2": _GRP2_NAMES,
    "grp3": _GRP3_NAMES,
    "grp4": ("inc", "dec", "(bad)", "(bad)", "(bad)", "(bad)", "(bad)", "(bad)"),
    "grp5": _GRP5_NAMES,
}


def _entry(spec: OpSpec, key: int):
    """Flatten an OpSpec into the fast path's per-opcode tuple:
    (mnemonic, has_modrm, imm_code, flow, flags, group_write_regs, group_names).
    """
    gw = None
    if spec.flags & F_GROUP_WRITE:
        gw = tables.GROUP_WRITES.get(key, frozenset())
    return (
        spec.mnemonic,
        spec.modrm,
        spec.imm.value,
        spec.flow,
        spec.flags,
        gw,
        _GROUP_NAMES.get(spec.mnemonic),
    )


# One-byte map: None marks bytes with no opcode meaning (prefixes, VEX
# escapes, 0F) — reaching one of those in the opcode slot is an error.
_D1: list[tuple | None] = [None] * 256
for _op, _spec in tables.ONE_BYTE.items():
    _D1[_op] = _entry(_spec, _op)

# Two-byte (0F) map: dense, thanks to the table's default spec.
_D2 = [_entry(tables.two_byte_spec(_op), 0x0F00 | _op) for _op in range(256)]

_E38 = _entry(tables.THREE_BYTE_38_DEFAULT, 0)
_E38_STORE = _entry(
    OpSpec(tables.THREE_BYTE_38_DEFAULT.mnemonic, modrm=True, flags=F_WRITES_RM), 0
)
_E3A = _entry(tables.THREE_BYTE_3A_DEFAULT, 0)
_E3A_STORE = _entry(
    OpSpec(tables.THREE_BYTE_3A_DEFAULT.mnemonic, modrm=True, imm=Imm.IB,
           flags=F_WRITES_RM), 0
)
_38_STORES = tables.THREE_BYTE_38_STORES
_3A_STORES = tables.THREE_BYTE_3A_STORES

# Imm enum values, inlined as ints for the hot loop's compares.
_IMM_IB, _IMM_IW, _IMM_IZ, _IMM_IV = 1, 2, 3, 4
_IMM_IW_IB, _IMM_REL8, _IMM_REL32, _IMM_MOFFS, _IMM_GROUP3 = 5, 6, 7, 8, 9


def decode(data: bytes, offset: int = 0, address: int | None = None) -> Instruction:
    """Decode one instruction from *data* at *offset* (fast path).

    *address* is the virtual address of the instruction (defaults to
    *offset*), used for branch-target computation and display.

    Raises :class:`DecodeError` for invalid or truncated encodings.
    """
    n = len(data)
    if offset >= n:
        raise DecodeError("offset beyond end of buffer", offset=offset)
    limit = offset + MAX_INSN_LEN
    if limit > n:
        limit = n

    pos = offset
    first = _FIRST

    # --- legacy prefixes ---------------------------------------------------
    opsize16 = addrsize32 = rep = False
    npfx = 0
    while True:
        if pos >= limit:
            raise DecodeError("truncated instruction", offset=offset)
        b = data[pos]
        cls = first[b]
        if cls != _PFX:
            break
        pos += 1
        npfx += 1
        if npfx > 14:
            raise DecodeError("prefix run exceeds instruction limit", offset=offset)
        if b == 0x66:
            opsize16 = True
        elif b == 0x67:
            addrsize32 = True
        elif b == 0xF3:
            rep = True
    # Prefixes are the first npfx bytes of raw; the Instruction slices
    # them out lazily on first access (no per-instruction bytes copy).
    legacy = npfx

    # --- REX / VEX / EVEX --------------------------------------------------
    rex = None
    if cls == _REX:
        rex = b
        pos += 1
        if pos >= limit:
            raise DecodeError("truncated instruction", offset=offset)
        b = data[pos]
    elif cls == _VEX:
        # Cold path: delegate to the shared VEX/EVEX decoder.
        cur = _Cursor(data, offset)
        cur.pos = pos
        insn = Instruction(
            raw=b"", mnemonic="", address=offset if address is None else address
        )
        insn.legacy_prefixes = legacy
        return _decode_vex(cur, insn, opsize16, offset, data)

    # --- opcode ------------------------------------------------------------
    pos += 1
    opmap = 0
    opcode = b
    if b != 0x0F:
        entry = _D1[b]
        if entry is None:
            raise DecodeError(f"unknown opcode {opcode:#04x}", offset=offset)
    else:
        if pos >= limit:
            raise DecodeError("truncated instruction", offset=offset)
        opcode = data[pos]
        pos += 1
        opmap = 1
        if opcode == 0x38:
            if pos >= limit:
                raise DecodeError("truncated instruction", offset=offset)
            opcode = data[pos]
            pos += 1
            opmap = 2
            entry = _E38_STORE if opcode in _38_STORES else _E38
        elif opcode == 0x3A:
            if pos >= limit:
                raise DecodeError("truncated instruction", offset=offset)
            opcode = data[pos]
            pos += 1
            opmap = 3
            entry = _E3A_STORE if opcode in _3A_STORES else _E3A
        else:
            entry = _D2[opcode]

    mnemonic, has_modrm, ic, flow, flags, gw, names = entry
    if flags & F_INVALID64:
        raise DecodeError(f"opcode {opcode:#04x} invalid in 64-bit mode",
                          offset=offset)
    opcode_offset = pos - offset - 1

    # --- ModRM / SIB / displacement ----------------------------------------
    modrm = sib = disp = None
    disp_offset = disp_size = 0
    if has_modrm:
        if pos >= limit:
            raise DecodeError("truncated instruction", offset=offset)
        modrm = data[pos]
        pos += 1
        mod = modrm >> 6
        if mod != 3:
            rm = modrm & 7
            if rm == 4:
                if pos >= limit:
                    raise DecodeError("truncated instruction", offset=offset)
                sib = data[pos]
                pos += 1
                if mod == 0:
                    if (sib & 7) == 5:
                        disp_size = 4
                else:
                    disp_size = 1 if mod == 1 else 4
            elif mod == 0:
                if rm == 5:
                    disp_size = 4  # rip-relative (eip-relative with 0x67)
            else:
                disp_size = 1 if mod == 1 else 4
            if disp_size:
                disp_offset = pos - offset
                end = pos + disp_size
                if end > limit:
                    raise DecodeError("truncated instruction", offset=offset)
                v = int.from_bytes(data[pos:end], "little")
                pos = end
                bit = 1 << (disp_size * 8 - 1)
                disp = (v ^ bit) - bit

    # --- immediate ---------------------------------------------------------
    imm = None
    imm_offset = imm_size = 0
    if ic:
        if ic == _IMM_IB or ic == _IMM_REL8:
            ilen = 1
        elif ic == _IMM_IZ or ic == _IMM_REL32:
            ilen = 2 if opsize16 else 4
        elif ic == _IMM_IV:
            if rex is not None and rex & 0x08:
                ilen = 8
            else:
                ilen = 2 if opsize16 else 4
        elif ic == _IMM_GROUP3:
            if ((modrm >> 3) & 7) < 2:  # test r/m, imm
                if opcode == 0xF6:
                    ilen = 1
                else:
                    ilen = 2 if opsize16 else 4
            else:
                ilen = 0
        elif ic == _IMM_IW:
            ilen = 2
        elif ic == _IMM_IW_IB:
            ilen = 3
        else:  # MOFFS
            ilen = 4 if addrsize32 else 8
        if ilen:
            imm_offset = pos - offset
            imm_size = ilen
            end = pos + ilen
            if end > limit:
                raise DecodeError("truncated instruction", offset=offset)
            v = int.from_bytes(data[pos:end], "little")
            pos = end
            if ic == _IMM_REL8 or ic == _IMM_REL32:
                bit = 1 << (ilen * 8 - 1)
                v = (v ^ bit) - bit
            imm = v

    # --- semantics ---------------------------------------------------------
    if names is not None:
        mnemonic = names[(modrm >> 3) & 7]
    if rep:
        if opmap == 0:
            if opcode == 0x90 and mnemonic == "nop":
                mnemonic = "pause"
        elif opmap == 1 and opcode == 0xB8:
            mnemonic = "popcnt"

    if flags & F_WRITES_RM:
        writes_rm = True
    elif gw is not None:
        writes_rm = ((modrm >> 3) & 7) in gw
    else:
        writes_rm = False

    insn = Instruction.__new__(Instruction)
    insn._raw = None
    insn._data = data
    insn._start = offset
    insn._len = pos - offset
    insn.mnemonic = mnemonic
    insn.address = offset if address is None else address
    insn._legacy = legacy
    insn.rex = rex
    insn.vex = None
    insn.opmap = opmap
    insn.opcode = opcode
    insn.opcode_offset = opcode_offset
    insn.modrm = modrm
    insn.sib = sib
    insn.disp = disp
    insn.disp_offset = disp_offset
    insn.disp_size = disp_size
    insn.imm = imm
    insn.imm_offset = imm_offset
    insn.imm_size = imm_size
    insn.flow = flow
    insn.writes_rm = writes_rm
    insn.string_write = (flags & F_STRING_WRITE) != 0
    # raw stays a lazy (buffer, start, length) view for every buffer
    # type, mutable ones included: materialization snapshots the bytes
    # at first access, and a materialized raw is an independent copy
    # that later buffer mutation cannot corrupt.
    return insn


# ---------------------------------------------------------------------------
# Reference implementation (differential-test oracle).
# ---------------------------------------------------------------------------


class _Cursor:
    """Byte cursor with bounds checking over the instruction window."""

    __slots__ = ("data", "start", "pos", "limit")

    def __init__(self, data: bytes, start: int) -> None:
        self.data = data
        self.start = start
        self.pos = start
        self.limit = min(len(data), start + MAX_INSN_LEN)

    def peek(self) -> int:
        if self.pos >= self.limit:
            raise DecodeError("truncated instruction", offset=self.start)
        return self.data[self.pos]

    def take(self) -> int:
        byte = self.peek()
        self.pos += 1
        return byte

    def take_n(self, n: int) -> int:
        """Take *n* bytes as a little-endian unsigned integer."""
        if self.pos + n > self.limit:
            raise DecodeError("truncated instruction", offset=self.start)
        value = int.from_bytes(self.data[self.pos : self.pos + n], "little")
        self.pos += n
        return value

    @property
    def offset(self) -> int:
        """Offset from instruction start."""
        return self.pos - self.start


def _decode_modrm(cur: _Cursor, insn: Instruction, addrsize32: bool) -> None:
    """Decode ModRM, optional SIB, and displacement into *insn*."""
    modrm = cur.take()
    insn.modrm = modrm
    mod = modrm >> 6
    rm = modrm & 7

    disp_size = 0
    if mod == 0:
        if rm == 4:
            insn.sib = cur.take()
            if (insn.sib & 7) == 5:
                disp_size = 4
        elif rm == 5:
            disp_size = 4  # rip-relative (eip-relative with 0x67)
    elif mod == 1:
        if rm == 4:
            insn.sib = cur.take()
        disp_size = 1
    elif mod == 2:
        if rm == 4:
            insn.sib = cur.take()
        disp_size = 4
    # mod == 3: register operand, no displacement.

    if disp_size:
        insn.disp_offset = cur.offset
        insn.disp_size = disp_size
        insn.disp = _signed(cur.take_n(disp_size), disp_size)


def _imm_bytes(kind: Imm, opsize16: bool, rexw: bool, opcode: int,
               modrm_reg: int | None, addrsize32: bool) -> int:
    """Return the immediate length in bytes for the given context."""
    if kind == Imm.NONE:
        return 0
    if kind in (Imm.IB, Imm.REL8):
        return 1
    if kind == Imm.IW:
        return 2
    if kind == Imm.IZ:
        return 2 if opsize16 else 4
    if kind == Imm.REL32:
        return 2 if opsize16 else 4
    if kind == Imm.IV:
        if rexw:
            return 8
        return 2 if opsize16 else 4
    if kind == Imm.IW_IB:
        return 3
    if kind == Imm.MOFFS:
        return 4 if addrsize32 else 8
    if kind == Imm.GROUP3:
        if modrm_reg in (0, 1):  # test r/m, imm
            if opcode == 0xF6:
                return 1
            return 2 if opsize16 else 4
        return 0
    raise AssertionError(f"unhandled immediate kind {kind}")


def _refine_mnemonic(spec: OpSpec, opcode: int, reg: int | None) -> str:
    """Resolve group mnemonics using the ModRM.reg selector."""
    name = spec.mnemonic
    if reg is None:
        return name
    if name == "grp1":
        return _GRP1_NAMES[reg]
    if name == "grp2":
        return _GRP2_NAMES[reg]
    if name == "grp3":
        return _GRP3_NAMES[reg]
    if name == "grp4":
        return ("inc", "dec")[reg] if reg < 2 else "(bad)"
    if name == "grp5":
        return _GRP5_NAMES[reg]
    return name


def decode_reference(data: bytes, offset: int = 0,
                     address: int | None = None) -> Instruction:
    """Decode one instruction (reference implementation).

    Byte-for-byte and field-for-field equivalent to :func:`decode`; kept
    as the slow, obviously-correct oracle the differential tests compare
    the fast path against.
    """
    if offset >= len(data):
        raise DecodeError("offset beyond end of buffer", offset=offset)
    cur = _Cursor(data, offset)

    # --- legacy prefixes ---------------------------------------------------
    legacy = bytearray()
    while True:
        byte = cur.peek()
        if pfx.is_legacy_prefix(byte):
            legacy.append(cur.take())
            if len(legacy) > 14:
                raise DecodeError("prefix run exceeds instruction limit", offset=offset)
        else:
            break

    opsize16 = pfx.OPSIZE in legacy
    addrsize32 = pfx.ADDRSIZE in legacy
    rep = pfx.REP in legacy

    insn = Instruction(raw=b"", mnemonic="", address=offset if address is None else address)
    insn.legacy_prefixes = bytes(legacy)

    # --- REX ----------------------------------------------------------------
    byte = cur.peek()
    if pfx.is_rex(byte):
        insn.rex = cur.take()
        byte = cur.peek()

    rexw = bool(insn.rex and insn.rex & pfx.REX_W)

    # --- VEX / EVEX ----------------------------------------------------------
    if insn.rex is None and byte in (0xC4, 0xC5, 0x62):
        return _decode_vex(cur, insn, opsize16, offset, data)

    # --- opcode ----------------------------------------------------------------
    opcode = cur.take()
    opmap = 0
    if opcode == 0x0F:
        opcode = cur.take()
        opmap = 1
        if opcode == 0x38:
            opcode = cur.take()
            opmap = 2
        elif opcode == 0x3A:
            opcode = cur.take()
            opmap = 3

    if opmap == 0:
        spec = tables.ONE_BYTE.get(opcode)
        if spec is None:
            raise DecodeError(f"unknown opcode {opcode:#04x}", offset=offset)
    elif opmap == 1:
        spec = tables.two_byte_spec(opcode)
    elif opmap == 2:
        spec = tables.THREE_BYTE_38_DEFAULT
        if opcode in tables.THREE_BYTE_38_STORES:
            spec = OpSpec(spec.mnemonic, modrm=True, flags=F_WRITES_RM)
    else:
        spec = tables.THREE_BYTE_3A_DEFAULT
        if opcode in tables.THREE_BYTE_3A_STORES:
            spec = OpSpec(spec.mnemonic, modrm=True, imm=Imm.IB, flags=F_WRITES_RM)

    if spec.flags & F_INVALID64:
        raise DecodeError(f"opcode {opcode:#04x} invalid in 64-bit mode", offset=offset)

    insn.opmap = opmap
    insn.opcode = opcode
    insn.opcode_offset = cur.offset - 1

    # --- ModRM / SIB / displacement ----------------------------------------
    if spec.modrm:
        _decode_modrm(cur, insn, addrsize32)

    # --- immediate -----------------------------------------------------------
    imm_len = _imm_bytes(spec.imm, opsize16, rexw, opcode, insn.reg_raw, addrsize32)
    if imm_len:
        insn.imm_offset = cur.offset
        insn.imm_size = imm_len
        value = cur.take_n(imm_len)
        if spec.imm in (Imm.REL8, Imm.REL32):
            insn.imm = _signed(value, imm_len)
        else:
            insn.imm = value

    # --- semantics ------------------------------------------------------------
    insn.flow = spec.flow
    insn.mnemonic = _refine_mnemonic(spec, opcode, insn.reg_raw)
    if rep and spec.mnemonic in ("nop",) and opmap == 0 and opcode == 0x90:
        insn.mnemonic = "pause"
    if opmap == 1 and opcode == 0xB8 and rep:
        insn.mnemonic = "popcnt"

    key = opcode if opmap == 0 else (0x0F00 | opcode)
    if spec.flags & F_WRITES_RM:
        insn.writes_rm = True
    elif spec.flags & F_GROUP_WRITE:
        regs = tables.GROUP_WRITES.get(key, frozenset())
        insn.writes_rm = insn.reg_raw in regs
    if spec.flags & F_STRING_WRITE:
        insn.string_write = True

    insn._raw = None
    insn._data = data
    insn._start = offset
    insn._len = cur.pos - offset
    return insn


def _decode_vex(cur: _Cursor, insn: Instruction, opsize16: bool,
                offset: int, data: bytes) -> Instruction:
    """Decode a VEX- or EVEX-prefixed instruction (length-exact)."""
    lead = cur.take()
    if lead == 0xC5:  # 2-byte VEX
        p1 = cur.take()
        insn.vex = bytes((lead, p1))
        map_select = 1
    elif lead == 0xC4:  # 3-byte VEX
        p1 = cur.take()
        p2 = cur.take()
        insn.vex = bytes((lead, p1, p2))
        map_select = p1 & 0x1F
    else:  # 0x62: EVEX
        p0 = cur.take()
        p1 = cur.take()
        p2 = cur.take()
        insn.vex = bytes((lead, p0, p1, p2))
        map_select = p0 & 0x07

    opcode = cur.take()
    insn.opmap = map_select
    insn.opcode = opcode
    insn.opcode_offset = cur.offset - 1
    insn.mnemonic = f"vex.m{map_select}.{opcode:02x}"

    # All VEX/EVEX instructions have ModRM except vzeroupper/vzeroall
    # (map 1 opcode 0x77).
    has_modrm = not (map_select == 1 and opcode == 0x77)
    if has_modrm:
        _decode_modrm(cur, insn, addrsize32=False)
    else:
        insn.mnemonic = "vzeroupper"

    kind = tables.vex_imm_kind(map_select, opcode)
    imm_len = _imm_bytes(kind, opsize16, False, opcode, insn.reg_raw, False)
    if imm_len:
        insn.imm_offset = cur.offset
        insn.imm_size = imm_len
        insn.imm = cur.take_n(imm_len)

    # Store detection for the common VEX mov-store forms (map 1).
    if map_select == 1 and opcode in (0x11, 0x13, 0x17, 0x29, 0x2B, 0x7F, 0xD6, 0xE7):
        insn.writes_rm = True

    insn._raw = None
    insn._data = data
    insn._start = offset
    insn._len = cur.pos - offset
    return insn


# ---------------------------------------------------------------------------
# Bulk decoding.
# ---------------------------------------------------------------------------


def decode_all(data: bytes, address: int = 0) -> DecodedRegion:
    """Linearly decode an entire buffer, raising on any invalid byte."""
    region = DecodedRegion(address=address, data=data)
    append = region.instructions.append
    _decode = decode
    off = 0
    n = len(data)
    while off < n:
        insn = _decode(data, off, address + off)
        append(insn)
        off += insn._len
    return region


def decode_buffer(data: bytes, address: int = 0) -> list[Instruction]:
    """Like :func:`decode_all` but skipping undecodable bytes.

    On a decode error, a single byte is skipped (recorded as a ``(bad)``
    pseudo-instruction) and decoding resumes — the behaviour of a robust
    linear-sweep frontend over sections that mix code and data.
    """
    out: list[Instruction] = []
    append = out.append
    _decode = decode
    off = 0
    n = len(data)
    while off < n:
        try:
            insn = _decode(data, off, address + off)
        except DecodeError:
            insn = Instruction(
                raw=bytes(data[off : off + 1]), mnemonic="(bad)",
                address=address + off,
            )
        append(insn)
        off += insn._len
    return out
