"""Opcode metadata tables for x86-64 length decoding and semantics.

The decoder needs, for every opcode, three facts: whether a ModRM byte
follows, what immediate (if any) follows the addressing bytes, and a small
set of semantic flags (branch kind, whether the r/m operand is written,
...).  These tables cover the full one-byte map, the 0F two-byte map, the
0F38/0F3A three-byte maps, and the VEX/EVEX-mapped equivalents — enough to
length-decode arbitrary compiled x86-64 userland code (validated against
objdump in the test suite).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Imm(enum.Enum):
    """Immediate operand kinds (sizes may depend on prefixes)."""

    NONE = 0
    IB = 1  # 1 byte
    IW = 2  # 2 bytes
    IZ = 3  # 4 bytes, or 2 with the 0x66 operand-size prefix
    IV = 4  # 2/4/8 bytes by effective operand size (mov r64, imm64)
    IW_IB = 5  # enter: imm16 + imm8
    REL8 = 6  # 1-byte branch displacement
    REL32 = 7  # 4-byte branch displacement (2 with 0x66, never emitted)
    MOFFS = 8  # 8-byte absolute moffs (4 with 0x67)
    GROUP3 = 9  # F6/F7: Ib/Iz when modrm.reg is 0 or 1 (test), else none


class Flow(enum.Enum):
    """Control-flow classification of an opcode."""

    NONE = 0
    JMP = 1  # direct relative jmp
    JCC = 2  # direct relative conditional jump
    CALL = 3  # direct relative call
    RET = 4
    LOOP = 5  # loop/loopcc/jrcxz: rel8 conditional branches
    INT3 = 6
    SYSCALL = 7
    HLT = 8
    GROUP5 = 9  # FF group: /2 /3 call ind, /4 /5 jmp ind
    INT = 10


# Semantic flags --------------------------------------------------------
F_NONE = 0
F_WRITES_RM = 1 << 0  # instruction writes its ModRM r/m operand
F_GROUP_WRITE = 1 << 1  # write depends on modrm.reg (see GROUP_WRITES)
F_STRING_WRITE = 1 << 2  # implicit store through %rdi (movs/stos)
F_INVALID64 = 1 << 3  # not a valid opcode in 64-bit mode


@dataclass(frozen=True)
class OpSpec:
    """Decoding metadata for a single opcode."""

    mnemonic: str
    modrm: bool = False
    imm: Imm = Imm.NONE
    flow: Flow = Flow.NONE
    flags: int = F_NONE


def _alu_block(base: int, name: str, writes: bool) -> dict[int, OpSpec]:
    """The classic 8-opcode ALU block layout (add/or/.../cmp)."""
    w = F_WRITES_RM if writes else F_NONE
    return {
        base + 0: OpSpec(name, modrm=True, flags=w),  # Eb, Gb
        base + 1: OpSpec(name, modrm=True, flags=w),  # Ev, Gv
        base + 2: OpSpec(name, modrm=True),  # Gb, Eb
        base + 3: OpSpec(name, modrm=True),  # Gv, Ev
        base + 4: OpSpec(name, imm=Imm.IB),  # AL, Ib
        base + 5: OpSpec(name, imm=Imm.IZ),  # rAX, Iz
    }


ONE_BYTE: dict[int, OpSpec] = {}

for _base, _name in (
    (0x00, "add"),
    (0x08, "or"),
    (0x10, "adc"),
    (0x18, "sbb"),
    (0x20, "and"),
    (0x28, "sub"),
    (0x30, "xor"),
):
    ONE_BYTE.update(_alu_block(_base, _name, writes=True))
ONE_BYTE.update(_alu_block(0x38, "cmp", writes=False))

# 0x06/0x0E/... legacy push/pop seg and BCD opcodes: invalid in 64-bit.
for _op in (0x06, 0x07, 0x0E, 0x16, 0x17, 0x1E, 0x1F, 0x27, 0x2F, 0x37, 0x3F):
    ONE_BYTE[_op] = OpSpec("(bad)", flags=F_INVALID64)

# 0x40-0x4F are REX prefixes (consumed before opcode dispatch).
# 0x50-0x5F: push/pop r64.
for _i in range(8):
    ONE_BYTE[0x50 + _i] = OpSpec("push")
    ONE_BYTE[0x58 + _i] = OpSpec("pop")

ONE_BYTE[0x60] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0x61] = OpSpec("(bad)", flags=F_INVALID64)
# 0x62 is the EVEX prefix in 64-bit mode (handled by the decoder).
ONE_BYTE[0x63] = OpSpec("movsxd", modrm=True)
ONE_BYTE[0x68] = OpSpec("push", imm=Imm.IZ)
ONE_BYTE[0x69] = OpSpec("imul", modrm=True, imm=Imm.IZ)
ONE_BYTE[0x6A] = OpSpec("push", imm=Imm.IB)
ONE_BYTE[0x6B] = OpSpec("imul", modrm=True, imm=Imm.IB)
ONE_BYTE[0x6C] = OpSpec("insb", flags=F_STRING_WRITE)
ONE_BYTE[0x6D] = OpSpec("insd", flags=F_STRING_WRITE)
ONE_BYTE[0x6E] = OpSpec("outsb")
ONE_BYTE[0x6F] = OpSpec("outsd")

_CCS = (
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
)
for _i, _cc in enumerate(_CCS):
    ONE_BYTE[0x70 + _i] = OpSpec(f"j{_cc}", imm=Imm.REL8, flow=Flow.JCC)

ONE_BYTE[0x80] = OpSpec("grp1", modrm=True, imm=Imm.IB, flags=F_GROUP_WRITE)
ONE_BYTE[0x81] = OpSpec("grp1", modrm=True, imm=Imm.IZ, flags=F_GROUP_WRITE)
ONE_BYTE[0x82] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0x83] = OpSpec("grp1", modrm=True, imm=Imm.IB, flags=F_GROUP_WRITE)
ONE_BYTE[0x84] = OpSpec("test", modrm=True)
ONE_BYTE[0x85] = OpSpec("test", modrm=True)
ONE_BYTE[0x86] = OpSpec("xchg", modrm=True, flags=F_WRITES_RM)
ONE_BYTE[0x87] = OpSpec("xchg", modrm=True, flags=F_WRITES_RM)
ONE_BYTE[0x88] = OpSpec("mov", modrm=True, flags=F_WRITES_RM)
ONE_BYTE[0x89] = OpSpec("mov", modrm=True, flags=F_WRITES_RM)
ONE_BYTE[0x8A] = OpSpec("mov", modrm=True)
ONE_BYTE[0x8B] = OpSpec("mov", modrm=True)
ONE_BYTE[0x8C] = OpSpec("mov", modrm=True, flags=F_WRITES_RM)
ONE_BYTE[0x8D] = OpSpec("lea", modrm=True)
ONE_BYTE[0x8E] = OpSpec("mov", modrm=True)
ONE_BYTE[0x8F] = OpSpec("pop", modrm=True, flags=F_WRITES_RM)

ONE_BYTE[0x90] = OpSpec("nop")
for _i in range(1, 8):
    ONE_BYTE[0x90 + _i] = OpSpec("xchg")
ONE_BYTE[0x98] = OpSpec("cwtl")
ONE_BYTE[0x99] = OpSpec("cltd")
ONE_BYTE[0x9A] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0x9B] = OpSpec("fwait")
ONE_BYTE[0x9C] = OpSpec("pushf")
ONE_BYTE[0x9D] = OpSpec("popf")
ONE_BYTE[0x9E] = OpSpec("sahf")
ONE_BYTE[0x9F] = OpSpec("lahf")

ONE_BYTE[0xA0] = OpSpec("mov", imm=Imm.MOFFS)
ONE_BYTE[0xA1] = OpSpec("mov", imm=Imm.MOFFS)
ONE_BYTE[0xA2] = OpSpec("mov", imm=Imm.MOFFS, flags=F_STRING_WRITE)
ONE_BYTE[0xA3] = OpSpec("mov", imm=Imm.MOFFS, flags=F_STRING_WRITE)
ONE_BYTE[0xA4] = OpSpec("movsb", flags=F_STRING_WRITE)
ONE_BYTE[0xA5] = OpSpec("movsd", flags=F_STRING_WRITE)
ONE_BYTE[0xA6] = OpSpec("cmpsb")
ONE_BYTE[0xA7] = OpSpec("cmpsd")
ONE_BYTE[0xA8] = OpSpec("test", imm=Imm.IB)
ONE_BYTE[0xA9] = OpSpec("test", imm=Imm.IZ)
ONE_BYTE[0xAA] = OpSpec("stosb", flags=F_STRING_WRITE)
ONE_BYTE[0xAB] = OpSpec("stosd", flags=F_STRING_WRITE)
ONE_BYTE[0xAC] = OpSpec("lodsb")
ONE_BYTE[0xAD] = OpSpec("lodsd")
ONE_BYTE[0xAE] = OpSpec("scasb")
ONE_BYTE[0xAF] = OpSpec("scasd")

for _i in range(8):
    ONE_BYTE[0xB0 + _i] = OpSpec("mov", imm=Imm.IB)
    ONE_BYTE[0xB8 + _i] = OpSpec("mov", imm=Imm.IV)

ONE_BYTE[0xC0] = OpSpec("grp2", modrm=True, imm=Imm.IB, flags=F_WRITES_RM)
ONE_BYTE[0xC1] = OpSpec("grp2", modrm=True, imm=Imm.IB, flags=F_WRITES_RM)
ONE_BYTE[0xC2] = OpSpec("ret", imm=Imm.IW, flow=Flow.RET)
ONE_BYTE[0xC3] = OpSpec("ret", flow=Flow.RET)
# 0xC4/0xC5 are VEX prefixes in 64-bit mode (handled by the decoder).
ONE_BYTE[0xC6] = OpSpec("mov", modrm=True, imm=Imm.IB, flags=F_WRITES_RM)
ONE_BYTE[0xC7] = OpSpec("mov", modrm=True, imm=Imm.IZ, flags=F_WRITES_RM)
ONE_BYTE[0xC8] = OpSpec("enter", imm=Imm.IW_IB)
ONE_BYTE[0xC9] = OpSpec("leave")
ONE_BYTE[0xCA] = OpSpec("retf", imm=Imm.IW, flow=Flow.RET)
ONE_BYTE[0xCB] = OpSpec("retf", flow=Flow.RET)
ONE_BYTE[0xCC] = OpSpec("int3", flow=Flow.INT3)
ONE_BYTE[0xCD] = OpSpec("int", imm=Imm.IB, flow=Flow.INT)
ONE_BYTE[0xCE] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0xCF] = OpSpec("iret", flow=Flow.RET)

for _op in (0xD0, 0xD1, 0xD2, 0xD3):
    ONE_BYTE[_op] = OpSpec("grp2", modrm=True, flags=F_WRITES_RM)
ONE_BYTE[0xD4] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0xD5] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0xD6] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0xD7] = OpSpec("xlat")

# x87 escapes: always ModRM.  Memory-store forms are resolved by
# X87_STORE_REGS below (opcode low 3 bits -> modrm.reg values that store).
for _op in range(0xD8, 0xE0):
    ONE_BYTE[_op] = OpSpec("x87", modrm=True, flags=F_GROUP_WRITE)

ONE_BYTE[0xE0] = OpSpec("loopne", imm=Imm.REL8, flow=Flow.LOOP)
ONE_BYTE[0xE1] = OpSpec("loope", imm=Imm.REL8, flow=Flow.LOOP)
ONE_BYTE[0xE2] = OpSpec("loop", imm=Imm.REL8, flow=Flow.LOOP)
ONE_BYTE[0xE3] = OpSpec("jrcxz", imm=Imm.REL8, flow=Flow.LOOP)
ONE_BYTE[0xE4] = OpSpec("in", imm=Imm.IB)
ONE_BYTE[0xE5] = OpSpec("in", imm=Imm.IB)
ONE_BYTE[0xE6] = OpSpec("out", imm=Imm.IB)
ONE_BYTE[0xE7] = OpSpec("out", imm=Imm.IB)
ONE_BYTE[0xE8] = OpSpec("call", imm=Imm.REL32, flow=Flow.CALL)
ONE_BYTE[0xE9] = OpSpec("jmp", imm=Imm.REL32, flow=Flow.JMP)
ONE_BYTE[0xEA] = OpSpec("(bad)", flags=F_INVALID64)
ONE_BYTE[0xEB] = OpSpec("jmp", imm=Imm.REL8, flow=Flow.JMP)
ONE_BYTE[0xEC] = OpSpec("in")
ONE_BYTE[0xED] = OpSpec("in")
ONE_BYTE[0xEE] = OpSpec("out")
ONE_BYTE[0xEF] = OpSpec("out")

# 0xF0/F2/F3 are prefixes.
ONE_BYTE[0xF1] = OpSpec("int1", flow=Flow.INT)
ONE_BYTE[0xF4] = OpSpec("hlt", flow=Flow.HLT)
ONE_BYTE[0xF5] = OpSpec("cmc")
ONE_BYTE[0xF6] = OpSpec("grp3", modrm=True, imm=Imm.GROUP3, flags=F_GROUP_WRITE)
ONE_BYTE[0xF7] = OpSpec("grp3", modrm=True, imm=Imm.GROUP3, flags=F_GROUP_WRITE)
ONE_BYTE[0xF8] = OpSpec("clc")
ONE_BYTE[0xF9] = OpSpec("stc")
ONE_BYTE[0xFA] = OpSpec("cli")
ONE_BYTE[0xFB] = OpSpec("sti")
ONE_BYTE[0xFC] = OpSpec("cld")
ONE_BYTE[0xFD] = OpSpec("std")
ONE_BYTE[0xFE] = OpSpec("grp4", modrm=True, flags=F_GROUP_WRITE)
ONE_BYTE[0xFF] = OpSpec("grp5", modrm=True, flow=Flow.GROUP5, flags=F_GROUP_WRITE)

# modrm.reg values that make a "group" opcode write its r/m operand.
GROUP_WRITES: dict[int, frozenset[int]] = {
    0x80: frozenset({0, 1, 2, 3, 4, 5, 6}),  # /7 is cmp
    0x81: frozenset({0, 1, 2, 3, 4, 5, 6}),
    0x83: frozenset({0, 1, 2, 3, 4, 5, 6}),
    0xF6: frozenset({2, 3}),  # not, neg
    0xF7: frozenset({2, 3}),
    0xFE: frozenset({0, 1}),  # inc, dec
    0xFF: frozenset({0, 1}),  # inc, dec (others are call/jmp/push)
    # x87: store forms.  fst/fstp (D9 /2 /3, DD /2 /3, D8 none),
    # fist/fistp families, fstcw/fnstsw, fsave etc.  Conservative superset.
    0xD8: frozenset(),
    0xD9: frozenset({2, 3, 6, 7}),  # fst, fstp, fnstenv, fnstcw
    0xDA: frozenset(),
    0xDB: frozenset({1, 2, 3, 7}),  # fisttp, fist, fistp, fstp80
    0xDC: frozenset(),
    0xDD: frozenset({1, 2, 3, 6, 7}),  # fisttp, fst, fstp, fnsave, fnstsw
    0xDE: frozenset(),
    0xDF: frozenset({1, 2, 3, 6, 7}),  # fisttp, fist, fistp, fbstp, fistp64
}

# modrm.reg values of the FF group that are indirect calls / jumps.
GRP5_CALL_REGS = frozenset({2, 3})
GRP5_JMP_REGS = frozenset({4, 5})
GRP5_PUSH_REG = 6


# ---------------------------------------------------------------------------
# Two-byte (0F) map.
# ---------------------------------------------------------------------------
# Default for unlisted 0F opcodes: ModRM present, no immediate.  This is
# correct for the large uniform SSE/MMX region (0F 10-7F, 0F 90-FF) except
# for the immediates and no-ModRM opcodes listed explicitly below.

_TB_DEFAULT = OpSpec("op0f", modrm=True)

TWO_BYTE: dict[int, OpSpec] = {}

TWO_BYTE[0x00] = OpSpec("grp6", modrm=True)
TWO_BYTE[0x01] = OpSpec("grp7", modrm=True)
TWO_BYTE[0x02] = OpSpec("lar", modrm=True)
TWO_BYTE[0x03] = OpSpec("lsl", modrm=True)
TWO_BYTE[0x05] = OpSpec("syscall", flow=Flow.SYSCALL)
TWO_BYTE[0x06] = OpSpec("clts")
TWO_BYTE[0x07] = OpSpec("sysret")
TWO_BYTE[0x08] = OpSpec("invd")
TWO_BYTE[0x09] = OpSpec("wbinvd")
TWO_BYTE[0x0B] = OpSpec("ud2")
TWO_BYTE[0x0D] = OpSpec("prefetch", modrm=True)
TWO_BYTE[0x0E] = OpSpec("femms")
# 0F 0F (3DNow!) takes ModRM + imm8 opcode suffix.
TWO_BYTE[0x0F] = OpSpec("3dnow", modrm=True, imm=Imm.IB)

# SSE mov block: stores flagged (destination is r/m).
for _op in (0x10, 0x12, 0x14, 0x15, 0x16, 0x18, 0x19, 0x1A, 0x1B, 0x1C, 0x1D, 0x1E):
    TWO_BYTE[_op] = OpSpec("sse", modrm=True)
for _op in (0x11, 0x13, 0x17):
    TWO_BYTE[_op] = OpSpec("sse-store", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0x1F] = OpSpec("nop", modrm=True)

for _op in range(0x20, 0x24):
    TWO_BYTE[_op] = OpSpec("movcr", modrm=True)
for _op in (0x28, 0x2A, 0x2C, 0x2D, 0x2E, 0x2F):
    TWO_BYTE[_op] = OpSpec("sse", modrm=True)
TWO_BYTE[0x29] = OpSpec("movaps-store", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0x2B] = OpSpec("movntps", modrm=True, flags=F_WRITES_RM)

TWO_BYTE[0x30] = OpSpec("wrmsr")
TWO_BYTE[0x31] = OpSpec("rdtsc")
TWO_BYTE[0x32] = OpSpec("rdmsr")
TWO_BYTE[0x33] = OpSpec("rdpmc")
TWO_BYTE[0x34] = OpSpec("sysenter")
TWO_BYTE[0x35] = OpSpec("sysexit")
TWO_BYTE[0x37] = OpSpec("getsec")

for _i, _cc in enumerate(_CCS):
    TWO_BYTE[0x40 + _i] = OpSpec(f"cmov{_cc}", modrm=True)

for _op in range(0x50, 0x70):
    TWO_BYTE[_op] = OpSpec("sse", modrm=True)
TWO_BYTE[0x70] = OpSpec("pshuf", modrm=True, imm=Imm.IB)
TWO_BYTE[0x71] = OpSpec("grp12", modrm=True, imm=Imm.IB)
TWO_BYTE[0x72] = OpSpec("grp13", modrm=True, imm=Imm.IB)
TWO_BYTE[0x73] = OpSpec("grp14", modrm=True, imm=Imm.IB)
for _op in range(0x74, 0x77):
    TWO_BYTE[_op] = OpSpec("sse", modrm=True)
TWO_BYTE[0x77] = OpSpec("emms")
TWO_BYTE[0x78] = OpSpec("vmread", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0x79] = OpSpec("vmwrite", modrm=True)
TWO_BYTE[0x7C] = OpSpec("sse", modrm=True)
TWO_BYTE[0x7D] = OpSpec("sse", modrm=True)
TWO_BYTE[0x7E] = OpSpec("movd-store", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0x7F] = OpSpec("movq-store", modrm=True, flags=F_WRITES_RM)

for _i, _cc in enumerate(_CCS):
    TWO_BYTE[0x80 + _i] = OpSpec(f"j{_cc}", imm=Imm.REL32, flow=Flow.JCC)
for _i, _cc in enumerate(_CCS):
    TWO_BYTE[0x90 + _i] = OpSpec(f"set{_cc}", modrm=True, flags=F_WRITES_RM)

TWO_BYTE[0xA0] = OpSpec("push")
TWO_BYTE[0xA1] = OpSpec("pop")
TWO_BYTE[0xA2] = OpSpec("cpuid")
TWO_BYTE[0xA3] = OpSpec("bt", modrm=True)
TWO_BYTE[0xA4] = OpSpec("shld", modrm=True, imm=Imm.IB, flags=F_WRITES_RM)
TWO_BYTE[0xA5] = OpSpec("shld", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xA8] = OpSpec("push")
TWO_BYTE[0xA9] = OpSpec("pop")
TWO_BYTE[0xAA] = OpSpec("rsm")
TWO_BYTE[0xAB] = OpSpec("bts", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xAC] = OpSpec("shrd", modrm=True, imm=Imm.IB, flags=F_WRITES_RM)
TWO_BYTE[0xAD] = OpSpec("shrd", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xAE] = OpSpec("grp15", modrm=True)
TWO_BYTE[0xAF] = OpSpec("imul", modrm=True)

TWO_BYTE[0xB0] = OpSpec("cmpxchg", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xB1] = OpSpec("cmpxchg", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xB2] = OpSpec("lss", modrm=True)
TWO_BYTE[0xB3] = OpSpec("btr", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xB4] = OpSpec("lfs", modrm=True)
TWO_BYTE[0xB5] = OpSpec("lgs", modrm=True)
TWO_BYTE[0xB6] = OpSpec("movzx", modrm=True)
TWO_BYTE[0xB7] = OpSpec("movzx", modrm=True)
TWO_BYTE[0xB8] = OpSpec("popcnt", modrm=True)
TWO_BYTE[0xB9] = OpSpec("ud1", modrm=True)
TWO_BYTE[0xBA] = OpSpec("grp8", modrm=True, imm=Imm.IB, flags=F_GROUP_WRITE)
TWO_BYTE[0xBB] = OpSpec("btc", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xBC] = OpSpec("bsf", modrm=True)
TWO_BYTE[0xBD] = OpSpec("bsr", modrm=True)
TWO_BYTE[0xBE] = OpSpec("movsx", modrm=True)
TWO_BYTE[0xBF] = OpSpec("movsx", modrm=True)

TWO_BYTE[0xC0] = OpSpec("xadd", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xC1] = OpSpec("xadd", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xC2] = OpSpec("cmpps", modrm=True, imm=Imm.IB)
TWO_BYTE[0xC3] = OpSpec("movnti", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xC4] = OpSpec("pinsrw", modrm=True, imm=Imm.IB)
TWO_BYTE[0xC5] = OpSpec("pextrw", modrm=True, imm=Imm.IB)
TWO_BYTE[0xC6] = OpSpec("shufps", modrm=True, imm=Imm.IB)
TWO_BYTE[0xC7] = OpSpec("grp9", modrm=True, flags=F_GROUP_WRITE)
for _i in range(8):
    TWO_BYTE[0xC8 + _i] = OpSpec("bswap")

for _op in range(0xD0, 0x100):
    TWO_BYTE[_op] = OpSpec("sse", modrm=True)
TWO_BYTE[0xD6] = OpSpec("movq-store", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xE7] = OpSpec("movnt", modrm=True, flags=F_WRITES_RM)
TWO_BYTE[0xF7] = OpSpec("maskmov", modrm=True, flags=F_STRING_WRITE)
TWO_BYTE[0xFF] = OpSpec("ud0", modrm=True)

GROUP_WRITES[0x0FBA] = frozenset({5, 6, 7})  # bts/btr/btc imm forms
GROUP_WRITES[0x0FC7] = frozenset({1})  # cmpxchg8b/16b

# ---------------------------------------------------------------------------
# Three-byte maps.
# ---------------------------------------------------------------------------
# 0F 38: ModRM, no immediate (movbe/crc32 included).
THREE_BYTE_38_DEFAULT = OpSpec("op0f38", modrm=True)
THREE_BYTE_38_STORES = frozenset({0xF1})  # movbe m, r

# 0F 3A: ModRM + imm8 throughout.
THREE_BYTE_3A_DEFAULT = OpSpec("op0f3a", modrm=True, imm=Imm.IB)
THREE_BYTE_3A_STORES = frozenset({0x14, 0x15, 0x16, 0x17})  # pextrb/w/d, extractps


def two_byte_spec(opcode: int) -> OpSpec:
    """Return the OpSpec for a 0F-map opcode."""
    return TWO_BYTE.get(opcode, _TB_DEFAULT)


# VEX/EVEX imm8 opcodes in map 1 (the 0F map): these carry imm8 in their
# VEX-encoded forms as well; reuse the legacy table's imm classification.
def vex_imm_kind(map_select: int, opcode: int) -> Imm:
    """Immediate kind for a VEX/EVEX-encoded opcode in the given map."""
    if map_select == 1:
        return two_byte_spec(opcode).imm
    if map_select == 2:
        return Imm.NONE
    if map_select == 3:
        return Imm.IB
    # Maps 4+ (EVEX only): no immediates in the subset we care about.
    return Imm.NONE
