"""x86-64 encoder for the instruction repertoire the rewriter emits.

E9Patch only ever needs to *emit* a small, fixed set of instructions:
relative jumps (possibly prefix-padded for tactic T1), trampoline
bookkeeping (push/pop, pushf/popf, mov, lea, call), and the loader stub
(mov imm, syscall).  This module provides those encodings plus a tiny
label-based :class:`Assembler` used to build trampolines and loaders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EncodeError
from repro.x86 import prefixes as pfx
from repro.x86.insn import Instruction

JMP_REL32_OPCODE = 0xE9
JMP_REL8_OPCODE = 0xEB
CALL_REL32_OPCODE = 0xE8

REL32_MIN = -(1 << 31)
REL32_MAX = (1 << 31) - 1
REL8_MIN = -128
REL8_MAX = 127

# Register numbers.
RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)


def _check_rel(rel: int, lo: int, hi: int) -> None:
    if not lo <= rel <= hi:
        raise EncodeError(f"relative displacement {rel:#x} out of range [{lo:#x}, {hi:#x}]")


def encode_jmp_rel32(rel: int, padding: int = 0) -> bytes:
    """Encode ``jmpq rel32``, optionally padded with redundant prefixes.

    *padding* extra prefix bytes lengthen the encoding without changing
    semantics (tactic T1).  The total length is ``padding + 5``.
    """
    _check_rel(rel, REL32_MIN, REL32_MAX)
    pad = pfx.jump_padding(padding)
    return pad + bytes((JMP_REL32_OPCODE,)) + (rel & 0xFFFFFFFF).to_bytes(4, "little")


def encode_jmp_rel8(rel: int) -> bytes:
    """Encode ``jmp rel8`` (two bytes)."""
    _check_rel(rel, REL8_MIN, REL8_MAX)
    return bytes((JMP_REL8_OPCODE, rel & 0xFF))


def encode_jcc_rel32(cc: int, rel: int) -> bytes:
    """Encode ``jcc rel32`` (0F 80+cc, six bytes); *cc* in 0..15."""
    if not 0 <= cc <= 15:
        raise EncodeError(f"condition code {cc} out of range")
    _check_rel(rel, REL32_MIN, REL32_MAX)
    return bytes((0x0F, 0x80 | cc)) + (rel & 0xFFFFFFFF).to_bytes(4, "little")


def encode_call_rel32(rel: int) -> bytes:
    """Encode ``callq rel32`` (five bytes)."""
    _check_rel(rel, REL32_MIN, REL32_MAX)
    return bytes((CALL_REL32_OPCODE,)) + (rel & 0xFFFFFFFF).to_bytes(4, "little")


def encode_int3() -> bytes:
    return b"\xcc"


def encode_ret() -> bytes:
    return b"\xc3"


_NOPS = {
    1: b"\x90",
    2: b"\x66\x90",
    3: b"\x0f\x1f\x00",
    4: b"\x0f\x1f\x40\x00",
    5: b"\x0f\x1f\x44\x00\x00",
    6: b"\x66\x0f\x1f\x44\x00\x00",
    7: b"\x0f\x1f\x80\x00\x00\x00\x00",
    8: b"\x0f\x1f\x84\x00\x00\x00\x00\x00",
    9: b"\x66\x0f\x1f\x84\x00\x00\x00\x00\x00",
}


def encode_nop(length: int = 1) -> bytes:
    """Encode a NOP of exactly *length* bytes (standard long-NOP forms)."""
    if length <= 0:
        raise EncodeError("nop length must be positive")
    out = bytearray()
    while length > 9:
        out += _NOPS[9]
        length -= 9
    out += _NOPS[length]
    return bytes(out)


def _rex(w: bool = False, r: int = 0, x: int = 0, b: int = 0) -> int:
    return (
        pfx.REX_BASE
        | (pfx.REX_W if w else 0)
        | (pfx.REX_R if r >= 8 else 0)
        | (pfx.REX_X if x >= 8 else 0)
        | (pfx.REX_B if b >= 8 else 0)
    )


@dataclass
class _Fixup:
    """A pending displacement or absolute address referring to a label."""

    offset: int  # position of the displacement field
    size: int  # 1 or 4 (relative) / 8 (absolute)
    label: str
    addend: int  # displacement is label - (offset + size) + addend
    absolute: bool = False  # write base+label as a 64-bit absolute value


@dataclass
class Assembler:
    """A tiny label-based x86-64 assembler for trampolines and loaders.

    The assembler emits at a known *base* virtual address so absolute
    branch targets outside the buffer can be encoded directly.

    >>> a = Assembler(base=0x1000)
    >>> a.push(RAX); a.pop(RAX); a.ret()
    >>> a.bytes()
    b'PX\\xc3'
    """

    base: int = 0
    buf: bytearray = field(default_factory=bytearray)
    labels: dict[str, int] = field(default_factory=dict)
    fixups: list[_Fixup] = field(default_factory=list)

    # -- plumbing -----------------------------------------------------------

    @property
    def here(self) -> int:
        """Current emission address."""
        return self.base + len(self.buf)

    def raw(self, data: bytes) -> None:
        """Append raw machine code."""
        self.buf += data

    def label(self, name: str) -> None:
        if name in self.labels:
            raise EncodeError(f"duplicate label {name!r}")
        self.labels[name] = len(self.buf)

    def _emit_rel(self, size: int, target: int | str | None) -> None:
        if isinstance(target, str):
            self.fixups.append(_Fixup(len(self.buf), size, target, 0))
            self.buf += b"\x00" * size
        else:
            assert target is not None
            rel = target - (self.here + size)
            if size == 1:
                _check_rel(rel, REL8_MIN, REL8_MAX)
            else:
                _check_rel(rel, REL32_MIN, REL32_MAX)
            self.buf += (rel & ((1 << (size * 8)) - 1)).to_bytes(size, "little")

    def bytes(self) -> bytes:
        """Resolve fixups and return the machine code."""
        for fix in self.fixups:
            if fix.label not in self.labels:
                raise EncodeError(f"undefined label {fix.label!r}")
            target = self.base + self.labels[fix.label]
            if fix.absolute:
                raw = ((target + fix.addend) & 0xFFFFFFFFFFFFFFFF).to_bytes(
                    8, "little"
                )
                self.buf[fix.offset : fix.offset + 8] = raw
                continue
            rel = target - (self.base + fix.offset + fix.size) + fix.addend
            if fix.size == 1:
                _check_rel(rel, REL8_MIN, REL8_MAX)
            else:
                _check_rel(rel, REL32_MIN, REL32_MAX)
            raw = (rel & ((1 << (fix.size * 8)) - 1)).to_bytes(fix.size, "little")
            self.buf[fix.offset : fix.offset + fix.size] = raw
        self.fixups.clear()
        return bytes(self.buf)

    # -- instructions ---------------------------------------------------------

    def push(self, reg: int) -> None:
        if reg >= 8:
            self.buf.append(_rex(b=reg))
        self.buf.append(0x50 | (reg & 7))

    def pop(self, reg: int) -> None:
        if reg >= 8:
            self.buf.append(_rex(b=reg))
        self.buf.append(0x58 | (reg & 7))

    def pushfq(self) -> None:
        self.buf.append(0x9C)

    def popfq(self) -> None:
        self.buf.append(0x9D)

    def mov_imm64(self, reg: int, imm: int) -> None:
        """movabs $imm64, %reg"""
        self.buf.append(_rex(w=True, b=reg))
        self.buf.append(0xB8 | (reg & 7))
        self.buf += (imm & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")

    def mov_label64(self, reg: int, label: str, addend: int = 0) -> None:
        """movabs $<base+label+addend>, %reg (resolved at bytes() time)."""
        self.buf.append(_rex(w=True, b=reg))
        self.buf.append(0xB8 | (reg & 7))
        self.fixups.append(
            _Fixup(len(self.buf), 8, label, addend, absolute=True)
        )
        self.buf += b"\x00" * 8

    def mov_imm32(self, reg: int, imm: int) -> None:
        """mov $imm32, %reg32 (zero-extends)."""
        if reg >= 8:
            self.buf.append(_rex(b=reg))
        self.buf.append(0xB8 | (reg & 7))
        self.buf += (imm & 0xFFFFFFFF).to_bytes(4, "little")

    def mov_reg(self, dst: int, src: int) -> None:
        """mov %src, %dst (64-bit)."""
        self.buf.append(_rex(w=True, r=src, b=dst))
        self.buf.append(0x89)
        self.buf.append(0xC0 | ((src & 7) << 3) | (dst & 7))

    def mov_load(self, dst: int, base: int, disp: int = 0) -> None:
        """mov disp(%base), %dst (64-bit load)."""
        self._mem_op(0x8B, dst, base, disp)

    def mov_store(self, base: int, src: int, disp: int = 0) -> None:
        """mov %src, disp(%base) (64-bit store)."""
        self._mem_op(0x89, src, base, disp)

    def _mem_op(self, opcode: int, reg: int, base: int, disp: int) -> None:
        self.buf.append(_rex(w=True, r=reg, b=base))
        self.buf.append(opcode)
        basel = base & 7
        need_sib = basel == RSP
        if disp == 0 and basel != RBP:
            self.buf.append(0x00 | ((reg & 7) << 3) | (0x04 if need_sib else basel))
            if need_sib:
                self.buf.append(0x24)
        elif -128 <= disp <= 127:
            self.buf.append(0x40 | ((reg & 7) << 3) | (0x04 if need_sib else basel))
            if need_sib:
                self.buf.append(0x24)
            self.buf.append(disp & 0xFF)
        else:
            self.buf.append(0x80 | ((reg & 7) << 3) | (0x04 if need_sib else basel))
            if need_sib:
                self.buf.append(0x24)
            self.buf += (disp & 0xFFFFFFFF).to_bytes(4, "little")

    def add_imm(self, reg: int, imm: int) -> None:
        """add $imm32, %reg (64-bit)."""
        self.buf.append(_rex(w=True, b=reg))
        if -128 <= imm <= 127:
            self.buf += bytes((0x83, 0xC0 | (reg & 7), imm & 0xFF))
        else:
            self.buf += bytes((0x81, 0xC0 | (reg & 7)))
            self.buf += (imm & 0xFFFFFFFF).to_bytes(4, "little")

    def sub_imm(self, reg: int, imm: int) -> None:
        self.buf.append(_rex(w=True, b=reg))
        if -128 <= imm <= 127:
            self.buf += bytes((0x83, 0xE8 | (reg & 7), imm & 0xFF))
        else:
            self.buf += bytes((0x81, 0xE8 | (reg & 7)))
            self.buf += (imm & 0xFFFFFFFF).to_bytes(4, "little")

    def inc_mem64(self, base: int, disp: int = 0) -> None:
        """incq disp(%base)."""
        self._mem_op_noreg(0xFF, 0, base, disp)

    def inc_mem64_rip(self, target: int) -> None:
        """incq (target - rip)(%rip) — position-independent, fixed 7 bytes.

        Trampolines mapped inside the image (base + link-time vaddr)
        keep their displacement to *target* constant under any load
        base, so this is the counter encoding for ET_DYN images.
        """
        rel = target - (self.here + 7)
        _check_rel(rel, -(1 << 31), (1 << 31) - 1)
        self.buf += bytes((0x48, 0xFF, 0x05))
        self.buf += (rel & 0xFFFFFFFF).to_bytes(4, "little")

    def _mem_op_noreg(self, opcode: int, ext: int, base: int, disp: int) -> None:
        self.buf.append(_rex(w=True, b=base))
        self.buf.append(opcode)
        basel = base & 7
        need_sib = basel == RSP
        if disp == 0 and basel != RBP:
            self.buf.append(0x00 | (ext << 3) | (0x04 if need_sib else basel))
            if need_sib:
                self.buf.append(0x24)
        elif -128 <= disp <= 127:
            self.buf.append(0x40 | (ext << 3) | (0x04 if need_sib else basel))
            if need_sib:
                self.buf.append(0x24)
            self.buf.append(disp & 0xFF)
        else:
            self.buf.append(0x80 | (ext << 3) | (0x04 if need_sib else basel))
            if need_sib:
                self.buf.append(0x24)
            self.buf += (disp & 0xFFFFFFFF).to_bytes(4, "little")

    def lea_rip(self, reg: int, target: int | str) -> None:
        """lea target(%rip), %reg."""
        self.buf.append(_rex(w=True, r=reg))
        self.buf.append(0x8D)
        self.buf.append(0x05 | ((reg & 7) << 3))
        self._emit_rel(4, target)

    def lea_from_modrm(self, reg: int, insn: Instruction) -> None:
        """lea <mem operand of insn>, %reg.

        Rebuilds *insn*'s memory addressing expression as a ``lea`` so a
        trampoline can compute the effective address the original
        instruction was about to access (used by the LowFat hardening
        instrumentation).  rip-relative operands are rejected.
        """
        if not insn.has_mem_operand:
            raise EncodeError("instruction has no memory operand")
        if insn.rip_relative:
            raise EncodeError("cannot rebuild a rip-relative operand with lea")
        assert insn.modrm is not None
        src_rex = insn.rex or 0
        rex = (
            pfx.REX_BASE
            | pfx.REX_W
            | (pfx.REX_R if reg >= 8 else 0)
            | (src_rex & (pfx.REX_X | pfx.REX_B))
        )
        self.buf.append(rex)
        self.buf.append(0x8D)
        modrm = (insn.modrm & 0xC7) | ((reg & 7) << 3)
        self.buf.append(modrm)
        if insn.sib is not None:
            self.buf.append(insn.sib)
        if insn.disp_size:
            self.buf += insn.raw[insn.disp_offset : insn.disp_offset + insn.disp_size]

    def call(self, target: int | str) -> None:
        self.buf.append(CALL_REL32_OPCODE)
        self._emit_rel(4, target)

    def call_reg(self, reg: int) -> None:
        if reg >= 8:
            self.buf.append(_rex(b=reg))
        self.buf += bytes((0xFF, 0xD0 | (reg & 7)))

    def jmp(self, target: int | str) -> None:
        self.buf.append(JMP_REL32_OPCODE)
        self._emit_rel(4, target)

    def jmp_short(self, target: int | str) -> None:
        self.buf.append(JMP_REL8_OPCODE)
        self._emit_rel(1, target)

    def jmp_reg(self, reg: int) -> None:
        if reg >= 8:
            self.buf.append(_rex(b=reg))
        self.buf += bytes((0xFF, 0xE0 | (reg & 7)))

    def jcc(self, cc: int, target: int | str) -> None:
        self.buf += bytes((0x0F, 0x80 | cc))
        self._emit_rel(4, target)

    def jcc_short(self, cc: int, target: int | str) -> None:
        self.buf.append(0x70 | cc)
        self._emit_rel(1, target)

    def cmp_imm(self, reg: int, imm: int) -> None:
        self.buf.append(_rex(w=True, b=reg))
        if -128 <= imm <= 127:
            self.buf += bytes((0x83, 0xF8 | (reg & 7), imm & 0xFF))
        else:
            self.buf += bytes((0x81, 0xF8 | (reg & 7)))
            self.buf += (imm & 0xFFFFFFFF).to_bytes(4, "little")

    def ret(self) -> None:
        self.buf.append(0xC3)

    def syscall(self) -> None:
        self.buf += b"\x0f\x05"

    def int3(self) -> None:
        self.buf.append(0xCC)

    def nop(self, length: int = 1) -> None:
        self.buf += encode_nop(length)
