"""Control-flow and memory-write classification used by the frontends.

Implements the paper's two instrumentation applications:

* **A1** — all direct ``jmp``/``jcc`` instructions (a control-flow-agnostic
  analogue of basic-block counting);
* **A2** — all instructions that may write to heap pointers, i.e. memory
  writes excluding stores through ``%rsp`` (stack) and ``%rip`` (globals).
"""

from __future__ import annotations

from repro.x86 import prefixes as pfx
from repro.x86.insn import Instruction, OperandKind, RSP


def is_patchable_jump(insn: Instruction) -> bool:
    """A1 matcher: direct relative jmp / jcc instructions."""
    return insn.is_jump


def _movq_load_exception(insn: Instruction) -> bool:
    """F3 0F 7E is ``movq xmm, m64`` — a load despite sharing opcode 0x7E
    with the store forms (66 0F 7E / 0F 7E)."""
    return (
        insn.opmap == 1
        and insn.opcode == 0x7E
        and pfx.REP in insn.legacy_prefixes
    )


def is_memory_write(insn: Instruction) -> bool:
    """True if the instruction stores to memory through any operand."""
    if insn.string_write:
        return True
    if not insn.writes_rm:
        return False
    if insn.rm_kind not in (OperandKind.MEM, OperandKind.MEM_RIP):
        return False
    if _movq_load_exception(insn):
        return False
    return True


def is_heap_write(insn: Instruction) -> bool:
    """A2 matcher: memory writes that may target the heap.

    Excludes rip-relative stores (globals) and stores whose base register
    is ``%rsp`` (stack-local writes), per Section 6.3 of the paper.
    """
    if insn.string_write and not insn.imm_size:  # movs/stos via %rdi
        return True
    if not insn.writes_rm:
        return False
    kind = insn.rm_kind
    if kind == OperandKind.MEM_RIP or kind != OperandKind.MEM:
        return False
    if _movq_load_exception(insn):
        return False
    if insn.mem_base == RSP:
        return False
    return True


def branch_target(insn: Instruction) -> int | None:
    """Absolute target of a direct relative branch, else None."""
    return insn.target
