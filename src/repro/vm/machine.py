"""Whole-program execution: ELF loading, syscalls, signals, accounting.

The :class:`Machine` runs static executables produced by
:mod:`repro.elf.builder`, :mod:`repro.synth`, or the rewriter — including
loader-mode outputs, whose injected stub performs real ``open``/``mmap``/
``close`` syscalls against the VM.  ``int3`` traps model the paper's B0
baseline: the handler emulates the displaced instruction at a
configurable many-instruction cost, reproducing the kernel round-trip
penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VmError
from repro.elf import constants as elfc
from repro.elf.reader import ElfFile
from repro.vm.cpu import EV_HLT, EV_INT3, EV_SYSCALL, MASK64, Cpu
from repro.vm.memory import (
    PAGE_SIZE,
    Memory,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)

STACK_TOP = 0x7FFF_FFFF_E000
STACK_SIZE = 1 << 20

# Cost (in instruction units) of one SIGTRAP kernel round-trip, modelling
# the paper's "orders of magnitude" slower B0 baseline.
DEFAULT_TRAP_COST = 3000


@dataclass
class RunResult:
    """Observable outcome of a VM run."""

    exit_code: int | None
    stdout: bytes
    instructions: int
    cost: int  # instructions + trap penalties
    transfers: int = 0  # taken control transfers
    traps: int = 0
    reason: str = "exit"

    @property
    def observable(self) -> tuple[int | None, bytes]:
        """The behaviour tuple compared in differential tests."""
        return (self.exit_code, self.stdout)

    def weighted_cost(self, transfer_weight: int = 2) -> int:
        """Cost with taken branches charged extra, approximating the
        pipeline-redirect penalty of the rewriter's trampoline jumps."""
        return self.cost + transfer_weight * self.transfers


def load_elf(mem: Memory, data: bytes, *, base: int = 0) -> ElfFile:
    """Map an ELF image's PT_LOAD segments into VM memory."""
    elf = ElfFile(data)
    for phdr in elf.phdrs:
        if phdr.type != elfc.PT_LOAD:
            continue
        prot = 0
        if phdr.flags & elfc.PF_R:
            prot |= PROT_READ
        if phdr.flags & elfc.PF_W:
            prot |= PROT_WRITE
        if phdr.flags & elfc.PF_X:
            prot |= PROT_EXEC
        vaddr = base + phdr.vaddr
        page_lo = vaddr & ~(PAGE_SIZE - 1)
        file_lo = phdr.offset & ~(PAGE_SIZE - 1)
        span = vaddr + phdr.memsz - page_lo
        mem.map_file(page_lo, span, prot, data, file_lo)
        # .bss portion (memsz > filesz): zero-fill beyond the file bytes.
        if phdr.memsz > phdr.filesz:
            zero_lo = vaddr + phdr.filesz
            zero_hi = vaddr + phdr.memsz
            # Only whole trailing pages need fresh anonymous frames; the
            # partial page is fixed up by an explicit write of zeros.
            first_full = (zero_lo + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
            if first_full < zero_hi:
                mem.map_anonymous(first_full,
                                  ((zero_hi - first_full + PAGE_SIZE - 1)
                                   // PAGE_SIZE) * PAGE_SIZE, prot)
            if zero_lo < first_full:
                writable_fix = min(first_full, zero_hi)
                saved = mem.pages[zero_lo // PAGE_SIZE]
                mem.pages[zero_lo // PAGE_SIZE] = (saved[0], saved[1] | PROT_WRITE)
                mem.write(zero_lo, b"\x00" * (writable_fix - zero_lo))
                mem.pages[zero_lo // PAGE_SIZE] = (
                    mem.pages[zero_lo // PAGE_SIZE][0], saved[1])
    return elf


@dataclass
class TrapHandler:
    """B0 emulation record: at this site, execute *insn_bytes* (the
    original displaced instruction) plus optional instrumentation."""

    insn_bytes: bytes
    counter_vaddr: int | None = None


class Machine:
    """A loaded program plus the syscall/signal environment."""

    def __init__(self, elf_bytes: bytes, *, trap_cost: int = DEFAULT_TRAP_COST,
                 max_instructions: int = 50_000_000,
                 stdin: bytes = b"",
                 load_base: int = 0,
                 entry_vaddr: int | None = None,
                 self_path_aliases: tuple[str, ...] = ()) -> None:
        self.mem = Memory()
        self.elf_bytes = elf_bytes
        self.load_base = load_base
        self.elf = load_elf(self.mem, elf_bytes, base=load_base)
        self.cpu = Cpu(self.mem)
        self.trap_cost = trap_cost
        self.max_instructions = max_instructions
        self.stdin = bytes(stdin)
        self._stdin_pos = 0
        self.stdout = bytearray()
        self.exit_code: int | None = None
        self.traps = 0
        self.trap_cost_total = 0
        self.trap_handlers: dict[int, TrapHandler] = {}
        self._fds: dict[int, bytes] = {}
        self._next_fd = 3
        self.syscall_hooks: dict[int, callable] = {}
        # Paths (beyond /proc/self/exe) at which open() serves this
        # image: a rewritten shared object's loader stub reopens the
        # library by its embedded install path, which the VM has no
        # filesystem to resolve.
        self.self_paths = {"/proc/self/exe", *self_path_aliases}

        # Stack.
        self.mem.map_anonymous(STACK_TOP - STACK_SIZE, STACK_SIZE,
                               PROT_READ | PROT_WRITE)
        # Minimal SysV entry stack: argc=0, argv NULL, envp NULL.
        sp = STACK_TOP - 64
        self.mem.write_u64(sp, 0)
        self.mem.write_u64(sp + 8, 0)
        self.mem.write_u64(sp + 16, 0)
        self.cpu.state.regs[4] = sp  # rsp
        # A dlopen-style run enters at an init function (*entry_vaddr*,
        # link-time) rather than e_entry; both rebase with the load base.
        entry = entry_vaddr if entry_vaddr is not None else self.elf.entry
        self.cpu.state.rip = load_base + entry

    # -- B0 support ---------------------------------------------------------------

    def register_trap(self, vaddr: int, handler: TrapHandler) -> None:
        self.trap_handlers[vaddr] = handler

    # -- syscalls ------------------------------------------------------------------

    def _sys_open(self, path_ptr: int) -> int:
        # Read the NUL-terminated path without running off a mapping edge.
        raw = bytearray()
        while len(raw) < 256:
            try:
                chunk = self.mem.read(path_ptr + len(raw), 16)
            except VmError:
                break
            raw += chunk
            if b"\x00" in chunk:
                break
        path = bytes(raw).split(b"\x00", 1)[0].decode(errors="replace")
        if path in self.self_paths:
            fd = self._next_fd
            self._next_fd += 1
            self._fds[fd] = self.elf_bytes
            return fd
        return -2  # ENOENT

    def _sys_mmap(self, addr: int, length: int, prot: int, flags: int,
                  fd: int, offset: int) -> int:
        vm_prot = 0
        if prot & elfc.PROT_READ:
            vm_prot |= PROT_READ
        if prot & elfc.PROT_WRITE:
            vm_prot |= PROT_WRITE
        if prot & elfc.PROT_EXEC:
            vm_prot |= PROT_EXEC
        length = (length + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
        if flags & elfc.MAP_ANONYMOUS:
            if not flags & elfc.MAP_FIXED:
                addr = self._find_mmap_region(length)
            self.mem.map_anonymous(addr, length, vm_prot)
        else:
            blob = self._fds.get(fd)
            if blob is None:
                return -9  # EBADF
            if not flags & elfc.MAP_FIXED:
                addr = self._find_mmap_region(length)
            self.mem.map_file(addr, length, vm_prot, blob, offset)
        self.cpu.flush_icache()
        return addr

    def _find_mmap_region(self, length: int) -> int:
        addr = 0x7F00_0000_0000
        while any(self.mem.is_mapped(addr + i * PAGE_SIZE)
                  for i in range(length // PAGE_SIZE)):
            addr += length + PAGE_SIZE
        return addr

    def _handle_syscall(self) -> bool:
        """Returns False when the program exited."""
        s = self.cpu.state
        nr = s.regs[0]
        hook = self.syscall_hooks.get(nr)
        if hook is not None:
            s.regs[0] = hook(self) & MASK64
            return True
        a1, a2, a3 = s.regs[7], s.regs[6], s.regs[2]  # rdi, rsi, rdx
        a4, a5, a6 = s.regs[10], s.regs[8], s.regs[9]  # r10, r8, r9
        if nr == elfc.SYS_READ:
            if a1 == 0:  # stdin
                chunk = self.stdin[self._stdin_pos : self._stdin_pos + a3]
                self._stdin_pos += len(chunk)
                if chunk:
                    self.mem.write(a2, chunk)
                s.regs[0] = len(chunk)
            else:
                s.regs[0] = (-9) & MASK64  # EBADF
        elif nr == elfc.SYS_WRITE:
            data = self.mem.read(a2, a3) if a3 else b""
            if a1 in (1, 2):
                self.stdout += data
            s.regs[0] = a3
        elif nr == elfc.SYS_EXIT or nr == 231:  # exit / exit_group
            self.exit_code = a1 & 0xFF
            return False
        elif nr == elfc.SYS_OPEN:
            s.regs[0] = self._sys_open(a1) & MASK64
        elif nr == elfc.SYS_CLOSE:
            self._fds.pop(a1, None)
            s.regs[0] = 0
        elif nr == elfc.SYS_MMAP:
            s.regs[0] = self._sys_mmap(a1, a2, a3, a4, a5, a6) & MASK64
        elif nr == elfc.SYS_MPROTECT:
            s.regs[0] = 0
        else:
            raise VmError(f"unimplemented syscall {nr}")
        return True

    # -- signals ----------------------------------------------------------------------

    def _handle_int3(self) -> None:
        """SIGTRAP: the B0 baseline.  rip points *after* the 0xCC byte."""
        site = self.cpu.state.rip - 1
        handler = self.trap_handlers.get(site)
        if handler is None:
            raise VmError(f"unexpected int3 at {site:#x}")
        self.traps += 1
        self.trap_cost_total += self.trap_cost
        if handler.counter_vaddr is not None:
            self.mem.write_u64(
                handler.counter_vaddr,
                self.mem.read_u64(handler.counter_vaddr) + 1,
            )
        # Emulate the displaced instruction out-of-line, then resume.
        scratch = 0x7FE0_0000_0000
        if not self.mem.is_mapped(scratch):
            self.mem.map_anonymous(scratch, PAGE_SIZE,
                                   PROT_READ | PROT_WRITE | PROT_EXEC)
        code = handler.insn_bytes + b"\xf4"  # hlt fence
        self.mem.write(scratch, code)
        self.cpu.flush_icache()
        from repro.x86.decoder import decode as _decode

        insn = _decode(handler.insn_bytes, 0, address=site)
        if insn.is_direct_branch or insn.is_ret:
            # Branches are emulated positionally: re-decode at the original
            # address and execute through the CPU on a patched-back image.
            self.cpu.state.rip = site
            window = handler.insn_bytes
            from repro.x86.decoder import decode as dec

            original = dec(window, 0, address=site)
            event = self.cpu._execute(original)
            if event != "jumped":
                self.cpu.state.rip = original.end
            self.cpu.icount += 1
            return
        saved_rip = site + len(handler.insn_bytes)
        self.cpu.state.rip = scratch
        # Execute the relocated copy; memory operands must not be
        # rip-relative for this simple emulation (B0 is a fallback).
        event = self.cpu.step()
        if event not in (None,):
            raise VmError(f"unexpected event {event} in trap emulation")
        self.cpu.state.rip = saved_rip

    # -- run loop -------------------------------------------------------------------------

    def step_once(self) -> str | None:
        """One fetch/execute cycle with full syscall/signal handling.

        Returns ``None`` for an ordinary instruction, ``"syscall"`` after
        a handled syscall, ``"trap"`` after a B0 ``int3`` emulation, and
        the terminal tags ``"exit"`` / ``"hlt"`` when the program stopped.
        The semantic-equivalence oracle (:mod:`repro.check.oracle`) drives
        two machines through this method in event lockstep; :meth:`run`
        is a plain loop over it.
        """
        event = self.cpu.step()
        if event is None:
            return None
        if event == EV_SYSCALL:
            return "syscall" if self._handle_syscall() else "exit"
        if event == EV_INT3:
            self._handle_int3()
            return "trap"
        if event == EV_HLT:
            return "hlt"
        raise VmError(f"unhandled event {event}")

    def run(self) -> RunResult:
        reason = "exit"
        while self.cpu.icount < self.max_instructions:
            tag = self.step_once()
            if tag in ("exit", "hlt"):
                reason = "exit" if tag == "exit" else "hlt"
                break
        else:
            reason = "budget"
        return RunResult(
            exit_code=self.exit_code,
            stdout=bytes(self.stdout),
            instructions=self.cpu.icount,
            cost=self.cpu.icount + self.trap_cost_total,
            transfers=self.cpu.transfers,
            traps=self.traps,
            reason=reason,
        )


def run_elf(data: bytes, **kwargs) -> RunResult:
    """Convenience: load and run an ELF image to completion."""
    return Machine(data, **kwargs).run()
