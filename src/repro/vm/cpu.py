"""x86-64 subset interpreter.

Covers the instruction repertoire produced by the synthetic workload
generator, the rewriter's trampolines, and the injected loader stub —
enough to run original and patched code side by side and count
dynamically executed instructions.  Decoding reuses the exact
:mod:`repro.x86.decoder`, so punned/overlapping encodings execute just
as real hardware would interpret them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodeError, VmError, VmFault
from repro.vm.memory import Memory
from repro.x86 import prefixes as pfx
from repro.x86.decoder import decode
from repro.x86.insn import Instruction

MASK64 = (1 << 64) - 1

RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)

# Events returned by Cpu.step when control leaves straight-line execution.
EV_SYSCALL = "syscall"
EV_INT3 = "int3"
EV_HLT = "hlt"


def _sx(value: int, size: int) -> int:
    """Sign-extend a *size*-byte value."""
    bit = 1 << (size * 8 - 1)
    return (value ^ bit) - bit


_PARITY = bytes(bin(i).count("1") % 2 == 0 for i in range(256))


@dataclass
class CpuState:
    """Architectural state: GPRs, rip, and the status flags we model."""

    regs: list[int] = field(default_factory=lambda: [0] * 16)
    rip: int = 0
    cf: bool = False
    zf: bool = True
    sf: bool = False
    of: bool = False
    pf: bool = True
    df: bool = False

    def get(self, reg: int, size: int = 8) -> int:
        mask = (1 << (size * 8)) - 1
        return self.regs[reg] & mask

    def get_high8(self, reg: int) -> int:
        return (self.regs[reg] >> 8) & 0xFF

    def set(self, reg: int, value: int, size: int = 8) -> None:
        if size == 8:
            self.regs[reg] = value & MASK64
        elif size == 4:  # 32-bit writes zero the upper half
            self.regs[reg] = value & 0xFFFFFFFF
        else:
            mask = (1 << (size * 8)) - 1
            self.regs[reg] = (self.regs[reg] & ~mask) | (value & mask)

    def set_high8(self, reg: int, value: int) -> None:
        self.regs[reg] = (self.regs[reg] & ~0xFF00) | ((value & 0xFF) << 8)

    def rflags(self) -> int:
        return (
            (1 << 1)
            | (self.cf << 0)
            | (self.pf << 2)
            | (self.zf << 6)
            | (self.sf << 7)
            | (self.df << 10)
            | (self.of << 11)
        )

    def set_rflags(self, value: int) -> None:
        self.cf = bool(value & (1 << 0))
        self.pf = bool(value & (1 << 2))
        self.zf = bool(value & (1 << 6))
        self.sf = bool(value & (1 << 7))
        self.df = bool(value & (1 << 10))
        self.of = bool(value & (1 << 11))


class Cpu:
    """Fetch/decode/execute loop over :class:`Memory`."""

    def __init__(self, memory: Memory) -> None:
        self.mem = memory
        self.state = CpuState()
        self.icount = 0
        self.transfers = 0  # taken control transfers (pipeline redirects)
        self._icache: dict[int, Instruction] = {}

    # -- fetch/decode -----------------------------------------------------------

    def flush_icache(self) -> None:
        self._icache.clear()

    def _fetch(self, rip: int) -> Instruction:
        insn = self._icache.get(rip)
        if insn is None:
            window = self.mem.fetch(rip, 15)
            if not window:
                raise VmFault("fetch from unmapped/non-exec page", address=rip)
            try:
                insn = decode(window, 0, address=rip)
            except DecodeError as exc:
                raise VmError(f"undecodable instruction at {rip:#x}: {exc}") from exc
            self._icache[rip] = insn
        return insn

    # -- operand helpers ----------------------------------------------------------

    def _opsize(self, insn: Instruction) -> int:
        if insn.rex is not None and insn.rex & pfx.REX_W:
            return 8
        if pfx.OPSIZE in insn.legacy_prefixes:
            return 2
        return 4

    def _reg_operand(self, insn: Instruction, size: int,
                     reg: int | None = None) -> tuple[str, int]:
        """(kind, index) for a register operand, handling ah/ch/dh/bh."""
        if reg is None:
            reg = insn.reg or 0
        if size == 1 and insn.rex is None and 4 <= reg <= 7:
            return ("high8", reg - 4)
        return ("reg", reg)

    def _get_regop(self, insn: Instruction, size: int, reg: int) -> int:
        kind, idx = self._reg_operand(insn, size, reg)
        if kind == "high8":
            return self.state.get_high8(idx)
        return self.state.get(idx, size)

    def _set_regop(self, insn: Instruction, size: int, reg: int, value: int) -> None:
        kind, idx = self._reg_operand(insn, size, reg)
        if kind == "high8":
            self.state.set_high8(idx, value)
        else:
            self.state.set(idx, value, size)

    def effective_address(self, insn: Instruction) -> int:
        """Compute the memory operand's effective address."""
        assert insn.modrm is not None
        mod = insn.mod
        rm = insn.modrm & 7
        rex = insn.rex or 0
        disp = insn.disp or 0
        if mod == 0 and rm == 5:  # rip-relative
            return (insn.end + disp) & MASK64
        if rm == 4:  # SIB
            assert insn.sib is not None
            scale = insn.sib >> 6
            index = (insn.sib >> 3) & 7
            base = insn.sib & 7
            if rex & pfx.REX_X:
                index |= 8
            if rex & pfx.REX_B:
                base |= 8
            addr = 0
            if index != 4:  # rsp cannot be an index
                addr += self.state.get(index) << scale
            if (base & 7) == 5 and mod == 0:
                pass  # disp32, no base
            else:
                addr += self.state.get(base)
            return (addr + disp) & MASK64
        if rex & pfx.REX_B:
            rm |= 8
        return (self.state.get(rm) + disp) & MASK64

    def _read_rm(self, insn: Instruction, size: int) -> int:
        if insn.mod == 3:
            rm = insn.rm or 0
            return self._get_regop(insn, size, rm)
        return self.mem.read_uint(self.effective_address(insn), size)

    def _write_rm(self, insn: Instruction, size: int, value: int) -> None:
        if insn.mod == 3:
            self._set_regop(insn, size, insn.rm or 0, value)
        else:
            self.mem.write_uint(self.effective_address(insn), value, size)

    # -- flags -------------------------------------------------------------------

    def _set_szp(self, result: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        result &= mask
        self.state.zf = result == 0
        self.state.sf = bool(result >> (size * 8 - 1))
        self.state.pf = _PARITY[result & 0xFF]

    def _flags_add(self, a: int, b: int, size: int, carry_in: int = 0) -> int:
        mask = (1 << (size * 8)) - 1
        r = a + b + carry_in
        res = r & mask
        self.state.cf = r > mask
        sign = 1 << (size * 8 - 1)
        self.state.of = bool(~(a ^ b) & (a ^ res) & sign)
        self._set_szp(res, size)
        return res

    def _flags_sub(self, a: int, b: int, size: int, borrow_in: int = 0) -> int:
        mask = (1 << (size * 8)) - 1
        r = a - b - borrow_in
        res = r & mask
        self.state.cf = r < 0
        sign = 1 << (size * 8 - 1)
        self.state.of = bool((a ^ b) & (a ^ res) & sign)
        self._set_szp(res, size)
        return res

    def _flags_logic(self, result: int, size: int) -> int:
        self.state.cf = False
        self.state.of = False
        self._set_szp(result, size)
        return result & ((1 << (size * 8)) - 1)

    def condition(self, cc: int) -> bool:
        s = self.state
        base = (
            s.of, s.cf, s.zf, s.cf or s.zf,
            s.sf, s.pf, s.sf != s.of, s.zf or (s.sf != s.of),
        )[cc >> 1]
        return base != bool(cc & 1)

    # -- execution ------------------------------------------------------------------

    def step(self) -> str | None:
        """Execute one instruction; returns an event name or None."""
        insn = self._fetch(self.state.rip)
        self.icount += 1
        next_rip = insn.end
        event = self._execute(insn)
        if event == "jumped":
            return None
        if event is not None:
            self.state.rip = next_rip
            return event
        self.state.rip = next_rip
        return None

    def _alu(self, op: str, a: int, b: int, size: int) -> int | None:
        s = self.state
        if op == "add":
            return self._flags_add(a, b, size)
        if op == "adc":
            return self._flags_add(a, b, size, int(s.cf))
        if op == "sub":
            return self._flags_sub(a, b, size)
        if op == "sbb":
            return self._flags_sub(a, b, size, int(s.cf))
        if op == "cmp":
            self._flags_sub(a, b, size)
            return None
        if op == "and":
            return self._flags_logic(a & b, size)
        if op == "or":
            return self._flags_logic(a | b, size)
        if op == "xor":
            return self._flags_logic(a ^ b, size)
        if op == "test":
            self._flags_logic(a & b, size)
            return None
        raise VmError(f"unknown ALU op {op}")

    _ALU_NAMES = ("add", "or", "adc", "sbb", "and", "sub", "xor", "cmp")

    def _push(self, value: int, size: int = 8) -> None:
        self.state.regs[RSP] = (self.state.regs[RSP] - size) & MASK64
        self.mem.write_uint(self.state.regs[RSP], value, size)

    def _pop(self, size: int = 8) -> int:
        value = self.mem.read_uint(self.state.regs[RSP], size)
        self.state.regs[RSP] = (self.state.regs[RSP] + size) & MASK64
        return value

    def _jump(self, target: int) -> str:
        self.transfers += 1
        self.state.rip = target & MASK64
        return "jumped"

    def _execute(self, insn: Instruction) -> str | None:  # noqa: C901
        s = self.state
        op = insn.opcode
        rep = pfx.REP in insn.legacy_prefixes
        repne = pfx.REPNE in insn.legacy_prefixes

        if insn.opmap == 1:
            return self._execute_0f(insn)
        if insn.opmap != 0:
            raise VmError(f"unsupported opcode map {insn.opmap} at {insn.address:#x}")

        # -- ALU block 00-3D -------------------------------------------------
        if op <= 0x3D and (op & 7) <= 5 and (op >> 3) <= 7:
            name = self._ALU_NAMES[op >> 3]
            kind = op & 7
            if kind in (0, 1):  # r/m <- r/m OP reg
                size = 1 if kind == 0 else self._opsize(insn)
                a = self._read_rm(insn, size)
                b = self._get_regop(insn, size, insn.reg or 0)
                r = self._alu(name, a, b, size)
                if r is not None:
                    self._write_rm(insn, size, r)
                return None
            if kind in (2, 3):  # reg <- reg OP r/m
                size = 1 if kind == 2 else self._opsize(insn)
                a = self._get_regop(insn, size, insn.reg or 0)
                b = self._read_rm(insn, size)
                r = self._alu(name, a, b, size)
                if r is not None:
                    self._set_regop(insn, size, insn.reg or 0, r)
                return None
            # kind 4/5: AL/eAX OP imm
            size = 1 if kind == 4 else self._opsize(insn)
            a = self._get_regop(insn, size, RAX)
            b = (insn.imm or 0) & ((1 << (size * 8)) - 1)
            if kind == 5 and insn.imm_size < size:
                b = _sx(insn.imm or 0, insn.imm_size) & ((1 << (size * 8)) - 1)
            r = self._alu(name, a, b, size)
            if r is not None:
                self._set_regop(insn, size, RAX, r)
            return None

        # -- pushes/pops -----------------------------------------------------
        if 0x50 <= op <= 0x57:
            reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
            self._push(s.get(reg))
            return None
        if 0x58 <= op <= 0x5F:
            reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
            s.set(reg, self._pop())
            return None
        if op == 0x68 or op == 0x6A:
            self._push(_sx(insn.imm or 0, insn.imm_size) & MASK64)
            return None

        if op == 0x63:  # movsxd
            size = self._opsize(insn)
            value = self._read_rm(insn, 4)
            s.set(insn.reg or 0, _sx(value, 4), size)
            return None

        if op in (0x69, 0x6B):  # imul reg, r/m, imm
            size = self._opsize(insn)
            a = _sx(self._read_rm(insn, size), size)
            b = _sx(insn.imm or 0, insn.imm_size)
            r = a * b
            mask = (1 << (size * 8)) - 1
            res = r & mask
            s.cf = s.of = r != _sx(res, size)
            self._set_szp(res, size)
            self._set_regop(insn, size, insn.reg or 0, res)
            return None

        # -- jcc rel8 ---------------------------------------------------------
        if 0x70 <= op <= 0x7F:
            if self.condition(op & 0xF):
                return self._jump(insn.target or 0)
            return None

        # -- group 1: 80/81/83 ---------------------------------------------------
        if op in (0x80, 0x81, 0x83):
            size = 1 if op == 0x80 else self._opsize(insn)
            name = self._ALU_NAMES[insn.reg_raw or 0]
            a = self._read_rm(insn, size)
            b = _sx(insn.imm or 0, insn.imm_size) & ((1 << (size * 8)) - 1)
            r = self._alu(name, a, b, size)
            if r is not None:
                self._write_rm(insn, size, r)
            return None

        if op in (0x84, 0x85):  # test
            size = 1 if op == 0x84 else self._opsize(insn)
            self._alu("test", self._read_rm(insn, size),
                      self._get_regop(insn, size, insn.reg or 0), size)
            return None
        if op in (0x86, 0x87):  # xchg
            size = 1 if op == 0x86 else self._opsize(insn)
            a = self._read_rm(insn, size)
            b = self._get_regop(insn, size, insn.reg or 0)
            self._write_rm(insn, size, b)
            self._set_regop(insn, size, insn.reg or 0, a)
            return None

        # -- mov -------------------------------------------------------------
        if op in (0x88, 0x89):
            size = 1 if op == 0x88 else self._opsize(insn)
            self._write_rm(insn, size, self._get_regop(insn, size, insn.reg or 0))
            return None
        if op in (0x8A, 0x8B):
            size = 1 if op == 0x8A else self._opsize(insn)
            self._set_regop(insn, size, insn.reg or 0, self._read_rm(insn, size))
            return None
        if op == 0x8D:  # lea
            size = self._opsize(insn)
            s.set(insn.reg or 0, self.effective_address(insn), size)
            return None
        if op == 0x8F:  # pop r/m
            self._write_rm(insn, 8, self._pop())
            return None

        if op == 0x90 and insn.rex is None:
            return None  # nop
        if 0x90 <= op <= 0x97:  # xchg rAX, reg
            size = self._opsize(insn)
            reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
            a, b = s.get(RAX, size), s.get(reg, size)
            s.set(RAX, b, size)
            s.set(reg, a, size)
            return None

        if op == 0x98:  # cwde/cdqe
            size = self._opsize(insn)
            half = size // 2
            s.set(RAX, _sx(s.get(RAX, half), half), size)
            return None
        if op == 0x99:  # cdq/cqo
            size = self._opsize(insn)
            value = _sx(s.get(RAX, size), size)
            s.set(RDX, -1 if value < 0 else 0, size)
            return None

        if op == 0x9C:
            self._push(s.rflags())
            return None
        if op == 0x9D:
            s.set_rflags(self._pop())
            return None

        # -- string ops --------------------------------------------------------
        if op in (0xA4, 0xA5, 0xAA, 0xAB, 0xAC, 0xAD):
            return self._string_op(insn, rep or repne)

        if op in (0xA8, 0xA9):  # test AL/eAX, imm
            size = 1 if op == 0xA8 else self._opsize(insn)
            self._alu("test", self._get_regop(insn, size, RAX),
                      (insn.imm or 0) & ((1 << (size * 8)) - 1), size)
            return None

        if 0xB0 <= op <= 0xB7:  # mov r8, imm8
            reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
            self._set_regop(insn, 1, reg, insn.imm or 0)
            return None
        if 0xB8 <= op <= 0xBF:  # mov r, imm
            size = self._opsize(insn)
            reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
            s.set(reg, insn.imm or 0, size)
            return None

        # -- shifts ------------------------------------------------------------
        if op in (0xC0, 0xC1, 0xD0, 0xD1, 0xD2, 0xD3):
            size = 1 if op in (0xC0, 0xD0, 0xD2) else self._opsize(insn)
            if op in (0xC0, 0xC1):
                count = (insn.imm or 0) & 0x3F
            elif op in (0xD0, 0xD1):
                count = 1
            else:
                count = s.get(RCX, 1) & (0x3F if size == 8 else 0x1F)
            self._shift(insn, size, count)
            return None

        if op == 0xC2:
            target = self._pop()
            s.regs[RSP] = (s.regs[RSP] + (insn.imm or 0)) & MASK64
            return self._jump(target)
        if op == 0xC3:
            return self._jump(self._pop())

        if op in (0xC6, 0xC7):  # mov r/m, imm
            size = 1 if op == 0xC6 else self._opsize(insn)
            value = _sx(insn.imm or 0, insn.imm_size) & ((1 << (size * 8)) - 1)
            self._write_rm(insn, size, value)
            return None

        if op == 0xC9:  # leave
            s.regs[RSP] = s.regs[RBP]
            s.regs[RBP] = self._pop()
            return None

        if op == 0xCC:
            return EV_INT3

        # -- loops --------------------------------------------------------------
        if 0xE0 <= op <= 0xE3:
            if op == 0xE3:
                taken = s.get(RCX) == 0
            else:
                s.regs[RCX] = (s.regs[RCX] - 1) & MASK64
                taken = s.regs[RCX] != 0
                if op == 0xE0:
                    taken = taken and not s.zf
                elif op == 0xE1:
                    taken = taken and s.zf
            if taken:
                return self._jump(insn.target or 0)
            return None

        if op == 0xE8:
            self._push(insn.end)
            return self._jump(insn.target or 0)
        if op in (0xE9, 0xEB):
            return self._jump(insn.target or 0)

        if op == 0xF4:
            return EV_HLT
        if op == 0xF5:  # cmc
            s.cf = not s.cf
            return None
        if op == 0xF8:  # clc
            s.cf = False
            return None
        if op == 0xF9:  # stc
            s.cf = True
            return None
        if op == 0xFC:  # cld
            s.df = False
            return None
        if op == 0xFD:  # std
            s.df = True
            return None

        if op in (0xF6, 0xF7):
            return self._group3(insn)

        if op == 0xFE:
            size = 1
            return self._incdec(insn, size)
        if op == 0xFF:
            reg = insn.reg_raw or 0
            if reg in (0, 1):
                return self._incdec(insn, self._opsize(insn))
            if reg == 2:  # call r/m
                target = self._read_rm(insn, 8)
                self._push(insn.end)
                return self._jump(target)
            if reg == 4:  # jmp r/m
                return self._jump(self._read_rm(insn, 8))
            if reg == 6:  # push r/m
                self._push(self._read_rm(insn, 8))
                return None

        raise VmError(
            f"unimplemented opcode {op:#04x} ({insn.mnemonic}) at {insn.address:#x}"
        )

    def _incdec(self, insn: Instruction, size: int) -> None:
        a = self._read_rm(insn, size)
        cf = self.state.cf  # inc/dec preserve CF
        if (insn.reg_raw or 0) == 0:
            r = self._flags_add(a, 1, size)
        else:
            r = self._flags_sub(a, 1, size)
        self.state.cf = cf
        self._write_rm(insn, size, r)
        return None

    def _shift(self, insn: Instruction, size: int, count: int) -> None:
        s = self.state
        kind = insn.reg_raw or 0
        bits = size * 8
        mask = (1 << bits) - 1
        a = self._read_rm(insn, size)
        if count == 0:
            return
        if kind in (4, 6):  # shl/sal
            r = (a << count) & mask
            s.cf = bool((a >> (bits - count)) & 1) if count <= bits else False
            s.of = bool((r >> (bits - 1)) ^ s.cf) if count == 1 else s.of
        elif kind == 5:  # shr
            r = a >> count
            s.cf = bool((a >> (count - 1)) & 1) if count <= bits else False
            s.of = bool(a >> (bits - 1)) if count == 1 else s.of
        elif kind == 7:  # sar
            sa = _sx(a, size)
            r = (sa >> count) & mask
            s.cf = bool((sa >> (count - 1)) & 1)
            s.of = False if count == 1 else s.of
        elif kind == 0:  # rol
            count %= bits
            r = ((a << count) | (a >> (bits - count))) & mask if count else a
            s.cf = bool(r & 1)
        elif kind == 1:  # ror
            count %= bits
            r = ((a >> count) | (a << (bits - count))) & mask if count else a
            s.cf = bool(r >> (bits - 1))
        else:
            raise VmError(f"unimplemented shift kind {kind}")
        if kind in (4, 5, 6, 7):
            self._set_szp(r, size)
        self._write_rm(insn, size, r)

    def _group3(self, insn: Instruction) -> None:
        size = 1 if insn.opcode == 0xF6 else self._opsize(insn)
        kind = insn.reg_raw or 0
        s = self.state
        mask = (1 << (size * 8)) - 1
        if kind in (0, 1):  # test r/m, imm
            self._alu("test", self._read_rm(insn, size),
                      (insn.imm or 0) & mask, size)
            return None
        if kind == 2:  # not
            self._write_rm(insn, size, ~self._read_rm(insn, size) & mask)
            return None
        if kind == 3:  # neg
            a = self._read_rm(insn, size)
            r = self._flags_sub(0, a, size)
            s.cf = a != 0
            self._write_rm(insn, size, r)
            return None
        if kind == 4:  # mul
            a = s.get(RAX, size)
            b = self._read_rm(insn, size)
            r = a * b
            lo = r & mask
            hi = (r >> (size * 8)) & mask
            s.set(RAX, lo, size)
            if size == 1:
                s.set_high8(RAX, hi)
            else:
                s.set(RDX, hi, size)
            s.cf = s.of = hi != 0
            return None
        if kind == 5:  # imul (one-operand)
            a = _sx(s.get(RAX, size), size)
            b = _sx(self._read_rm(insn, size), size)
            r = a * b
            lo = r & mask
            hi = (r >> (size * 8)) & mask
            s.set(RAX, lo, size)
            if size == 1:
                s.set_high8(RAX, hi)
            else:
                s.set(RDX, hi, size)
            s.cf = s.of = r != _sx(lo, size)
            return None
        if kind in (6, 7):  # div / idiv
            b = self._read_rm(insn, size)
            if b == 0:
                raise VmError(f"division by zero at {insn.address:#x}")
            if size == 1:
                a = s.get(RAX, 2)
            else:
                a = (s.get(RDX, size) << (size * 8)) | s.get(RAX, size)
            if kind == 7:
                a = _sx(a, size * 2) if size > 1 else _sx(a, 2)
                b = _sx(b, size)
                q = int(a / b)
                rem = a - q * b
            else:
                q, rem = divmod(a, b)
            if size == 1:
                s.set(RAX, q & 0xFF, 1)
                s.set_high8(RAX, rem)
            else:
                s.set(RAX, q & mask, size)
                s.set(RDX, rem & mask, size)
            return None
        raise VmError(f"unimplemented group3 kind {kind}")

    def _string_op(self, insn: Instruction, rep: bool) -> None:
        s = self.state
        op = insn.opcode
        size = {0xA4: 1, 0xA5: None, 0xAA: 1, 0xAB: None,
                0xAC: 1, 0xAD: None}[op]
        if size is None:
            size = self._opsize(insn)
        step = -size if s.df else size

        def one() -> None:
            if op in (0xA4, 0xA5):  # movs
                data = self.mem.read_uint(s.regs[RSI], size)
                self.mem.write_uint(s.regs[RDI], data, size)
                s.regs[RSI] = (s.regs[RSI] + step) & MASK64
                s.regs[RDI] = (s.regs[RDI] + step) & MASK64
            elif op in (0xAA, 0xAB):  # stos
                self.mem.write_uint(s.regs[RDI], s.get(RAX, size), size)
                s.regs[RDI] = (s.regs[RDI] + step) & MASK64
            else:  # lods
                s.set(RAX, self.mem.read_uint(s.regs[RSI], size), size)
                s.regs[RSI] = (s.regs[RSI] + step) & MASK64

        if rep:
            while s.regs[RCX] != 0:
                one()
                s.regs[RCX] = (s.regs[RCX] - 1) & MASK64
        else:
            one()
        return None

    def _execute_0f(self, insn: Instruction) -> str | None:
        s = self.state
        op = insn.opcode
        if op == 0x05:
            return EV_SYSCALL
        if op == 0x0B:
            raise VmError(f"ud2 executed at {insn.address:#x}")
        if op == 0x1F or op == 0x0D or (0x18 <= op <= 0x1E):
            return None  # long nop / hints
        if 0x40 <= op <= 0x4F:  # cmovcc
            size = self._opsize(insn)
            if self.condition(op & 0xF):
                self._set_regop(insn, size, insn.reg or 0, self._read_rm(insn, size))
            elif size == 4:
                s.set(insn.reg or 0, s.get(insn.reg or 0, 4), 4)
            return None
        if 0x80 <= op <= 0x8F:  # jcc rel32
            if self.condition(op & 0xF):
                return self._jump(insn.target or 0)
            return None
        if 0x90 <= op <= 0x9F:  # setcc
            self._write_rm(insn, 1, int(self.condition(op & 0xF)))
            return None
        if op == 0xAF:  # imul reg, r/m
            size = self._opsize(insn)
            a = _sx(self._get_regop(insn, size, insn.reg or 0), size)
            b = _sx(self._read_rm(insn, size), size)
            r = a * b
            mask = (1 << (size * 8)) - 1
            res = r & mask
            s.cf = s.of = r != _sx(res, size)
            self._set_szp(res, size)
            self._set_regop(insn, size, insn.reg or 0, res)
            return None
        if op in (0xB6, 0xB7):  # movzx
            src_size = 1 if op == 0xB6 else 2
            size = self._opsize(insn)
            s.set(insn.reg or 0, self._read_rm(insn, src_size), size)
            return None
        if op in (0xBE, 0xBF):  # movsx
            src_size = 1 if op == 0xBE else 2
            size = self._opsize(insn)
            s.set(insn.reg or 0, _sx(self._read_rm(insn, src_size), src_size), size)
            return None
        if 0xC8 <= op <= 0xCF:  # bswap
            reg = (op & 7) | (8 if insn.rex and insn.rex & pfx.REX_B else 0)
            size = self._opsize(insn)
            value = s.get(reg, size).to_bytes(size, "little")
            s.set(reg, int.from_bytes(value, "big"), size)
            return None
        raise VmError(
            f"unimplemented 0F opcode {op:#04x} ({insn.mnemonic}) at {insn.address:#x}"
        )
