"""Paged virtual memory with copy-on-write file-backed frames.

Pages map to *frames*.  A frame is either anonymous (private bytearray)
or a lazy view into a backing blob (file-backed, shared until written).
Mapping the same file page at several virtual addresses therefore shares
one physical frame — exactly the mechanism physical page grouping
exploits — and :meth:`Memory.physical_frames` reports the real footprint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VmFault

PAGE_SIZE = 4096
PAGE_MASK = PAGE_SIZE - 1

PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4


_ZERO_PAGE = bytes(PAGE_SIZE)


@dataclass
class Frame:
    """One physical page frame.

    Three states: lazy zero page (``backing is None, private is None`` —
    all anonymous pages share it, like the kernel's zero page),
    file-backed CoW view, or private (materialized on first write).
    """

    backing: bytes | None  # file blob (shared) or None
    offset: int = 0
    private: bytearray | None = None

    def data(self) -> bytes | bytearray:
        if self.private is not None:
            return self.private
        if self.backing is None:
            return _ZERO_PAGE
        chunk = self.backing[self.offset : self.offset + PAGE_SIZE]
        if len(chunk) < PAGE_SIZE:
            chunk = chunk + b"\x00" * (PAGE_SIZE - len(chunk))
        return chunk

    def materialize(self) -> bytearray:
        if self.private is None:
            self.private = bytearray(self.data())
            self.backing = None
        return self.private

    def key(self) -> object:
        """Identity of the physical storage (for footprint accounting)."""
        if self.private is not None:
            return id(self.private)
        if self.backing is None:
            return "zero"
        return (id(self.backing), self.offset)


class Memory:
    """Sparse paged address space."""

    def __init__(self) -> None:
        self.pages: dict[int, tuple[Frame, int]] = {}  # vpage -> (frame, prot)

    # -- mapping -----------------------------------------------------------

    def map_anonymous(self, vaddr: int, size: int, prot: int) -> None:
        self._check_aligned(vaddr)
        for vp in range(vaddr // PAGE_SIZE, (vaddr + size + PAGE_MASK) // PAGE_SIZE):
            self.pages[vp] = (Frame(backing=None), prot)

    def map_file(self, vaddr: int, size: int, prot: int, blob: bytes,
                 offset: int) -> None:
        """Map *size* bytes of *blob* at *vaddr* (page-granular, CoW).

        Frames created from the same (blob, offset) pair share physical
        storage until written.
        """
        self._check_aligned(vaddr)
        self._check_aligned(offset)
        npages = (size + PAGE_MASK) // PAGE_SIZE
        for i in range(npages):
            frame = Frame(backing=blob, offset=offset + i * PAGE_SIZE)
            self.pages[vaddr // PAGE_SIZE + i] = (frame, prot)

    def protect(self, vaddr: int, size: int, prot: int) -> None:
        for vp in range(vaddr // PAGE_SIZE, (vaddr + size + PAGE_MASK) // PAGE_SIZE):
            if vp in self.pages:
                frame, _ = self.pages[vp]
                self.pages[vp] = (frame, prot)

    @staticmethod
    def _check_aligned(value: int) -> None:
        if value & PAGE_MASK:
            raise VmFault(f"unaligned mapping request {value:#x}")

    def is_mapped(self, vaddr: int) -> bool:
        return (vaddr // PAGE_SIZE) in self.pages

    # -- access -----------------------------------------------------------------

    def _frame(self, vaddr: int, prot: int) -> tuple[Frame, int]:
        vp, off = divmod(vaddr, PAGE_SIZE)
        entry = self.pages.get(vp)
        if entry is None:
            raise VmFault("unmapped page", address=vaddr)
        frame, page_prot = entry
        if prot & ~page_prot:
            raise VmFault("permission denied", address=vaddr)
        return frame, off

    def read(self, vaddr: int, size: int, prot: int = PROT_READ) -> bytes:
        out = bytearray()
        while size > 0:
            frame, off = self._frame(vaddr, prot)
            take = min(size, PAGE_SIZE - off)
            out += frame.data()[off : off + take]
            vaddr += take
            size -= take
        return bytes(out)

    def write(self, vaddr: int, data: bytes) -> None:
        pos = 0
        while pos < len(data):
            frame, off = self._frame(vaddr + pos, PROT_WRITE)
            take = min(len(data) - pos, PAGE_SIZE - off)
            frame.materialize()[off : off + take] = data[pos : pos + take]
            pos += take

    def fetch(self, vaddr: int, size: int) -> bytes:
        """Instruction fetch (requires PROT_EXEC).

        The window is truncated at the first unmapped or non-executable
        page: like hardware, fetching must not fault when the
        instruction itself ends before the boundary.  The *caller*
        faults if the truncated window cannot hold its instruction.
        """
        out = bytearray()
        while size > 0 and self.is_mapped(vaddr):
            entry = self.pages[vaddr // PAGE_SIZE]
            frame, prot = entry
            if not prot & PROT_EXEC:
                break
            off = vaddr % PAGE_SIZE
            take = min(size, PAGE_SIZE - off)
            out += frame.data()[off : off + take]
            vaddr += take
            size -= take
        return bytes(out)

    # -- integer helpers -------------------------------------------------------

    def read_u64(self, vaddr: int) -> int:
        return int.from_bytes(self.read(vaddr, 8), "little")

    def write_u64(self, vaddr: int, value: int) -> None:
        self.write(vaddr, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))

    def read_uint(self, vaddr: int, size: int) -> int:
        return int.from_bytes(self.read(vaddr, size), "little")

    def write_uint(self, vaddr: int, value: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        self.write(vaddr, (value & mask).to_bytes(size, "little"))

    # -- accounting ------------------------------------------------------------

    def physical_frames(self) -> int:
        """Number of distinct physical frames currently referenced."""
        return len({frame.key() for frame, _ in self.pages.values()})

    def mapped_pages(self) -> int:
        return len(self.pages)
