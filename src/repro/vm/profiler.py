"""Execution profiling over the VM: instruction mix and hot sites.

Used by the evaluation to characterize workloads (how jump/store-dense a
kernel is) and by tests to verify that instrumented runs execute the
expected extra trampoline instructions.
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import dataclass, field

from repro.vm.machine import Machine, RunResult


@dataclass
class ProfileResult:
    """A run plus its dynamic instruction statistics."""

    run: RunResult
    mnemonics: TallyCounter = field(default_factory=TallyCounter)
    site_counts: TallyCounter = field(default_factory=TallyCounter)

    @property
    def total(self) -> int:
        return sum(self.mnemonics.values())

    def fraction(self, *names: str) -> float:
        """Dynamic fraction of instructions with the given mnemonics."""
        if not self.total:
            return 0.0
        return sum(self.mnemonics[n] for n in names) / self.total

    @property
    def branch_fraction(self) -> float:
        jumps = [m for m in self.mnemonics
                 if m == "jmp" or (m.startswith("j") and len(m) <= 4)]
        return self.fraction(*jumps)

    @property
    def store_fraction(self) -> float:
        """Approximate store density (mov-family only; exact accounting
        would need operand inspection per step)."""
        return self.fraction("mov", "stosb", "stosd", "movsb", "movsd")

    def hottest(self, n: int = 10) -> list[tuple[int, int]]:
        """(address, count) of the most-executed instruction sites."""
        return self.site_counts.most_common(n)


class ProfilingMachine(Machine):
    """Machine variant that tallies every executed instruction."""

    def __init__(self, elf_bytes: bytes, **kwargs) -> None:
        super().__init__(elf_bytes, **kwargs)
        self.mnemonics: TallyCounter = TallyCounter()
        self.site_counts: TallyCounter = TallyCounter()
        original_step = self.cpu.step

        def counting_step():
            rip = self.cpu.state.rip
            insn = self.cpu._fetch(rip)
            self.mnemonics[insn.mnemonic] += 1
            self.site_counts[rip] += 1
            return original_step()

        self.cpu.step = counting_step

    def profile(self) -> ProfileResult:
        run = self.run()
        return ProfileResult(run=run, mnemonics=self.mnemonics,
                             site_counts=self.site_counts)


def profile_elf(data: bytes, **kwargs) -> ProfileResult:
    """Run *data* to completion with full dynamic profiling."""
    return ProfilingMachine(data, **kwargs).profile()
