"""x86-64 subset interpreter with paged copy-on-write memory.

The VM is the reproduction's "testbed": it executes original and
rewritten binaries (including injected loader stubs, punned jumps and
trampolines), counts dynamically executed instructions for the paper's
Time% columns, and models physical page sharing so the page-grouping
optimization's memory behaviour is observable.
"""

from repro.vm.memory import Memory, PROT_READ, PROT_WRITE, PROT_EXEC
from repro.vm.cpu import Cpu, CpuState
from repro.vm.machine import Machine, RunResult, load_elf

__all__ = [
    "Memory",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
    "Cpu",
    "CpuState",
    "Machine",
    "RunResult",
    "load_elf",
]
