"""Patch-site matchers: which instructions get instrumented.

``A1`` (all jmp/jcc) and ``A2`` (heap writes) are the two applications
evaluated in the paper's Table 1; ``all`` patches every real instruction
(the paper's limitation-L3 stress case).
"""

from __future__ import annotations

from typing import Callable

from repro.x86.flow import is_heap_write
from repro.x86.insn import Instruction
from repro.x86.tables import Flow

Matcher = Callable[[Instruction], bool]

_JMP = Flow.JMP
_JCC = Flow.JCC


def _is_real(insn: Instruction) -> bool:
    return insn.mnemonic != "(bad)"


def match_jumps(insn: Instruction) -> bool:
    """A1: direct jmp/jcc instructions (:func:`~repro.x86.flow.is_patchable_jump`).

    Written against raw attributes, flow test first: this predicate runs
    once per decoded instruction and rejects ~90% of them on the flow
    check alone.
    """
    f = insn.flow
    return (f is _JMP or f is _JCC) and insn.mnemonic != "(bad)"


def match_heap_writes(insn: Instruction) -> bool:
    """A2: instructions that may write through heap pointers."""
    return _is_real(insn) and is_heap_write(insn)


def match_all(insn: Instruction) -> bool:
    """Every decodable instruction (limitation L3 stress test)."""
    return _is_real(insn)


def match_calls(insn: Instruction) -> bool:
    """Direct calls (useful for call-tracing applications)."""
    return _is_real(insn) and insn.mnemonic == "call" and insn.is_direct_branch


MATCHERS: dict[str, Matcher] = {
    "jumps": match_jumps,
    "heap-writes": match_heap_writes,
    "calls": match_calls,
    "all": match_all,
}


def select_sites(
    instructions: list[Instruction], matcher: Matcher
) -> list[Instruction]:
    """All instructions selected by *matcher*, in address order."""
    return [i for i in instructions if matcher(i)]
