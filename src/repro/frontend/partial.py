"""Partial (local) disassembly around patch sites.

A key property of the paper's methodology (Section 2.2, Example 3.1):
patching is *local* — "it is possible to patch specific instructions
without complete disassembly information being known".  Tactics only
ever look **forward** from a site (pun material, the successor for T2,
short-jump victims within +129 bytes for T3), so a small window of
instructions after each site is all the rewriter needs.

This module decodes exactly those windows, letting a user patch a
handful of addresses in a huge binary without ever disassembling it.
"""

from __future__ import annotations

from repro.errors import DecodeError, PatchError
from repro.elf.reader import ElfFile
from repro.x86.decoder import decode
from repro.x86.insn import Instruction

# Forward reach a tactic can need: JShort range (2+127) plus one maximal
# instruction so the victim containing the last reachable byte is fully
# decoded.
WINDOW_BYTES = 2 + 127 + 15


def decode_window(elf: ElfFile, site_vaddr: int,
                  window_bytes: int = WINDOW_BYTES) -> list[Instruction]:
    """Decode the instruction at *site_vaddr* and its forward window.

    Stops early (without error) at undecodable bytes or the end of the
    executable range — the rewriter simply sees fewer T2/T3 candidates.
    Raises :class:`PatchError` if the site itself cannot be decoded.
    """
    exec_ranges = elf.exec_ranges()
    containing = [r for r in exec_ranges if r[0] <= site_vaddr < r[1]]
    if not containing:
        raise PatchError(f"site {site_vaddr:#x} is not in executable memory")
    range_end = containing[0][1]

    limit = min(site_vaddr + window_bytes, range_end)
    out: list[Instruction] = []
    vaddr = site_vaddr
    while vaddr < limit:
        avail = min(15, range_end - vaddr)
        try:
            raw = elf.read_vaddr(vaddr, avail)
            insn = decode(raw, 0, address=vaddr)
        except (DecodeError, Exception) as exc:
            if not out:
                raise PatchError(
                    f"cannot decode patch site {site_vaddr:#x}: {exc}"
                ) from exc
            break
        out.append(insn)
        vaddr = insn.end
    return out


def decode_windows(elf: ElfFile, sites: list[int]) -> list[Instruction]:
    """Union of the forward windows of several sites, deduplicated and
    sorted — a drop-in for the ``instructions`` argument of
    :class:`repro.core.rewriter.Rewriter`.

    Windows that disagree about instruction boundaries (a site placed
    mid-instruction of another window) raise: the caller's site list is
    inconsistent.
    """
    by_addr: dict[int, Instruction] = {}
    covered: set[int] = set()
    for site in sorted(sites):
        for insn in decode_window(elf, site):
            prev = by_addr.get(insn.address)
            if prev is not None:
                if prev.raw != insn.raw:
                    raise PatchError(
                        f"inconsistent decodings at {insn.address:#x}"
                    )
                continue
            overlap = set(range(insn.address, insn.end)) & covered
            if overlap and insn.address not in by_addr:
                raise PatchError(
                    f"site windows disagree about instruction boundaries "
                    f"near {insn.address:#x}"
                )
            by_addr[insn.address] = insn
            covered.update(range(insn.address, insn.end))
    return [by_addr[a] for a in sorted(by_addr)]


def patch_addresses(
    data: bytes,
    sites: list[int],
    instrumentation=None,
    options=None,
):
    """Patch the given instruction addresses using only local windows.

    Convenience wrapper mirroring :func:`repro.frontend.tool.instrument_elf`
    but driven by explicit addresses instead of a matcher — the paper's
    binary-patching use case.
    """
    from repro.core.rewriter import Rewriter
    from repro.core.strategy import PatchRequest
    from repro.core.trampoline import Empty

    elf = ElfFile(data)
    instructions = decode_windows(elf, sites)
    index = {i.address: i for i in instructions}
    missing = [s for s in sites if s not in index]
    if missing:
        raise PatchError(f"sites not decodable: {[hex(s) for s in missing]}")
    rewriter = Rewriter(elf, instructions, options)
    result = rewriter.rewrite(
        [PatchRequest(insn=index[s], instrumentation=instrumentation or Empty())
         for s in sites]
    )
    return result
