"""``e9dump``: disassembly and patch-site inspection CLI.

A small companion tool built on the decoder/formatter: disassemble a
binary's code (linear or symbol-guided), annotate the instructions a
matcher would select, and summarize what a rewrite would do — without
writing anything.

Usage::

    e9dump /bin/ls                          # disassemble .text
    e9dump --matcher jumps /bin/ls          # mark the A1 patch sites
    e9dump --summary --matcher heap-writes /bin/ls
    e9dump --function main ./a.out          # one function (symbols)
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_functions, disassemble_text
from repro.frontend.matchers import MATCHERS, Matcher


def resolve_matcher(text: str | None) -> Matcher | None:
    if text is None:
        return None
    if text in MATCHERS:
        return MATCHERS[text]
    from repro.frontend.match_expr import compile_matcher

    return compile_matcher(text)


def dump_lines(data: bytes, *, matcher: Matcher | None = None,
               frontend: str = "linear",
               function: str | None = None,
               limit: int | None = None) -> list[str]:
    """Produce annotated disassembly lines."""
    elf = ElfFile(data)
    if function is not None:
        from repro.elf.symbols import function_symbols
        from repro.x86.decoder import decode_buffer

        syms = [s for s in function_symbols(elf) if s.name == function]
        if not syms:
            raise SystemExit(f"no function symbol {function!r}")
        sym = syms[0]
        offset = elf.vaddr_to_offset(sym.value)
        instructions = decode_buffer(
            elf.data[offset : offset + sym.size], address=sym.value)
    elif frontend == "symbols":
        instructions = disassemble_functions(elf)
    else:
        instructions = disassemble_text(elf)

    lines = []
    for insn in instructions[: limit if limit else None]:
        marker = "  *" if matcher is not None and matcher(insn) else "   "
        lines.append(f"{marker} {insn}")
    return lines


def summarize(data: bytes, matcher: Matcher,
              frontend: str = "linear") -> list[str]:
    """Site statistics: counts by mnemonic and by instruction length."""
    elf = ElfFile(data)
    instructions = (disassemble_functions(elf) if frontend == "symbols"
                    else disassemble_text(elf))
    sites = [i for i in instructions if matcher(i)]
    by_mnemonic = Counter(i.mnemonic for i in sites)
    by_length = Counter(i.length for i in sites)
    lines = [
        f"instructions: {len(instructions)}",
        f"matched sites: {len(sites)}",
        "by mnemonic: "
        + ", ".join(f"{m}={n}" for m, n in by_mnemonic.most_common(10)),
        "by length:   "
        + ", ".join(f"{ln}B={n}" for ln, n in sorted(by_length.items())),
    ]
    short = sum(n for ln, n in by_length.items() if ln < 5)
    if sites:
        lines.append(
            f"punning-constrained (<5 bytes): {short} "
            f"({100.0 * short / len(sites):.1f}% — these need B2/T1/T2/T3)")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="e9dump",
        description="Disassemble a binary and inspect patch sites "
        "(E9Patch reproduction companion).",
    )
    parser.add_argument("input", help="ELF binary")
    parser.add_argument("--matcher", "-M", help="mark sites this matcher selects")
    parser.add_argument("--frontend", default="linear",
                        choices=("linear", "symbols"))
    parser.add_argument("--function", "-F",
                        help="disassemble a single function (by symbol)")
    parser.add_argument("--summary", action="store_true",
                        help="print site statistics instead of a listing")
    parser.add_argument("--limit", "-n", type=int,
                        help="maximum instructions to print")
    args = parser.parse_args(argv)

    with open(args.input, "rb") as f:
        data = f.read()
    matcher = resolve_matcher(args.matcher)

    if args.summary:
        if matcher is None:
            parser.error("--summary requires --matcher")
        for line in summarize(data, matcher, args.frontend):
            print(line)
        return 0

    for line in dump_lines(data, matcher=matcher, frontend=args.frontend,
                           function=args.function, limit=args.limit):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
