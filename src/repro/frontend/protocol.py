"""The E9Patch JSON-RPC interface.

The real E9Patch is driven by a frontend (e9tool) over a JSON-RPC
message stream: the frontend sends the binary, instruction information,
trampoline definitions, and patch requests; E9Patch answers with the
rewritten binary.  This module implements that protocol shape so
third-party frontends (or tests) can drive the rewriter the same way.

Methods, in the order a session normally uses them:

``binary``      ``{"filename": ..., "data": <base64>}`` (one of the two)
``options``     rewrite options: mode / grouping / granularity / tactics
``trampoline``  register a named trampoline template (see
                :mod:`repro.core.templates`); parameters are bound per
                patch request
``reserve``     reserve a zero-initialized RW region; returns its address
``instruction`` declare instruction addresses (optional — enables the
                partial-disassembly mode; without it the .text section is
                linearly disassembled)
``patch``       request a patch: ``{"address": ..., "trampoline": name,
                "args": {...}}``
``emit``        run the strategy and emit; returns stats and the patched
                image (base64)

Each request is a JSON object ``{"jsonrpc": "2.0", "method": ...,
"params": {...}, "id": n}``; responses carry ``result`` or ``error``.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import PatchError, ReproError
from repro.core.rewriter import RewriteOptions, Rewriter
from repro.core.strategy import PatchRequest, TacticToggles
from repro.core.templates import BUILTIN_TEMPLATES, TrampolineTemplate, load_template
from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_text
from repro.frontend.partial import decode_windows


class ProtocolError(ReproError):
    """Malformed or out-of-order protocol message."""


@dataclass
class _PendingPatch:
    address: int
    trampoline: str
    args: dict[str, int]


@dataclass
class E9PatchSession:
    """One rewriting session driven by protocol messages."""

    elf: ElfFile | None = None
    options: RewriteOptions = field(default_factory=lambda: RewriteOptions(mode="loader"))
    templates: dict[str, TrampolineTemplate] = field(
        default_factory=lambda: dict(BUILTIN_TEMPLATES))
    declared_sites: list[int] = field(default_factory=list)
    patches: list[_PendingPatch] = field(default_factory=list)
    reservations: list[tuple[str, int]] = field(default_factory=list)
    emitted: bytes | None = None

    # -- message dispatch -------------------------------------------------

    def handle(self, message: dict[str, Any]) -> dict[str, Any]:
        """Process one JSON-RPC request object; returns the response."""
        msg_id = message.get("id")
        try:
            method = message.get("method")
            params = message.get("params", {})
            if not isinstance(method, str):
                raise ProtocolError("missing method")
            if not isinstance(params, dict):
                raise ProtocolError("params must be an object")
            handler = getattr(self, f"_do_{method.replace('-', '_')}", None)
            if handler is None:
                raise ProtocolError(f"unknown method {method!r}")
            result = handler(params)
            return {"jsonrpc": "2.0", "id": msg_id, "result": result}
        except ReproError as exc:
            return {
                "jsonrpc": "2.0",
                "id": msg_id,
                "error": {"code": -32000, "message": str(exc)},
            }

    def handle_line(self, line: str) -> str:
        """Process one JSON line; returns the response line."""
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            return json.dumps({
                "jsonrpc": "2.0", "id": None,
                "error": {"code": -32700, "message": f"parse error: {exc}"},
            })
        return json.dumps(self.handle(message))

    def run(self, lines: list[str] | str) -> list[str]:
        """Process a whole message stream."""
        if isinstance(lines, str):
            lines = [ln for ln in lines.splitlines() if ln.strip()]
        return [self.handle_line(line) for line in lines]

    # -- methods ------------------------------------------------------------

    def _require_binary(self) -> ElfFile:
        if self.elf is None:
            raise ProtocolError("no binary loaded (send 'binary' first)")
        return self.elf

    def _do_binary(self, params: dict[str, Any]) -> dict[str, Any]:
        if "data" in params:
            data = base64.b64decode(params["data"])
        elif "filename" in params:
            with open(params["filename"], "rb") as f:
                data = f.read()
        else:
            raise ProtocolError("binary needs 'data' or 'filename'")
        self.elf = ElfFile(data)
        return {
            "size": len(data),
            "pie": self.elf.is_pie,
            "type": self.elf.elf_type,
            "shared_object": self.elf.is_shared_object,
            "cet": self.elf.is_cet_enabled(),
            "cet_note": self.elf.has_ibt_note,
            "entry": self.elf.entry,
        }

    def _do_options(self, params: dict[str, Any]) -> dict[str, Any]:
        toggles = TacticToggles(
            t1=params.get("t1", True),
            t2=params.get("t2", True),
            t3=params.get("t3", True),
            b0_fallback=params.get("b0", False),
        )
        self.options = RewriteOptions(
            mode=params.get("mode", "loader"),
            grouping=params.get("grouping", True),
            granularity=params.get("granularity", 1),
            shared=params.get("shared", False),
            toggles=toggles,
        )
        return {"ok": True}

    def _do_trampoline(self, params: dict[str, Any]) -> dict[str, Any]:
        template = load_template(params)
        self.templates[template.name] = template
        return {"name": template.name, "params": list(template.params)}

    def _do_instruction(self, params: dict[str, Any]) -> dict[str, Any]:
        self._require_binary()
        addresses = params.get("addresses")
        if not isinstance(addresses, list):
            raise ProtocolError("instruction needs 'addresses' (a list)")
        self.declared_sites.extend(int(a) for a in addresses)
        return {"declared": len(self.declared_sites)}

    def _do_patch(self, params: dict[str, Any]) -> dict[str, Any]:
        self._require_binary()
        address = params.get("address")
        if not isinstance(address, int):
            raise ProtocolError("patch needs an integer 'address'")
        name = params.get("trampoline", "empty")
        if name not in self.templates:
            raise ProtocolError(f"unknown trampoline {name!r}")
        args = params.get("args", {})
        if not isinstance(args, dict):
            raise ProtocolError("'args' must be an object")
        self.patches.append(_PendingPatch(address, name, dict(args)))
        return {"queued": len(self.patches)}

    def _do_reserve(self, params: dict[str, Any]) -> dict[str, Any]:
        self._require_binary()
        name = params.get("name")
        size = params.get("size", 4096)
        if not isinstance(name, str):
            raise ProtocolError("reserve needs a 'name'")
        self.reservations.append((name, int(size)))
        return {"name": name}

    def _do_emit(self, params: dict[str, Any]) -> dict[str, Any]:
        elf = self._require_binary()
        if self.declared_sites:
            instructions = decode_windows(elf, sorted(
                set(self.declared_sites) | {p.address for p in self.patches}))
        else:
            instructions = disassemble_text(elf)
        index = {i.address: i for i in instructions}

        rewriter = Rewriter(elf, instructions, self.options)
        reserved: dict[str, int] = {}
        for name, size in self.reservations:
            reserved[name] = rewriter.add_runtime_data(size)

        requests = []
        for pending in self.patches:
            insn = index.get(pending.address)
            if insn is None:
                raise PatchError(
                    f"no instruction at {pending.address:#x}")
            template = self.templates[pending.trampoline]
            bound = {
                key: reserved[value] if isinstance(value, str) else int(value)
                for key, value in pending.args.items()
            }
            requests.append(PatchRequest(
                insn=insn, instrumentation=template.instantiate(**bound)))

        result = rewriter.rewrite(requests)
        self.emitted = result.data
        response: dict[str, Any] = {
            "stats": result.stats.row(),
            "size": len(result.data),
            "reservations": reserved,
            "failures": [hex(a) for a in result.plan.failures],
        }
        if params.get("return_data", True):
            response["data"] = base64.b64encode(result.data).decode()
        if params.get("filename"):
            with open(params["filename"], "wb") as f:
                f.write(result.data)
        return response


def main(argv: list[str] | None = None) -> int:
    """Run a protocol session over stdin/stdout (one JSON message per
    line) — the subprocess-service shape of the real e9tool/e9patch
    split.  Invoke as ``python3 -m repro.frontend.protocol``."""
    import sys

    session = E9PatchSession()
    for line in sys.stdin:
        if not line.strip():
            continue
        sys.stdout.write(session.handle_line(line) + "\n")
        sys.stdout.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
