"""A small matcher-expression language for selecting patch sites.

The real e9tool selects instructions with expressions like
``--match 'asm=j.*'`` or ``--match 'size >= 5'``; this module provides
the equivalent: a lexer, a recursive-descent parser, and an evaluator
that compiles an expression into an ``Instruction -> bool`` predicate.

Grammar::

    expr       := or
    or         := and ("or" and)*
    and        := not ("and" not)*
    not        := "not" not | primary
    primary    := "(" expr ")" | comparison | regtest | bareword
    comparison := field cmp value
    field      := "mnemonic" | "size" | "addr" | "opcode" | "target" |
                  "mem-width"
    regtest    := ("reads" | "writes" | "kills") register
    register   := rax | rcx | rdx | rbx | rsp | rbp | rsi | rdi | r8..r15
    cmp        := "==" | "!=" | "<" | "<=" | ">" | ">=" | "=~"
    value      := integer (decimal or 0x...) | "string" | /regex/
    bareword   := jumps | heap-writes | calls | all | jcc | jmp | ret |
                  call | mem-write | mem-read | rip-relative |
                  direct-branch | indirect-branch |
                  defines-flags | uses-flags | preserves-flags |
                  mem-stack | mem-global | mem-heap

The second block of primaries queries the semantic-fact engine
(:mod:`repro.analysis.facts`).  Register tests use may-sets, so an
instruction the fact tables cannot classify matches every ``reads``/
``writes`` test (conservative over-approximation); ``preserves-flags``
is the dual — it only matches instructions *known* to leave every
status flag untouched.  ``mem-width`` is the memory operand's access
width in bytes (comparisons are false for instructions without a
classified memory operand).

Examples::

    mnemonic == "call" and size >= 5
    jumps or mnemonic =~ /loop.*/
    mem-write and not rip-relative
    addr >= 0x401000 and addr < 0x402000
    writes rdi and not defines-flags
    mem-stack and mem-width >= 8
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.analysis.facts import facts_for
from repro.errors import ReproError
from repro.x86.flow import is_heap_write, is_memory_write, is_patchable_jump
from repro.x86.insn import REG_NAMES_64, Instruction
from repro.x86.tables import Flow


class MatchExprError(ReproError):
    """Syntax or semantic error in a matcher expression."""


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<cmp>==|!=|<=|>=|<|>|=~)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<int>\d+)
  | (?P<string>"[^"]*")
  | (?P<regex>/(?:[^/\\]|\\.)*/)
  | (?P<word>[A-Za-z_][A-Za-z0-9_-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise MatchExprError(
                f"unexpected character {source[pos]!r} at offset {pos}"
            )
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append(Token(kind, m.group()))
    tokens.append(Token("eof", ""))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

class Node:
    def evaluate(self, insn: Instruction) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class Or(Node):
    left: Node
    right: Node

    def evaluate(self, insn: Instruction) -> bool:
        return self.left.evaluate(insn) or self.right.evaluate(insn)


@dataclass(frozen=True)
class And(Node):
    left: Node
    right: Node

    def evaluate(self, insn: Instruction) -> bool:
        return self.left.evaluate(insn) and self.right.evaluate(insn)


@dataclass(frozen=True)
class Not(Node):
    operand: Node

    def evaluate(self, insn: Instruction) -> bool:
        return not self.operand.evaluate(insn)


_FIELDS: dict[str, Callable[[Instruction], object]] = {
    "mnemonic": lambda i: i.mnemonic,
    "size": lambda i: i.length,
    "addr": lambda i: i.address,
    "opcode": lambda i: i.opcode,
    "target": lambda i: i.target,
    "mem-width": lambda i: facts_for(i).mem_width,
}

_NUMERIC_CMPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Node):
    field: str
    op: str
    value: object  # int, str, or compiled regex

    def evaluate(self, insn: Instruction) -> bool:
        actual = _FIELDS[self.field](insn)
        if self.op == "==":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "=~":
            assert isinstance(self.value, re.Pattern)
            return actual is not None and bool(
                self.value.fullmatch(str(actual))
            )
        if actual is None:
            return False
        return _NUMERIC_CMPS[self.op](actual, self.value)


_BAREWORDS: dict[str, Callable[[Instruction], bool]] = {
    "jumps": is_patchable_jump,
    "heap-writes": is_heap_write,
    "calls": lambda i: i.flow == Flow.CALL,
    "all": lambda i: i.mnemonic != "(bad)",
    "jcc": lambda i: i.flow == Flow.JCC,
    "jmp": lambda i: i.flow == Flow.JMP,
    "ret": lambda i: i.is_ret,
    "call": lambda i: i.flow == Flow.CALL or i.is_indirect_call,
    "mem-write": is_memory_write,
    "mem-read": lambda i: i.has_mem_operand and not i.writes_rm,
    "rip-relative": lambda i: i.rip_relative,
    "direct-branch": lambda i: i.is_direct_branch,
    "indirect-branch": lambda i: i.is_indirect_jump or i.is_indirect_call,
    # Fact-engine barewords.  May-sets for defines/uses (unknown
    # instructions match); the known bit gates preserves-flags and the
    # memory classes (unknown instructions never match those).
    "defines-flags": lambda i: facts_for(i).flags_written != 0,
    "uses-flags": lambda i: facts_for(i).flags_read != 0,
    "preserves-flags": lambda i: facts_for(i).preserves_flags,
    "mem-stack": lambda i: facts_for(i).mem_class == "stack",
    "mem-global": lambda i: facts_for(i).mem_class == "global",
    "mem-heap": lambda i: facts_for(i).mem_class == "heap",
}

_REG_PREDICATES = ("reads", "writes", "kills")

_REG_INDEX = {name: idx for idx, name in enumerate(REG_NAMES_64)}


@dataclass(frozen=True)
class RegTest(Node):
    pred: str  # "reads" | "writes" | "kills"
    reg: int  # register index into the fact masks

    def evaluate(self, insn: Instruction) -> bool:
        facts = facts_for(insn)
        if self.pred == "reads":
            mask = facts.regs_read
        elif self.pred == "writes":
            mask = facts.regs_written
        else:
            mask = facts.regs_killed
        return bool((mask >> self.reg) & 1)


@dataclass(frozen=True)
class Bareword(Node):
    name: str

    def evaluate(self, insn: Instruction) -> bool:
        return _BAREWORDS[self.name](insn)


# --------------------------------------------------------------------------
# Parser
# --------------------------------------------------------------------------

class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def take(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.take()
        if token.kind != kind:
            raise MatchExprError(
                f"expected {kind}, found {token.text!r}"
            )
        return token

    def parse(self) -> Node:
        node = self.parse_or()
        if self.peek().kind != "eof":
            raise MatchExprError(
                f"trailing input starting at {self.peek().text!r}"
            )
        return node

    def parse_or(self) -> Node:
        node = self.parse_and()
        while self.peek().kind == "word" and self.peek().text == "or":
            self.take()
            node = Or(node, self.parse_and())
        return node

    def parse_and(self) -> Node:
        node = self.parse_not()
        while self.peek().kind == "word" and self.peek().text == "and":
            self.take()
            node = And(node, self.parse_not())
        return node

    def parse_not(self) -> Node:
        if self.peek().kind == "word" and self.peek().text == "not":
            self.take()
            return Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Node:
        token = self.peek()
        if token.kind == "lparen":
            self.take()
            node = self.parse_or()
            self.expect("rparen")
            return node
        if token.kind == "word":
            self.take()
            if token.text in _REG_PREDICATES:
                return self.parse_regtest(token.text)
            if token.text in _FIELDS:
                return self.parse_comparison(token.text)
            if token.text in _BAREWORDS:
                return Bareword(token.text)
            raise MatchExprError(f"unknown name {token.text!r}")
        raise MatchExprError(f"unexpected token {token.text!r}")

    def parse_regtest(self, pred: str) -> Node:
        token = self.take()
        if token.kind != "word" or token.text not in _REG_INDEX:
            raise MatchExprError(
                f"{pred} expects a 64-bit register name, "
                f"found {token.text!r}"
            )
        return RegTest(pred, _REG_INDEX[token.text])

    def parse_comparison(self, field: str) -> Node:
        op = self.expect("cmp").text
        value_token = self.take()
        value: object
        if value_token.kind == "hex":
            value = int(value_token.text, 16)
        elif value_token.kind == "int":
            value = int(value_token.text)
        elif value_token.kind == "string":
            value = value_token.text[1:-1]
        elif value_token.kind == "regex":
            if op != "=~":
                raise MatchExprError("regex values require the =~ operator")
            try:
                value = re.compile(value_token.text[1:-1])
            except re.error as exc:
                raise MatchExprError(f"bad regex: {exc}") from exc
        else:
            raise MatchExprError(
                f"expected a value, found {value_token.text!r}"
            )
        if op == "=~":
            if isinstance(value, str):
                try:
                    value = re.compile(value)
                except re.error as exc:
                    raise MatchExprError(f"bad regex: {exc}") from exc
            if not isinstance(value, re.Pattern):
                raise MatchExprError("=~ requires a regex or string value")
        if op in _NUMERIC_CMPS and not isinstance(value, int):
            raise MatchExprError(f"operator {op} requires an integer value")
        if op in _NUMERIC_CMPS and field == "mnemonic":
            raise MatchExprError("mnemonic only supports ==, != and =~")
        return Comparison(field, op, value)


def parse(source: str) -> Node:
    """Parse a matcher expression into its AST."""
    return _Parser(tokenize(source)).parse()


def compile_matcher(source: str) -> Callable[[Instruction], bool]:
    """Compile an expression into an ``Instruction -> bool`` predicate."""
    ast = parse(source)
    return ast.evaluate
