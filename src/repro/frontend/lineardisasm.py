"""Linear-sweep disassembly of a binary's code section.

The paper's prototype frontend applies linear disassembly to the
``.text`` section; E9Patch itself only consumes the resulting instruction
locations and sizes.  Bytes that fail to decode are kept as single-byte
``(bad)`` pseudo-instructions (data embedded in code) — the rewriter
never patches them, but may use them as pun material, exactly like any
other byte it is told about.
"""

from __future__ import annotations

from repro.errors import ElfError
from repro.elf.reader import ElfFile
from repro.x86.decoder import decode_buffer
from repro.x86.insn import Instruction


def disassemble_section(elf: ElfFile, name: str) -> list[Instruction]:
    """Linearly disassemble the named section."""
    sec = elf.section(name)
    if sec is None:
        raise ElfError(f"binary has no {name!r} section")
    data = elf.section_bytes(name)
    return decode_buffer(data, address=sec.vaddr)


def disassemble_text_stream(elf: ElfFile, *, executor=None):
    """Zero-copy stream variant of :func:`disassemble_text`.

    Decodes the code region into a lazy
    :class:`~repro.x86.fastscan.InstructionStream` over a read-only
    ``memoryview`` of the ELF image — no section-bytes copy, no eager
    ``Instruction`` materialization.  *executor* (a
    :class:`~repro.core.parallel.BatchExecutor`) enables chunked
    parallel decode for large regions.

    Returns ``None`` when the layout needs the legacy list path (a
    stripped binary with several executable segments — streams cover one
    contiguous region).
    """
    from repro.x86.fastscan import decode_stream

    sec = elf.section(".text")
    if sec is not None:
        return decode_stream(
            elf.section_view(".text"), sec.vaddr, executor=executor
        )
    segs = [seg for seg in elf.load_segments() if seg.executable]
    if len(segs) != 1:
        return None
    phdr = segs[0].phdr
    view = memoryview(elf.data)[phdr.offset : phdr.offset + phdr.filesz]
    return decode_stream(view, phdr.vaddr, executor=executor)


def disassemble_text(elf: ElfFile) -> list[Instruction]:
    """Disassemble ``.text``, falling back to the executable segment when
    the binary is stripped of section headers."""
    if elf.section(".text") is not None:
        return disassemble_section(elf, ".text")
    insns: list[Instruction] = []
    for seg in elf.load_segments():
        if not seg.executable:
            continue
        data = elf.data[seg.phdr.offset : seg.phdr.offset + seg.phdr.filesz]
        insns.extend(decode_buffer(data, address=seg.phdr.vaddr))
    return insns


def disassemble_functions(elf: ElfFile) -> list[Instruction]:
    """Symbol-guided disassembly: a linear sweep per *function extent*.

    Hand-written assembly (glibc's string routines, etc.) embeds data
    islands in ``.text`` that desynchronize a whole-section linear
    sweep — phantom instructions overlap real ones and a patch placed on
    a phantom corrupts live code.  Function symbols give ground-truth
    re-synchronization points (this is still control-flow agnostic: no
    jump targets, no basic blocks — just where functions *start*, the
    same frontend information the paper's design delegates).

    Bytes outside any known function are never offered for patching.
    """
    from repro.elf.symbols import function_ranges

    ranges = function_ranges(elf)
    if not ranges:
        raise ElfError(
            "binary has no usable function symbols; "
            "use the linear frontend instead"
        )
    out: list[Instruction] = []
    data = elf.data
    for start, end in ranges:
        offset = elf.vaddr_to_offset(start)
        chunk = data[offset : offset + (end - start)]
        out.extend(decode_buffer(chunk, address=start))
    return out
