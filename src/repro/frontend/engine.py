"""A reentrant rewrite engine: resolve configuration once, serve many.

The one-shot CLI builds its configuration from flags and environment
variables every invocation; a long-lived process (the service daemon,
an embedding tool) must not — two requests racing through one process
should share nothing but the artifact store, and nothing on the request
path may consult ``os.environ`` or module globals.

:class:`RewriteEngine` is that contract made explicit:

* an :class:`EngineConfig` freezes the frontend choice, the
  :class:`~repro.core.cache.CacheConfig`, and the
  :class:`~repro.core.parallel.ExecutorConfig` at construction;
* one :class:`~repro.core.cache.ArtifactStore` (concurrency-safe) is
  shared by every request;
* :meth:`RewriteEngine.rewrite` is stateless per request — a fresh
  :class:`~repro.core.observe.Observer`, a fresh
  :class:`~repro.core.pipeline.RewriteContext`, a fresh allocator —
  so N threads rewriting the same or different binaries produce
  byte-identical outputs to N serial one-shot runs.

:func:`options_from_dict` converts the JSON-level options object used
by the service API (and mirroring the JSON-RPC ``options`` method of
:mod:`repro.frontend.protocol`) into a typed
:class:`~repro.core.pipeline.RewriteOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache import ArtifactStore, CacheConfig
from repro.core.observe import Observer
from repro.core.parallel import ExecutorConfig
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.frontend.matchers import MATCHERS
from repro.frontend.tool import InstrumentReport, RewriteConfig, rewrite_many

__all__ = ["EngineConfig", "RewriteEngine", "options_from_dict"]

#: JSON option keys accepted by :func:`options_from_dict`.
_OPTION_KEYS = frozenset({
    "mode", "grouping", "granularity", "guard_pages", "shared",
    "library_path", "pack_allocations", "verify", "check",
    "liveness", "lint", "t1", "t2", "t3", "b0",
})


def options_from_dict(params: dict) -> RewriteOptions:
    """Typed :class:`RewriteOptions` from a JSON options object.

    Unknown keys raise ``ValueError`` (the service maps that to a 400)
    rather than being silently dropped — a typoed ``granularty`` must
    not quietly rewrite with defaults.
    """
    unknown = set(params) - _OPTION_KEYS
    if unknown:
        raise ValueError(f"unknown option(s): {', '.join(sorted(unknown))}")
    mode = params.get("mode", "auto")
    if mode not in ("auto", "phdr", "loader"):
        raise ValueError(f"invalid mode {mode!r}")
    toggles = TacticToggles(
        t1=bool(params.get("t1", True)),
        t2=bool(params.get("t2", True)),
        t3=bool(params.get("t3", True)),
        b0_fallback=bool(params.get("b0", False)),
    )
    return RewriteOptions(
        mode=mode,
        grouping=bool(params.get("grouping", True)),
        granularity=int(params.get("granularity", 1)),
        guard_pages=int(params.get("guard_pages", 1)),
        shared=bool(params.get("shared", False)),
        library_path=params.get("library_path"),
        pack_allocations=bool(params.get("pack_allocations", False)),
        verify=bool(params.get("verify", False)),
        check=bool(params.get("check", False)),
        liveness=bool(params.get("liveness", False)),
        lint=bool(params.get("lint", False)),
        toggles=toggles,
    )


@dataclass(frozen=True)
class EngineConfig:
    """Everything a long-lived engine resolves exactly once.

    ``cache=None`` disables the artifact store entirely;
    ``executor`` defaults to a fresh ``$REPRO_JOBS`` resolution *at
    config construction* — the only moment the environment is read.
    The executor serves double duty: batches wide enough fan out one
    process per configuration, and a single large binary fans its
    *decode* out across the same workers (chunked linear sweep with
    boundary reconciliation — see ``docs/PERF.md``).
    """

    frontend: str = "linear"
    cache: CacheConfig | None = None
    executor: ExecutorConfig = field(default_factory=ExecutorConfig.from_env)
    cache_outputs: bool = False


class RewriteEngine:
    """Shared-nothing-but-the-store rewrite engine.

    Safe to call from many threads concurrently: the engine owns only
    immutable configuration and the concurrency-safe
    :class:`ArtifactStore`; every mutable pipeline object is created per
    request.
    """

    def __init__(self, config: EngineConfig | None = None, *,
                 store: ArtifactStore | None = None) -> None:
        self.config = config or EngineConfig()
        if store is not None:
            self.store = store
        elif self.config.cache is not None:
            self.store = ArtifactStore(config=self.config.cache)
        else:
            self.store = None

    def rewrite(
        self,
        data: bytes,
        *,
        matcher: str = "jumps",
        instrumentation: str | None = None,
        options: RewriteOptions | None = None,
        frontend: str | None = None,
        observer: Observer | None = None,
    ) -> InstrumentReport:
        """One stateless rewrite request.

        *matcher* is a named matcher or a match expression (compiled
        here, off the engine's shared state); *observer* defaults to a
        fresh per-request instance so concurrent requests never share
        timing accumulators.
        """
        spec = matcher
        if isinstance(matcher, str) and matcher not in MATCHERS:
            from repro.frontend.match_expr import compile_matcher

            spec = compile_matcher(matcher)
        return rewrite_many(
            bytes(data),
            [RewriteConfig(matcher=spec, instrumentation=instrumentation,
                           options=options)],
            frontend=frontend or self.config.frontend,
            observer=observer or Observer(),
            jobs=self.config.executor,
            cache=self.store,
            cache_outputs=self.config.cache_outputs,
        )[0]
