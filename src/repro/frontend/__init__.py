"""Frontend: disassembly wrapper and patch-site matchers (the paper's
"basic wrapper frontend" + the e9tool analogue)."""

from repro.frontend.lineardisasm import disassemble_text, disassemble_section
from repro.frontend.matchers import (
    MATCHERS,
    match_jumps,
    match_heap_writes,
    match_all,
)
from repro.frontend.tool import instrument_elf, InstrumentReport

__all__ = [
    "disassemble_text",
    "disassemble_section",
    "MATCHERS",
    "match_jumps",
    "match_heap_writes",
    "match_all",
    "instrument_elf",
    "InstrumentReport",
]
