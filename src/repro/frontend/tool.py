"""The e9tool analogue: one-call instrumentation of an ELF binary, plus a
command-line interface.

``instrument_elf`` wires the pipeline together: linear disassembly ->
matcher -> strategy S1 -> grouped emission, and returns the patched image
with the paper's Table-1 statistics.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.core.rewriter import RewriteOptions, RewriteResult, Rewriter
from repro.core.strategy import PatchRequest, TacticToggles
from repro.core.trampoline import Counter, Empty, Instrumentation
from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_functions, disassemble_text
from repro.frontend.matchers import MATCHERS, Matcher, select_sites


@dataclass
class InstrumentReport:
    """Result bundle for an instrumentation run."""

    result: RewriteResult
    n_sites: int
    counter_vaddr: int | None = None  # set when instrumentation="counter"

    @property
    def stats(self):
        return self.result.stats

    def summary(self) -> str:
        s = self.result.stats
        return (
            f"{s} Size%={self.result.size_pct:.2f} "
            f"mode={self.result.mode}"
        )


def instrument_elf(
    data: bytes,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None = None,
    options: RewriteOptions | None = None,
    *,
    frontend: str = "linear",
) -> InstrumentReport:
    """Instrument every matched instruction of the binary *data*.

    *matcher* may be a predicate or one of the named matchers
    (``"jumps"``, ``"heap-writes"``, ``"calls"``, ``"all"``).
    *instrumentation* may be an :class:`Instrumentation`, ``"empty"``, or
    ``"counter"`` (a shared 64-bit counter placed in a fresh RW segment;
    its address is reported in the result).
    *frontend* selects the disassembly wrapper: ``"linear"`` (whole
    ``.text`` sweep — the paper's prototype) or ``"symbols"``
    (symbol-guided sweeps, required for binaries whose .text embeds data,
    e.g. glibc's hand-written assembly).
    """
    if isinstance(matcher, str):
        matcher = MATCHERS[matcher]

    elf = ElfFile(data)
    if frontend == "symbols":
        instructions = disassemble_functions(elf)
    elif frontend == "linear":
        instructions = disassemble_text(elf)
    else:
        raise ValueError(f"unknown frontend {frontend!r}")
    sites = select_sites(instructions, matcher)
    rewriter = Rewriter(elf, instructions, options)

    counter_vaddr: int | None = None
    if instrumentation is None or instrumentation == "empty":
        instrumentation = Empty()
    elif instrumentation == "counter":
        counter_vaddr = rewriter.add_runtime_data(4096)
        instrumentation = Counter(counter_vaddr)
    elif callable(instrumentation) and not isinstance(instrumentation,
                                                      Instrumentation):
        # A factory receiving the rewriter (for runtime code/data setup).
        instrumentation = instrumentation(rewriter)

    requests = [PatchRequest(insn=i, instrumentation=instrumentation) for i in sites]
    result = rewriter.rewrite(requests)
    return InstrumentReport(result=result, n_sites=len(sites),
                            counter_vaddr=counter_vaddr)


def instrument_elf_auto(
    data: bytes,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None = None,
    options: RewriteOptions | None = None,
    *,
    max_mappings: int | None = None,
) -> InstrumentReport:
    """Like :func:`instrument_elf`, but auto-tunes the page-grouping
    granularity M: doubling it until the loader's mapping count fits
    under *max_mappings* (default: the Linux ``vm.max_map_count``
    default), trading physical memory for mappings exactly as Section 4
    describes.
    """
    from dataclasses import replace as _replace

    from repro.core.grouping import DEFAULT_MAX_MAP_COUNT

    limit = max_mappings if max_mappings is not None else DEFAULT_MAX_MAP_COUNT
    base = options or RewriteOptions(mode="loader")
    m = max(1, base.granularity)
    while True:
        report = instrument_elf(
            data, matcher, instrumentation,
            _replace(base, mode="loader", granularity=m),
        )
        grouping = report.result.grouping
        if grouping is None or grouping.mapping_count <= limit or m >= 1024:
            return report
        m *= 2


def main(argv: list[str] | None = None) -> int:
    """Command-line interface: ``e9patch -M jumps -i empty in.elf out.elf``."""
    parser = argparse.ArgumentParser(
        prog="e9patch",
        description="Static binary rewriting without control flow recovery "
        "(E9Patch reproduction).",
    )
    parser.add_argument("input", help="input ELF binary")
    parser.add_argument("output", help="patched output path")
    parser.add_argument(
        "-M", "--match", default="jumps",
        help="patch-site matcher: a named matcher "
        f"({'/'.join(sorted(MATCHERS))}) or an expression such as "
        "'mnemonic == \"call\" and size >= 5' (default: jumps)",
    )
    parser.add_argument(
        "-i", "--instrument", default="empty", choices=("empty", "counter"),
        help="instrumentation body (default: empty)",
    )
    parser.add_argument(
        "--template", metavar="FILE",
        help="JSON trampoline template file (overrides -i); parameters "
        "are bound with --template-arg",
    )
    parser.add_argument(
        "--template-arg", action="append", default=[], metavar="NAME=INT",
        help="bind a template parameter (repeatable); the special value "
        "'alloc' reserves a fresh RW page and passes its address",
    )
    parser.add_argument(
        "--stats-json", metavar="FILE",
        help="write the patching statistics as JSON",
    )
    parser.add_argument(
        "--mode", default="auto", choices=("auto", "phdr", "loader"),
        help="emission mode (default: auto)",
    )
    parser.add_argument(
        "--granularity", "-g", type=int, default=1, metavar="M",
        help="page-grouping granularity in pages (default: 1)",
    )
    parser.add_argument(
        "--no-grouping", action="store_true",
        help="disable physical page grouping (naive 1:1 mapping)",
    )
    parser.add_argument(
        "--no-t1", action="store_true", help="disable tactic T1 (padded jumps)"
    )
    parser.add_argument(
        "--no-t2", action="store_true", help="disable tactic T2 (successor eviction)"
    )
    parser.add_argument(
        "--no-t3", action="store_true", help="disable tactic T3 (neighbour eviction)"
    )
    parser.add_argument(
        "--shared", action="store_true",
        help="input is a shared object (positive offsets only; loader "
        "installed via DT_INIT)",
    )
    parser.add_argument(
        "--frontend", default="linear", choices=("linear", "symbols"),
        help="disassembly frontend (symbols: per-function sweeps, for "
        "binaries mixing data into .text)",
    )
    parser.add_argument(
        "--library-path", metavar="PATH",
        help="install path of the patched shared object (required with "
        "--shared in loader mode; defaults to the output path)",
    )
    args = parser.parse_args(argv)

    library_path = args.library_path
    if args.shared and library_path is None:
        library_path = args.output

    options = RewriteOptions(
        mode=args.mode,
        grouping=not args.no_grouping,
        granularity=args.granularity,
        toggles=TacticToggles(
            t1=not args.no_t1, t2=not args.no_t2, t3=not args.no_t3
        ),
        shared=args.shared,
        library_path=library_path,
    )
    with open(args.input, "rb") as f:
        data = f.read()

    matcher: Matcher | str = args.match
    if args.match not in MATCHERS:
        from repro.frontend.match_expr import compile_matcher

        matcher = compile_matcher(args.match)

    instrumentation: object = args.instrument
    if args.template:
        from repro.core.templates import load_template

        with open(args.template) as f:
            template = load_template(f.read())

        def factory(rewriter):
            bound = {}
            for item in args.template_arg:
                name, _, value = item.partition("=")
                if value == "alloc":
                    bound[name] = rewriter.add_runtime_data(4096)
                    print(f"{name} at {bound[name]:#x}")
                else:
                    bound[name] = int(value, 0)
            return template.instantiate(**bound)

        instrumentation = factory

    report = instrument_elf(data, matcher, instrumentation, options,
                            frontend=args.frontend)
    if report.counter_vaddr is not None:
        print(f"counter at {report.counter_vaddr:#x}")
    if args.stats_json:
        import json

        stats = report.stats.row()
        stats["size_pct"] = round(report.result.size_pct, 2)
        stats["mode"] = report.result.mode
        stats["failures"] = report.result.plan.failures
        with open(args.stats_json, "w") as f:
            json.dump(stats, f, indent=2)
    with open(args.output, "wb") as f:
        f.write(report.result.data)
    print(report.summary())
    if report.result.plan.failures:
        print(f"warning: {len(report.result.plan.failures)} sites not patched",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
