"""The e9tool analogue: one-call instrumentation of an ELF binary, a
batch API over the staged pipeline, and a command-line interface.

``instrument_elf`` runs the standard pass sequence (decode -> match ->
plan -> group -> emit) for one configuration; ``rewrite_many`` runs many
configurations of the same binary while decoding the instruction stream
once and caching matcher results — the eval/ablation drivers are thin
loops over it.  Both surface per-pass wall-time and counters through the
shared :class:`~repro.core.observe.Observer`.

Two optional accelerators thread through every entry point:

* ``jobs`` — a :class:`~repro.core.parallel.BatchExecutor` shards a
  batch across worker processes, one (binary, config) pair per task,
  with deterministic ordering and a serial fallback that produces the
  same bytes;
* ``cache`` — an :class:`~repro.core.cache.ArtifactStore` persists
  decoded instruction streams and matcher results (optionally whole
  rewrite results) on disk, so warm runs skip ``DecodePass`` and
  ``MatchPass`` entirely — checkable via ``pass.decode.runs == 0`` and
  the ``cache.*`` counters.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, replace

from repro.analysis.lint import LintError
from repro.core.cache import ArtifactStore
from repro.core.grouping import DEFAULT_MAX_MAP_COUNT
from repro.core.observe import Observer, derive_throughput, stderr_trace_hook
from repro.core.parallel import BatchExecutor, ExecutorConfig, is_picklable
from repro.core.pipeline import DecodePass, MatchPass, RewriteContext
from repro.core.rewriter import RewriteOptions, RewriteResult, Rewriter
from repro.core.strategy import PatchRequest, TacticToggles
from repro.core.trampoline import Counter, Empty, Instrumentation
from repro.elf.reader import ElfFile
from repro.frontend.matchers import MATCHERS, Matcher
from repro.x86.fastscan import InstructionStream


@dataclass
class InstrumentReport:
    """Result bundle for an instrumentation run."""

    result: RewriteResult
    n_sites: int
    counter_vaddr: int | None = None  # set when instrumentation="counter"
    label: str = ""  # batch configuration label (rewrite_many)
    elf_type: str = "ET_EXEC"  # input image kind ("ET_EXEC" / "ET_DYN")
    cet: bool = False  # CET/IBT instruction set observed (note or endbr64)
    cet_note: bool = False  # explicit GNU property note carrying the IBT bit

    @property
    def stats(self):
        return self.result.stats

    @property
    def timings(self) -> dict[str, float]:
        """Per-pass wall-time seconds for this run (batch runs report
        the per-configuration delta, not the whole batch)."""
        return self.result.timings

    @property
    def counters(self) -> dict[str, int]:
        """Per-pass counters for this run (per-configuration delta)."""
        return self.result.counters

    def summary(self) -> str:
        s = self.result.stats
        return (
            f"{s} Size%={self.result.size_pct:.2f} "
            f"mode={self.result.mode}"
        )

    def to_dict(self) -> dict:
        """The full machine-readable stats/timings bundle (CLI ``--json``)."""
        return {
            "label": self.label,
            "n_sites": self.n_sites,
            "mode": self.result.mode,
            "input_size": self.result.input_size,
            "output_size": self.result.output_size,
            "size_pct": round(self.result.size_pct, 2),
            "counter_vaddr": self.counter_vaddr,
            "binary": {
                "type": self.elf_type,
                "cet": self.cet,
                "cet_note": self.cet_note,
            },
            "stats": self.stats.row(),
            "failures": self.result.plan.failures,
            "timings": {k: round(v, 6) for k, v in self.result.timings.items()},
            "counters": self.result.counters,
            "throughput": derive_throughput(self.result.timings,
                                            self.result.counters),
        }


@dataclass
class RewriteConfig:
    """One batch entry: matcher + instrumentation + rewrite options.

    ``matcher``/``instrumentation`` left as ``None`` inherit the batch
    call's defaults, so sweeping options with a fixed matcher stays
    one-line.
    """

    matcher: Matcher | str | None = None
    instrumentation: Instrumentation | str | None = None
    options: RewriteOptions | None = None
    label: str = ""


def _resolve_instrumentation(
    rewriter: Rewriter, instrumentation
) -> tuple[Instrumentation, int | None]:
    """Turn the user-facing instrumentation spec into a concrete body."""
    counter_vaddr: int | None = None
    if instrumentation is None or instrumentation == "empty":
        instrumentation = Empty()
    elif instrumentation == "counter":
        counter_vaddr = rewriter.add_runtime_data(4096)
        # ET_DYN images (shared objects, PIE) relocate at load time, so
        # the counter access must be rip-relative, not movabs.
        instrumentation = Counter(counter_vaddr, pic=rewriter.elf.is_pie)
    elif callable(instrumentation) and not isinstance(instrumentation,
                                                      Instrumentation):
        # A factory receiving the rewriter (for runtime code/data setup).
        instrumentation = instrumentation(rewriter)
    return instrumentation, counter_vaddr


def prepare_binary(
    data: bytes,
    *,
    frontend: str = "linear",
    observer: Observer | None = None,
    cache: ArtifactStore | None = None,
    jobs: BatchExecutor | None = None,
) -> RewriteContext:
    """Parse and disassemble *data* once, into a reusable context.

    *frontend* selects the disassembly wrapper: ``"linear"`` (whole
    ``.text`` sweep — the paper's prototype) or ``"symbols"``
    (symbol-guided sweeps, required for binaries whose .text embeds data,
    e.g. glibc's hand-written assembly).

    With a *cache*, the decoded instruction stream is looked up by
    content hash first; on a hit ``DecodePass`` never runs (its ``runs``
    counter stays 0) and ``cache.decode.hits`` is counted instead.

    *jobs* (a :class:`~repro.core.parallel.BatchExecutor`) enables
    chunked intra-binary parallel decode for large code regions; the
    resulting stream is byte-identical to the serial sweep.
    """
    observer = observer or Observer()
    ctx = RewriteContext(
        elf=ElfFile(data),
        options=RewriteOptions(),
        observer=observer,
    )
    key = None
    if cache is not None:
        key = cache.decode_key(data, frontend)
        cached = cache.get("decode", key)
        if isinstance(cached, (list, InstructionStream)):
            ctx.instructions = cached
            observer.count("cache.decode.hits")
            observer.count("decode.instructions", len(cached))
            return ctx
        observer.count("cache.decode.misses")
    DecodePass(frontend, jobs=jobs).run(ctx)
    if cache is not None:
        cache.put("decode", key, ctx.instructions)
    return ctx


# -- parallel worker (must be module-level: it crosses a process fork) ----


@dataclass
class _ConfigTask:
    """One (binary, config) unit shipped to a worker process."""

    data: bytes
    config: RewriteConfig
    matcher: Matcher | str
    instrumentation: Instrumentation | str | None
    frontend: str
    cache_root: str | None
    cache_max_bytes: int
    cache_outputs: bool


def _run_config_task(task: _ConfigTask):
    """Worker body: a single-configuration serial rewrite, returning the
    report plus the worker observer's accumulations and cache traffic."""
    cache = (ArtifactStore(task.cache_root, max_bytes=task.cache_max_bytes)
             if task.cache_root is not None else None)
    observer = Observer()
    [report] = _rewrite_serial(
        task.data, [task.config],
        matcher=task.matcher, instrumentation=task.instrumentation,
        frontend=task.frontend, observer=observer, cache=cache,
        cache_outputs=task.cache_outputs,
    )
    cache_stats = cache.stats.as_dict() if cache is not None else {}
    return report, observer.timings, observer.counters, cache_stats


def _rewrite_serial(
    source: bytes | RewriteContext,
    configs: list[RewriteConfig],
    *,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None,
    frontend: str,
    observer: Observer | None,
    cache: ArtifactStore | None,
    cache_outputs: bool,
    jobs: BatchExecutor | None = None,
) -> list[InstrumentReport]:
    """The in-process batch loop: one decode, cached matches, and a
    fresh planner/emitter (hence a fresh allocator) per configuration."""
    shared_observer = (source.observer if isinstance(source, RewriteContext)
                       else observer or Observer())
    # Snapshot *before* decoding: the first configuration's per-run
    # counters carry the decode/match work its batch actually triggered.
    run_snapshot = shared_observer.snapshot()
    if isinstance(source, RewriteContext):
        base = source
    else:
        base = prepare_binary(data=source, frontend=frontend,
                              observer=shared_observer, cache=cache,
                              jobs=jobs)
    decode_key = (cache.decode_key(base.elf.data, frontend)
                  if cache is not None else None)
    elf_meta = {
        "elf_type": base.elf.elf_type,
        "cet": base.elf.is_cet_enabled(),
        "cet_note": base.elf.has_ibt_note,
    }

    site_cache: dict[object, list] = {}
    reports: list[InstrumentReport] = []
    for n, cfg in enumerate(configs):
        if n > 0:
            # Per-run counter scope: each configuration's report carries
            # only its own pass work, not the batch's running total.
            run_snapshot = shared_observer.snapshot()
        spec = cfg.matcher if cfg.matcher is not None else matcher
        sites = _match_sites(base, spec, site_cache, cache, decode_key)

        body_spec = (cfg.instrumentation if cfg.instrumentation is not None
                     else instrumentation)
        options = cfg.options or RewriteOptions()
        output_key = None
        if (cache is not None and cache_outputs and isinstance(spec, str)
                and body_spec in (None, "empty")):
            output_key = cache.output_key(decode_key, spec, options, "empty")
            hit = cache.get("output", output_key)
            if (isinstance(hit, tuple) and len(hit) == 2
                    and isinstance(hit[0], RewriteResult)):
                result, n_sites = hit
                shared_observer.count("cache.output.hits")
                result.timings, result.counters = (
                    shared_observer.since(run_snapshot))
                reports.append(InstrumentReport(
                    result=result, n_sites=n_sites, label=cfg.label,
                    **elf_meta))
                continue
            shared_observer.count("cache.output.misses")

        rewriter = Rewriter(base.elf, base.instructions, options,
                            observer=shared_observer)
        body, counter_vaddr = _resolve_instrumentation(rewriter, body_spec)
        requests = [PatchRequest(insn=i, instrumentation=body)
                    for i in sites]
        result = rewriter.rewrite(requests)
        result.timings, result.counters = (
            shared_observer.since(run_snapshot))
        if output_key is not None:
            cache.put("output", output_key, (result, len(sites)))
        reports.append(InstrumentReport(
            result=result, n_sites=len(sites),
            counter_vaddr=counter_vaddr, label=cfg.label,
            **elf_meta,
        ))
    return reports


def _match_sites(
    base: RewriteContext,
    spec: Matcher | str,
    site_cache: dict[object, list],
    cache: ArtifactStore | None,
    decode_key: str | None,
) -> list:
    """Resolve a matcher spec to its site list: per-batch memo first,
    then the on-disk cache (named matchers only), then ``MatchPass``."""
    memo_key = spec if isinstance(spec, str) else id(spec)
    if memo_key in site_cache:
        return site_cache[memo_key]

    observer = base.observer
    match_key = None
    if cache is not None and isinstance(spec, str):
        match_key = cache.match_key(decode_key, spec)
        indices = cache.get("match", match_key)
        if (isinstance(indices, list)
                and all(isinstance(i, int)
                        and 0 <= i < len(base.instructions)
                        for i in indices)):
            sites = [base.instructions[i] for i in indices]
            observer.count("cache.match.hits")
            observer.count("match.sites", len(sites))
            site_cache[memo_key] = sites
            return sites
        observer.count("cache.match.misses")

    fn = MATCHERS[spec] if isinstance(spec, str) else spec
    MatchPass(fn).run(base)
    sites = base.sites
    if match_key is not None:
        site_indices = getattr(base.instructions, "site_indices", None)
        if site_indices is not None:  # InstructionStream: address bisect
            cache.put("match", match_key, site_indices(sites))
        else:
            position = {
                id(insn): i for i, insn in enumerate(base.instructions)
            }
            cache.put("match", match_key, [position[id(s)] for s in sites])
    site_cache[memo_key] = sites
    return sites


def rewrite_many(
    source: bytes | RewriteContext,
    configs: list[RewriteConfig | RewriteOptions],
    *,
    matcher: Matcher | str = "jumps",
    instrumentation: Instrumentation | str | None = None,
    frontend: str = "linear",
    observer: Observer | None = None,
    jobs: int | ExecutorConfig | BatchExecutor | None = None,
    cache: ArtifactStore | None = None,
    cache_outputs: bool = False,
) -> list[InstrumentReport]:
    """Rewrite one binary under many configurations, sharing the decode.

    *source* is the raw ELF bytes, or a context from
    :func:`prepare_binary` when the caller wants to reuse the decode
    across several ``rewrite_many`` calls.  Each entry of *configs* is a
    :class:`RewriteConfig` (or bare :class:`RewriteOptions`, inheriting
    the call-level *matcher*/*instrumentation* defaults).

    Serially, the instruction stream is decoded exactly once and matcher
    results are memoized per matcher (checkable via the shared
    observer's ``pass.decode.runs`` / ``pass.match.runs`` counters).
    With ``jobs > 1`` (or ``$REPRO_JOBS``), picklable configurations fan
    out one (binary, config) task per worker process; outputs and stats
    are byte-identical to the serial path, results come back in config
    order, and worker observers are merged into the shared one.  An
    unpicklable matcher/instrumentation quietly degrades to serial, as
    does any batch whose effective concurrency is 1 (e.g. a one-CPU
    host, where forking workers would only forfeit the shared decode).
    """
    norm = [cfg if isinstance(cfg, RewriteConfig) else RewriteConfig(options=cfg)
            for cfg in configs]
    # *jobs* may be a pre-built executor (or a frozen ExecutorConfig):
    # long-lived callers resolve $REPRO_JOBS once at startup and reuse
    # the result for every request instead of re-reading it here.
    executor = jobs if isinstance(jobs, BatchExecutor) else BatchExecutor(jobs)
    # would_parallelize folds in the CPU count: on a one-CPU host the
    # pool cannot beat the serial path (which shares a single decode),
    # so the batch never pays the fork/pickle overhead.
    if (executor.would_parallelize(len(norm))
            and isinstance(source, (bytes, bytearray))):
        reports = _rewrite_parallel(
            executor, bytes(source), norm,
            matcher=matcher, instrumentation=instrumentation,
            frontend=frontend, observer=observer, cache=cache,
            cache_outputs=cache_outputs,
        )
        if reports is not None:
            return reports
    return _rewrite_serial(
        source, norm,
        matcher=matcher, instrumentation=instrumentation,
        frontend=frontend, observer=observer, cache=cache,
        cache_outputs=cache_outputs,
        # The serial batch path reuses the executor *inside* the decode:
        # a batch too small to fan out may still carry a binary large
        # enough for chunked intra-binary decode.
        jobs=executor,
    )


def _rewrite_parallel(
    executor: BatchExecutor,
    data: bytes,
    configs: list[RewriteConfig],
    *,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None,
    frontend: str,
    observer: Observer | None,
    cache: ArtifactStore | None,
    cache_outputs: bool,
) -> list[InstrumentReport] | None:
    """Fan the batch out across worker processes, or return None when a
    task cannot be shipped (the caller then takes the serial path, which
    shares one in-process decode instead)."""
    tasks = [
        _ConfigTask(
            data=data, config=cfg,
            matcher=matcher, instrumentation=instrumentation,
            frontend=frontend,
            cache_root=str(cache.root) if cache is not None else None,
            cache_max_bytes=cache.max_bytes if cache is not None else 0,
            cache_outputs=cache_outputs,
        )
        for cfg in configs
    ]
    if not all(is_picklable(task) for task in tasks):
        return None
    outcomes = executor.map(_run_config_task, tasks)

    shared = observer or Observer()
    shared.count("parallel.tasks", len(tasks))
    shared.set_counter("parallel.jobs", executor.jobs)
    reports: list[InstrumentReport] = []
    for report, timings, counters, cache_stats in outcomes:
        shared.merge(timings, counters)
        if cache is not None:
            for name, value in cache_stats.items():
                setattr(cache.stats, name,
                        getattr(cache.stats, name) + value)
        reports.append(report)
    return reports


def instrument_elf(
    data: bytes,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None = None,
    options: RewriteOptions | None = None,
    *,
    frontend: str = "linear",
    observer: Observer | None = None,
    cache: ArtifactStore | None = None,
) -> InstrumentReport:
    """Instrument every matched instruction of the binary *data*.

    *matcher* may be a predicate or one of the named matchers
    (``"jumps"``, ``"heap-writes"``, ``"calls"``, ``"all"``).
    *instrumentation* may be an :class:`Instrumentation`, ``"empty"``, or
    ``"counter"`` (a shared 64-bit counter placed in a fresh RW segment;
    its address is reported in the result).  A single-configuration
    :func:`rewrite_many`.
    """
    return rewrite_many(
        data,
        [RewriteConfig(matcher=matcher, instrumentation=instrumentation,
                       options=options)],
        frontend=frontend,
        observer=observer,
        cache=cache,
    )[0]


def instrument_elf_auto(
    data: bytes,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None = None,
    options: RewriteOptions | None = None,
    *,
    max_mappings: int | None = None,
    cache: ArtifactStore | None = None,
) -> InstrumentReport:
    """Like :func:`instrument_elf`, but auto-tunes the page-grouping
    granularity M: doubling it until the loader's mapping count fits
    under *max_mappings* (default: the Linux ``vm.max_map_count``
    default), trading physical memory for mappings exactly as Section 4
    describes.  The adaptive search decodes the binary only once.
    """
    limit = max_mappings if max_mappings is not None else DEFAULT_MAX_MAP_COUNT
    base = options or RewriteOptions(mode="loader")
    prepared = prepare_binary(data, cache=cache)
    m = max(1, base.granularity)
    while True:
        report = rewrite_many(
            prepared,
            [RewriteConfig(matcher=matcher, instrumentation=instrumentation,
                           options=replace(base, mode="loader",
                                           granularity=m))],
        )[0]
        grouping = report.result.grouping
        if grouping is None or grouping.mapping_count <= limit or m >= 1024:
            return report
        m *= 2


def main(argv: list[str] | None = None) -> int:
    """Command-line interface: ``e9patch -M jumps -i empty in.elf out.elf``."""
    parser = argparse.ArgumentParser(
        prog="e9patch",
        description="Static binary rewriting without control flow recovery "
        "(E9Patch reproduction).",
    )
    parser.add_argument("input", help="input ELF binary")
    parser.add_argument("output", help="patched output path")
    parser.add_argument(
        "-M", "--match", default="jumps",
        help="patch-site matcher: a named matcher "
        f"({'/'.join(sorted(MATCHERS))}) or an expression such as "
        "'mnemonic == \"call\" and size >= 5' (default: jumps)",
    )
    parser.add_argument(
        "-i", "--instrument", default="empty", choices=("empty", "counter"),
        help="instrumentation body (default: empty)",
    )
    parser.add_argument(
        "--template", metavar="FILE",
        help="JSON trampoline template file (overrides -i); parameters "
        "are bound with --template-arg",
    )
    parser.add_argument(
        "--template-arg", action="append", default=[], metavar="NAME=INT",
        help="bind a template parameter (repeatable); the special value "
        "'alloc' reserves a fresh RW page and passes its address",
    )
    parser.add_argument(
        "--stats-json", metavar="FILE",
        help="write the patching statistics as JSON",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full stats/timings/counters dict as JSON on "
        "stdout instead of the human summary",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="stream per-pass trace events (start/end, wall time) to "
        "stderr while rewriting",
    )
    parser.add_argument(
        "--profile", nargs="?", const=15, type=int, default=None,
        metavar="N",
        help="run under cProfile and print the top N functions by "
        "cumulative time to stderr (default N: 15)",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run the verification pass: re-decode every patched site "
        "and check its jump target",
    )
    parser.add_argument(
        "--liveness", action=argparse.BooleanOptionalAction, default=False,
        help="liveness-driven trampoline slimming: drop register/flag "
        "save-restore pairs the backward analysis proves dead at each "
        "patch site (default: off)",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="run the rewrite-plan linter after emission: statically "
        "re-derive site jump chains, trampoline layout/image bytes, "
        "replay equivalence, and jump-back targets (exit 1 on any "
        "error finding; see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="run the semantic-equivalence oracle: execute original and "
        "rewritten binaries on the built-in VM and compare behaviour, "
        "then run a seeded synthetic differential campaign (exit 1 on "
        "any divergence)",
    )
    parser.add_argument(
        "--check-seed", type=int, default=1, metavar="N",
        help="campaign seed for --check (default: 1; a campaign is a "
        "pure function of its seed)",
    )
    parser.add_argument(
        "--check-count", type=int, default=25, metavar="N",
        help="synthetic binaries in the --check campaign (default: 25; "
        "0 skips the campaign and only checks this rewrite)",
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="worker processes for batch rewrites (default: $REPRO_JOBS "
        "or serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="persist/reuse decoded instruction streams and matcher "
        "results under the on-disk artifact cache (--no-cache disables)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="artifact cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    parser.add_argument(
        "--mode", default="auto", choices=("auto", "phdr", "loader"),
        help="emission mode (default: auto)",
    )
    parser.add_argument(
        "--granularity", "-g", type=int, default=1, metavar="M",
        help="page-grouping granularity in pages (default: 1)",
    )
    parser.add_argument(
        "--no-grouping", action="store_true",
        help="disable physical page grouping (naive 1:1 mapping)",
    )
    parser.add_argument(
        "--no-t1", action="store_true", help="disable tactic T1 (padded jumps)"
    )
    parser.add_argument(
        "--no-t2", action="store_true", help="disable tactic T2 (successor eviction)"
    )
    parser.add_argument(
        "--no-t3", action="store_true", help="disable tactic T3 (neighbour eviction)"
    )
    parser.add_argument(
        "--shared", action="store_true",
        help="input is a shared object (positive offsets only; loader "
        "installed via DT_INIT)",
    )
    parser.add_argument(
        "--cet", action=argparse.BooleanOptionalAction, default=None,
        help="treat the binary as CET/IBT-enabled: endbr64 landing pads "
        "are never clobbered and the loader stub carries its own endbr64 "
        "(default: auto-detect from the GNU property note or an endbr64 "
        "scan; --no-cet forces it off)",
    )
    parser.add_argument(
        "--frontend", default="linear", choices=("linear", "symbols"),
        help="disassembly frontend (symbols: per-function sweeps, for "
        "binaries mixing data into .text)",
    )
    parser.add_argument(
        "--library-path", metavar="PATH",
        help="install path of the patched shared object (required with "
        "--shared in loader mode; defaults to the output path)",
    )
    args = parser.parse_args(argv)

    library_path = args.library_path
    if args.shared and library_path is None:
        library_path = args.output

    options = RewriteOptions(
        mode=args.mode,
        grouping=not args.no_grouping,
        granularity=args.granularity,
        toggles=TacticToggles(
            t1=not args.no_t1, t2=not args.no_t2, t3=not args.no_t3
        ),
        shared=args.shared,
        library_path=library_path,
        cet=args.cet,
        verify=args.verify,
        liveness=args.liveness,
        lint=args.lint,
    )
    with open(args.input, "rb") as f:
        data = f.read()

    matcher: Matcher | str = args.match
    if args.match not in MATCHERS:
        from repro.frontend.match_expr import compile_matcher

        matcher = compile_matcher(args.match)

    instrumentation: object = args.instrument
    if args.template:
        from repro.core.templates import load_template

        with open(args.template) as f:
            template = load_template(f.read())

        def factory(rewriter):
            bound = {}
            for item in args.template_arg:
                name, _, value = item.partition("=")
                if value == "alloc":
                    bound[name] = rewriter.add_runtime_data(4096)
                    if not args.json:
                        print(f"{name} at {bound[name]:#x}")
                else:
                    bound[name] = int(value, 0)
            return template.instantiate(**bound)

        instrumentation = factory

    observer = Observer()
    if args.trace:
        observer.add_hook(stderr_trace_hook)
    cache = ArtifactStore(args.cache_dir) if args.cache else None

    def run() -> InstrumentReport:
        return rewrite_many(
            data,
            [RewriteConfig(matcher=matcher, instrumentation=instrumentation,
                           options=options)],
            frontend=args.frontend, observer=observer,
            jobs=args.jobs, cache=cache,
        )[0]

    try:
        if args.profile is not None:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            report = profiler.runcall(run)
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(max(1, args.profile))
        else:
            report = run()
    except LintError as exc:
        for finding in exc.report.findings:
            print(f"  {finding}", file=sys.stderr)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if report.counter_vaddr is not None and not args.json:
        print(f"counter at {report.counter_vaddr:#x}")
    if args.stats_json:
        stats = report.stats.row()
        stats["size_pct"] = round(report.result.size_pct, 2)
        stats["mode"] = report.result.mode
        stats["failures"] = report.result.plan.failures
        with open(args.stats_json, "w") as f:
            json.dump(stats, f, indent=2)
    with open(args.output, "wb") as f:
        f.write(report.result.data)

    check_failed = False
    check_payload = None
    if args.check:
        from repro.check import CampaignConfig, run_campaign
        from repro.check.oracle import check_rewrite

        oracle = check_rewrite(
            data, report.result.data,
            b0_sites=report.result.b0_sites,
            matcher=matcher, frontend=args.frontend,
        )
        campaign = None
        if args.check_count > 0:
            campaign = run_campaign(
                CampaignConfig(seed=args.check_seed, count=args.check_count),
                observer=observer,
            )
        check_failed = (oracle.verdict == "divergent"
                        or (campaign is not None and not campaign.ok))
        counters = {"check.binaries": 0, "check.divergences": 0,
                    "check.shrink_steps": 0}
        counters.update({k: v for k, v in observer.counters.items()
                         if k.startswith("check.")})
        check_payload = {
            "rewrite": oracle.to_dict(),
            "campaign": campaign.to_dict() if campaign is not None else None,
            "counters": counters,
        }

    if args.json:
        payload = report.to_dict()
        payload["cache"] = cache.stats.as_dict() if cache is not None else None
        if check_payload is not None:
            payload["check"] = check_payload
        json.dump(payload, sys.stdout, indent=2)
        print()
    else:
        print(report.summary())
        if cache is not None:
            s = cache.stats
            print(f"cache: {s.hits} hits, {s.misses} misses, "
                  f"{s.stores} stores")
        if check_payload is not None:
            print(f"check: rewrite {check_payload['rewrite']['verdict']}")
            camp = check_payload["campaign"]
            if camp is not None:
                print(f"check: campaign seed={camp['seed']} "
                      f"binaries={camp['binaries']} "
                      f"equivalent={camp['equivalent']} "
                      f"divergences={camp['divergences']} "
                      f"unsupported={camp['unsupported']}")
    if report.result.plan.failures:
        print(f"warning: {len(report.result.plan.failures)} sites not patched",
              file=sys.stderr)
    if check_failed:
        print("error: equivalence check failed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
