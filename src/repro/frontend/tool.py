"""The e9tool analogue: one-call instrumentation of an ELF binary, a
batch API over the staged pipeline, and a command-line interface.

``instrument_elf`` runs the standard pass sequence (decode -> match ->
plan -> group -> emit) for one configuration; ``rewrite_many`` runs many
configurations of the same binary while decoding the instruction stream
once and caching matcher results — the eval/ablation drivers are thin
loops over it.  Both surface per-pass wall-time and counters through the
shared :class:`~repro.core.observe.Observer`.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field, replace

from repro.core.grouping import DEFAULT_MAX_MAP_COUNT
from repro.core.observe import Observer, stderr_trace_hook
from repro.core.pipeline import DecodePass, MatchPass, RewriteContext
from repro.core.rewriter import RewriteOptions, RewriteResult, Rewriter
from repro.core.strategy import PatchRequest, TacticToggles
from repro.core.trampoline import Counter, Empty, Instrumentation
from repro.elf.reader import ElfFile
from repro.frontend.matchers import MATCHERS, Matcher


@dataclass
class InstrumentReport:
    """Result bundle for an instrumentation run."""

    result: RewriteResult
    n_sites: int
    counter_vaddr: int | None = None  # set when instrumentation="counter"
    label: str = ""  # batch configuration label (rewrite_many)

    @property
    def stats(self):
        return self.result.stats

    @property
    def timings(self) -> dict[str, float]:
        """Per-pass wall-time seconds (cumulative over the observer)."""
        return self.result.timings

    @property
    def counters(self) -> dict[str, int]:
        """Per-pass counters (cumulative over the observer)."""
        return self.result.counters

    def summary(self) -> str:
        s = self.result.stats
        return (
            f"{s} Size%={self.result.size_pct:.2f} "
            f"mode={self.result.mode}"
        )

    def to_dict(self) -> dict:
        """The full machine-readable stats/timings bundle (CLI ``--json``)."""
        return {
            "label": self.label,
            "n_sites": self.n_sites,
            "mode": self.result.mode,
            "input_size": self.result.input_size,
            "output_size": self.result.output_size,
            "size_pct": round(self.result.size_pct, 2),
            "counter_vaddr": self.counter_vaddr,
            "stats": self.stats.row(),
            "failures": self.result.plan.failures,
            "timings": {k: round(v, 6) for k, v in self.result.timings.items()},
            "counters": self.result.counters,
        }


@dataclass
class RewriteConfig:
    """One batch entry: matcher + instrumentation + rewrite options.

    ``matcher``/``instrumentation`` left as ``None`` inherit the batch
    call's defaults, so sweeping options with a fixed matcher stays
    one-line.
    """

    matcher: Matcher | str | None = None
    instrumentation: Instrumentation | str | None = None
    options: RewriteOptions | None = None
    label: str = ""


def _resolve_instrumentation(
    rewriter: Rewriter, instrumentation
) -> tuple[Instrumentation, int | None]:
    """Turn the user-facing instrumentation spec into a concrete body."""
    counter_vaddr: int | None = None
    if instrumentation is None or instrumentation == "empty":
        instrumentation = Empty()
    elif instrumentation == "counter":
        counter_vaddr = rewriter.add_runtime_data(4096)
        instrumentation = Counter(counter_vaddr)
    elif callable(instrumentation) and not isinstance(instrumentation,
                                                      Instrumentation):
        # A factory receiving the rewriter (for runtime code/data setup).
        instrumentation = instrumentation(rewriter)
    return instrumentation, counter_vaddr


def prepare_binary(
    data: bytes,
    *,
    frontend: str = "linear",
    observer: Observer | None = None,
) -> RewriteContext:
    """Parse and disassemble *data* once, into a reusable context.

    *frontend* selects the disassembly wrapper: ``"linear"`` (whole
    ``.text`` sweep — the paper's prototype) or ``"symbols"``
    (symbol-guided sweeps, required for binaries whose .text embeds data,
    e.g. glibc's hand-written assembly).
    """
    ctx = RewriteContext(
        elf=ElfFile(data),
        options=RewriteOptions(),
        observer=observer or Observer(),
    )
    DecodePass(frontend).run(ctx)
    return ctx


def rewrite_many(
    source: bytes | RewriteContext,
    configs: list[RewriteConfig | RewriteOptions],
    *,
    matcher: Matcher | str = "jumps",
    instrumentation: Instrumentation | str | None = None,
    frontend: str = "linear",
    observer: Observer | None = None,
) -> list[InstrumentReport]:
    """Rewrite one binary under many configurations, sharing the decode.

    *source* is the raw ELF bytes, or a context from
    :func:`prepare_binary` when the caller wants to reuse the decode
    across several ``rewrite_many`` calls.  Each entry of *configs* is a
    :class:`RewriteConfig` (or bare :class:`RewriteOptions`, inheriting
    the call-level *matcher*/*instrumentation* defaults).  The
    instruction stream is decoded exactly once and matcher results are
    cached per matcher, which the shared observer's ``pass.decode.runs``
    / ``pass.match.runs`` counters make checkable.
    """
    if isinstance(source, RewriteContext):
        base = source
    else:
        base = prepare_binary(data=source, frontend=frontend,
                              observer=observer)
    shared_observer = base.observer

    site_cache: dict[object, list] = {}
    reports: list[InstrumentReport] = []
    for cfg in configs:
        if isinstance(cfg, RewriteOptions):
            cfg = RewriteConfig(options=cfg)
        spec = cfg.matcher if cfg.matcher is not None else matcher
        fn = MATCHERS[spec] if isinstance(spec, str) else spec
        key = spec if isinstance(spec, str) else id(spec)
        if key not in site_cache:
            MatchPass(fn).run(base)
            site_cache[key] = base.sites
        sites = site_cache[key]

        rewriter = Rewriter(base.elf, base.instructions, cfg.options,
                            observer=shared_observer)
        body = (cfg.instrumentation if cfg.instrumentation is not None
                else instrumentation)
        body, counter_vaddr = _resolve_instrumentation(rewriter, body)
        requests = [PatchRequest(insn=i, instrumentation=body)
                    for i in sites]
        result = rewriter.rewrite(requests)
        reports.append(InstrumentReport(
            result=result, n_sites=len(sites),
            counter_vaddr=counter_vaddr, label=cfg.label,
        ))
    return reports


def instrument_elf(
    data: bytes,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None = None,
    options: RewriteOptions | None = None,
    *,
    frontend: str = "linear",
    observer: Observer | None = None,
) -> InstrumentReport:
    """Instrument every matched instruction of the binary *data*.

    *matcher* may be a predicate or one of the named matchers
    (``"jumps"``, ``"heap-writes"``, ``"calls"``, ``"all"``).
    *instrumentation* may be an :class:`Instrumentation`, ``"empty"``, or
    ``"counter"`` (a shared 64-bit counter placed in a fresh RW segment;
    its address is reported in the result).  A single-configuration
    :func:`rewrite_many`.
    """
    return rewrite_many(
        data,
        [RewriteConfig(matcher=matcher, instrumentation=instrumentation,
                       options=options)],
        frontend=frontend,
        observer=observer,
    )[0]


def instrument_elf_auto(
    data: bytes,
    matcher: Matcher | str,
    instrumentation: Instrumentation | str | None = None,
    options: RewriteOptions | None = None,
    *,
    max_mappings: int | None = None,
) -> InstrumentReport:
    """Like :func:`instrument_elf`, but auto-tunes the page-grouping
    granularity M: doubling it until the loader's mapping count fits
    under *max_mappings* (default: the Linux ``vm.max_map_count``
    default), trading physical memory for mappings exactly as Section 4
    describes.  The adaptive search decodes the binary only once.
    """
    limit = max_mappings if max_mappings is not None else DEFAULT_MAX_MAP_COUNT
    base = options or RewriteOptions(mode="loader")
    prepared = prepare_binary(data)
    m = max(1, base.granularity)
    while True:
        report = rewrite_many(
            prepared,
            [RewriteConfig(matcher=matcher, instrumentation=instrumentation,
                           options=replace(base, mode="loader",
                                           granularity=m))],
        )[0]
        grouping = report.result.grouping
        if grouping is None or grouping.mapping_count <= limit or m >= 1024:
            return report
        m *= 2


def main(argv: list[str] | None = None) -> int:
    """Command-line interface: ``e9patch -M jumps -i empty in.elf out.elf``."""
    parser = argparse.ArgumentParser(
        prog="e9patch",
        description="Static binary rewriting without control flow recovery "
        "(E9Patch reproduction).",
    )
    parser.add_argument("input", help="input ELF binary")
    parser.add_argument("output", help="patched output path")
    parser.add_argument(
        "-M", "--match", default="jumps",
        help="patch-site matcher: a named matcher "
        f"({'/'.join(sorted(MATCHERS))}) or an expression such as "
        "'mnemonic == \"call\" and size >= 5' (default: jumps)",
    )
    parser.add_argument(
        "-i", "--instrument", default="empty", choices=("empty", "counter"),
        help="instrumentation body (default: empty)",
    )
    parser.add_argument(
        "--template", metavar="FILE",
        help="JSON trampoline template file (overrides -i); parameters "
        "are bound with --template-arg",
    )
    parser.add_argument(
        "--template-arg", action="append", default=[], metavar="NAME=INT",
        help="bind a template parameter (repeatable); the special value "
        "'alloc' reserves a fresh RW page and passes its address",
    )
    parser.add_argument(
        "--stats-json", metavar="FILE",
        help="write the patching statistics as JSON",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full stats/timings/counters dict as JSON on "
        "stdout instead of the human summary",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="stream per-pass trace events (start/end, wall time) to "
        "stderr while rewriting",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run the verification pass: re-decode every patched site "
        "and check its jump target",
    )
    parser.add_argument(
        "--mode", default="auto", choices=("auto", "phdr", "loader"),
        help="emission mode (default: auto)",
    )
    parser.add_argument(
        "--granularity", "-g", type=int, default=1, metavar="M",
        help="page-grouping granularity in pages (default: 1)",
    )
    parser.add_argument(
        "--no-grouping", action="store_true",
        help="disable physical page grouping (naive 1:1 mapping)",
    )
    parser.add_argument(
        "--no-t1", action="store_true", help="disable tactic T1 (padded jumps)"
    )
    parser.add_argument(
        "--no-t2", action="store_true", help="disable tactic T2 (successor eviction)"
    )
    parser.add_argument(
        "--no-t3", action="store_true", help="disable tactic T3 (neighbour eviction)"
    )
    parser.add_argument(
        "--shared", action="store_true",
        help="input is a shared object (positive offsets only; loader "
        "installed via DT_INIT)",
    )
    parser.add_argument(
        "--frontend", default="linear", choices=("linear", "symbols"),
        help="disassembly frontend (symbols: per-function sweeps, for "
        "binaries mixing data into .text)",
    )
    parser.add_argument(
        "--library-path", metavar="PATH",
        help="install path of the patched shared object (required with "
        "--shared in loader mode; defaults to the output path)",
    )
    args = parser.parse_args(argv)

    library_path = args.library_path
    if args.shared and library_path is None:
        library_path = args.output

    options = RewriteOptions(
        mode=args.mode,
        grouping=not args.no_grouping,
        granularity=args.granularity,
        toggles=TacticToggles(
            t1=not args.no_t1, t2=not args.no_t2, t3=not args.no_t3
        ),
        shared=args.shared,
        library_path=library_path,
        verify=args.verify,
    )
    with open(args.input, "rb") as f:
        data = f.read()

    matcher: Matcher | str = args.match
    if args.match not in MATCHERS:
        from repro.frontend.match_expr import compile_matcher

        matcher = compile_matcher(args.match)

    instrumentation: object = args.instrument
    if args.template:
        from repro.core.templates import load_template

        with open(args.template) as f:
            template = load_template(f.read())

        def factory(rewriter):
            bound = {}
            for item in args.template_arg:
                name, _, value = item.partition("=")
                if value == "alloc":
                    bound[name] = rewriter.add_runtime_data(4096)
                    if not args.json:
                        print(f"{name} at {bound[name]:#x}")
                else:
                    bound[name] = int(value, 0)
            return template.instantiate(**bound)

        instrumentation = factory

    observer = Observer()
    if args.trace:
        observer.add_hook(stderr_trace_hook)

    report = instrument_elf(data, matcher, instrumentation, options,
                            frontend=args.frontend, observer=observer)
    if report.counter_vaddr is not None and not args.json:
        print(f"counter at {report.counter_vaddr:#x}")
    if args.stats_json:
        stats = report.stats.row()
        stats["size_pct"] = round(report.result.size_pct, 2)
        stats["mode"] = report.result.mode
        stats["failures"] = report.result.plan.failures
        with open(args.stats_json, "w") as f:
            json.dump(stats, f, indent=2)
    with open(args.output, "wb") as f:
        f.write(report.result.data)
    if args.json:
        json.dump(report.to_dict(), sys.stdout, indent=2)
        print()
    else:
        print(report.summary())
    if report.result.plan.failures:
        print(f"warning: {len(report.result.plan.failures)} sites not patched",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
