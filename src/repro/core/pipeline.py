"""The staged rewrite pipeline: explicit passes over a shared context.

The paper's rewriter is a fixed sequence — disassemble, match, strategy
S1, physical page grouping, emission — and this module expresses it as
exactly that: a list of :class:`Pass` objects run over one
:class:`RewriteContext` that owns every inter-stage hand-off as a typed
field (instruction stream, matched sites, patch plan, grouping, emission
artifacts).  The standard passes are

* :class:`DecodePass`   — frontend disassembly (skipped when the context
  already carries an instruction stream, which is how the batch API
  reuses one decode across many configurations);
* :class:`MatchPass`    — patch-site selection;
* :class:`PlanPass`     — strategy S1 over the requests (tactics B1..T3);
* :class:`GroupPass`    — emission-mode resolution + physical page
  grouping of the planned trampolines;
* :class:`EmitPass`     — ELF emission (phdr or loader mode);
* :class:`VerifyPass`   — optional: re-decode every patched site and
  check its jump lands in a trampoline or back inside the image.

Every pass runs under the context's :class:`~repro.core.observe.Observer`
(wall-time, counters, trace hooks).  :class:`repro.core.rewriter.Rewriter`
is a thin compatibility facade over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.core.allocator import AddressSpace
from repro.core.binary import CodeImage
from repro.core.grouping import PAGE_SIZE, GroupingResult, group_trampolines
from repro.core.intervals import IntervalSet
from repro.core.observe import Observer
from repro.core.stats import PatchStats
from repro.core.strategy import (
    PatchPlan,
    PatchRequest,
    TacticToggles,
    patch_all,
)
from repro.core.tactics import Tactic, TacticContext
from repro.analysis.liveness import LivenessAnalysis
from repro.core.trampoline import Trampoline
from repro.elf import constants as elfc
from repro.elf.dynamic import find_init_target, retarget_init
from repro.elf.loader import Mapping, build_loader, loader_size_estimate
from repro.elf.reader import ElfFile
from repro.elf.writer import AppendedSegment, ElfRewriter
from repro.errors import DecodeError, PatchError
from repro.x86.decoder import decode
from repro.x86.insn import Instruction
from repro.x86.tables import Flow


@dataclass
class RewriteOptions:
    """Knobs for a rewrite run (defaults match the paper's main setup)."""

    mode: str = "auto"  # "phdr" | "loader" | "auto"
    grouping: bool = True  # physical page grouping on/off (ablation)
    granularity: int = 1  # M pages per block
    toggles: TacticToggles = field(default_factory=TacticToggles)
    guard_pages: int = 1  # guard between segments and trampolines
    # Treat the input as a shared object: positive link-time offsets only
    # (the dynamic linker loads other objects into the negative range).
    # Loader-mode .so rewriting hijacks DT_INIT instead of e_entry and
    # mmaps from library_path (``/proc/self/exe`` names the executable,
    # not the library), which must be where the patched file will be
    # installed.
    shared: bool = False
    library_path: str | None = None
    # Extra address ranges to treat as occupied (e.g. modelling the
    # unscaled image footprint of a synthesized stand-in binary).
    reserve_extra: tuple[tuple[int, int], ...] = ()
    # Ablation knob: pack trampolines into already-used pages.  Off by
    # default — see AddressSpace.pack_pages for why packing *loses* to
    # physical page grouping.
    pack_allocations: bool = False
    # Run VerifyPass after emission: re-decode every patched site and
    # check the rewritten jump has somewhere to land.
    verify: bool = False
    # Run EquivalencePass after VerifyPass: execute original and output
    # on the VM and compare observable behaviour (see repro.check).
    check: bool = False
    # Bind a backward-liveness analysis (repro.analysis.liveness) to every
    # instrumentation body before planning, letting trampolines drop
    # save/restore pairs at sites where registers/flags are provably dead.
    liveness: bool = False
    # Run LintPass after emission: statically re-derive and check the
    # rewrite's invariants (repro.analysis.lint); errors raise PatchError.
    lint: bool = False
    # CET/IBT awareness: endbr64 landing pads become hard constraints for
    # every tactic and endbr-clobber lint findings become errors.  None
    # auto-detects from the input (GNU property note, else endbr64
    # presence in executable segments); True/False force the mode.
    cet: bool | None = None

    def resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "loader" if self.grouping else "phdr"


@dataclass
class RewriteResult:
    """Everything produced by a rewrite."""

    data: bytes
    plan: PatchPlan
    grouping: GroupingResult | None
    stats: PatchStats
    input_size: int
    mode: str
    trampolines: list[Trampoline]
    b0_sites: list[int] = field(default_factory=list)
    # Observability snapshot: per-pass wall time and counters (cumulative
    # over the observer's lifetime — shared across a batch on purpose).
    timings: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    # EquivalencePass product, when RewriteOptions(check=True) ran
    # (a repro.check.oracle.EquivalenceReport).
    equivalence: object | None = None
    # LintPass product, when RewriteOptions(lint=True) ran
    # (a repro.analysis.lint.LintReport).
    lint: object | None = None

    @property
    def output_size(self) -> int:
        return len(self.data)

    @property
    def size_pct(self) -> float:
        """Output size as a percentage of input size (paper's Size%)."""
        return 100.0 * self.output_size / self.input_size


@dataclass
class RewriteContext:
    """All state flowing through the pipeline, as explicit typed fields.

    A context is built once per rewrite configuration; decode-level
    fields (``instructions``, ``sites``) may be injected from a previous
    context to share work (see ``rewrite_many``).
    """

    elf: ElfFile
    options: RewriteOptions
    observer: Observer = field(default_factory=Observer)

    # -- decode/match products ------------------------------------------
    instructions: Sequence[Instruction] | None = None
    sites: list[Instruction] | None = None
    requests: list[PatchRequest] | None = None

    # -- mutable workspace (built by prepare_workspace) -----------------
    image: CodeImage | None = None
    space: AddressSpace | None = None
    tactics: TacticContext | None = None

    # -- injected artifacts registered before planning ------------------
    runtime: list[Trampoline] = field(default_factory=list)
    data_segments: list[tuple[int, int]] = field(default_factory=list)

    # -- plan/group/emit products ---------------------------------------
    plan: PatchPlan | None = None
    mode: str | None = None
    trampolines: list[Trampoline] = field(default_factory=list)
    b0_sites: list[int] = field(default_factory=list)
    grouping: GroupingResult | None = None
    # Loader-mode mappings awaiting zero-fill reservation segments
    # (formerly the ``_pending_reservation`` attribute hack).
    pending_reservation: list[Mapping] = field(default_factory=list)
    output: bytes | None = None
    # EquivalencePass product (a repro.check.oracle.EquivalenceReport;
    # typed loosely to keep repro.check out of the pipeline's imports).
    equivalence: object | None = None
    # LintPass product (a repro.analysis.lint.LintReport; loosely typed
    # for the same reason).
    lint: object | None = None
    # Resolved CET mode (options.cet, auto-detected from the input when
    # None); set by prepare_workspace.
    cet: bool = False
    # Block-aligned metadata allocations (phdr table, loader stub) as
    # (vaddr, size) — recorded so the linter can prove no trampoline
    # shares a block with them.
    meta_segments: list[tuple[int, int]] = field(default_factory=list)
    # Loader-mode trampoline placement as (vaddr, size, file_offset):
    # where each mapped block's bytes live in the *output file*, which no
    # PT_LOAD filesz covers (the loader stub mmaps them at runtime).
    blob_maps: list[tuple[int, int, int]] = field(default_factory=list)

    # -- workspace construction -----------------------------------------

    def prepare_workspace(self) -> None:
        """Build the mutable code image, address space and tactic context
        from the ELF.  Idempotent; requires a decoded instruction stream."""
        if self.image is not None:
            return
        exec_ranges: list[tuple[int, bytes]] = []
        for seg in self.elf.load_segments():
            if seg.executable:
                data = self.elf.data[
                    seg.phdr.offset : seg.phdr.offset + seg.phdr.filesz
                ]
                exec_ranges.append((seg.phdr.vaddr, data))
        if not exec_ranges:
            raise PatchError("binary has no executable PT_LOAD segment")
        self.image = CodeImage.from_ranges(exec_ranges)

        block = self.options.granularity * PAGE_SIZE
        guard = max(self.options.guard_pages * PAGE_SIZE, block)
        self.space = AddressSpace.for_binary(
            [(p.vaddr, p.memsz) for p in self.elf.phdrs
             if p.type == elfc.PT_LOAD],
            pie=self.elf.is_pie,
            shared=self.options.shared,
            guard=guard,
        )
        self.space.pack_pages = self.options.pack_allocations
        for lo, hi in self.options.reserve_extra:
            self.space.reserve(lo, hi)
        self.cet = (self.options.cet if self.options.cet is not None
                    else self.elf.is_cet_enabled())
        self.tactics = TacticContext(
            image=self.image, space=self.space,
            instructions=self.instructions or [],
            cet=self.cet,
        )

    # -- injected runtime code/data (must precede planning) -------------

    def add_runtime_code(self, build, size: int, tag: str = "runtime") -> int:
        """Allocate *size* bytes of free space for injected runtime code.

        *build* is called with the chosen vaddr and must return exactly
        *size* bytes.  Returns the vaddr.  Must happen before planning so
        trampolines can reference the address.
        """
        self.prepare_workspace()
        lo, hi = self.space.lo_bound, self.space.hi_bound
        vaddr = self.space.allocate(lo, hi, size, tag)
        if vaddr is None:
            raise PatchError("no space for runtime code")
        code = build(vaddr)
        if len(code) != size:
            raise PatchError(f"runtime code size {len(code)} != reserved {size}")
        self.runtime.append(Trampoline(vaddr=vaddr, code=code, tag=tag))
        return vaddr

    def add_runtime_data(self, size: int) -> int:
        """Reserve a zero-initialized read-write region in the output
        binary (e.g. for instrumentation counters); returns its vaddr."""
        self.prepare_workspace()
        vaddr = self.allocate_exclusive(size)
        # Reclassify: allocate_exclusive records every block as metadata,
        # but this one is instrumentation data (lint tracks them apart).
        self.meta_segments.pop()
        self.data_segments.append((vaddr, size))
        return vaddr

    def allocate_exclusive(self, size: int) -> int:
        """Allocate block-aligned whole blocks for metadata (loader stub,
        phdr table): non-negative (PT_LOAD-expressible), within rip-
        relative reach of the entry point, and never sharing a block with
        any trampoline (later loader mappings must not clobber it)."""
        block = self.options.granularity * PAGE_SIZE
        size = -(-size // block) * block
        entry = self.elf.entry
        margin = 1 << 20
        lo = max(self.space.lo_bound, 0, entry - (1 << 31) + margin)
        hi = min(self.space.hi_bound, entry + (1 << 31) - margin)
        vaddr = self.space.allocate(lo, hi, size, tag="meta", align=block)
        if vaddr is None:
            raise PatchError("no space for metadata segment")
        self.meta_segments.append((vaddr, size))
        return vaddr

    def result(self) -> RewriteResult:
        """Bundle the context's products into a :class:`RewriteResult`."""
        if self.output is None or self.plan is None:
            raise PatchError("pipeline has not emitted yet")
        return RewriteResult(
            data=self.output,
            plan=self.plan,
            grouping=self.grouping,
            stats=self.plan.stats,
            input_size=len(self.elf.data),
            mode=self.mode or self.options.resolve_mode(),
            trampolines=self.trampolines,
            b0_sites=self.b0_sites,
            timings=dict(self.observer.timings),
            counters=dict(self.observer.counters),
            equivalence=self.equivalence,
            lint=self.lint,
        )


@runtime_checkable
class Pass(Protocol):
    """One pipeline stage: reads and extends the shared context."""

    name: str

    def run(self, ctx: RewriteContext) -> None: ...


class PipelinePass:
    """Base class wiring a pass into the observability layer."""

    name = "pass"

    def run(self, ctx: RewriteContext) -> None:
        with ctx.observer.measure(self.name):
            self.execute(ctx)

    def execute(self, ctx: RewriteContext) -> None:
        raise NotImplementedError


class DecodePass(PipelinePass):
    """Frontend disassembly.  A no-op when the context already carries an
    instruction stream — sharing decoded streams across configurations is
    the batch API's whole point, asserted via ``pass.decode.runs``."""

    name = "decode"

    def __init__(self, frontend: str = "linear", jobs=None) -> None:
        self.frontend = frontend
        # Optional BatchExecutor enabling chunked intra-binary decode for
        # large code regions (see repro.x86.fastscan).
        self.jobs = jobs

    def execute(self, ctx: RewriteContext) -> None:
        if ctx.instructions is not None:
            return
        # Imported here, not at module top: repro.frontend.__init__ pulls
        # in the CLI, which imports this module back.
        from repro.frontend.lineardisasm import (
            disassemble_functions,
            disassemble_text,
            disassemble_text_stream,
        )

        if self.frontend == "symbols":
            ctx.instructions = disassemble_functions(ctx.elf)
        elif self.frontend == "linear":
            stream = disassemble_text_stream(ctx.elf, executor=self.jobs)
            ctx.instructions = (
                stream if stream is not None else disassemble_text(ctx.elf)
            )
        else:
            raise ValueError(f"unknown frontend {self.frontend!r}")
        insns = ctx.instructions
        ctx.observer.count("decode.instructions", len(insns))
        total = getattr(insns, "total_bytes", None)
        if total is not None:  # InstructionStream: counters without iteration
            ctx.observer.count("decode.bytes", total)
            ctx.observer.count("decode.chunks", insns.chunks)
            ctx.observer.count(
                "decode.reconcile_retries", insns.reconcile_retries
            )
        else:
            ctx.observer.count("decode.bytes", sum(i.length for i in insns))


class MatchPass(PipelinePass):
    """Select patch sites from the instruction stream."""

    name = "match"

    def __init__(self, matcher) -> None:
        self.matcher = matcher

    def execute(self, ctx: RewriteContext) -> None:
        if ctx.instructions is None:
            raise PatchError("MatchPass needs a decoded instruction stream")
        select = getattr(ctx.instructions, "select", None)
        if select is not None:  # InstructionStream: candidate-bit pruning
            ctx.sites = select(self.matcher)
        else:
            ctx.sites = [i for i in ctx.instructions if self.matcher(i)]
        ctx.observer.count("match.sites", len(ctx.sites))


class PlanPass(PipelinePass):
    """Strategy S1 (reverse-order patching) over the requests."""

    name = "plan"

    def __init__(self, requests: list[PatchRequest] | None = None) -> None:
        self.requests = requests

    def execute(self, ctx: RewriteContext) -> None:
        ctx.prepare_workspace()
        requests = self.requests if self.requests is not None else ctx.requests
        if requests is None:
            raise PatchError(
                "PlanPass needs patch requests (run MatchPass and build "
                "requests, or set ctx.requests)"
            )
        ctx.requests = requests
        if ctx.options.liveness:
            # Bind before any size query: the planner memoizes trampoline
            # sizes, so the slimmed encodings must be in force from the
            # first probe.
            analysis = LivenessAnalysis(ctx.instructions or [])
            for req in requests:
                if req.instrumentation is not None:
                    req.instrumentation.bind_liveness(analysis)
        probes_before = ctx.space.probes
        visits_before = ctx.space.span_visits
        pw_hits_before = ctx.tactics.pw_hits
        pw_misses_before = ctx.tactics.pw_misses
        ctx.plan = patch_all(ctx.tactics, requests, ctx.options.toggles)

        obs = ctx.observer
        obs.count("plan.sites", len(requests))
        obs.count("plan.failed", len(ctx.plan.failures))
        for tactic, n in ctx.plan.stats.by_tactic.items():
            obs.count(f"plan.tactic.{tactic.name}", n)
        obs.count("plan.trampolines", ctx.plan.stats.trampoline_count)
        obs.count("plan.trampoline_bytes", ctx.plan.stats.trampoline_bytes)
        obs.count("plan.alloc_probes", ctx.space.probes - probes_before)
        obs.count("plan.alloc_span_visits",
                  ctx.space.span_visits - visits_before)
        obs.count("plan.pun_cache_hits", ctx.tactics.pw_hits - pw_hits_before)
        obs.count("plan.pun_cache_misses",
                  ctx.tactics.pw_misses - pw_misses_before)
        if ctx.options.liveness:
            by_site = {req.insn.address: req for req in requests}
            saved_bytes = saved_regs = 0
            for patch in ctx.plan.patches:
                if patch.tactic == Tactic.B0:
                    continue  # no trampoline to slim
                req = by_site.get(patch.site)
                if req is None or req.instrumentation is None:
                    continue
                nbytes, nregs = req.instrumentation.saved_cost(req.insn)
                saved_bytes += nbytes
                saved_regs += nregs
            obs.count("plan.trampoline_saved_bytes", saved_bytes)
            obs.count("plan.trampoline_saved_regs", saved_regs)


class GroupPass(PipelinePass):
    """Resolve the emission mode and run physical page grouping."""

    name = "group"

    def execute(self, ctx: RewriteContext) -> None:
        if ctx.plan is None:
            raise PatchError("GroupPass needs a patch plan")
        mode = ctx.options.resolve_mode()
        ctx.mode = mode
        ctx.trampolines = list(ctx.plan.trampolines) + list(ctx.runtime)
        ctx.b0_sites = [
            p.site for p in ctx.plan.patches if p.tactic == Tactic.B0
        ]
        if not ctx.trampolines:
            ctx.grouping = None
            return
        if mode == "phdr":
            if any(t.vaddr < 0 for t in ctx.trampolines):
                raise PatchError(
                    "phdr mode cannot express negative PIE offsets; "
                    "use loader mode"
                )
            ctx.grouping = group_trampolines(
                ctx.trampolines, block_pages=1, enabled=False
            )
        elif mode == "loader":
            ctx.grouping = group_trampolines(
                ctx.trampolines,
                block_pages=ctx.options.granularity,
                enabled=ctx.options.grouping,
            )
        else:
            raise PatchError(f"unknown emission mode {mode!r}")
        obs = ctx.observer
        obs.count("group.blocks", len(ctx.grouping.blocks))
        obs.count("group.groups", len(ctx.grouping.groups))
        obs.count("group.physical_bytes", ctx.grouping.grouped_physical_bytes)


class EmitPass(PipelinePass):
    """Produce the patched ELF (phdr or loader mode)."""

    name = "emit"

    def execute(self, ctx: RewriteContext) -> None:
        ctx.prepare_workspace()
        probes_before = ctx.space.probes
        visits_before = ctx.space.span_visits
        rw = ElfRewriter(ctx.elf)
        for vaddr, data in ctx.image.dirty_patches():
            rw.patch_vaddr(vaddr, data)

        if ctx.grouping is not None:
            if ctx.mode == "phdr":
                self._emit_phdr(ctx, rw)
            else:
                self._emit_loader(ctx, rw)
        for vaddr, size in ctx.data_segments:
            rw.append_segment(
                AppendedSegment(vaddr=vaddr, data=b"", memsz=size,
                                flags=elfc.PF_R | elfc.PF_W)
            )

        if rw.segments or rw.blobs or rw.new_entry is not None:
            phdr_vaddr = ctx.allocate_exclusive(
                (rw.elf.ehdr.phnum + len(rw.segments) + 4) * elfc.PHDR_SIZE
            )
            self._emit_reservations(ctx, rw, phdr_vaddr)
            # Dynamic loaders require PT_LOAD entries in ascending vaddr
            # order, and a reservation segment must precede the real
            # segments that overlay it.
            rw.segments.sort(key=lambda seg: seg.vaddr)
            ctx.output = rw.finalize(phdr_vaddr=phdr_vaddr)
        else:
            ctx.output = rw.finalize(phdr_vaddr=0)

        obs = ctx.observer
        obs.count("emit.output_bytes", len(ctx.output))
        obs.count("emit.segments", len(rw.segments))
        obs.count("emit.blobs", len(rw.blobs))
        obs.count("emit.alloc_probes", ctx.space.probes - probes_before)
        obs.count("emit.alloc_span_visits",
                  ctx.space.span_visits - visits_before)

    # -- emission helpers ------------------------------------------------

    def _emit_phdr(self, ctx: RewriteContext, rw: ElfRewriter) -> None:
        """Naive one-to-one emission: one PT_LOAD per trampoline block."""
        grouping = ctx.grouping
        for grp in grouping.groups:
            block = grp.members[0]
            base = block.index * grouping.block_size
            rw.append_segment(
                AppendedSegment(
                    vaddr=base,
                    data=grp.merged_content(grouping.block_size),
                    flags=elfc.PF_R | elfc.PF_X,
                )
            )
        if ctx.elf.ehdr.phnum + len(rw.segments) + 1 > 0xFFFF:
            raise PatchError("too many segments for phdr mode; use loader mode")

    def _emit_loader(self, ctx: RewriteContext, rw: ElfRewriter) -> None:
        """Grouped emission through the injected loader stub."""
        grouping = ctx.grouping
        block_size = grouping.block_size

        group_offsets: list[int] = []
        for grp in grouping.groups:
            group_offsets.append(rw.append_blob(grp.merged_content(block_size)))

        mappings = [
            Mapping(vaddr=block_base, size=block_size, offset=group_offsets[gi])
            for block_base, gi in grouping.mappings()
        ]
        ctx.blob_maps = [(m.vaddr, m.size, m.offset) for m in mappings]
        ctx.pending_reservation = [m for m in mappings if m.vaddr >= 0]

        if ctx.options.shared and find_init_target(ctx.elf) is not None:
            # A real shared object: no usable e_entry; hijack DT_INIT.
            if ctx.options.library_path is None:
                raise PatchError(
                    "loader-mode shared-object rewriting needs "
                    "options.library_path (the library's install path)"
                )
            init_value_offset, original_init = retarget_init(ctx.elf, 0)
            path = ctx.options.library_path
            stub_size = loader_size_estimate(len(mappings), len(path) + 1)
            stub_vaddr = ctx.allocate_exclusive(stub_size)
            stub = build_loader(
                stub_vaddr, mappings, original_init,
                pie=True, self_path=path, cet=ctx.cet,
            )
            if len(stub) > stub_size:
                raise PatchError("loader stub exceeded its size estimate")
            rw.append_segment(
                AppendedSegment(vaddr=stub_vaddr, data=stub,
                                flags=elfc.PF_R | elfc.PF_X)
            )
            # Redirect DT_INIT to the stub (in place, like any patch).
            rw.patch_offset(
                init_value_offset,
                stub_vaddr.to_bytes(8, "little"),
            )
            return

        stub_size = loader_size_estimate(len(mappings))
        stub_vaddr = ctx.allocate_exclusive(stub_size)
        stub = build_loader(
            stub_vaddr, mappings, ctx.elf.entry, pie=ctx.elf.is_pie,
            cet=ctx.cet,
        )
        if len(stub) > stub_size:
            raise PatchError("loader stub exceeded its size estimate")
        rw.append_segment(
            AppendedSegment(vaddr=stub_vaddr, data=stub,
                            flags=elfc.PF_R | elfc.PF_X)
        )
        rw.set_entry(stub_vaddr)

    def _emit_reservations(
        self, ctx: RewriteContext, rw: ElfRewriter, phdr_vaddr: int
    ) -> None:
        """Reserve the loader-mapped trampoline span with zero-fill
        PT_LOADs so the program loader owns it: the stub's MAP_FIXED
        mmaps then overlay pages *inside* the process's own reservation
        instead of clobbering whatever ASLR placed nearby.  Existing
        image ranges, real appended segments, and the relocated phdr
        table are carved out."""
        positive = ctx.pending_reservation
        if not positive:
            return
        span = IntervalSet()
        span.add(min(m.vaddr for m in positive),
                 max(m.vaddr + m.size for m in positive))
        page = PAGE_SIZE

        def carve(lo: int, hi: int) -> None:
            span.remove(lo & ~(page - 1), -(-hi // page) * page)

        for p in ctx.elf.phdrs:
            if p.type == elfc.PT_LOAD:
                carve(p.vaddr, p.vaddr + p.memsz)
        for seg in rw.segments:
            carve(seg.vaddr, seg.vaddr + (seg.memsz or len(seg.data)))
        table_size = (ctx.elf.ehdr.phnum + len(rw.segments) + 4) * elfc.PHDR_SIZE
        carve(phdr_vaddr, phdr_vaddr + table_size)
        for res_lo, res_hi in span:
            rw.append_segment(
                AppendedSegment(vaddr=res_lo, data=b"",
                                memsz=res_hi - res_lo, flags=elfc.PF_R)
            )
        ctx.pending_reservation = []


class VerifyPass(PipelinePass):
    """Re-decode the bytes written at every patched site and check the
    rewritten jump has somewhere meaningful to land: a trampoline extent
    (B1/B2/T1/T2) or a punned jump inside the image (T3's ``jmp rel8``
    into a victim's interior)."""

    name = "verify"

    #: How many bytes to re-decode at a site (longest padded jump).
    WINDOW = 16

    def execute(self, ctx: RewriteContext) -> None:
        if ctx.plan is None or ctx.image is None:
            raise PatchError("VerifyPass needs a planned, emitted context")
        extents = IntervalSet()
        for tramp in ctx.trampolines:
            extents.add(tramp.vaddr, tramp.vaddr + len(tramp.code))

        checked = 0
        for patch in ctx.plan.patches:
            site = patch.site
            raw = self._read_site(ctx, site)
            if patch.tactic == Tactic.B0:
                if raw[:1] != b"\xcc":
                    raise PatchError(
                        f"verify: B0 site {site:#x} is not int3"
                    )
                checked += 1
                continue
            try:
                insn = decode(raw, address=site)
            except DecodeError as exc:
                raise PatchError(
                    f"verify: patched site {site:#x} fails to decode: {exc}"
                ) from exc
            if insn.flow != Flow.JMP or insn.target is None:
                raise PatchError(
                    f"verify: patched site {site:#x} is not a direct jump "
                    f"({insn.mnemonic})"
                )
            target = insn.target
            in_trampoline = extents.contains(target, target + 1)
            in_image = ctx.image.readable(target, 1)
            if not (in_trampoline or in_image):
                raise PatchError(
                    f"verify: jump at {site:#x} targets {target:#x}, "
                    "outside every trampoline and the image"
                )
            checked += 1
        ctx.observer.count("verify.sites", checked)

    def _read_site(self, ctx: RewriteContext, site: int) -> bytes:
        for length in (self.WINDOW, 8, 6, 5, 2, 1):
            if ctx.image.readable(site, length):
                return ctx.image.read(site, length)
        raise PatchError(f"verify: site {site:#x} is outside the image")


class EquivalencePass(PipelinePass):
    """Semantic check: run the original and the emitted output on the VM
    (:mod:`repro.check.oracle`) and compare observable behaviour — exit
    status, output bytes, and the ordered patch-site visit sequence, with
    B0 trap handlers registered on both machines.

    A ``divergent`` verdict is a rewriter bug and raises
    :class:`~repro.errors.PatchError` with the first-divergence
    diagnostics.  ``unsupported`` (the VM cannot faithfully execute the
    *original* — e.g. a real dynamically-linked binary) is recorded but
    not an error: no claim is made either way.  The report lands in
    ``ctx.equivalence`` and the ``check.*`` counters.
    """

    name = "check"

    def __init__(self, max_instructions: int | None = None) -> None:
        self.max_instructions = max_instructions

    def execute(self, ctx: RewriteContext) -> None:
        if ctx.output is None or ctx.plan is None:
            raise PatchError("EquivalencePass needs an emitted context")
        # Local import: repro.check.oracle must stay importable without
        # the pipeline and vice versa.
        from repro.check.oracle import DEFAULT_BUDGET, check_equivalence

        watched = (ctx.sites if ctx.sites is not None
                   else [r.insn for r in (ctx.requests or ())])
        sites = frozenset(i.address for i in watched)
        by_addr = {i.address: i for i in (ctx.instructions or ())}
        traps = {
            site: bytes(by_addr[site].raw)
            for site in ctx.b0_sites if site in by_addr
        }
        # A shared object is entered through its init hook (dlopen-style)
        # — the rewritten image only maps its trampolines once the loader
        # stub installed over DT_INIT has run; e_entry would skip it.
        shared = ctx.options.shared
        self_paths = ((ctx.options.library_path,)
                      if shared and ctx.options.library_path else ())
        report = check_equivalence(
            ctx.elf.data, ctx.output, sites=sites, traps=traps,
            max_instructions=self.max_instructions or DEFAULT_BUDGET,
            entry_from_init=shared, self_paths=self_paths,
        )
        ctx.equivalence = report
        obs = ctx.observer
        obs.count(f"check.{report.verdict}")
        obs.count("check.events", report.events_compared)
        if report.verdict == "divergent":
            d = report.divergence
            raise PatchError(
                "equivalence check failed: "
                f"{d.kind if d else '?'}: {d.detail if d else ''}"
            )


def standard_passes(
    matcher=None,
    requests: list[PatchRequest] | None = None,
    *,
    frontend: str = "linear",
    verify: bool = False,
    check: bool = False,
    lint: bool = False,
) -> list[Pass]:
    """The canonical pass sequence for one rewrite configuration."""
    passes: list[Pass] = [DecodePass(frontend)]
    if matcher is not None:
        passes.append(MatchPass(matcher))
    passes += [PlanPass(requests), GroupPass(), EmitPass()]
    if lint:
        # Local import: the lint layer imports this module back.
        from repro.analysis.lint import LintPass

        passes.append(LintPass())
    if verify:
        passes.append(VerifyPass())
    if check:
        passes.append(EquivalencePass())
    return passes


def run_pipeline(ctx: RewriteContext, passes: list[Pass]) -> RewriteContext:
    """Run *passes* in order over *ctx* and return it."""
    for p in passes:
        p.run(ctx)
    return ctx
