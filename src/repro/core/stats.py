"""Patching statistics in the shape of the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tactics import Tactic


@dataclass
class PatchStats:
    """Per-run coverage accounting.

    ``base`` combines B1+B2 as in the paper's ``Base%`` column.
    """

    total: int = 0
    by_tactic: dict[Tactic, int] = field(default_factory=dict)
    failed: int = 0
    trampoline_bytes: int = 0
    trampoline_count: int = 0

    def record(self, tactic: Tactic | None) -> None:
        self.total += 1
        if tactic is None:
            self.failed += 1
        else:
            self.by_tactic[tactic] = self.by_tactic.get(tactic, 0) + 1

    @property
    def succeeded(self) -> int:
        return self.total - self.failed

    def count(self, *tactics: Tactic) -> int:
        return sum(self.by_tactic.get(t, 0) for t in tactics)

    def _pct(self, n: int) -> float:
        return 100.0 * n / self.total if self.total else 0.0

    @property
    def base_pct(self) -> float:
        """B1+B2 as a percentage of all sites (paper's Base%)."""
        return self._pct(self.count(Tactic.B1, Tactic.B2))

    @property
    def t1_pct(self) -> float:
        return self._pct(self.count(Tactic.T1))

    @property
    def t2_pct(self) -> float:
        return self._pct(self.count(Tactic.T2))

    @property
    def t3_pct(self) -> float:
        return self._pct(self.count(Tactic.T3))

    @property
    def b0_pct(self) -> float:
        return self._pct(self.count(Tactic.B0))

    @property
    def success_pct(self) -> float:
        """Overall coverage (paper's Succ%)."""
        return self._pct(self.succeeded)

    def row(self) -> dict[str, float | int]:
        """Table-1-shaped summary, plus the fallback/failure/trampoline
        accounting the table drops."""
        return {
            "locs": self.total,
            "base_pct": round(self.base_pct, 2),
            "t1_pct": round(self.t1_pct, 2),
            "t2_pct": round(self.t2_pct, 2),
            "t3_pct": round(self.t3_pct, 2),
            "b0_pct": round(self.b0_pct, 2),
            "succ_pct": round(self.success_pct, 2),
            "failed": self.failed,
            "trampoline_count": self.trampoline_count,
            "trampoline_bytes": self.trampoline_bytes,
        }

    def __str__(self) -> str:
        r = self.row()
        return (
            f"#Loc={r['locs']} Base%={r['base_pct']:.2f} T1%={r['t1_pct']:.2f} "
            f"T2%={r['t2_pct']:.2f} T3%={r['t3_pct']:.2f} "
            f"B0%={r['b0_pct']:.2f} Succ%={r['succ_pct']:.2f} "
            f"failed={r['failed']} tramps={r['trampoline_count']}"
            f"/{r['trampoline_bytes']}B"
        )
