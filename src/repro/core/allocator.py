"""Virtual address-space allocator for trampolines.

Models the patched program's virtual address space: existing PT_LOAD
segments (and the NULL guard region) are reserved; trampolines are
allocated first-fit inside pun-constrained windows.  For PIE binaries the
usable space extends to *negative* link-time offsets — at runtime the
image is loaded high, so the whole ±2 GiB window around the code is
valid, which is the paper's explanation for the much higher PIE baseline
coverage.

Hot-path structure (see INTERNALS.md §7): ``allocations`` is a dict keyed
by vaddr so rollback ``release`` is O(1), and first-fit searches keep a
*gap hint* per window origin — "no gap of ≥ N bytes starts below address
A in this window" — so thousands of same-window allocations stop
rescanning the exhausted low spans.  Hints are conservative: they are
only consulted for requests at least as large as the proven size, and
released space invalidates every hint above the released (merged) span.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.intervals import IntervalSet

# Linux vm.mmap_min_addr default: the NULL guard.
MMAP_MIN_ADDR = 0x10000
# Upper end of the canonical user address space (47-bit, minus stack slack).
USER_SPACE_TOP = 0x7FFF_F000_0000


@dataclass
class Allocation:
    """One allocated trampoline extent."""

    vaddr: int
    size: int
    tag: str = ""

    @property
    def end(self) -> int:
        return self.vaddr + self.size


@dataclass
class AddressSpace:
    """Free-space tracker with windowed first-fit allocation.

    ``lo_bound``/``hi_bound`` delimit addresses trampolines may occupy;
    reserved ranges (the binary's own segments, guard pages) are carved
    out at construction time.

    ``pack_pages`` makes allocation prefer pages that already hold
    trampolines.  It is **off by default on purpose**: packing barely
    reduces the virtual page count (constrained windows scatter anyway)
    while making pages dense — and dense pages cannot merge under
    physical page grouping, so the *physical* footprint grows.  The
    ablation benchmark quantifies this; it is the paper's design insight
    in miniature: exploit fragmentation at mapping time instead of
    fighting it at allocation time.
    """

    lo_bound: int = MMAP_MIN_ADDR
    hi_bound: int = USER_SPACE_TOP
    free: IntervalSet = field(default_factory=IntervalSet)
    allocations: dict[int, Allocation] = field(default_factory=dict)
    pack_pages: bool = False
    # Observability: number of free-list gap searches performed (one per
    # find_gap call, including failed and packed-page attempts).
    probes: int = 0
    #: Verify free/allocated/page-hint consistency after every mutation
    #: (expensive; enabled by tests and ``REPRO_DEBUG_ALLOC``).
    debug_invariants: bool = False
    _used_pages: IntervalSet = field(default_factory=IntervalSet)
    # page vaddr -> number of live allocations touching it; drives
    # _used_pages eviction on release.
    _page_refs: dict[int, int] = field(default_factory=dict)
    # window origin (clamped lo) -> (addr, size): no gap of >= size bytes
    # starts in [lo, addr).  Only maintained for align == 1 searches.
    _gap_hints: dict[int, tuple[int, int]] = field(default_factory=dict)

    PAGE = 4096

    def __post_init__(self) -> None:
        if not self.free:
            self.free.add(self.lo_bound, self.hi_bound)
        if os.environ.get("REPRO_DEBUG_ALLOC"):
            self.debug_invariants = True

    @classmethod
    def for_binary(
        cls,
        segments: list[tuple[int, int]],
        *,
        pie: bool = False,
        shared: bool = False,
        image_base: int = 0,
        guard: int = 4096,
    ) -> "AddressSpace":
        """Build the address space for a binary with the given PT_LOAD
        ``(vaddr, memsz)`` extents.

        For PIE *executables*, link-time addresses start near zero but
        load at a high runtime base, so negative link-time offsets are
        usable (reached through the rewriter's loader); the bounds are
        widened to the full signed rel32 reach around the image.  Shared
        objects are position-independent too, but the paper found
        negative offsets "generally incompatible with the dynamic linker"
        (other libraries get loaded there), so they are restricted to
        positive offsets like non-PIE code.
        """
        if pie and not shared:
            space = cls(lo_bound=-(1 << 31) + (1 << 20), hi_bound=(1 << 31))
        elif shared:
            space = cls(lo_bound=4096, hi_bound=(1 << 31))
        else:
            space = cls()
        for vaddr, memsz in segments:
            space.reserve(vaddr - guard, vaddr + memsz + guard)
        return space

    def reserve(self, lo: int, hi: int) -> None:
        """Mark ``[lo, hi)`` permanently unusable."""
        self.free.remove(lo, hi)

    @property
    def span_visits(self) -> int:
        """Free-list spans examined across all gap searches (see
        :attr:`IntervalSet.visits`)."""
        return self.free.visits

    def allocate(self, window_lo: int, window_hi: int, size: int,
                 tag: str = "", align: int = 1) -> int | None:
        """Allocate *size* bytes with the start address inside the window.

        Returns the start vaddr, or None if the window has no free slot.
        The extent may run past ``window_hi`` (only the jump *target* is
        constrained); it must simply be free space.
        """
        lo = max(window_lo, self.lo_bound)
        hi = min(window_hi, self.hi_bound)
        t = None
        if self.pack_pages and align == 1:
            page = self.PAGE
            for plo, phi in self._used_pages.spans_overlapping(
                    lo - page, hi + page, limit=8):
                self.probes += 1
                t = self.free.find_gap(max(lo, plo), min(hi, phi), size)
                if t is not None:
                    break
        if t is None:
            self.probes += 1
            if align == 1:
                t = self._find_gap_hinted(lo, hi, size)
            else:
                t = self.free.find_gap(lo, hi, size, align=align)
        if t is None:
            return None
        self.free.remove(t, t + size)
        self.allocations[t] = Allocation(vaddr=t, size=size, tag=tag)
        page = self.PAGE
        first = t - t % page
        last = t + size + (-(t + size)) % page
        self._used_pages.add(first, last)
        refs = self._page_refs
        for p in range(first, last, page):
            refs[p] = refs.get(p, 0) + 1
        if self.debug_invariants:
            self.check_invariants()
        return t

    def _find_gap_hinted(self, lo: int, hi: int, size: int) -> int | None:
        """First-fit search with a per-window-origin skip cursor.

        A recorded hint ``(addr, proven)`` for origin *lo* means first-fit
        already proved no gap of ≥ *proven* bytes starts in ``[lo, addr)``;
        a request of ``size >= proven`` may therefore begin at *addr*.
        """
        hint = self._gap_hints.get(lo)
        start = lo
        if hint is not None and size >= hint[1] and hint[0] > lo:
            start = min(hint[0], hi)
        t = self.free.find_gap(start, hi, size)
        self._gap_hints[lo] = (t if t is not None else hi, size)
        return t

    def release(self, vaddr: int, size: int) -> None:
        """Return an extent to the free pool (tactic rollback)."""
        self.free.add(vaddr, vaddr + size)
        a = self.allocations.get(vaddr)
        if a is not None and a.size == size:
            del self.allocations[vaddr]
        # Freed space may merge with a lower span, creating gaps below any
        # recorded search cursor: drop every hint above the merged span.
        if self._gap_hints:
            span = self.free.span_at(vaddr)
            merged_lo = span[0] if span is not None else vaddr
            self._gap_hints = {
                k: v for k, v in self._gap_hints.items() if v[0] <= merged_lo
            }
        # Page-occupancy hints: un-count this extent's pages and evict
        # pages with no remaining allocation, so rollback-heavy runs do
        # not leave ``pack_pages`` probing dead pages forever.
        page = self.PAGE
        first = vaddr - vaddr % page
        last = vaddr + size + (-(vaddr + size)) % page
        refs = self._page_refs
        for p in range(first, last, page):
            n = refs.get(p)
            if n is None:
                continue
            if n <= 1:
                del refs[p]
                self._used_pages.remove(p, p + page)
            else:
                refs[p] = n - 1
        if self.debug_invariants:
            self.check_invariants()

    def check_invariants(self) -> None:
        """Assert allocator consistency (debug aid; O(n log n)).

        * free space and live allocations are disjoint;
        * live allocations are pairwise disjoint;
        * every page of every live allocation is in the page-occupancy
          hint set, and every hinted page is backed by a reference count.
        """
        prev_end = None
        for vaddr in sorted(self.allocations):
            a = self.allocations[vaddr]
            assert a.vaddr == vaddr, "allocation key/vaddr mismatch"
            assert not self.free.overlaps(a.vaddr, a.end), (
                f"allocation [{a.vaddr:#x},{a.end:#x}) overlaps free space"
            )
            assert prev_end is None or a.vaddr >= prev_end, (
                f"allocations overlap at {a.vaddr:#x}"
            )
            prev_end = a.end
            page = self.PAGE
            first = a.vaddr - a.vaddr % page
            last = a.end + (-a.end) % page
            for p in range(first, last, page):
                assert self._used_pages.contains(p, p + page), (
                    f"page {p:#x} of live allocation missing from page hints"
                )
                assert self._page_refs.get(p, 0) > 0, (
                    f"page {p:#x} of live allocation has no reference count"
                )
        for p, n in self._page_refs.items():
            assert n > 0, f"page {p:#x} has non-positive refcount {n}"

    def is_free(self, lo: int, hi: int) -> bool:
        return self.free.contains(lo, hi)

    def used_bytes(self) -> int:
        return sum(a.size for a in self.allocations.values())
