"""Virtual address-space allocator for trampolines.

Models the patched program's virtual address space: existing PT_LOAD
segments (and the NULL guard region) are reserved; trampolines are
allocated first-fit inside pun-constrained windows.  For PIE binaries the
usable space extends to *negative* link-time offsets — at runtime the
image is loaded high, so the whole ±2 GiB window around the code is
valid, which is the paper's explanation for the much higher PIE baseline
coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.intervals import IntervalSet

# Linux vm.mmap_min_addr default: the NULL guard.
MMAP_MIN_ADDR = 0x10000
# Upper end of the canonical user address space (47-bit, minus stack slack).
USER_SPACE_TOP = 0x7FFF_F000_0000


@dataclass
class Allocation:
    """One allocated trampoline extent."""

    vaddr: int
    size: int
    tag: str = ""

    @property
    def end(self) -> int:
        return self.vaddr + self.size


@dataclass
class AddressSpace:
    """Free-space tracker with windowed first-fit allocation.

    ``lo_bound``/``hi_bound`` delimit addresses trampolines may occupy;
    reserved ranges (the binary's own segments, guard pages) are carved
    out at construction time.

    ``pack_pages`` makes allocation prefer pages that already hold
    trampolines.  It is **off by default on purpose**: packing barely
    reduces the virtual page count (constrained windows scatter anyway)
    while making pages dense — and dense pages cannot merge under
    physical page grouping, so the *physical* footprint grows.  The
    ablation benchmark quantifies this; it is the paper's design insight
    in miniature: exploit fragmentation at mapping time instead of
    fighting it at allocation time.
    """

    lo_bound: int = MMAP_MIN_ADDR
    hi_bound: int = USER_SPACE_TOP
    free: IntervalSet = field(default_factory=IntervalSet)
    allocations: list[Allocation] = field(default_factory=list)
    pack_pages: bool = False
    # Observability: number of free-list gap searches performed (one per
    # find_gap call, including failed and packed-page attempts).
    probes: int = 0
    _used_pages: IntervalSet = field(default_factory=IntervalSet)

    PAGE = 4096

    def __post_init__(self) -> None:
        if not self.free:
            self.free.add(self.lo_bound, self.hi_bound)

    @classmethod
    def for_binary(
        cls,
        segments: list[tuple[int, int]],
        *,
        pie: bool = False,
        shared: bool = False,
        image_base: int = 0,
        guard: int = 4096,
    ) -> "AddressSpace":
        """Build the address space for a binary with the given PT_LOAD
        ``(vaddr, memsz)`` extents.

        For PIE *executables*, link-time addresses start near zero but
        load at a high runtime base, so negative link-time offsets are
        usable (reached through the rewriter's loader); the bounds are
        widened to the full signed rel32 reach around the image.  Shared
        objects are position-independent too, but the paper found
        negative offsets "generally incompatible with the dynamic linker"
        (other libraries get loaded there), so they are restricted to
        positive offsets like non-PIE code.
        """
        if pie and not shared:
            space = cls(lo_bound=-(1 << 31) + (1 << 20), hi_bound=(1 << 31))
        elif shared:
            space = cls(lo_bound=4096, hi_bound=(1 << 31))
        else:
            space = cls()
        for vaddr, memsz in segments:
            space.reserve(vaddr - guard, vaddr + memsz + guard)
        return space

    def reserve(self, lo: int, hi: int) -> None:
        """Mark ``[lo, hi)`` permanently unusable."""
        self.free.remove(lo, hi)

    def allocate(self, window_lo: int, window_hi: int, size: int,
                 tag: str = "", align: int = 1) -> int | None:
        """Allocate *size* bytes with the start address inside the window.

        Returns the start vaddr, or None if the window has no free slot.
        The extent may run past ``window_hi`` (only the jump *target* is
        constrained); it must simply be free space.
        """
        lo = max(window_lo, self.lo_bound)
        hi = min(window_hi, self.hi_bound)
        t = None
        if self.pack_pages and align == 1:
            page = self.PAGE
            for plo, phi in self._used_pages.spans_overlapping(
                    lo - page, hi + page, limit=8):
                self.probes += 1
                t = self.free.find_gap(max(lo, plo), min(hi, phi), size)
                if t is not None:
                    break
        if t is None:
            self.probes += 1
            t = self.free.find_gap(lo, hi, size, align=align)
        if t is None:
            return None
        self.free.remove(t, t + size)
        self.allocations.append(Allocation(vaddr=t, size=size, tag=tag))
        page = self.PAGE
        self._used_pages.add(t - t % page, t + size + (-(t + size)) % page)
        return t

    def release(self, vaddr: int, size: int) -> None:
        """Return an extent to the free pool (tactic rollback).

        The page-occupancy hint is left as-is: stale hints only bias
        future placements and cost nothing if the page stays empty.
        """
        self.free.add(vaddr, vaddr + size)
        for i in range(len(self.allocations) - 1, -1, -1):
            a = self.allocations[i]
            if a.vaddr == vaddr and a.size == size:
                del self.allocations[i]
                return

    def is_free(self, lo: int, hi: int) -> bool:
        return self.free.contains(lo, hi)

    def used_bytes(self) -> int:
        return sum(a.size for a in self.allocations)
