"""Core binary-rewriting engine: tactics, strategy, allocation, grouping.

This is the reproduction of the paper's primary contribution.  The public
entry point is :class:`repro.core.rewriter.Rewriter`; the individual
pieces (pun math, tactics B1/B2/T1/T2/T3, reverse-order strategy S1,
physical page grouping) live in their own modules and are unit-testable
in isolation.
"""

from repro.core.rewriter import Rewriter, RewriteOptions, RewriteResult
from repro.core.tactics import Tactic
from repro.core.stats import PatchStats

__all__ = [
    "Rewriter",
    "RewriteOptions",
    "RewriteResult",
    "Tactic",
    "PatchStats",
]
