"""Core binary-rewriting engine: tactics, strategy, allocation, grouping.

This is the reproduction of the paper's primary contribution.  The public
entry point is :class:`repro.core.rewriter.Rewriter`, a facade over the
staged pass pipeline in :mod:`repro.core.pipeline`; the individual
pieces (pun math, tactics B1/B2/T1/T2/T3, reverse-order strategy S1,
physical page grouping) live in their own modules and are unit-testable
in isolation.  :mod:`repro.core.observe` provides per-pass wall-time,
counters, and trace hooks.
"""

from repro.core.observe import Observer, TraceHook
from repro.core.pipeline import (
    DecodePass,
    EmitPass,
    GroupPass,
    MatchPass,
    Pass,
    PlanPass,
    RewriteContext,
    VerifyPass,
    run_pipeline,
    standard_passes,
)
from repro.core.rewriter import Rewriter, RewriteOptions, RewriteResult
from repro.core.stats import PatchStats
from repro.core.tactics import Tactic

__all__ = [
    "Rewriter",
    "RewriteOptions",
    "RewriteResult",
    "RewriteContext",
    "Tactic",
    "PatchStats",
    "Observer",
    "TraceHook",
    "Pass",
    "DecodePass",
    "MatchPass",
    "PlanPass",
    "GroupPass",
    "EmitPass",
    "VerifyPass",
    "run_pipeline",
    "standard_passes",
]
