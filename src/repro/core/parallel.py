"""Parallel execution layer for batch rewriting.

E9Patch's headline claim is throughput — Chrome's 86MB of code in under
a second — and batch workloads (eval sweeps, ablations, corpus rewrites)
are embarrassingly parallel: every (binary, configuration) pair is an
independent unit of work.  :class:`BatchExecutor` fans such units out
across a :mod:`multiprocessing` pool with three guarantees:

* **deterministic ordering** — results come back in input order, no
  matter which worker finished first;
* **byte-identical fallback** — when parallelism is unavailable
  (``jobs=1``, a single item, an unpicklable work item, or a pool
  failure) the same worker function runs serially in-process, so the
  outputs are the same bytes either way;
* **bounded workers** — never more processes than items *or CPUs*.
  A pool that cannot run two workers concurrently (one-CPU hosts,
  effectively) is pure overhead, so such batches auto-serialize;
  callers can probe this ahead of time via
  :meth:`BatchExecutor.would_parallelize`.

The worker count resolves, in order, from the explicit ``jobs``
argument, the ``REPRO_JOBS`` environment variable, and finally ``1``
(serial).  ``jobs <= 0`` means "one per CPU".

All of that resolution happens exactly once, when an
:class:`ExecutorConfig` is constructed — a long-lived service resolves
its configuration at startup and every request reuses it, so changing
``$REPRO_JOBS`` mid-flight cannot change worker behaviour.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: int | None = None,
                 environ: Mapping[str, str] | None = None) -> int:
    """Resolve a worker count: argument > ``$REPRO_JOBS`` > 1 (serial).

    Non-positive values request one worker per CPU; unparsable
    environment values fall back to serial rather than failing a run
    over a typo.  This is a *configuration-time* helper — call it when
    building an :class:`ExecutorConfig`, never on a per-request path.
    """
    if jobs is None:
        env = os.environ if environ is None else environ
        raw = env.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class ExecutorConfig:
    """Immutable executor configuration, resolved once at construction.

    ``jobs`` is always a concrete positive worker count here — the
    ``$REPRO_JOBS`` / "0 = one per CPU" conveniences are applied by
    :meth:`from_env` when the config is built, so an executor carried
    by a long-lived service never consults the environment again.
    """

    jobs: int = 1
    start_method: str | None = None
    cpu_count: int = 0  # 0: resolved to os.cpu_count() in __post_init__

    def __post_init__(self) -> None:
        if self.cpu_count <= 0:
            object.__setattr__(self, "cpu_count", os.cpu_count() or 1)
        if self.jobs <= 0:
            object.__setattr__(self, "jobs", os.cpu_count() or 1)

    @classmethod
    def from_env(
        cls,
        jobs: int | None = None,
        start_method: str | None = None,
        cpu_count: int | None = None,
        environ: Mapping[str, str] | None = None,
    ) -> "ExecutorConfig":
        """Resolve configuration: arguments > ``$REPRO_JOBS`` > serial."""
        return cls(
            jobs=resolve_jobs(jobs, environ),
            start_method=start_method,
            cpu_count=cpu_count if cpu_count is not None else 0,
        )


def is_picklable(obj: object) -> bool:
    """Whether *obj* survives a pickle round-trip to a worker process."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


@dataclass
class ExecutionReport:
    """How the last :meth:`BatchExecutor.map` call actually ran."""

    jobs: int
    n_items: int
    parallel: bool
    fallback_reason: str | None = None


class BatchExecutor:
    """Deterministic fan-out of independent work items.

    ``map(fn, items)`` behaves like ``[fn(x) for x in items]`` — same
    results, same order — but runs up to ``jobs`` worker processes when
    the work can be shipped to them.  ``fn`` must be a module-level
    callable and every item picklable for the parallel path; anything
    else degrades to the serial loop (recorded in :attr:`last`).
    """

    def __init__(self, jobs: "int | ExecutorConfig | None" = None,
                 start_method: str | None = None,
                 cpu_count: int | None = None) -> None:
        if isinstance(jobs, ExecutorConfig):
            config = jobs
        else:
            config = ExecutorConfig.from_env(jobs, start_method, cpu_count)
        self.config = config
        self.jobs = config.jobs
        self.start_method = config.start_method
        self.cpu_count = config.cpu_count
        self.last: ExecutionReport | None = None

    def effective_workers(self, n_items: int) -> int:
        """Workers that would actually run concurrently for *n_items*.

        Bounded by the requested ``jobs``, the host CPU count, and the
        item count: a pool wider than any of those only adds fork and
        pickle overhead without adding concurrency.
        """
        return max(0, min(self.jobs, self.cpu_count, n_items))

    def would_parallelize(self, n_items: int) -> bool:
        """Whether a batch of *n_items* would take the parallel path.

        Callers with a cheaper serial strategy (e.g. ``rewrite_many``'s
        shared single decode) should consult this *before* committing to
        the parallel code path: when the pool cannot beat one process —
        one CPU, one item, or ``jobs=1`` — fanning out loses twice, once
        on fork/pickle overhead and once on the forfeited sharing."""
        return self.effective_workers(n_items) > 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        work: Sequence[T] = list(items)
        reason = self._serial_reason(fn, work)
        if reason is None:
            try:
                results = self._map_pool(fn, work)
            except Exception as exc:  # pool setup/transport failure
                reason = f"pool failure: {exc!r}"
            else:
                self.last = ExecutionReport(
                    jobs=self.jobs, n_items=len(work), parallel=True
                )
                return results
        self.last = ExecutionReport(
            jobs=self.jobs, n_items=len(work), parallel=False,
            fallback_reason=reason,
        )
        return [fn(item) for item in work]

    # -- internals -------------------------------------------------------

    def _map_pool(self, fn: Callable[[T], R], work: Sequence[T]) -> list[R]:
        ctx = multiprocessing.get_context(
            self.start_method or default_start_method()
        )
        with ctx.Pool(self.effective_workers(len(work))) as pool:
            # chunksize=1: work items are coarse (a whole rewrite), so
            # dynamic scheduling beats amortized chunking.
            return pool.map(fn, work, chunksize=1)

    def _serial_reason(self, fn: Callable, work: Sequence) -> str | None:
        """Why the batch must run serially, or None to go parallel."""
        if self.jobs <= 1:
            return "jobs=1"
        if len(work) <= 1:
            return "single work item"
        if self.effective_workers(len(work)) <= 1:
            return f"effective workers <= 1 (cpus={self.cpu_count})"
        if not is_picklable(fn):
            return "worker function not picklable"
        for i, item in enumerate(work):
            if not is_picklable(item):
                return f"work item {i} not picklable"
        return None


def chunk_spans(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ``[lo, hi)`` spans of ``chunk_size`` bytes.

    The last span absorbs the remainder (it may be shorter).  Used by
    chunked intra-binary decode (:mod:`repro.x86.fastscan`) to carve a
    large code region into independently scannable work items.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [
        (lo, min(total, lo + chunk_size)) for lo in range(0, total, chunk_size)
    ]


def default_start_method() -> str:
    """``fork`` where available (cheap, inherits the loaded package),
    else ``spawn`` (which relies on ``PYTHONPATH`` carrying ``src``)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"
