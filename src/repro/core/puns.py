"""Instruction-punning arithmetic (paper Sections 2.1.3 and 3.1).

A relative near jump written at address ``j`` with ``p`` bytes of prefix
padding occupies ``[j, j+p+5)``: the padding, the 0xE9 opcode at ``j+p``,
and rel32 at ``[j+p+1, j+p+5)``.  Bytes inside the *writable window*
``[j, writable_end)`` may be chosen freely; rel32 bytes at or past
``writable_end`` are **fixed** to whatever currently occupies them (they
belong to successor instructions and become PUNNED).

Because the writable window is a contiguous range starting at ``j``, the
free rel32 bytes are always a low-order (little-endian) prefix, so every
``(j, p)`` attempt yields exactly **one contiguous window** of candidate
jump targets ``[target_base, target_base + 256**free)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.binary import CodeImage
from repro.x86.prefixes import jump_padding

JMP_OPCODE = 0xE9
SHORT_JMP_OPCODE = 0xEB
MAX_JUMP_LEN = 15  # architectural instruction-length limit


def _signext32(value: int) -> int:
    return (value ^ 0x80000000) - 0x80000000


_PW_FIELDS = ("jump_addr", "padding", "free", "target_lo", "target_hi",
              "written_len", "punned_len")


class PunWindow:
    """One candidate punned-jump placement.

    A plain ``__slots__`` class (not a dataclass): window enumeration is
    the plan pass's hottest constructor, and most windows are discarded
    after one allocation probe.  Treat instances as immutable.

    Attributes:
        jump_addr: address of the first written byte (padding or opcode).
        padding: number of redundant prefix bytes before 0xE9.
        free: number of freely choosable low-order rel32 bytes (0..4).
        target_lo/target_hi: the half-open window of reachable targets.
        written_len: bytes that will be overwritten ([jump_addr, +written_len)).
        punned_len: fixed rel32 bytes past the writable window that must be
            locked PUNNED ([jump_addr+written_len, +punned_len)).
    """

    __slots__ = _PW_FIELDS

    def __init__(self, jump_addr: int, padding: int, free: int,
                 target_lo: int, target_hi: int,
                 written_len: int, punned_len: int) -> None:
        self.jump_addr = jump_addr
        self.padding = padding
        self.free = free
        self.target_lo = target_lo
        self.target_hi = target_hi
        self.written_len = written_len
        self.punned_len = punned_len

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not PunWindow:
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f)
                   for f in _PW_FIELDS)

    __hash__ = None  # mutable container semantics, like the old dataclass

    def __repr__(self) -> str:
        body = ", ".join(f"{f}={getattr(self, f)!r}" for f in _PW_FIELDS)
        return f"PunWindow({body})"

    @property
    def jump_end(self) -> int:
        """Address the rel32 is relative to (end of the jump instruction)."""
        return self.jump_addr + self.padding + 5

    def rel32_for(self, target: int) -> int:
        rel = target - self.jump_end
        if not -(1 << 31) <= rel < (1 << 31):
            raise ValueError(f"target {target:#x} out of rel32 range")
        return rel

    def encode(self, target: int) -> bytes:
        """The *written* bytes (padding + opcode + free rel32 bytes) for
        a jump to *target*; fixed rel32 bytes are not written."""
        rel = self.rel32_for(target) & 0xFFFFFFFF
        full = (
            jump_padding(self.padding)
            + bytes((JMP_OPCODE,))
            + rel.to_bytes(4, "little")
        )
        return full[: self.written_len]


def pun_windows(
    image: CodeImage,
    jump_addr: int,
    writable_end: int,
    *,
    min_padding: int = 0,
    max_padding: int | None = None,
) -> list[PunWindow]:
    """Enumerate all pun placements for a jump at *jump_addr*.

    *writable_end* bounds the bytes this jump may overwrite (typically the
    end of the instruction being replaced).  All bytes of
    ``[jump_addr, writable_end)`` must currently be unlocked; fixed rel32
    bytes past *writable_end* must be readable in the image.

    Returns windows ordered least-constrained first (smallest padding).
    """
    windows: list[PunWindow] = []
    room = writable_end - jump_addr
    if room <= 0:
        return windows
    if max_padding is None:
        max_padding = room - 1
    max_padding = min(max_padding, room - 1, MAX_JUMP_LEN - 5)

    # One range lookup for the whole enumeration; the padding loop reads
    # fixed bytes straight out of the range buffer.
    r = image.range_at(jump_addr)
    if r is None or not r.locks.is_writable(jump_addr, room):
        return windows
    r_base, r_end, r_data = r.base, r.end, r.data

    append = windows.append
    from_bytes = int.from_bytes
    for p in range(min_padding, max_padding + 1):
        rel_pos = jump_addr + p + 1
        jump_end = rel_pos + 4
        free = writable_end - rel_pos
        if free > 4:
            free = 4
        elif free < 0:
            free = 0
        n_fixed = 4 - free
        if n_fixed:
            fixed_at = rel_pos + free
            if fixed_at >= r_base and fixed_at + n_fixed <= r_end:
                i = fixed_at - r_base
                fixed = r_data[i : i + n_fixed]
            elif image.readable(fixed_at, n_fixed):
                fixed = image.read(fixed_at, n_fixed)
            else:
                continue  # fixed bytes fall outside the mapped image
            high = from_bytes(fixed, "little") << (8 * free)
            lo = jump_end + ((high ^ 0x80000000) - 0x80000000)
            hi = lo + (1 << (8 * free))
        else:
            lo = jump_end - (1 << 31)
            hi = jump_end + (1 << 31)
        append(PunWindow(jump_addr, p, free, lo, hi, p + 1 + free, n_fixed))
    return windows


@dataclass(frozen=True)
class ShortJumpSpec:
    """A (possibly punned) two-byte short jump at a patch site.

    For single-byte patch instructions the rel8 byte is *fixed* to the
    successor's first byte, leaving exactly one reachable target
    (limitation L2 of the paper).
    """

    site: int
    rel8_free: bool
    targets: tuple[int, ...]  # candidate JPatch locations, best-first

    @property
    def written_len(self) -> int:
        return 2 if self.rel8_free else 1

    def encode(self, target: int) -> bytes:
        rel = target - (self.site + 2)
        if not 0 <= rel <= 127:
            raise ValueError("short jump target out of forward rel8 range")
        full = bytes((SHORT_JMP_OPCODE, rel))
        return full[: self.written_len]


def short_jump_spec(image: CodeImage, site: int, ilen: int) -> ShortJumpSpec | None:
    """Candidate targets for tactic T3's ``JShort`` at *site*.

    Per the paper's lock discipline, only forward (positive rel8) targets
    are considered.
    """
    if not image.is_writable(site, min(2, ilen)):
        return None
    if ilen >= 2:
        targets = tuple(site + 2 + rel for rel in range(0, 128))
        return ShortJumpSpec(site=site, rel8_free=True, targets=targets)
    # Single-byte instruction: rel8 is the successor's first byte (punned).
    if not image.readable(site + 1, 1):
        return None
    rel = image.read(site + 1, 1)[0]
    if rel > 127:
        return None  # negative rel8: disallowed by the lock discipline
    return ShortJumpSpec(site=site, rel8_free=False, targets=(site + 2 + rel,))
