"""Disjoint half-open interval set with gap search.

The allocator's workhorse: tracks free virtual address space as a sorted
list of disjoint ``[start, end)`` intervals and supports first-fit
searches restricted to a window (the pun-constrained trampoline range).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right


class IntervalSet:
    """A set of integers stored as sorted disjoint half-open intervals."""

    def __init__(self, intervals: list[tuple[int, int]] | None = None) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        #: Observability: spans examined by :meth:`find_gap` over this
        #: set's lifetime.  The allocator's search-cursor optimization is
        #: measured (and gated) as a reduction of this counter.
        self.visits: int = 0
        if intervals:
            for lo, hi in intervals:
                self.add(lo, hi)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __len__(self) -> int:
        return len(self._starts)

    def __iter__(self):
        return iter(zip(self._starts, self._ends))

    def __repr__(self) -> str:
        spans = ", ".join(f"[{s:#x},{e:#x})" for s, e in self)
        return f"IntervalSet({spans})"

    def total(self) -> int:
        """Total number of integers covered."""
        return sum(e - s for s, e in self)

    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi)``, merging with any overlapping/adjacent spans."""
        if lo >= hi:
            return
        i = bisect_left(self._ends, lo)  # first span with end >= lo
        j = bisect_right(self._starts, hi)  # spans entirely before hi
        if i < j:
            lo = min(lo, self._starts[i])
            hi = max(hi, self._ends[j - 1])
        self._starts[i:j] = [lo]
        self._ends[i:j] = [hi]

    def remove(self, lo: int, hi: int) -> None:
        """Delete ``[lo, hi)`` from the set."""
        if lo >= hi:
            return
        i = bisect_right(self._ends, lo)  # first span with end > lo
        new_starts: list[int] = []
        new_ends: list[int] = []
        j = i
        while j < len(self._starts) and self._starts[j] < hi:
            s, e = self._starts[j], self._ends[j]
            if s < lo:
                new_starts.append(s)
                new_ends.append(lo)
            if e > hi:
                new_starts.append(hi)
                new_ends.append(e)
            j += 1
        self._starts[i:j] = new_starts
        self._ends[i:j] = new_ends

    def contains(self, lo: int, hi: int | None = None) -> bool:
        """True if ``[lo, hi)`` (or the single point *lo*) is fully covered."""
        if hi is None:
            hi = lo + 1
        if lo >= hi:
            return True
        i = bisect_right(self._starts, lo) - 1
        return i >= 0 and self._ends[i] >= hi

    def overlaps(self, lo: int, hi: int) -> bool:
        """True if ``[lo, hi)`` intersects the set."""
        if lo >= hi:
            return False
        i = bisect_right(self._ends, lo)
        return i < len(self._starts) and self._starts[i] < hi

    def find_gap(
        self, window_lo: int, window_hi: int, size: int, align: int = 1
    ) -> int | None:
        """First-fit: lowest aligned ``t`` with ``t`` in
        ``[window_lo, window_hi)`` and ``[t, t+size)`` fully covered by
        this (free) set.

        Note the asymmetry matching trampoline allocation: only the *start*
        must lie in the window; the extent may run past ``window_hi``.
        """
        if window_lo >= window_hi or size <= 0:
            return None

        def align_up(x: int) -> int:
            return -((-x) // align) * align

        i = bisect_right(self._starts, window_lo) - 1
        if i >= 0 and self._ends[i] > window_lo:
            self.visits += 1
            t = align_up(window_lo)
            if t < window_hi and self._ends[i] - t >= size:
                return t
            i += 1
        else:
            i += 1
        while i < len(self._starts) and self._starts[i] < window_hi:
            self.visits += 1
            s, e = self._starts[i], self._ends[i]
            t = align_up(max(s, window_lo))
            if t < window_hi and e - t >= size:
                return t
            i += 1
        return None

    def span_at(self, point: int) -> tuple[int, int] | None:
        """The span containing *point* (or starting at it), if any."""
        i = bisect_right(self._starts, point) - 1
        if i >= 0 and self._ends[i] > point:
            return self._starts[i], self._ends[i]
        return None

    def spans_overlapping(self, lo: int, hi: int,
                          limit: int | None = None) -> list[tuple[int, int]]:
        """Spans intersecting ``[lo, hi)``, in order (optionally capped)."""
        out: list[tuple[int, int]] = []
        i = bisect_right(self._ends, lo)
        while i < len(self._starts) and self._starts[i] < hi:
            out.append((self._starts[i], self._ends[i]))
            if limit is not None and len(out) >= limit:
                break
            i += 1
        return out

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._starts = list(self._starts)
        out._ends = list(self._ends)
        return out
