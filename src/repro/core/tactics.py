"""Patching tactics B0/B1/B2/T1/T2/T3 (paper Sections 2.1 and 3).

Each tactic attempts to redirect one patch-site instruction to its
trampoline without moving any other instruction and while preserving the
set of jump targets.  Tactics that perform multi-step searches (T2/T3)
run inside a :class:`Transaction` so failed attempts roll back cleanly.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import PatchError
from repro.core.allocator import AddressSpace
from repro.core.binary import CodeImage
from repro.core.puns import PunWindow, pun_windows, short_jump_spec
from repro.elf.constants import ENDBR64
from repro.core.trampoline import (
    Empty,
    Instrumentation,
    Trampoline,
    build_trampoline,
    trampoline_size,
)
from repro.x86.insn import Instruction


class Tactic(enum.Enum):
    """Which methodology successfully patched a site."""

    B0 = "B0"  # int3 + trap handler
    B1 = "B1"  # direct jump replacement (length >= 5)
    B2 = "B2"  # punned jump, no padding
    T1 = "T1"  # padded punned jump
    T2 = "T2"  # successor eviction
    T3 = "T3"  # neighbour eviction (double jump)

    @property
    def is_baseline(self) -> bool:
        return self in (Tactic.B1, Tactic.B2)


@dataclass
class SitePatch:
    """Successful patch record for one site."""

    site: int
    tactic: Tactic
    trampolines: list[Trampoline] = field(default_factory=list)


class Transaction:
    """Undo log over the code image and address space."""

    def __init__(self, image: CodeImage, space: AddressSpace) -> None:
        self.image = image
        self.space = space
        self._writes: list[tuple[int, bytes, bytes]] = []  # vaddr, old, lockstates
        self._puns: list[tuple[int, bytes]] = []  # vaddr, lockstates
        self._allocs: list[tuple[int, int]] = []
        self._dirty_mark = len(image.dirty)
        self.trampolines: list[Trampoline] = []

    def write(self, vaddr: int, data: bytes) -> None:
        old = self.image.read(vaddr, len(data))
        locks = self.image.locks_for(vaddr).snapshot(vaddr, len(data))
        self.image.write(vaddr, data)
        self._writes.append((vaddr, old, locks))

    def pun(self, vaddr: int, length: int) -> None:
        if length <= 0:
            return
        locks = self.image.locks_for(vaddr).snapshot(vaddr, length)
        self.image.pun(vaddr, length)
        self._puns.append((vaddr, locks))

    def allocate(self, lo: int, hi: int, size: int, tag: str) -> int | None:
        t = self.space.allocate(lo, hi, size, tag)
        if t is not None:
            self._allocs.append((t, size))
        return t

    def release_last(self) -> None:
        """Undo the most recent allocation (failed trampoline encoding)."""
        vaddr, size = self._allocs.pop()
        self.space.release(vaddr, size)

    def add_trampoline(self, tramp: Trampoline) -> None:
        self.trampolines.append(tramp)

    def abort(self) -> None:
        for vaddr, locks in reversed(self._puns):
            self.image.restore_locks(vaddr, locks)
        for vaddr, old, locks in reversed(self._writes):
            self.image.write_unchecked(vaddr, old)
            self.image.restore_locks(vaddr, locks)
        for vaddr, size in reversed(self._allocs):
            self.space.release(vaddr, size)
        del self.image.dirty[self._dirty_mark :]
        self._writes.clear()
        self._puns.clear()
        self._allocs.clear()
        self.trampolines.clear()


#: Shared empty instrumentation for evictee trampolines.  A singleton so
#: the per-(insn, instrumentation) trampoline-size memo keys stay stable
#: across the thousands of T2/T3 eviction attempts.
_EMPTY = Empty()


def is_endbr64_insn(insn: Instruction) -> bool:
    """True when *insn* is the IBT landing pad (F3 0F 1E FA)."""
    return insn.length == 4 and bytes(insn.raw[:4]) == ENDBR64


@dataclass
class TacticContext:
    """Everything a tactic needs: image, allocator, instruction index.

    Also hosts the plan pass's two memos (INTERNALS.md §7):

    * :meth:`pun_windows` — per-site window enumerations, valid only for
      one :attr:`CodeImage.version` (any byte or lock change invalidates);
    * :meth:`trampoline_size` — per (instruction, instrumentation) sizes,
      which are address-independent and never invalidate.
    """

    image: CodeImage
    space: AddressSpace
    instructions: Sequence[Instruction]  # sorted by address (linear stream)
    max_eviction_probes: int = 1
    #: CET/IBT mode: endbr64 landing pads are hard constraints — no
    #: tactic may overwrite or pun through one (an indirect branch to a
    #: clobbered pad would fault under IBT enforcement).
    cet: bool = False
    _addrs: list[int] = field(default_factory=list)
    _pw_cache: dict = field(default_factory=dict)
    _pw_version: int = -1
    pw_hits: int = 0
    pw_misses: int = 0
    _ts_cache: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        addrs = getattr(self.instructions, "addresses_list", None)
        if addrs is not None:  # InstructionStream: no materialization
            self._addrs = addrs()
        else:
            self._addrs = [i.address for i in self.instructions]

    def protects(self, insn: Instruction) -> bool:
        """True when *insn* is an IBT landing pad this rewrite must keep
        byte-identical (only in CET mode)."""
        return self.cet and is_endbr64_insn(insn)

    def insn_at(self, addr: int) -> Instruction | None:
        """Instruction starting exactly at *addr*."""
        i = bisect_right(self._addrs, addr) - 1
        if i >= 0 and self._addrs[i] == addr:
            return self.instructions[i]
        return None

    def insn_containing(self, addr: int) -> Instruction | None:
        """Instruction whose byte range covers *addr*."""
        i = bisect_right(self._addrs, addr) - 1
        if i >= 0:
            insn = self.instructions[i]
            if insn.address <= addr < insn.end:
                return insn
        return None

    def pun_windows(
        self,
        jump_addr: int,
        writable_end: int,
        *,
        min_padding: int = 0,
        max_padding: int | None = None,
    ) -> list[PunWindow]:
        """Memoized :func:`repro.core.puns.pun_windows` over this image.

        The whole memo is dropped whenever :attr:`CodeImage.version`
        moves: window enumeration depends on lock state and on the fixed
        rel32 bytes past the writable window, and both change with every
        write, pun, or rollback.
        """
        if self.image.version != self._pw_version:
            self._pw_cache.clear()
            self._pw_version = self.image.version
        key = (jump_addr, writable_end, min_padding, max_padding)
        hit = self._pw_cache.get(key)
        if hit is not None:
            self.pw_hits += 1
            return hit
        self.pw_misses += 1
        out = pun_windows(
            self.image, jump_addr, writable_end,
            min_padding=min_padding, max_padding=max_padding,
        )
        self._pw_cache[key] = out
        return out

    def trampoline_size(self, insn: Instruction, instr: Instrumentation) -> int:
        """Memoized :func:`repro.core.trampoline.trampoline_size`.

        Sizes are address-independent, so entries never invalidate.  The
        entry pins both objects, keeping the id-based key unambiguous.
        """
        key = (id(insn), id(instr))
        hit = self._ts_cache.get(key)
        if hit is not None:
            return hit[2]
        size = trampoline_size(insn, instr)
        self._ts_cache[key] = (insn, instr, size)
        return size


def _emit_jump(
    tx: Transaction,
    window: PunWindow,
    target: int,
) -> None:
    """Write a punned jump through *window* to *target* and set locks."""
    tx.write(window.jump_addr, window.encode(target))
    if window.punned_len:
        tx.pun(window.jump_addr + window.written_len, window.punned_len)


def _try_jump_to_new_trampoline(
    ctx: TacticContext,
    tx: Transaction,
    jump_addr: int,
    writable_end: int,
    tramp_insn: Instruction,
    instr: Instrumentation,
    tag: str,
    *,
    min_padding: int = 0,
) -> PunWindow | None:
    """Try every pun window at *jump_addr*; on success the jump is written
    and the trampoline (for *tramp_insn* with *instr*) is allocated and
    encoded.  Returns the window used, or None."""
    size = ctx.trampoline_size(tramp_insn, instr)
    for window in ctx.pun_windows(
        jump_addr, writable_end, min_padding=min_padding
    ):
        t = tx.allocate(window.target_lo, window.target_hi, size, tag)
        if t is None:
            continue
        try:
            code = build_trampoline(tramp_insn, instr, t, size)
        except PatchError:
            tx.release_last()
            continue
        _emit_jump(tx, window, t)
        tx.add_trampoline(Trampoline(vaddr=t, code=code, tag=tag))
        return window
    return None


# ---------------------------------------------------------------------------
# B1 / B2 / T1: (padded) punned jump at the patch site itself.
# ---------------------------------------------------------------------------

def try_direct(
    ctx: TacticContext,
    insn: Instruction,
    instr: Instrumentation,
    *,
    allow_padding: bool = True,
) -> SitePatch | None:
    """Tactics B1 (len>=5), B2 (no padding) and T1 (padded) unified.

    Windows are tried least-constrained first; the tactic label is derived
    from the winning window (free==4 -> B1, padding==0 -> B2, else T1).

    Unlike the multi-step tactics this one needs no :class:`Transaction`:
    the image is only written on the success path (failed allocation
    probes are released directly), so there is never anything to roll
    back — and skipping the undo log (old-byte reads + lock snapshots)
    keeps the most common tactic on the fast path.
    """
    if ctx.protects(insn):
        return None  # never pun through an IBT landing pad
    space = ctx.space
    image = ctx.image
    size = ctx.trampoline_size(insn, instr)
    max_padding = None if allow_padding else 0
    tag = f"patch@{insn.address:#x}"
    for window in ctx.pun_windows(
        insn.address, insn.end, max_padding=max_padding
    ):
        t = space.allocate(window.target_lo, window.target_hi, size, tag)
        if t is None:
            continue
        try:
            code = build_trampoline(insn, instr, t, size)
        except PatchError:
            space.release(t, size)
            continue
        image.write(window.jump_addr, window.encode(t))
        if window.punned_len:
            image.pun(window.jump_addr + window.written_len, window.punned_len)
        if window.free == 4:
            tactic = Tactic.B1
        elif window.padding == 0:
            tactic = Tactic.B2
        else:
            tactic = Tactic.T1
        return SitePatch(
            site=insn.address, tactic=tactic,
            trampolines=[Trampoline(vaddr=t, code=code, tag=tag)],
        )
    return None


# ---------------------------------------------------------------------------
# T2: successor eviction.
# ---------------------------------------------------------------------------

def try_successor_eviction(
    ctx: TacticContext,
    insn: Instruction,
    instr: Instrumentation,
) -> SitePatch | None:
    """Evict the successor instruction, then re-attempt punning at the site
    against the successor's new (jump) bytes."""
    if ctx.protects(insn):
        return None
    succ = ctx.insn_at(insn.end)
    if succ is None:
        return None
    if ctx.protects(succ):
        return None  # evicting a landing pad would break IBT targets
    if not ctx.image.is_writable(succ.address, succ.length):
        return None  # successor already patched/locked

    evictee_size = ctx.trampoline_size(succ, _EMPTY)
    for s_window in ctx.pun_windows(succ.address, succ.end):
        # Probe several trampoline placements inside the window: each
        # placement changes the successor's new byte values, which changes
        # the site's own pun window.
        probe_lo = s_window.target_lo
        for _ in range(ctx.max_eviction_probes):
            tx = Transaction(ctx.image, ctx.space)
            t_evict = tx.allocate(
                probe_lo, s_window.target_hi, evictee_size, f"evictee@{succ.address:#x}"
            )
            if t_evict is None:
                tx.abort()
                break
            try:
                evict_code = build_trampoline(succ, _EMPTY, t_evict,
                                              evictee_size)
            except PatchError:
                tx.abort()
                break
            _emit_jump(tx, s_window, t_evict)
            tx.add_trampoline(
                Trampoline(vaddr=t_evict, code=evict_code,
                           tag=f"evictee@{succ.address:#x}")
            )
            window = _try_jump_to_new_trampoline(
                ctx, tx, insn.address, insn.end, insn, instr,
                f"patch@{insn.address:#x}",
            )
            if window is not None:
                return SitePatch(
                    site=insn.address, tactic=Tactic.T2, trampolines=list(tx.trampolines)
                )
            tx.abort()
            # Shift the probe window so the next evictee lands with a
            # different low rel32 byte (and hence different fixed bytes
            # for the site's pun).
            probe_lo = t_evict + 256 - (t_evict % 256)
            if probe_lo >= s_window.target_hi:
                break
    return None


# ---------------------------------------------------------------------------
# T3: neighbour eviction (double jump).
# ---------------------------------------------------------------------------

def try_neighbour_eviction(
    ctx: TacticContext,
    insn: Instruction,
    instr: Instrumentation,
    *,
    max_victims: int = 128,
) -> SitePatch | None:
    """Short-jump to a punned ``J_patch`` carved out of an evicted victim.

    The patch site gets a 2-byte short jump to location ``L`` (forward
    only); ``L`` must fall strictly inside a fully unlocked victim
    instruction V (or inside the patch instruction's own leftover bytes).
    V's head is replaced by a punned ``J_victim`` to V's evictee
    trampoline, preserving V's semantics for any jump that targets it.
    """
    if ctx.protects(insn):
        return None
    spec = short_jump_spec(ctx.image, insn.address, insn.length)
    if spec is None:
        return None

    tried = 0
    for L in spec.targets:
        if tried >= max_victims:
            break
        # Case 1: L inside the patch instruction's own leftover bytes.
        if insn.address + 2 <= L < insn.end:
            tried += 1
            tx = Transaction(ctx.image, ctx.space)
            # Reserve the short-jump bytes first so J_patch's pun cannot
            # claim them.
            tx.write(insn.address, spec.encode(L))
            window = _try_jump_to_new_trampoline(
                ctx, tx, L, insn.end, insn, instr, f"patch@{insn.address:#x}"
            )
            if window is not None:
                return SitePatch(
                    site=insn.address, tactic=Tactic.T3, trampolines=list(tx.trampolines)
                )
            tx.abort()
            continue

        # Case 2: L strictly inside a later victim instruction.
        victim = ctx.insn_containing(L)
        if victim is None or victim.address >= L:
            continue
        if victim.address < insn.end:
            continue  # victim must lie entirely after the patch site
        if ctx.protects(victim):
            continue  # a landing-pad victim must stay byte-identical
        if not ctx.image.is_writable(victim.address, victim.length):
            continue
        tried += 1

        tx = Transaction(ctx.image, ctx.space)
        # J_patch: punned jump at L (inside the victim) to the patch
        # trampoline.
        window = _try_jump_to_new_trampoline(
            ctx, tx, L, victim.end, insn, instr, f"patch@{insn.address:#x}"
        )
        if window is None:
            tx.abort()
            continue
        # J_victim: punned jump at the victim's head to its evictee
        # trampoline; its writable window ends at L (J_patch's bytes are
        # now locked and serve as fixed rel32 cells).
        v_window = _try_jump_to_new_trampoline(
            ctx, tx, victim.address, L, victim, _EMPTY,
            f"evictee@{victim.address:#x}",
        )
        if v_window is None:
            tx.abort()
            continue
        # J_short at the patch site.
        tx.write(insn.address, spec.encode(L))
        if not spec.rel8_free:
            tx.pun(insn.address + 1, 1)
        return SitePatch(
            site=insn.address, tactic=Tactic.T3, trampolines=list(tx.trampolines)
        )
    return None


# ---------------------------------------------------------------------------
# B0: int3 fallback.
# ---------------------------------------------------------------------------

def apply_int3(ctx: TacticContext, insn: Instruction) -> SitePatch | None:
    """Replace the first byte with int3; a trap handler implements the
    patch (orders of magnitude slower — used only as an explicit
    fallback)."""
    if ctx.protects(insn):
        # int3 would replace the endbr64 opcode: an IBT-checked indirect
        # branch to the site faults (#CP) before the trap even fires.
        return None
    if not ctx.image.is_writable(insn.address, 1):
        return None
    tx = Transaction(ctx.image, ctx.space)
    tx.write(insn.address, b"\xcc")
    return SitePatch(site=insn.address, tactic=Tactic.B0)
