"""Trampoline templates and displaced-instruction relocation.

Every successful patch diverts control to a trampoline that (1) runs the
instrumentation body, (2) executes a *relocated* copy of the displaced
instruction, and (3) jumps back to the next original instruction.
Evictee trampolines (tactics T2/T3) are the degenerate case with an
empty body.

Relocation must preserve semantics at the new address:

* direct rel8/rel32 branches are re-encoded against their absolute target;
* ``loop``/``jrcxz`` (rel8-only encodings) are expanded into a
  branch-out trampoline pattern;
* rip-relative memory operands get their disp32 rebased;
* everything else is position-independent and copied verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.facts import AF, OF, PF, SF, STATUS_FLAGS, ZF
from repro.analysis.liveness import LivenessAnalysis, SiteLiveness
from repro.errors import PatchError
from repro.x86 import encoder as enc
from repro.x86.insn import Instruction
from repro.x86.tables import Flow

JMP_BACK_SIZE = 5


def _inject_bug() -> bool:
    """Test-only fault injection (``$REPRO_CHECK_INJECT_BUG``): when set,
    every trampoline's jump-back displacement is miscomputed.  Exists so
    the equivalence-check CI gate can prove it is able to fail; read
    dynamically so tests can toggle it per-case."""
    import os

    return bool(os.environ.get("REPRO_CHECK_INJECT_BUG"))

# Caller-saved registers preserved around a call-style instrumentation.
_SCRATCH_REGS = (enc.RAX, enc.RCX, enc.RDX, enc.RSI, enc.RDI,
                 enc.R8, enc.R9, enc.R10, enc.R11)
RED_ZONE = 128

#: Flags clobbered by the Counter body's ``incq`` (CF is untouched).
_INC_FLAGS = PF | AF | ZF | SF | OF


def relocated_size(insn: Instruction) -> int:
    """Exact size of the relocated copy of *insn* (address-independent)."""
    if insn.flow == Flow.JMP:
        return 5
    if insn.flow == Flow.JCC:
        return 6
    if insn.flow == Flow.CALL and insn.is_direct_branch:
        return 5
    if insn.flow == Flow.LOOP:
        return 9
    return insn.length


def relocate(insn: Instruction, at_addr: int) -> bytes:
    """Encode *insn* so it behaves identically when placed at *at_addr*."""
    # insn.target is spelled out as address + length + imm here: the
    # property chain (target -> rel -> is_direct_branch) is measurable at
    # thousands of relocations per rewrite.
    flow = insn.flow
    if flow is Flow.JMP and insn.imm is not None:
        target = insn.address + insn.length + insn.imm
        return enc.encode_jmp_rel32(target - (at_addr + 5))
    if flow is Flow.JCC:
        target = insn.address + insn.length + insn.imm
        cc = insn.opcode & 0x0F
        return enc.encode_jcc_rel32(cc, target - (at_addr + 6))
    if flow is Flow.CALL and insn.imm is not None:
        target = insn.address + insn.length + insn.imm
        return enc.encode_call_rel32(target - (at_addr + 5))
    if flow is Flow.LOOP:
        # loopcc/jrcxz only exist with rel8; expand to the standard
        # branch-out pattern:  loopcc +2; jmp +5; jmp target
        target = insn.address + insn.length + insn.imm
        out = bytearray()
        out += bytes((insn.opcode, 0x02))  # taken -> out[4]
        out += enc.encode_jmp_rel8(5)  # not taken -> fall through at out[9]
        out += enc.encode_jmp_rel32(target - (at_addr + 9))
        return bytes(out)
    if insn.rip_relative:
        orig_target = insn.end + (insn.disp or 0)
        new_disp = orig_target - (at_addr + insn.length)
        if not -(1 << 31) <= new_disp < (1 << 31):
            raise PatchError(
                f"rip-relative operand of {insn.mnemonic} at {insn.address:#x} "
                f"unreachable from trampoline at {at_addr:#x}"
            )
        raw = bytearray(insn.raw)
        raw[insn.disp_offset : insn.disp_offset + 4] = (
            new_disp & 0xFFFFFFFF
        ).to_bytes(4, "little")
        return bytes(raw)
    return insn.raw


class Instrumentation:
    """Base class for trampoline instrumentation bodies.

    Bodies must be position-independent (or use ``movabs``) so that their
    size is known before the trampoline address is chosen.

    A body may additionally be *liveness-bound*
    (:meth:`bind_liveness`): per-site dead-register/dead-flag facts then
    let it drop provably unnecessary save/restore pairs.  Binding must
    happen before the first :meth:`size` query for a site — the planner
    memoizes sizes, and the emitted bytes must match the allocation.
    Unbound bodies keep their historical byte-exact encodings.
    """

    name = "base"

    #: Optional :class:`~repro.analysis.liveness.LivenessAnalysis`;
    #: ``None`` means every register and flag is assumed live.
    liveness: LivenessAnalysis | None = None

    def bind_liveness(self, liveness: LivenessAnalysis | None) -> None:
        self.liveness = liveness

    def site_liveness(self, insn: Instruction) -> SiteLiveness | None:
        """Live-in facts at *insn*, or None when no analysis is bound."""
        if self.liveness is None:
            return None
        return self.liveness.at(insn.address)

    def size(self, insn: Instruction) -> int:
        probe = enc.Assembler(base=0)
        self.emit(probe, insn)
        return len(probe.bytes())

    def saved_cost(self, insn: Instruction) -> tuple[int, int]:
        """(bytes, register save/restore pairs) trimmed at this site by
        the bound liveness, relative to the liveness-blind encoding."""
        if self.liveness is None:
            return (0, 0)
        liveness, self.liveness = self.liveness, None
        try:
            full_size = self.size(insn)
            full_regs = self._saved_reg_count(insn)
        finally:
            self.liveness = liveness
        return (full_size - self.size(insn),
                full_regs - self._saved_reg_count(insn))

    def _saved_reg_count(self, insn: Instruction) -> int:
        """Number of register save/restore pairs this body emits."""
        return 0

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        raise NotImplementedError


class Empty(Instrumentation):
    """The paper's "empty" instrumentation: displaced instruction only."""

    name = "empty"

    def size(self, insn: Instruction) -> int:
        return 0

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        return


class Counter(Instrumentation):
    """Increment a 64-bit counter in memory (basic-block-counting style).

    Respects the System V red zone and preserves flags and registers.
    With liveness bound, each of those protections is dropped where the
    analysis proves it unnecessary: a dead scratch register is used
    directly instead of saving ``%rax``; the ``pushfq``/``popfq`` pair
    is skipped when every flag ``incq`` clobbers is dead; and the
    red-zone ``lea`` pair goes away once nothing touches the stack.
    The fully slimmed body is ``movabs; incq`` — 13 bytes and 2 dynamic
    instructions versus the blind 30 bytes and 8.

    With ``pic=True`` the increment is a single ``incq disp32(%rip)``:
    the counter lives in the image's own runtime-data segment, so the
    trampoline-to-counter displacement is load-base-invariant — required
    for ET_DYN images (shared objects, PIE), whose ``movabs`` link-time
    address would be wrong at any nonzero base.  No scratch register is
    needed, so only the flags save remains to slim away.
    """

    name = "counter"

    def __init__(self, counter_vaddr: int, *, pic: bool = False) -> None:
        self.counter_vaddr = counter_vaddr
        self.pic = pic

    def _site_plan(self, insn: Instruction) -> tuple[int, bool, bool]:
        """(scratch reg, save that reg?, save flags?) for this site."""
        live = self.site_liveness(insn)
        if live is None:
            return (enc.RAX, True, True)
        for reg in _SCRATCH_REGS:
            if live.reg_is_dead(reg):
                return (reg, False, not live.flags_are_dead(_INC_FLAGS))
        return (enc.RAX, True, not live.flags_are_dead(_INC_FLAGS))

    def _saved_reg_count(self, insn: Instruction) -> int:
        if self.pic:
            return 0
        _, save_reg, _ = self._site_plan(insn)
        return 1 if save_reg else 0

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        if self.pic:
            live = self.site_liveness(insn)
            save_flags = (live is None
                          or not live.flags_are_dead(_INC_FLAGS))
            if save_flags:
                asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
                asm.pushfq()
            asm.inc_mem64_rip(self.counter_vaddr)
            if save_flags:
                asm.popfq()
                asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")
            return
        scratch, save_reg, save_flags = self._site_plan(insn)
        # Any push dips below %rsp, so the red-zone adjustment is needed
        # exactly when something is saved.
        red_zone = save_reg or save_flags
        if red_zone:
            asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
        if save_flags:
            asm.pushfq()
        if save_reg:
            asm.push(scratch)
        asm.mov_imm64(scratch, self.counter_vaddr)
        asm.inc_mem64(scratch)
        if save_reg:
            asm.pop(scratch)
        if save_flags:
            asm.popfq()
        if red_zone:
            asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # lea 0x80(%rsp), %rsp


class CallFunction(Instrumentation):
    """Call an absolute function, optionally passing the effective address
    of the displaced instruction's memory operand in ``%rdi`` (the shape
    used by the LowFat heap-write hardening of Section 6.3).

    *clobbers* narrows the saved register set when the callee's clobbers
    are known (E9Patch hand-optimizes its trampolines the same way); the
    default (``None``) saves every caller-saved register, while an
    explicit empty tuple means "the callee preserves everything" and
    saves only what the call sequence itself clobbers.  With liveness
    bound, registers and status flags that are dead at the patch site
    are additionally dropped from the saved set; the red-zone ``lea``
    pair is *always* kept, because ``call`` pushes a return address
    below ``%rsp`` regardless of what is live.
    """

    name = "call"

    def __init__(self, func_vaddr: int, pass_mem_operand: bool = False,
                 clobbers: tuple[int, ...] | None = None,
                 preserves_flags: bool = False) -> None:
        self.func_vaddr = func_vaddr
        self.pass_mem_operand = pass_mem_operand
        # None (unknown callee: save all scratch) and () (callee preserves
        # everything: save only the call sequence's own clobbers) must
        # stay distinguishable wherever this is threaded.
        self.clobbers = None if clobbers is None else tuple(clobbers)
        self.preserves_flags = preserves_flags

    @property
    def saved(self) -> tuple[int, ...]:
        """The liveness-blind saved set (site-independent)."""
        base = self.clobbers if self.clobbers is not None else _SCRATCH_REGS
        saved = tuple(base)
        if enc.R11 not in saved:
            saved += (enc.R11,)  # used for the call itself
        if self.pass_mem_operand and enc.RDI not in saved:
            saved += (enc.RDI,)  # argument register the body overwrites
        return saved

    def _site_plan(self, insn: Instruction) -> tuple[tuple[int, ...], bool]:
        """(registers to save, save flags?) for this site."""
        saved = self.saved
        save_flags = not self.preserves_flags
        live = self.site_liveness(insn)
        if live is None:
            return (saved, save_flags)
        # DF is deliberately ignored here: the SysV ABI requires callees
        # to preserve the cleared direction flag, so a compliant callee
        # never changes it and the status flags alone decide the save.
        if save_flags and live.flags_are_dead(STATUS_FLAGS):
            save_flags = False
        return (tuple(r for r in saved if not live.reg_is_dead(r)),
                save_flags)

    def _saved_reg_count(self, insn: Instruction) -> int:
        return len(self._site_plan(insn)[0])

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        saved, save_flags = self._site_plan(insn)
        asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
        if save_flags:
            asm.pushfq()
        for reg in saved:
            asm.push(reg)
        if self.pass_mem_operand:
            if insn.has_mem_operand and not insn.rip_relative:
                asm.lea_from_modrm(enc.RDI, insn)
            else:
                asm.mov_imm32(enc.RDI, 0)
        asm.mov_imm64(enc.R11, self.func_vaddr)
        asm.call_reg(enc.R11)
        for reg in reversed(saved):
            asm.pop(reg)
        if save_flags:
            asm.popfq()
        asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # lea 0x80(%rsp), %rsp


def trampoline_size(insn: Instruction, instr: Instrumentation) -> int:
    """Exact trampoline size for *insn* with *instr* (address-independent)."""
    size = instr.size(insn) + relocated_size(insn)
    if not _no_return(insn):
        size += JMP_BACK_SIZE
    return size


def _no_return(insn: Instruction) -> bool:
    """True if control never falls through the displaced instruction."""
    return insn.flow in (Flow.JMP, Flow.RET)


def build_trampoline(insn: Instruction, instr: Instrumentation,
                     tramp_addr: int, expected: int | None = None) -> bytes:
    """Emit the trampoline body for *insn* at *tramp_addr*.

    *expected* is the size the caller allocated (normally the memoized
    :func:`trampoline_size`); passing it skips re-probing the
    instrumentation body while still failing loudly if the encoding does
    not fit the allocation.
    """
    asm = enc.Assembler(base=tramp_addr)
    instr.emit(asm, insn)
    body = asm.bytes()
    out = bytearray(body)
    out += relocate(insn, tramp_addr + len(out))
    if not _no_return(insn):
        back = insn.end - (tramp_addr + len(out) + JMP_BACK_SIZE)
        if _inject_bug():
            # Test-only miscompile: land the jump-back 2 bytes past the
            # displaced instruction's end (mid-instruction), the classic
            # displacement-math bug the equivalence oracle must catch.
            back += 2
        out += enc.encode_jmp_rel32(back)
    if expected is None:
        expected = trampoline_size(insn, instr)
    if len(out) != expected:
        raise PatchError(
            f"trampoline size mismatch: {len(out)} != predicted {expected}"
        )
    return bytes(out)


@dataclass
class Trampoline:
    """An allocated, encoded trampoline."""

    vaddr: int
    code: bytes
    tag: str = ""

    @property
    def size(self) -> int:
        return len(self.code)

    @property
    def end(self) -> int:
        return self.vaddr + len(self.code)
