"""Trampoline templates and displaced-instruction relocation.

Every successful patch diverts control to a trampoline that (1) runs the
instrumentation body, (2) executes a *relocated* copy of the displaced
instruction, and (3) jumps back to the next original instruction.
Evictee trampolines (tactics T2/T3) are the degenerate case with an
empty body.

Relocation must preserve semantics at the new address:

* direct rel8/rel32 branches are re-encoded against their absolute target;
* ``loop``/``jrcxz`` (rel8-only encodings) are expanded into a
  branch-out trampoline pattern;
* rip-relative memory operands get their disp32 rebased;
* everything else is position-independent and copied verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PatchError
from repro.x86 import encoder as enc
from repro.x86.insn import Instruction
from repro.x86.tables import Flow

JMP_BACK_SIZE = 5


def _inject_bug() -> bool:
    """Test-only fault injection (``$REPRO_CHECK_INJECT_BUG``): when set,
    every trampoline's jump-back displacement is miscomputed.  Exists so
    the equivalence-check CI gate can prove it is able to fail; read
    dynamically so tests can toggle it per-case."""
    import os

    return bool(os.environ.get("REPRO_CHECK_INJECT_BUG"))

# Caller-saved registers preserved around a call-style instrumentation.
_SCRATCH_REGS = (enc.RAX, enc.RCX, enc.RDX, enc.RSI, enc.RDI,
                 enc.R8, enc.R9, enc.R10, enc.R11)
RED_ZONE = 128


def relocated_size(insn: Instruction) -> int:
    """Exact size of the relocated copy of *insn* (address-independent)."""
    if insn.flow == Flow.JMP:
        return 5
    if insn.flow == Flow.JCC:
        return 6
    if insn.flow == Flow.CALL and insn.is_direct_branch:
        return 5
    if insn.flow == Flow.LOOP:
        return 9
    return insn.length


def relocate(insn: Instruction, at_addr: int) -> bytes:
    """Encode *insn* so it behaves identically when placed at *at_addr*."""
    # insn.target is spelled out as address + length + imm here: the
    # property chain (target -> rel -> is_direct_branch) is measurable at
    # thousands of relocations per rewrite.
    flow = insn.flow
    if flow is Flow.JMP and insn.imm is not None:
        target = insn.address + insn.length + insn.imm
        return enc.encode_jmp_rel32(target - (at_addr + 5))
    if flow is Flow.JCC:
        target = insn.address + insn.length + insn.imm
        cc = insn.opcode & 0x0F
        return enc.encode_jcc_rel32(cc, target - (at_addr + 6))
    if flow is Flow.CALL and insn.imm is not None:
        target = insn.address + insn.length + insn.imm
        return enc.encode_call_rel32(target - (at_addr + 5))
    if flow is Flow.LOOP:
        # loopcc/jrcxz only exist with rel8; expand to the standard
        # branch-out pattern:  loopcc +2; jmp +5; jmp target
        target = insn.address + insn.length + insn.imm
        out = bytearray()
        out += bytes((insn.opcode, 0x02))  # taken -> out[4]
        out += enc.encode_jmp_rel8(5)  # not taken -> fall through at out[9]
        out += enc.encode_jmp_rel32(target - (at_addr + 9))
        return bytes(out)
    if insn.rip_relative:
        orig_target = insn.end + (insn.disp or 0)
        new_disp = orig_target - (at_addr + insn.length)
        if not -(1 << 31) <= new_disp < (1 << 31):
            raise PatchError(
                f"rip-relative operand of {insn.mnemonic} at {insn.address:#x} "
                f"unreachable from trampoline at {at_addr:#x}"
            )
        raw = bytearray(insn.raw)
        raw[insn.disp_offset : insn.disp_offset + 4] = (
            new_disp & 0xFFFFFFFF
        ).to_bytes(4, "little")
        return bytes(raw)
    return insn.raw


class Instrumentation:
    """Base class for trampoline instrumentation bodies.

    Bodies must be position-independent (or use ``movabs``) so that their
    size is known before the trampoline address is chosen.
    """

    name = "base"

    def size(self, insn: Instruction) -> int:
        probe = enc.Assembler(base=0)
        self.emit(probe, insn)
        return len(probe.bytes())

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        raise NotImplementedError


class Empty(Instrumentation):
    """The paper's "empty" instrumentation: displaced instruction only."""

    name = "empty"

    def size(self, insn: Instruction) -> int:
        return 0

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        return


class Counter(Instrumentation):
    """Increment a 64-bit counter in memory (basic-block-counting style).

    Respects the System V red zone and preserves flags and registers.
    """

    name = "counter"

    def __init__(self, counter_vaddr: int) -> None:
        self.counter_vaddr = counter_vaddr

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
        asm.pushfq()
        asm.push(enc.RAX)
        asm.mov_imm64(enc.RAX, self.counter_vaddr)
        asm.inc_mem64(enc.RAX)
        asm.pop(enc.RAX)
        asm.popfq()
        asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # lea 0x80(%rsp), %rsp


class CallFunction(Instrumentation):
    """Call an absolute function, optionally passing the effective address
    of the displaced instruction's memory operand in ``%rdi`` (the shape
    used by the LowFat heap-write hardening of Section 6.3).

    *clobbers* narrows the saved register set when the callee's clobbers
    are known (E9Patch hand-optimizes its trampolines the same way); the
    default saves every caller-saved register.
    """

    name = "call"

    def __init__(self, func_vaddr: int, pass_mem_operand: bool = False,
                 clobbers: tuple[int, ...] | None = None,
                 preserves_flags: bool = False) -> None:
        self.func_vaddr = func_vaddr
        self.pass_mem_operand = pass_mem_operand
        self.saved = tuple(clobbers) if clobbers is not None else _SCRATCH_REGS
        if enc.R11 not in self.saved:
            self.saved = self.saved + (enc.R11,)  # used for the call itself
        self.preserves_flags = preserves_flags

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
        if not self.preserves_flags:
            asm.pushfq()
        for reg in self.saved:
            asm.push(reg)
        if self.pass_mem_operand:
            if insn.has_mem_operand and not insn.rip_relative:
                asm.lea_from_modrm(enc.RDI, insn)
            else:
                asm.mov_imm32(enc.RDI, 0)
        asm.mov_imm64(enc.R11, self.func_vaddr)
        asm.call_reg(enc.R11)
        for reg in reversed(self.saved):
            asm.pop(reg)
        if not self.preserves_flags:
            asm.popfq()
        asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # lea 0x80(%rsp), %rsp


def trampoline_size(insn: Instruction, instr: Instrumentation) -> int:
    """Exact trampoline size for *insn* with *instr* (address-independent)."""
    size = instr.size(insn) + relocated_size(insn)
    if not _no_return(insn):
        size += JMP_BACK_SIZE
    return size


def _no_return(insn: Instruction) -> bool:
    """True if control never falls through the displaced instruction."""
    return insn.flow in (Flow.JMP, Flow.RET)


def build_trampoline(insn: Instruction, instr: Instrumentation,
                     tramp_addr: int, expected: int | None = None) -> bytes:
    """Emit the trampoline body for *insn* at *tramp_addr*.

    *expected* is the size the caller allocated (normally the memoized
    :func:`trampoline_size`); passing it skips re-probing the
    instrumentation body while still failing loudly if the encoding does
    not fit the allocation.
    """
    asm = enc.Assembler(base=tramp_addr)
    instr.emit(asm, insn)
    body = asm.bytes()
    out = bytearray(body)
    out += relocate(insn, tramp_addr + len(out))
    if not _no_return(insn):
        back = insn.end - (tramp_addr + len(out) + JMP_BACK_SIZE)
        if _inject_bug():
            # Test-only miscompile: land the jump-back 2 bytes past the
            # displaced instruction's end (mid-instruction), the classic
            # displacement-math bug the equivalence oracle must catch.
            back += 2
        out += enc.encode_jmp_rel32(back)
    if expected is None:
        expected = trampoline_size(insn, instr)
    if len(out) != expected:
        raise PatchError(
            f"trampoline size mismatch: {len(out)} != predicted {expected}"
        )
    return bytes(out)


@dataclass
class Trampoline:
    """An allocated, encoded trampoline."""

    vaddr: int
    code: bytes
    tag: str = ""

    @property
    def size(self) -> int:
        return len(self.code)

    @property
    def end(self) -> int:
        return self.vaddr + len(self.code)
