"""JSON trampoline templates (the shape of E9Patch's input API).

The real E9Patch takes *trampoline templates* from its frontend as
structured messages; this module implements the analogue: a declarative
template — a list of operations with ``{parameter}`` substitution — that
compiles into an :class:`Instrumentation` emitting real machine code.

Template format::

    {
      "name": "counter",
      "params": ["counter"],
      "body": [
        {"op": "save_flags"},
        {"op": "save", "reg": "rax"},
        {"op": "load_imm", "reg": "rax", "value": "{counter}"},
        {"op": "inc_mem", "base": "rax"},
        {"op": "restore", "reg": "rax"},
        {"op": "restore_flags"}
      ]
    }

Operations:

========================  ====================================================
``save`` / ``restore``    push/pop a register (``reg``)
``save_flags``            pushfq (the template adds the red-zone skip
                          automatically around the whole body)
``restore_flags``         popfq
``load_imm``              movabs ``value`` (int or ``{param}``) into ``reg``
``load_operand_addr``     lea of the displaced instruction's memory operand
                          into ``reg`` (fails for rip-relative operands)
``call``                  movabs ``target`` into r11 + call r11
``inc_mem``               incq (``base`` register [+ ``offset``])
``store_imm8``            mov byte [``base`` + ``offset``], ``value``
``raw``                   literal machine code (``hex`` string)
========================  ====================================================

The displaced instruction and the jump back to the original stream are
appended by the trampoline builder as always.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.x86 import encoder as enc
from repro.x86.insn import Instruction
from repro.core.trampoline import Instrumentation

REG_NAMES = {
    "rax": enc.RAX, "rcx": enc.RCX, "rdx": enc.RDX, "rbx": enc.RBX,
    "rsp": enc.RSP, "rbp": enc.RBP, "rsi": enc.RSI, "rdi": enc.RDI,
    "r8": enc.R8, "r9": enc.R9, "r10": enc.R10, "r11": enc.R11,
    "r12": enc.R12, "r13": enc.R13, "r14": enc.R14, "r15": enc.R15,
}

_OPS = frozenset({
    "save", "restore", "save_flags", "restore_flags", "load_imm",
    "load_operand_addr", "call", "inc_mem", "store_imm8", "raw",
})


class TemplateError(ReproError):
    """Malformed trampoline template or bad instantiation."""


@dataclass(frozen=True)
class TrampolineTemplate:
    """A parsed, validated template ready for instantiation."""

    name: str
    params: tuple[str, ...]
    body: tuple[dict[str, Any], ...]

    @classmethod
    def from_dict(cls, spec: dict[str, Any]) -> "TrampolineTemplate":
        if not isinstance(spec, dict):
            raise TemplateError("template must be a JSON object")
        name = spec.get("name")
        if not isinstance(name, str) or not name:
            raise TemplateError("template needs a non-empty 'name'")
        params = tuple(spec.get("params", ()))
        body = spec.get("body")
        if not isinstance(body, list):
            raise TemplateError("template 'body' must be a list of ops")
        for op in body:
            cls._validate_op(op)
        return cls(name=name, params=params, body=tuple(body))

    @classmethod
    def from_json(cls, text: str) -> "TrampolineTemplate":
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TemplateError(f"invalid JSON: {exc}") from exc
        return cls.from_dict(spec)

    @staticmethod
    def _validate_op(op: dict[str, Any]) -> None:
        if not isinstance(op, dict) or "op" not in op:
            raise TemplateError(f"malformed operation {op!r}")
        kind = op["op"]
        if kind not in _OPS:
            raise TemplateError(f"unknown operation {kind!r}")
        for key in ("reg", "base"):
            if key in op and op[key] not in REG_NAMES:
                raise TemplateError(f"unknown register {op[key]!r}")
        if kind in ("save", "restore", "load_imm", "load_operand_addr"):
            if "reg" not in op:
                raise TemplateError(f"{kind} requires 'reg'")
        if kind in ("inc_mem", "store_imm8") and "base" not in op:
            raise TemplateError(f"{kind} requires 'base'")
        if kind == "load_imm" and "value" not in op:
            raise TemplateError("load_imm requires 'value'")
        if kind == "call" and "target" not in op:
            raise TemplateError("call requires 'target'")
        if kind == "raw":
            try:
                bytes.fromhex(op.get("hex", ""))
            except ValueError as exc:
                raise TemplateError(f"bad hex in raw op: {exc}") from exc

    def instantiate(self, **arguments: int) -> "TemplateInstrumentation":
        """Bind ``{param}`` placeholders to concrete integer values."""
        missing = set(self.params) - set(arguments)
        if missing:
            raise TemplateError(f"missing arguments: {sorted(missing)}")
        extra = set(arguments) - set(self.params)
        if extra:
            raise TemplateError(f"unknown arguments: {sorted(extra)}")
        return TemplateInstrumentation(self, dict(arguments))


class TemplateInstrumentation(Instrumentation):
    """An instantiated template, usable anywhere an Instrumentation is."""

    def __init__(self, template: TrampolineTemplate,
                 arguments: dict[str, int]) -> None:
        self.template = template
        self.arguments = arguments
        self.name = template.name

    def _value(self, raw: Any) -> int:
        if isinstance(raw, int):
            return raw
        if isinstance(raw, str) and raw.startswith("{") and raw.endswith("}"):
            key = raw[1:-1]
            if key not in self.arguments:
                raise TemplateError(f"unbound parameter {key!r}")
            return self.arguments[key]
        if isinstance(raw, str):
            try:
                return int(raw, 0)
            except ValueError as exc:
                raise TemplateError(f"bad value {raw!r}") from exc
        raise TemplateError(f"bad value {raw!r}")

    def emit(self, asm: enc.Assembler, insn: Instruction) -> None:
        body = self.template.body
        if not body:
            return
        # Skip the red zone while the body may touch the stack.
        touches_stack = any(
            op["op"] in ("save", "restore", "save_flags", "restore_flags",
                         "call")
            for op in body
        )
        if touches_stack:
            asm.raw(b"\x48\x8d\x64\x24\x80")  # lea -0x80(%rsp), %rsp
        for op in body:
            self._emit_op(asm, insn, op)
        if touches_stack:
            asm.raw(b"\x48\x8d\xa4\x24\x80\x00\x00\x00")  # lea 0x80(%rsp),%rsp

    def _emit_op(self, asm: enc.Assembler, insn: Instruction,
                 op: dict[str, Any]) -> None:
        kind = op["op"]
        if kind == "save":
            asm.push(REG_NAMES[op["reg"]])
        elif kind == "restore":
            asm.pop(REG_NAMES[op["reg"]])
        elif kind == "save_flags":
            asm.pushfq()
        elif kind == "restore_flags":
            asm.popfq()
        elif kind == "load_imm":
            asm.mov_imm64(REG_NAMES[op["reg"]], self._value(op["value"]))
        elif kind == "load_operand_addr":
            reg = REG_NAMES[op["reg"]]
            if insn.has_mem_operand and not insn.rip_relative:
                asm.lea_from_modrm(reg, insn)
            else:
                asm.mov_imm32(reg, 0)
        elif kind == "call":
            asm.mov_imm64(enc.R11, self._value(op["target"]))
            asm.call_reg(enc.R11)
        elif kind == "inc_mem":
            asm.inc_mem64(REG_NAMES[op["base"]], op.get("offset", 0))
        elif kind == "store_imm8":
            base = REG_NAMES[op["base"]]
            offset = op.get("offset", 0)
            value = self._value(op.get("value", 0)) & 0xFF
            rex = 0x41 if base >= 8 else None
            if rex is not None:
                asm.buf.append(rex)
            if -128 <= offset <= 127 and (offset or (base & 7) == enc.RBP):
                asm.buf += bytes((0xC6, 0x40 | (base & 7), offset & 0xFF, value))
            elif offset == 0:
                if (base & 7) == enc.RSP:
                    asm.buf += bytes((0xC6, 0x04, 0x24, value))
                else:
                    asm.buf += bytes((0xC6, 0x00 | (base & 7), value))
            else:
                raise TemplateError("store_imm8 offset out of range")
        elif kind == "raw":
            asm.raw(bytes.fromhex(op.get("hex", "")))
        else:  # pragma: no cover - validated earlier
            raise TemplateError(f"unknown operation {kind!r}")


# Built-in templates mirroring the stock instrumentations.
BUILTIN_TEMPLATES: dict[str, TrampolineTemplate] = {
    "empty": TrampolineTemplate(name="empty", params=(), body=()),
    "counter": TrampolineTemplate.from_dict({
        "name": "counter",
        "params": ["counter"],
        "body": [
            {"op": "save_flags"},
            {"op": "save", "reg": "rax"},
            {"op": "load_imm", "reg": "rax", "value": "{counter}"},
            {"op": "inc_mem", "base": "rax"},
            {"op": "restore", "reg": "rax"},
            {"op": "restore_flags"},
        ],
    }),
    "call-with-addr": TrampolineTemplate.from_dict({
        "name": "call-with-addr",
        "params": ["func"],
        "body": [
            {"op": "save_flags"},
            {"op": "save", "reg": "rax"},
            {"op": "save", "reg": "rcx"},
            {"op": "save", "reg": "rdx"},
            {"op": "save", "reg": "rsi"},
            {"op": "save", "reg": "rdi"},
            {"op": "save", "reg": "r8"},
            {"op": "save", "reg": "r9"},
            {"op": "save", "reg": "r10"},
            {"op": "save", "reg": "r11"},
            {"op": "load_operand_addr", "reg": "rdi"},
            {"op": "call", "target": "{func}"},
            {"op": "restore", "reg": "r11"},
            {"op": "restore", "reg": "r10"},
            {"op": "restore", "reg": "r9"},
            {"op": "restore", "reg": "r8"},
            {"op": "restore", "reg": "rdi"},
            {"op": "restore", "reg": "rsi"},
            {"op": "restore", "reg": "rdx"},
            {"op": "restore", "reg": "rcx"},
            {"op": "restore", "reg": "rax"},
            {"op": "restore_flags"},
        ],
    }),
}


def load_template(source: str | dict[str, Any]) -> TrampolineTemplate:
    """Load a template from a JSON string, dict, or builtin name."""
    if isinstance(source, dict):
        return TrampolineTemplate.from_dict(source)
    if source in BUILTIN_TEMPLATES:
        return BUILTIN_TEMPLATES[source]
    return TrampolineTemplate.from_json(source)
