"""The rewritable code image: current bytes + lock state per exec range.

Tactics read *current* bytes (a T2 retry must see the successor's new
jump bytes) and write through lock checks.  The image records which
ranges were dirtied so the ELF writer can emit minimal in-place patches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LockViolation, PatchError
from repro.core.locks import LockMap


@dataclass
class CodeRange:
    """One contiguous executable range under rewriting."""

    base: int
    data: bytearray
    locks: LockMap

    @property
    def end(self) -> int:
        return self.base + len(self.data)


class CodeImage:
    """Mutable view of the executable portions of a binary."""

    def __init__(self) -> None:
        self.ranges: list[CodeRange] = []
        self.dirty: list[tuple[int, int]] = []  # (vaddr, length)
        #: Monotonic mutation counter: bumped by every byte or lock-state
        #: change.  Caches keyed on image contents (the plan pass's
        #: pun-window memo) compare against this to invalidate.
        self.version: int = 0
        # Single-entry range cache: patch loops hammer the same range.
        self._last_range: CodeRange | None = None

    @classmethod
    def from_ranges(cls, ranges: list[tuple[int, bytes]]) -> "CodeImage":
        img = cls()
        for base, data in ranges:
            img.add_range(base, data)
        return img

    def add_range(self, base: int, data: bytes) -> None:
        self.ranges.append(
            CodeRange(base=base, data=bytearray(data), locks=LockMap(base, len(data)))
        )
        self.ranges.sort(key=lambda r: r.base)

    def range_at(self, vaddr: int) -> CodeRange | None:
        r = self._last_range
        if r is not None and r.base <= vaddr < r.base + len(r.data):
            return r
        for r in self.ranges:
            if r.base <= vaddr < r.base + len(r.data):
                self._last_range = r
                return r
        return None

    def readable(self, vaddr: int, length: int) -> bool:
        r = self.range_at(vaddr)
        return r is not None and vaddr + length <= r.end

    def read(self, vaddr: int, length: int) -> bytes:
        """Current bytes at *vaddr* (reflecting prior patches)."""
        r = self.range_at(vaddr)
        if r is None or vaddr + length > r.end:
            raise PatchError(f"read outside code image at {vaddr:#x}")
        i = vaddr - r.base
        return bytes(r.data[i : i + length])

    def write(self, vaddr: int, data: bytes) -> None:
        """Overwrite bytes, enforcing and setting MODIFIED locks."""
        r = self.range_at(vaddr)
        if r is None or vaddr + len(data) > r.end:
            raise PatchError(f"write outside code image at {vaddr:#x}")
        if not r.locks.is_writable(vaddr, len(data)):
            raise LockViolation(f"write to locked bytes at {vaddr:#x}")
        r.locks.lock_modified(vaddr, len(data))
        i = vaddr - r.base
        r.data[i : i + len(data)] = data
        self.dirty.append((vaddr, len(data)))
        self.version += 1

    def write_unchecked(self, vaddr: int, data: bytes) -> None:
        """Overwrite bytes without lock bookkeeping (rollback support)."""
        r = self.range_at(vaddr)
        if r is None or vaddr + len(data) > r.end:
            raise PatchError(f"write outside code image at {vaddr:#x}")
        i = vaddr - r.base
        r.data[i : i + len(data)] = data
        self.version += 1

    def pun(self, vaddr: int, length: int) -> None:
        """Mark bytes as fixed rel32 cells (PUNNED)."""
        r = self.range_at(vaddr)
        if r is None or vaddr + length > r.end:
            raise PatchError(f"pun outside code image at {vaddr:#x}")
        r.locks.lock_punned(vaddr, length)
        self.version += 1

    def restore_locks(self, vaddr: int, states: bytes) -> None:
        """Restore a lock-state snapshot (transaction rollback).

        Goes through the image (rather than the raw :class:`LockMap`) so
        the mutation bumps :attr:`version` — lock state feeds pun-window
        enumeration, so rollbacks must invalidate those caches too.
        """
        self.locks_for(vaddr).restore(vaddr, states)
        self.version += 1

    def is_writable(self, vaddr: int, length: int) -> bool:
        r = self.range_at(vaddr)
        return r is not None and r.locks.is_writable(vaddr, length)

    def locks_for(self, vaddr: int) -> LockMap:
        r = self.range_at(vaddr)
        if r is None:
            raise PatchError(f"address {vaddr:#x} outside code image")
        return r.locks

    def dirty_patches(self) -> list[tuple[int, bytes]]:
        """Coalesced (vaddr, bytes) list of all modified regions."""
        if not self.dirty:
            return []
        spans = sorted(self.dirty)
        merged: list[list[int]] = []
        for lo, ln in spans:
            hi = lo + ln
            if merged and lo <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], hi)
            else:
                merged.append([lo, hi])
        return [(lo, self.read(lo, hi - lo)) for lo, hi in merged]
