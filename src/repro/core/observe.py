"""Pass-level observability: wall-time, counters, and trace hooks.

Every pipeline pass (see :mod:`repro.core.pipeline`) runs under an
:class:`Observer`, which accumulates

* **timings** — wall-clock seconds per pass (summed across repeat runs,
  e.g. one :class:`~repro.core.pipeline.PlanPass` per batch config);
* **counters** — named integer counters (``decode.instructions``,
  ``plan.tactic.B1``, ``emit.output_bytes``, ``alloc.probes``, ...);
* **trace hooks** — pluggable callables receiving ``(event, payload)``
  pairs as passes start and finish, for live progress output or custom
  profiling.

A single observer may be shared across many rewrites (the batch API does
exactly that), so counters are cumulative by design: the
``pass.<name>.runs`` counter is how the batch tests assert that decoding
happened exactly once for N configurations.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: A trace hook receives an event name (``"pass:start"`` / ``"pass:end"``
#: / anything a pass chooses to emit) and a payload dict.  Hooks must not
#: raise; they are observation only.
TraceHook = Callable[[str, dict], None]


@dataclass
class Observer:
    """Accumulates per-pass timings and counters; fans out trace events."""

    timings: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    hooks: list[TraceHook] = field(default_factory=list)

    def add_hook(self, hook: TraceHook) -> None:
        self.hooks.append(hook)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_counter(self, name: str, value: int) -> None:
        self.counters[name] = value

    def emit(self, event: str, **payload) -> None:
        for hook in self.hooks:
            hook(event, payload)

    @contextmanager
    def measure(self, name: str, **payload) -> Iterator[None]:
        """Time one pass run: emits ``pass:start``/``pass:end`` events,
        accumulates wall time under *name*, and bumps
        ``pass.<name>.runs``."""
        self.emit("pass:start", name=name, **payload)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.timings[name] = self.timings.get(name, 0.0) + dt
            self.count(f"pass.{name}.runs")
            self.emit("pass:end", name=name, seconds=dt, **payload)

    def runs(self, name: str) -> int:
        """How many times pass *name* has executed under this observer."""
        return self.counters.get(f"pass.{name}.runs", 0)

    # -- scoped views and cross-observer accumulation --------------------

    def snapshot(self) -> tuple[dict[str, float], dict[str, int]]:
        """Freeze the current timings/counters (see :meth:`since`)."""
        return dict(self.timings), dict(self.counters)

    def since(
        self, snapshot: tuple[dict[str, float], dict[str, int]]
    ) -> tuple[dict[str, float], dict[str, int]]:
        """Timings/counters accumulated *after* *snapshot* was taken.

        This is how the batch API reports per-configuration numbers from
        one shared observer: the observer stays cumulative (so
        ``runs("decode") == 1`` across a batch remains checkable), while
        each :class:`RewriteResult` carries only its own run's delta.
        """
        t0, c0 = snapshot
        timings = {k: v - t0.get(k, 0.0) for k, v in self.timings.items()
                   if v - t0.get(k, 0.0) > 0.0}
        counters = {k: v - c0.get(k, 0) for k, v in self.counters.items()
                    if v - c0.get(k, 0) != 0}
        return timings, counters

    def merge(self, timings: dict[str, float],
              counters: dict[str, int]) -> None:
        """Fold another observer's accumulations into this one (used to
        absorb worker-process observers after a parallel batch)."""
        for name, seconds in timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + seconds
        for name, n in counters.items():
            self.counters[name] = self.counters.get(name, 0) + n

    def throughput(self) -> dict[str, float | int]:
        """Derived hot-path rate metrics (see INTERNALS.md §7).

        * ``decode_mb_s`` — megabytes of instruction bytes decoded per
          second of DecodePass wall time;
        * ``plan_sites_s`` — patch sites planned per second of PlanPass
          wall time;
        * ``alloc_span_visits`` — free-list spans examined across all
          allocator gap searches (plan + emit); the indexed allocator's
          figure of merit — lower is better.

        Rates whose timing denominator is missing or zero are omitted,
        so the dict is safe to merge into JSON reports unconditionally.
        """
        return derive_throughput(self.timings, self.counters)

    def as_dict(self) -> dict:
        """JSON-ready snapshot (timings rounded to microseconds)."""
        return {
            "timings": {k: round(v, 6) for k, v in sorted(self.timings.items())},
            "counters": dict(sorted(self.counters.items())),
            "throughput": self.throughput(),
        }

    def format_timings(self) -> str:
        """Human-readable per-pass timing table (for the bench smoke job)."""
        if not self.timings:
            return "(no passes ran)"
        width = max(len(k) for k in self.timings)
        lines = [
            f"{name.ljust(width)}  {1e3 * seconds:9.3f} ms"
            f"  ({self.runs(name)} run{'s' if self.runs(name) != 1 else ''})"
            for name, seconds in sorted(
                self.timings.items(), key=lambda kv: -kv[1]
            )
        ]
        return "\n".join(lines)


def derive_throughput(
    timings: dict[str, float], counters: dict[str, int]
) -> dict[str, float | int]:
    """Compute the hot-path rate metrics from raw timings/counters.

    Works on any (timings, counters) pair — a live :class:`Observer`'s
    accumulations or a per-run delta from :meth:`Observer.since` — so
    per-configuration reports can derive their own rates.
    """
    out: dict[str, float | int] = {}
    decode_s = timings.get("decode", 0.0)
    decode_bytes = counters.get("decode.bytes", 0)
    if decode_s > 0.0 and decode_bytes:
        out["decode_mb_s"] = round(decode_bytes / decode_s / 1e6, 3)
    chunks = counters.get("decode.chunks", 0)
    if chunks > 1:
        # Chunked intra-binary decode ran: surface the fan-out shape and
        # how much boundary reconciliation it cost (scalar re-decode
        # steps across chunk seams until self-synchronization).
        out["decode_chunks"] = chunks
        out["decode_reconcile_retries"] = counters.get(
            "decode.reconcile_retries", 0)
    plan_s = timings.get("plan", 0.0)
    plan_sites = counters.get("plan.sites", 0)
    if plan_s > 0.0 and plan_sites:
        out["plan_sites_s"] = round(plan_sites / plan_s, 1)
    visits = (counters.get("plan.alloc_span_visits", 0)
              + counters.get("emit.alloc_span_visits", 0))
    if visits:
        out["alloc_span_visits"] = visits
    saved_bytes = counters.get("plan.trampoline_saved_bytes", 0)
    saved_regs = counters.get("plan.trampoline_saved_regs", 0)
    if saved_bytes or saved_regs:
        out["trampoline_saved_bytes"] = saved_bytes
        out["trampoline_saved_regs"] = saved_regs
    return out


def stderr_trace_hook(event: str, payload: dict) -> None:
    """The CLI ``--trace`` hook: one line per pass event on stderr."""
    if event == "pass:end":
        detail = f" {1e3 * payload['seconds']:.3f} ms"
    else:
        detail = ""
    extra = " ".join(
        f"{k}={v}" for k, v in payload.items() if k not in ("name", "seconds")
    )
    name = payload.get("name", "?")
    print(f"[trace] {event} {name}{detail}{' ' + extra if extra else ''}",
          file=sys.stderr)
