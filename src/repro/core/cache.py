"""Content-addressed on-disk artifact cache for the rewrite pipeline.

Rewriting the same binary twice should not decode it twice.  The cache
persists the expensive, deterministic intermediates of the pipeline —
decoded instruction streams, matcher results, and (optionally) whole
rewrite results — keyed by SHA-256 over everything that could change
them:

* the input bytes;
* a *toolchain fingerprint* — a digest of the decoder/frontend source
  modules plus a schema version, so editing the decoder (or bumping
  :data:`SCHEMA_VERSION`) invalidates every stale entry without any
  manual cache management;
* the frontend name, matcher spec, instrumentation spec, and the
  :class:`~repro.core.pipeline.RewriteOptions` in play, as applicable
  per artifact kind.

Entries live under ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``) as
``<kind>/<aa>/<key>.pkl`` files, written atomically (temp file +
rename).  Total size is capped (``max_bytes`` / ``$REPRO_CACHE_MAX_MB``)
with least-recently-used eviction — ``get`` refreshes an entry's mtime,
``put`` evicts the oldest entries until the cap holds.  A corrupted,
truncated, or unreadable entry is *never* fatal: it reads as a miss and
is deleted.  All traffic is tallied in :class:`CacheStats`.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
from dataclasses import dataclass, fields
from pathlib import Path

#: Bump to invalidate every existing cache entry (key layout changes,
#: pickled payload shape changes, ...).
SCHEMA_VERSION = 1

#: Environment overrides for the cache location and size cap.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Modules whose source feeds the toolchain fingerprint: anything that
#: changes what a decoded stream or a match result *means*.
_FINGERPRINT_MODULES = (
    "repro.x86.decoder",
    "repro.x86.tables",
    "repro.x86.prefixes",
    "repro.x86.insn",
    "repro.frontend.lineardisasm",
    "repro.frontend.matchers",
)

_fingerprint: str | None = None


def toolchain_fingerprint() -> str:
    """Digest of the decoder/frontend sources + schema version (cached)."""
    global _fingerprint
    if _fingerprint is None:
        h = hashlib.sha256()
        h.update(f"schema:{SCHEMA_VERSION}".encode())
        for name in _FINGERPRINT_MODULES:
            mod = importlib.import_module(name)
            path = getattr(mod, "__file__", None)
            h.update(name.encode())
            if path and os.path.exists(path):
                with open(path, "rb") as f:
                    h.update(f.read())
        _fingerprint = h.hexdigest()
    return _fingerprint


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Traffic counters for one :class:`ArtifactCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    errors: int = 0  # corrupted/unreadable entries discarded

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ArtifactCache:
    """Size-capped, content-addressed pickle store.

    The generic surface is ``get(kind, key)`` / ``put(kind, key, value)``
    plus the key builders (:meth:`decode_key`, :meth:`match_key`,
    :meth:`output_key`).  Failures to read or write are swallowed by
    design — a cache must only ever make runs faster, never break them.
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 max_bytes: int | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        if max_bytes is None:
            raw = os.environ.get(CACHE_MAX_MB_ENV, "").strip()
            try:
                max_bytes = int(raw) * 1024 * 1024 if raw else DEFAULT_MAX_BYTES
            except ValueError:
                max_bytes = DEFAULT_MAX_BYTES
        self.max_bytes = max_bytes
        self.stats = CacheStats()

    # -- key construction ------------------------------------------------

    @staticmethod
    def _digest(*parts: str) -> str:
        h = hashlib.sha256()
        for part in parts:
            h.update(part.encode())
            h.update(b"\x00")
        return h.hexdigest()

    def decode_key(self, data: bytes, frontend: str) -> str:
        """Key for a decoded instruction stream."""
        return self._digest(
            "decode", toolchain_fingerprint(), frontend,
            hashlib.sha256(data).hexdigest(),
        )

    def match_key(self, decode_key: str, matcher_spec: str) -> str:
        """Key for a matcher's site list over one decoded stream.

        Only *named* matchers are cacheable: an arbitrary callable has no
        stable identity across processes.
        """
        return self._digest("match", decode_key, matcher_spec)

    def output_key(self, decode_key: str, matcher_spec: str,
                   options, instrumentation_spec: str) -> str:
        """Key for a full rewrite result.  ``repr(options)`` is the
        options fingerprint — :class:`RewriteOptions` is a plain
        dataclass, so its repr deterministically covers every field."""
        return self._digest(
            "output", decode_key, matcher_spec,
            instrumentation_spec, repr(options),
        )

    # -- storage ---------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def get(self, kind: str, key: str) -> object | None:
        """The stored value, or None on miss *or any* read failure."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            # Corrupted or stale entry: discard it and report a miss.
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, kind: str, key: str, value: object) -> None:
        """Store *value* atomically; evict down to the size cap after."""
        path = self._path(kind, key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as f:
                pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except Exception:
            self.stats.errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stats.stores += 1
        self._evict()

    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for every entry file under the root."""
        out = []
        if not self.root.exists():
            return out
        for path in self.root.rglob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        return out

    def _evict(self) -> None:
        """Delete least-recently-used entries until under ``max_bytes``."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            try:
                path.unlink()
            except OSError:
                continue
            self.stats.evictions += 1
            total -= size
            if total <= self.max_bytes:
                break

    def size_bytes(self) -> int:
        """Current total size of every entry on disk."""
        return sum(size for _, size, _ in self._entries())
