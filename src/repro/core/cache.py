"""Content-addressed on-disk artifact store for the rewrite pipeline.

Rewriting the same binary twice should not decode it twice.  The store
persists the expensive, deterministic intermediates of the pipeline —
decoded instruction streams, matcher results, and (optionally) whole
rewrite results — keyed by SHA-256 over everything that could change
them:

* the input bytes;
* a *toolchain fingerprint* — a digest of the decoder/frontend source
  modules plus a schema version, so editing the decoder (or bumping
  :data:`SCHEMA_VERSION`) invalidates every stale entry without any
  manual cache management;
* the frontend name, matcher spec, instrumentation spec, and the
  :class:`~repro.core.pipeline.RewriteOptions` in play, as applicable
  per artifact kind.

Entries live under ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``) as
``<kind>/<aa>/<key>.pkl`` files, written atomically (temp file +
rename).  Total size is capped (``max_bytes`` / ``$REPRO_CACHE_MAX_MB``)
with least-recently-used eviction — ``get`` refreshes an entry's mtime,
``put`` evicts the oldest entries until the cap holds.  A corrupted,
truncated, or unreadable entry is *never* fatal: it reads as a miss and
is deleted.  All traffic is tallied in :class:`CacheStats`.

**Concurrency.**  One :class:`ArtifactStore` may be shared by many
threads (the service daemon does exactly that) and one on-disk root by
many processes:

* all configuration — root directory, size cap — is resolved *once*,
  at :class:`CacheConfig` construction; nothing on the get/put path
  reads ``os.environ`` or module globals;
* the toolchain fingerprint is per-instance state computed at most once
  under a lock (no ``global`` — two stores never share it implicitly);
* publishes are atomic (write-temp + ``os.replace``) and serialized per
  entry with an advisory ``flock`` so concurrent writers of the same
  key do not duplicate work — the losing writer records a ``dedups``
  tick instead of rewriting the entry;
* stats updates are guarded by a lock, and an optional
  :class:`~repro.core.observe.Observer` receives live ``cache.*``
  hit/miss/store/evict/latency counters for service metrics.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from pathlib import Path

try:  # advisory per-entry locking (POSIX; degrades to lock-free elsewhere)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Bump to invalidate every existing cache entry (key layout changes,
#: pickled payload shape changes, ...).
SCHEMA_VERSION = 1

#: Environment overrides for the store location and size cap, consulted
#: once at :class:`CacheConfig` construction.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Modules whose source feeds the toolchain fingerprint: anything that
#: changes what a decoded stream or a match result *means*.
_FINGERPRINT_MODULES = (
    "repro.x86.decoder",
    "repro.x86.tables",
    "repro.x86.prefixes",
    "repro.x86.insn",
    "repro.frontend.lineardisasm",
    "repro.frontend.matchers",
)


def compute_toolchain_fingerprint() -> str:
    """Digest of the decoder/frontend sources + schema version.

    Pure and deterministic — callers that need it repeatedly memoize it
    themselves (:meth:`ArtifactStore.fingerprint`); there is no module
    global to keep the hot path reentrant.
    """
    h = hashlib.sha256()
    h.update(f"schema:{SCHEMA_VERSION}".encode())
    for name in _FINGERPRINT_MODULES:
        mod = importlib.import_module(name)
        path = getattr(mod, "__file__", None)
        h.update(name.encode())
        if path and os.path.exists(path):
            with open(path, "rb") as f:
                h.update(f.read())
    return h.hexdigest()


#: Backwards-compatible name for the pure computation.
toolchain_fingerprint = compute_toolchain_fingerprint


@dataclass(frozen=True)
class CacheConfig:
    """Immutable store configuration, resolved once at construction.

    A long-lived service builds one ``CacheConfig`` at startup and
    every request shares it; changing ``$REPRO_CACHE_DIR`` afterwards
    cannot change behaviour mid-flight.
    """

    root: Path
    max_bytes: int = DEFAULT_MAX_BYTES

    @classmethod
    def from_env(
        cls,
        root: str | os.PathLike | None = None,
        max_bytes: int | None = None,
        environ: dict[str, str] | None = None,
    ) -> "CacheConfig":
        """Resolve the configuration: arguments > environment > defaults."""
        env = os.environ if environ is None else environ
        if root is None:
            raw = env.get(CACHE_DIR_ENV, "").strip()
            root = Path(raw) if raw else Path.home() / ".cache" / "repro"
        if max_bytes is None:
            raw = env.get(CACHE_MAX_MB_ENV, "").strip()
            try:
                max_bytes = int(raw) * 1024 * 1024 if raw else DEFAULT_MAX_BYTES
            except ValueError:
                max_bytes = DEFAULT_MAX_BYTES
        return cls(root=Path(root), max_bytes=max_bytes)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro`` (a config-time
    helper — the store itself never consults the environment)."""
    return CacheConfig.from_env().root


@dataclass
class CacheStats:
    """Traffic counters for one :class:`ArtifactStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    dedups: int = 0  # publishes skipped: another writer got there first
    evictions: int = 0
    errors: int = 0  # corrupted/unreadable entries discarded
    get_seconds: float = 0.0  # cumulative read latency
    put_seconds: float = 0.0  # cumulative publish latency

    def as_dict(self) -> dict[str, int | float]:
        return {
            f.name: (round(v, 6) if isinstance(v, float) else v)
            for f in fields(self)
            for v in (getattr(self, f.name),)
        }


class ArtifactStore:
    """Size-capped, content-addressed, concurrency-safe pickle store.

    The generic surface is ``get(kind, key)`` / ``put(kind, key, value)``
    plus the key builders (:meth:`decode_key`, :meth:`match_key`,
    :meth:`output_key`).  Failures to read or write are swallowed by
    design — a cache must only ever make runs faster, never break them.

    An optional *observer* receives every stat tick as live ``cache.*``
    counters (``cache.hits``, ``cache.misses``, ``cache.stores``,
    ``cache.evictions``, ``cache.errors``, ``cache.dedups``) plus
    latency microsecond counters (``cache.get_us``/``cache.put_us``),
    which is how the service daemon's ``/metrics`` endpoint surfaces
    store traffic.
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 max_bytes: int | None = None, *,
                 config: CacheConfig | None = None,
                 observer=None) -> None:
        if config is None:
            config = CacheConfig.from_env(root, max_bytes)
        self.config = config
        self.root = config.root
        self.max_bytes = config.max_bytes
        self.stats = CacheStats()
        self.observer = observer
        self._stats_lock = threading.Lock()
        self._evict_lock = threading.Lock()
        self._fingerprint: str | None = None
        self._fingerprint_lock = threading.Lock()

    # -- toolchain fingerprint (instance state, race-free) ----------------

    def fingerprint(self) -> str:
        """The toolchain fingerprint, computed at most once per store.

        Double-checked under a lock so N threads issuing their first
        request through a shared store trigger exactly one computation
        and all observe the same value.
        """
        fp = self._fingerprint
        if fp is None:
            with self._fingerprint_lock:
                if self._fingerprint is None:
                    self._fingerprint = compute_toolchain_fingerprint()
                fp = self._fingerprint
        return fp

    # -- stats ------------------------------------------------------------

    def _tally(self, **deltas: int | float) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)
            if self.observer is not None:
                for name, delta in deltas.items():
                    if name.endswith("_seconds"):
                        self.observer.count(
                            f"cache.{name[:-8]}_us", int(delta * 1e6))
                    else:
                        self.observer.count(f"cache.{name}", int(delta))

    # -- key construction ------------------------------------------------

    @staticmethod
    def _digest(*parts: str) -> str:
        h = hashlib.sha256()
        for part in parts:
            h.update(part.encode())
            h.update(b"\x00")
        return h.hexdigest()

    def decode_key(self, data: bytes, frontend: str) -> str:
        """Key for a decoded instruction stream."""
        return self._digest(
            "decode", self.fingerprint(), frontend,
            hashlib.sha256(data).hexdigest(),
        )

    def match_key(self, decode_key: str, matcher_spec: str) -> str:
        """Key for a matcher's site list over one decoded stream.

        Only *named* matchers are cacheable: an arbitrary callable has no
        stable identity across processes.
        """
        return self._digest("match", decode_key, matcher_spec)

    def output_key(self, decode_key: str, matcher_spec: str,
                   options, instrumentation_spec: str) -> str:
        """Key for a full rewrite result.  ``repr(options)`` is the
        options fingerprint — :class:`RewriteOptions` is a plain
        dataclass, so its repr deterministically covers every field."""
        return self._digest(
            "output", decode_key, matcher_spec,
            instrumentation_spec, repr(options),
        )

    # -- per-entry locking -------------------------------------------------

    @contextmanager
    def _entry_lock(self, path: Path):
        """Advisory exclusive lock serializing publishers of one entry.

        Lock files live beside the entries (``<key>.lck``) and are tiny;
        any failure to lock degrades to lock-free operation — the
        ``os.replace`` publish is atomic either way, the lock only
        prevents duplicate work.
        """
        if fcntl is None:
            yield
            return
        fd = -1
        try:
            fd = os.open(path.with_suffix(".lck"),
                         os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(fd, fcntl.LOCK_EX)
        except OSError:
            if fd >= 0:
                os.close(fd)
                fd = -1
        try:
            yield
        finally:
            if fd >= 0:
                os.close(fd)  # closing the fd releases the flock

    # -- storage ---------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def get(self, kind: str, key: str) -> object | None:
        """The stored value, or None on miss *or any* read failure."""
        t0 = time.perf_counter()
        path = self._path(kind, key)
        try:
            with open(path, "rb") as f:
                value = pickle.load(f)
        except FileNotFoundError:
            self._tally(misses=1, get_seconds=time.perf_counter() - t0)
            return None
        except Exception:
            # Corrupted or stale entry: discard it and report a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self._tally(errors=1, misses=1,
                        get_seconds=time.perf_counter() - t0)
            return None
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        self._tally(hits=1, get_seconds=time.perf_counter() - t0)
        return value

    def put(self, kind: str, key: str, value: object) -> None:
        """Store *value* atomically; evict down to the size cap after.

        Concurrent publishers of the same key are serialized by the
        per-entry lock; whoever arrives second finds the entry already
        published and skips the redundant pickle+rename (``dedups``).
        """
        t0 = time.perf_counter()
        path = self._path(kind, key)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with self._entry_lock(path):
                if path.exists():
                    self._tally(dedups=1,
                                put_seconds=time.perf_counter() - t0)
                    return
                with open(tmp, "wb") as f:
                    pickle.dump(value, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
        except Exception:
            self._tally(errors=1, put_seconds=time.perf_counter() - t0)
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self._tally(stores=1, put_seconds=time.perf_counter() - t0)
        self._evict()

    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for every entry file under the root."""
        out = []
        if not self.root.exists():
            return out
        for path in self.root.rglob("*.pkl"):
            try:
                st = path.stat()
            except OSError:
                continue
            out.append((st.st_mtime, st.st_size, path))
        return out

    def _evict(self) -> None:
        """Delete least-recently-used entries until under ``max_bytes``.

        One eviction scan at a time per store; entries vanishing under
        our feet (a concurrent evictor in another process) are skipped.
        """
        with self._evict_lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            if total <= self.max_bytes:
                return
            evicted = 0
            for _, size, path in sorted(entries):
                try:
                    path.unlink()
                except OSError:
                    continue
                evicted += 1
                total -= size
                if total <= self.max_bytes:
                    break
        if evicted:
            self._tally(evictions=evicted)

    def size_bytes(self) -> int:
        """Current total size of every entry on disk."""
        return sum(size for _, size, _ in self._entries())


#: Backwards-compatible alias: the PR-2 name for the store.
ArtifactCache = ArtifactStore
