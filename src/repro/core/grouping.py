"""Physical page grouping (paper Section 4).

Trampolines are scattered over virtual pages by pun constraints, so a
naive one-to-one physical mapping wastes enormous amounts of file/RAM
space.  Physical page grouping partitions virtual *blocks* (M consecutive
pages) into groups whose trampoline extents are disjoint relative to the
block base; each group is merged into a single physical block that is
mapped at every member's virtual address (one-to-many).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.intervals import IntervalSet
from repro.core.trampoline import Trampoline

PAGE_SIZE = 4096
# Linux default vm.max_map_count; the paper notes M>=64 keeps the number
# of mappings below this limit for a single binary.
DEFAULT_MAX_MAP_COUNT = 65536


@dataclass
class BlockOccupancy:
    """Trampoline bytes falling inside one virtual block."""

    index: int  # block number = vaddr // block_size
    extents: IntervalSet = field(default_factory=IntervalSet)  # block-relative
    pieces: list[tuple[int, bytes]] = field(default_factory=list)  # (rel_off, data)

    def occupied_bytes(self) -> int:
        return self.extents.total()


@dataclass
class Group:
    """A set of blocks with pairwise-disjoint occupancy, merged into one
    physical block."""

    members: list[BlockOccupancy] = field(default_factory=list)
    occupancy: IntervalSet = field(default_factory=IntervalSet)

    def can_admit(self, block: BlockOccupancy) -> bool:
        return not any(
            self.occupancy.overlaps(lo, hi) for lo, hi in block.extents
        )

    def admit(self, block: BlockOccupancy) -> None:
        self.members.append(block)
        for lo, hi in block.extents:
            self.occupancy.add(lo, hi)

    def merged_content(self, block_size: int) -> bytes:
        buf = bytearray(block_size)
        for block in self.members:
            for rel, data in block.pieces:
                buf[rel : rel + len(data)] = data
        return bytes(buf)


@dataclass
class GroupingResult:
    """Outcome of the partitioning, with the paper's space metrics."""

    block_pages: int
    blocks: list[BlockOccupancy]
    groups: list[Group]

    @property
    def block_size(self) -> int:
        return self.block_pages * PAGE_SIZE

    @property
    def naive_physical_bytes(self) -> int:
        """File/RAM bytes under a one-to-one physical mapping."""
        return len(self.blocks) * self.block_size

    @property
    def grouped_physical_bytes(self) -> int:
        return len(self.groups) * self.block_size

    @property
    def mapping_count(self) -> int:
        """One mmap per member block (the one-to-many fan-out)."""
        return len(self.blocks)

    @property
    def savings_ratio(self) -> float:
        naive = self.naive_physical_bytes
        return 1.0 - self.grouped_physical_bytes / naive if naive else 0.0

    def mappings(self) -> list[tuple[int, int]]:
        """(virtual block base, group index) pairs, one per mapping."""
        group_of = {}
        for gi, grp in enumerate(self.groups):
            for block in grp.members:
                group_of[block.index] = gi
        return [
            (b.index * self.block_size, group_of[b.index]) for b in self.blocks
        ]


def split_into_blocks(
    trampolines: list[Trampoline], block_pages: int
) -> list[BlockOccupancy]:
    """Slice trampoline extents at block boundaries.

    Trampolines spanning a boundary become two "mini-trampolines" in two
    blocks, as described in the paper.
    """
    block_size = block_pages * PAGE_SIZE
    blocks: dict[int, BlockOccupancy] = {}
    for tramp in trampolines:
        vaddr, data = tramp.vaddr, tramp.code
        while data:
            # Use floor division (not %) so negative PIE link addresses
            # slice consistently.
            index = vaddr // block_size
            rel = vaddr - index * block_size
            take = min(len(data), block_size - rel)
            block = blocks.setdefault(index, BlockOccupancy(index=index))
            block.extents.add(rel, rel + take)
            block.pieces.append((rel, data[:take]))
            vaddr += take
            data = data[take:]
    return [blocks[i] for i in sorted(blocks)]


def group_blocks(
    blocks: list[BlockOccupancy], block_pages: int = 1
) -> GroupingResult:
    """Greedy first-fit partition (the paper's "simple greedy algorithm").

    Blocks are visited densest-first so heavy blocks seed groups and light
    blocks fill their holes.
    """
    groups: list[Group] = []
    for block in sorted(blocks, key=lambda b: -b.occupied_bytes()):
        for grp in groups:
            if grp.can_admit(block):
                grp.admit(block)
                break
        else:
            grp = Group()
            grp.admit(block)
            groups.append(grp)
    return GroupingResult(block_pages=block_pages, blocks=list(blocks), groups=groups)


def group_trampolines(
    trampolines: list[Trampoline], block_pages: int = 1, *, enabled: bool = True
) -> GroupingResult:
    """End-to-end: slice into blocks then partition.

    With ``enabled=False`` every block is its own group (the naive
    one-to-one mapping used for the paper's ablation).
    """
    blocks = split_into_blocks(trampolines, block_pages)
    if enabled:
        return group_blocks(blocks, block_pages)
    groups = []
    for block in blocks:
        grp = Group()
        grp.admit(block)
        groups.append(grp)
    return GroupingResult(block_pages=block_pages, blocks=blocks, groups=groups)
