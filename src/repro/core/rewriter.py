"""The E9Patch front door: orchestrates planning, grouping and emission.

:class:`Rewriter` ties the pieces together:

1. parse the ELF, build the mutable code image over its executable
   ranges, and reserve the binary's own address space;
2. run strategy S1 over the requested patch sites (tactics B1..T3);
3. partition trampolines with physical page grouping;
4. emit the patched ELF, either with extra ``PT_LOAD`` headers
   (``phdr`` mode, one-to-one) or with an injected loader stub
   (``loader`` mode, supporting the one-to-many grouped mapping and
   negative PIE link-time offsets).

Like E9Patch itself, the rewriter does not disassemble: instruction
locations/sizes come from a frontend (see :mod:`repro.frontend`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PatchError
from repro.core.allocator import AddressSpace
from repro.core.binary import CodeImage
from repro.core.grouping import PAGE_SIZE, GroupingResult, group_trampolines
from repro.core.stats import PatchStats
from repro.core.strategy import PatchPlan, PatchRequest, TacticToggles, patch_all
from repro.core.tactics import Tactic, TacticContext
from repro.core.trampoline import Trampoline
from repro.elf import constants as elfc
from repro.elf.loader import Mapping, build_loader, loader_size_estimate
from repro.elf.reader import ElfFile
from repro.elf.writer import AppendedSegment, ElfRewriter
from repro.x86.insn import Instruction


@dataclass
class RewriteOptions:
    """Knobs for a rewrite run (defaults match the paper's main setup)."""

    mode: str = "auto"  # "phdr" | "loader" | "auto"
    grouping: bool = True  # physical page grouping on/off (ablation)
    granularity: int = 1  # M pages per block
    toggles: TacticToggles = field(default_factory=TacticToggles)
    guard_pages: int = 1  # guard between segments and trampolines
    # Treat the input as a shared object: positive link-time offsets only
    # (the dynamic linker loads other objects into the negative range).
    # Loader-mode .so rewriting hijacks DT_INIT instead of e_entry and
    # mmaps from library_path (``/proc/self/exe`` names the executable,
    # not the library), which must be where the patched file will be
    # installed.
    shared: bool = False
    library_path: str | None = None
    # Extra address ranges to treat as occupied (e.g. modelling the
    # unscaled image footprint of a synthesized stand-in binary).
    reserve_extra: tuple[tuple[int, int], ...] = ()
    # Ablation knob: pack trampolines into already-used pages.  Off by
    # default — see AddressSpace.pack_pages for why packing *loses* to
    # physical page grouping.
    pack_allocations: bool = False

    def resolve_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "loader" if self.grouping else "phdr"


@dataclass
class RewriteResult:
    """Everything produced by a rewrite."""

    data: bytes
    plan: PatchPlan
    grouping: GroupingResult | None
    stats: PatchStats
    input_size: int
    mode: str
    trampolines: list[Trampoline]
    b0_sites: list[int] = field(default_factory=list)

    @property
    def output_size(self) -> int:
        return len(self.data)

    @property
    def size_pct(self) -> float:
        """Output size as a percentage of input size (paper's Size%)."""
        return 100.0 * self.output_size / self.input_size


class Rewriter:
    """Static binary rewriter over one ELF executable or shared object."""

    def __init__(
        self,
        elf: ElfFile,
        instructions: list[Instruction],
        options: RewriteOptions | None = None,
    ) -> None:
        self.elf = elf
        self.instructions = instructions
        self.options = options or RewriteOptions()

        exec_ranges: list[tuple[int, bytes]] = []
        for seg in elf.load_segments():
            if seg.executable:
                data = elf.data[seg.phdr.offset : seg.phdr.offset + seg.phdr.filesz]
                exec_ranges.append((seg.phdr.vaddr, data))
        if not exec_ranges:
            raise PatchError("binary has no executable PT_LOAD segment")
        self.image = CodeImage.from_ranges(exec_ranges)

        block = self.options.granularity * PAGE_SIZE
        guard = max(self.options.guard_pages * PAGE_SIZE, block)
        self.space = AddressSpace.for_binary(
            [(p.vaddr, p.memsz) for p in elf.phdrs if p.type == elfc.PT_LOAD],
            pie=elf.is_pie,
            shared=self.options.shared,
            guard=guard,
        )
        self.space.pack_pages = self.options.pack_allocations
        for lo, hi in self.options.reserve_extra:
            self.space.reserve(lo, hi)
        self.ctx = TacticContext(
            image=self.image, space=self.space, instructions=instructions
        )
        self._runtime: list[Trampoline] = []
        self._data_segments: list[tuple[int, int]] = []

    # -- optional injected runtime code (e.g. a hardening check function) --

    def add_runtime_code(self, build, size: int, tag: str = "runtime") -> int:
        """Allocate *size* bytes of free space for injected runtime code.

        *build* is called with the chosen vaddr and must return exactly
        *size* bytes.  Returns the vaddr.  Must be called before
        :meth:`rewrite` so trampolines can reference the address.
        """
        lo, hi = self.space.lo_bound, self.space.hi_bound
        vaddr = self.space.allocate(lo, hi, size, tag)
        if vaddr is None:
            raise PatchError("no space for runtime code")
        code = build(vaddr)
        if len(code) != size:
            raise PatchError(f"runtime code size {len(code)} != reserved {size}")
        self._runtime.append(Trampoline(vaddr=vaddr, code=code, tag=tag))
        return vaddr

    def add_runtime_data(self, size: int) -> int:
        """Reserve a zero-initialized read-write region in the output
        binary (e.g. for instrumentation counters); returns its vaddr."""
        vaddr = self._allocate_exclusive(size)
        self._data_segments.append((vaddr, size))
        return vaddr

    # -- main entry points ---------------------------------------------------------

    def plan(self, requests: list[PatchRequest]) -> PatchPlan:
        return patch_all(self.ctx, requests, self.options.toggles)

    def rewrite(self, requests: list[PatchRequest]) -> RewriteResult:
        """Plan and emit in one step."""
        plan = self.plan(requests)
        return self.emit(plan)

    def emit(self, plan: PatchPlan) -> RewriteResult:
        mode = self.options.resolve_mode()
        trampolines = list(plan.trampolines) + self._runtime
        b0_sites = [p.site for p in plan.patches if p.tactic == Tactic.B0]

        rw = ElfRewriter(self.elf)
        for vaddr, data in self.image.dirty_patches():
            rw.patch_vaddr(vaddr, data)

        grouping: GroupingResult | None = None
        if trampolines:
            if mode == "phdr":
                grouping = self._emit_phdr(rw, trampolines)
            elif mode == "loader":
                grouping = self._emit_loader(rw, trampolines)
            else:
                raise PatchError(f"unknown emission mode {mode!r}")
        for vaddr, size in self._data_segments:
            rw.append_segment(
                AppendedSegment(vaddr=vaddr, data=b"", memsz=size,
                                flags=elfc.PF_R | elfc.PF_W)
            )

        if rw.segments or rw.blobs or rw.new_entry is not None:
            phdr_vaddr = self._allocate_exclusive(
                (rw.elf.ehdr.phnum + len(rw.segments) + 4) * elfc.PHDR_SIZE
            )
            self._emit_reservations(rw, phdr_vaddr)
            # Dynamic loaders require PT_LOAD entries in ascending vaddr
            # order, and a reservation segment must precede the real
            # segments that overlay it.
            rw.segments.sort(key=lambda seg: seg.vaddr)
            data = rw.finalize(phdr_vaddr=phdr_vaddr)
        else:
            data = rw.finalize(phdr_vaddr=0)
        stats = plan.stats
        return RewriteResult(
            data=data,
            plan=plan,
            grouping=grouping,
            stats=stats,
            input_size=len(self.elf.data),
            mode=mode,
            trampolines=trampolines,
            b0_sites=b0_sites,
        )

    # -- emission helpers -------------------------------------------------------

    def _emit_reservations(self, rw: ElfRewriter, phdr_vaddr: int) -> None:
        """Reserve the loader-mapped trampoline span with zero-fill
        PT_LOADs so the program loader owns it: the stub's MAP_FIXED
        mmaps then overlay pages *inside* the process's own reservation
        instead of clobbering whatever ASLR placed nearby.  Existing
        image ranges, real appended segments, and the relocated phdr
        table are carved out."""
        positive = getattr(self, "_pending_reservation", None)
        if not positive:
            return
        from repro.core.intervals import IntervalSet

        span = IntervalSet()
        span.add(min(m.vaddr for m in positive),
                 max(m.vaddr + m.size for m in positive))
        page = PAGE_SIZE

        def carve(lo: int, hi: int) -> None:
            span.remove(lo & ~(page - 1), -(-hi // page) * page)

        for p in self.elf.phdrs:
            if p.type == elfc.PT_LOAD:
                carve(p.vaddr, p.vaddr + p.memsz)
        for seg in rw.segments:
            carve(seg.vaddr, seg.vaddr + (seg.memsz or len(seg.data)))
        table_size = (self.elf.ehdr.phnum + len(rw.segments) + 4) * elfc.PHDR_SIZE
        carve(phdr_vaddr, phdr_vaddr + table_size)
        for res_lo, res_hi in span:
            rw.append_segment(
                AppendedSegment(vaddr=res_lo, data=b"",
                                memsz=res_hi - res_lo, flags=elfc.PF_R)
            )
        self._pending_reservation = []



    def _allocate_exclusive(self, size: int) -> int:
        """Allocate block-aligned whole blocks for metadata (loader stub,
        phdr table): non-negative (PT_LOAD-expressible), within rip-
        relative reach of the entry point, and never sharing a block with
        any trampoline (later loader mappings must not clobber it)."""
        block = self.options.granularity * PAGE_SIZE
        size = -(-size // block) * block
        entry = self.elf.entry
        margin = 1 << 20
        lo = max(self.space.lo_bound, 0, entry - (1 << 31) + margin)
        hi = min(self.space.hi_bound, entry + (1 << 31) - margin)
        vaddr = self.space.allocate(lo, hi, size, tag="meta", align=block)
        if vaddr is None:
            raise PatchError("no space for metadata segment")
        return vaddr

    def _emit_phdr(self, rw: ElfRewriter, trampolines: list[Trampoline]) -> GroupingResult:
        """Naive one-to-one emission: one PT_LOAD per trampoline block."""
        grouping = group_trampolines(trampolines, block_pages=1, enabled=False)
        if any(t.vaddr < 0 for t in trampolines):
            raise PatchError("phdr mode cannot express negative PIE offsets; use loader mode")
        for grp in grouping.groups:
            block = grp.members[0]
            base = block.index * grouping.block_size
            rw.append_segment(
                AppendedSegment(
                    vaddr=base,
                    data=grp.merged_content(grouping.block_size),
                    flags=elfc.PF_R | elfc.PF_X,
                )
            )
        if self.elf.ehdr.phnum + len(rw.segments) + 1 > 0xFFFF:
            raise PatchError("too many segments for phdr mode; use loader mode")
        return grouping

    def _emit_loader(self, rw: ElfRewriter, trampolines: list[Trampoline]) -> GroupingResult:
        """Grouped emission through the injected loader stub."""
        m = self.options.granularity
        grouping = group_trampolines(
            trampolines, block_pages=m, enabled=self.options.grouping
        )
        block_size = grouping.block_size

        group_offsets: list[int] = []
        for grp in grouping.groups:
            group_offsets.append(rw.append_blob(grp.merged_content(block_size)))

        mappings = [
            Mapping(vaddr=block_base, size=block_size, offset=group_offsets[gi])
            for block_base, gi in grouping.mappings()
        ]

        self._pending_reservation = [
            m for m in mappings if m.vaddr >= 0
        ]

        from repro.elf.dynamic import find_init_target

        if self.options.shared and find_init_target(self.elf) is not None:
            # A real shared object: no usable e_entry; hijack DT_INIT.
            from repro.elf.dynamic import retarget_init

            if self.options.library_path is None:
                raise PatchError(
                    "loader-mode shared-object rewriting needs "
                    "options.library_path (the library's install path)"
                )
            init_value_offset, original_init = retarget_init(self.elf, 0)
            path = self.options.library_path
            stub_size = loader_size_estimate(len(mappings), len(path) + 1)
            stub_vaddr = self._allocate_exclusive(stub_size)
            stub = build_loader(
                stub_vaddr, mappings, original_init,
                pie=True, self_path=path,
            )
            if len(stub) > stub_size:
                raise PatchError("loader stub exceeded its size estimate")
            rw.append_segment(
                AppendedSegment(vaddr=stub_vaddr, data=stub,
                                flags=elfc.PF_R | elfc.PF_X)
            )
            # Redirect DT_INIT to the stub (in place, like any patch).
            rw.patch_offset(
                init_value_offset,
                stub_vaddr.to_bytes(8, "little"),
            )
            return grouping

        stub_size = loader_size_estimate(len(mappings))
        stub_vaddr = self._allocate_exclusive(stub_size)
        stub = build_loader(
            stub_vaddr, mappings, self.elf.entry, pie=self.elf.is_pie
        )
        if len(stub) > stub_size:
            raise PatchError("loader stub exceeded its size estimate")
        rw.append_segment(
            AppendedSegment(vaddr=stub_vaddr, data=stub, flags=elfc.PF_R | elfc.PF_X)
        )
        rw.set_entry(stub_vaddr)
        return grouping
