"""The E9Patch front door: a facade over the staged rewrite pipeline.

:class:`Rewriter` keeps the original one-object API — construct with an
ELF and an instruction stream, optionally inject runtime code/data, then
``plan``/``emit``/``rewrite`` — but every stage now runs as an explicit
pass over a shared :class:`~repro.core.pipeline.RewriteContext`:

1. the context's workspace (mutable code image, address-space
   reservation, tactic context) is prepared at construction;
2. :class:`~repro.core.pipeline.PlanPass` runs strategy S1 over the
   requested patch sites (tactics B1..T3);
3. :class:`~repro.core.pipeline.GroupPass` partitions trampolines with
   physical page grouping;
4. :class:`~repro.core.pipeline.EmitPass` emits the patched ELF, either
   with extra ``PT_LOAD`` headers (``phdr`` mode, one-to-one) or with an
   injected loader stub (``loader`` mode, supporting the one-to-many
   grouped mapping and negative PIE link-time offsets);
5. optionally, :class:`~repro.core.pipeline.VerifyPass` re-decodes every
   patched site and checks its jump target
   (``RewriteOptions(verify=True)``).

Each pass reports wall-time and counters through the context's
:class:`~repro.core.observe.Observer`.  Like E9Patch itself, the
rewriter does not disassemble: instruction locations/sizes come from a
frontend (see :mod:`repro.frontend`).
"""

from __future__ import annotations

from repro.core.observe import Observer
from repro.core.pipeline import (
    EmitPass,
    EquivalencePass,
    GroupPass,
    PlanPass,
    RewriteContext,
    RewriteOptions,
    RewriteResult,
    VerifyPass,
    run_pipeline,
)
from repro.core.strategy import PatchPlan, PatchRequest
from repro.core.tactics import TacticContext
from repro.elf.reader import ElfFile
from repro.x86.insn import Instruction

__all__ = ["Rewriter", "RewriteOptions", "RewriteResult"]


class Rewriter:
    """Static binary rewriter over one ELF executable or shared object."""

    def __init__(
        self,
        elf: ElfFile,
        instructions: list[Instruction],
        options: RewriteOptions | None = None,
        observer: Observer | None = None,
    ) -> None:
        self.elf = elf
        self.instructions = instructions
        self.options = options or RewriteOptions()
        self.context = RewriteContext(
            elf=elf,
            options=self.options,
            observer=observer or Observer(),
            instructions=instructions,
        )
        self.context.prepare_workspace()

    # -- pipeline state exposed for tests and power users ----------------

    @property
    def image(self):
        return self.context.image

    @property
    def space(self):
        return self.context.space

    @property
    def ctx(self) -> TacticContext:
        return self.context.tactics

    @property
    def observer(self) -> Observer:
        return self.context.observer

    # -- optional injected runtime code (e.g. a hardening check function) --

    def add_runtime_code(self, build, size: int, tag: str = "runtime") -> int:
        """Allocate *size* bytes of free space for injected runtime code.

        *build* is called with the chosen vaddr and must return exactly
        *size* bytes.  Returns the vaddr.  Must be called before
        :meth:`rewrite` so trampolines can reference the address.
        """
        return self.context.add_runtime_code(build, size, tag)

    def add_runtime_data(self, size: int) -> int:
        """Reserve a zero-initialized read-write region in the output
        binary (e.g. for instrumentation counters); returns its vaddr."""
        return self.context.add_runtime_data(size)

    # -- main entry points ----------------------------------------------

    def plan(self, requests: list[PatchRequest]) -> PatchPlan:
        PlanPass(requests).run(self.context)
        return self.context.plan

    def rewrite(self, requests: list[PatchRequest]) -> RewriteResult:
        """Plan and emit in one step."""
        plan = self.plan(requests)
        return self.emit(plan)

    def emit(self, plan: PatchPlan) -> RewriteResult:
        self.context.plan = plan
        passes = [GroupPass(), EmitPass()]
        if self.options.lint:
            from repro.analysis.lint import LintPass

            passes.append(LintPass())
        if self.options.verify:
            passes.append(VerifyPass())
        if self.options.check:
            passes.append(EquivalencePass())
        run_pipeline(self.context, passes)
        return self.context.result()
