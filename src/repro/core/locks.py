"""Byte lock state for reverse-order patching (paper Section 3.4).

Every byte of the rewritable code region is in one of three states:

* ``UNLOCKED`` — may be modified or relied upon by future patches;
* ``MODIFIED`` — overwritten by a previous patch; immutable;
* ``PUNNED`` — retains its original value but is read as part of a punned
  jump's rel32; immutable (its *value* is load-bearing).

Writing requires ``UNLOCKED``.  Punning (treating a byte as a fixed rel32
cell) is allowed in any state — a MODIFIED or PUNNED byte can never change
again, so relying on its current value is always safe — and promotes
UNLOCKED bytes to PUNNED.
"""

from __future__ import annotations

from repro.errors import LockViolation

UNLOCKED = 0
MODIFIED = 1
PUNNED = 2

_NAMES = {UNLOCKED: "unlocked", MODIFIED: "modified", PUNNED: "punned"}


class LockMap:
    """Per-byte lock states over one contiguous code range."""

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size
        self._state = bytearray(size)

    def _index(self, vaddr: int) -> int:
        idx = vaddr - self.base
        if not 0 <= idx < self.size:
            raise LockViolation(f"address {vaddr:#x} outside lock map")
        return idx

    def state(self, vaddr: int) -> int:
        return self._state[self._index(vaddr)]

    def state_name(self, vaddr: int) -> str:
        return _NAMES[self.state(vaddr)]

    def in_range(self, vaddr: int, length: int = 1) -> bool:
        return (
            self.base <= vaddr
            and vaddr + length <= self.base + self.size
        )

    def is_writable(self, vaddr: int, length: int = 1) -> bool:
        """True if every byte of ``[vaddr, vaddr+length)`` is UNLOCKED."""
        if not self.in_range(vaddr, length):
            return False
        i = vaddr - self.base
        # UNLOCKED is 0, so "all unlocked" is a C-level truthiness scan.
        return not any(self._state[i : i + length])

    def lock_modified(self, vaddr: int, length: int = 1) -> None:
        """Mark bytes as overwritten; they must currently be UNLOCKED."""
        i = self._index(vaddr)
        if length:
            self._index(vaddr + length - 1)
        state = self._state
        if any(state[i : i + length]):
            for k in range(i, i + length):
                if state[k] != UNLOCKED:
                    raise LockViolation(
                        f"byte {self.base + k:#x} already "
                        f"{_NAMES[state[k]]}"
                    )
        state[i : i + length] = bytes((MODIFIED,)) * length
    def lock_punned(self, vaddr: int, length: int = 1) -> None:
        """Mark bytes as relied-upon (fixed rel32 cells).

        UNLOCKED bytes become PUNNED; MODIFIED/PUNNED bytes are left as-is
        (their values are already immutable).
        """
        if length <= 0:
            return
        i = self._index(vaddr)
        self._index(vaddr + length - 1)
        for k in range(i, i + length):
            if self._state[k] == UNLOCKED:
                self._state[k] = PUNNED

    def counts(self) -> dict[str, int]:
        """Summary {state name: #bytes} for reporting."""
        out = {name: 0 for name in _NAMES.values()}
        for s in self._state:
            out[_NAMES[s]] += 1
        return out

    def snapshot(self, vaddr: int, length: int) -> bytes:
        """Raw state bytes for ``[vaddr, vaddr+length)`` (for rollback)."""
        i = self._index(vaddr)
        return bytes(self._state[i : i + length])

    def restore(self, vaddr: int, states: bytes) -> None:
        """Restore a snapshot taken with :meth:`snapshot`."""
        i = self._index(vaddr)
        self._state[i : i + len(states)] = states
