"""Strategy S1: reverse-order patching (paper Section 3.4).

Sites are patched from highest to lowest address so that punning only
ever creates dependencies on bytes that have already reached their final
value.  Per site the tactics are tried cheapest-first:
B1/B2 -> T1 -> T2 -> T3 (-> optional B0 fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.stats import PatchStats
from repro.core.tactics import (
    SitePatch,
    Tactic,
    TacticContext,
    apply_int3,
    try_direct,
    try_neighbour_eviction,
    try_successor_eviction,
)
from repro.core.trampoline import Instrumentation
from repro.x86.insn import Instruction


@dataclass
class TacticToggles:
    """Enable/disable individual tactics (for the paper's ablations)."""

    t1: bool = True
    t2: bool = True
    t3: bool = True
    b0_fallback: bool = False


@dataclass
class PatchRequest:
    """One instruction to patch, with its instrumentation body."""

    insn: Instruction
    instrumentation: Instrumentation


@dataclass
class PatchPlan:
    """Output of a strategy run."""

    patches: list[SitePatch] = field(default_factory=list)
    failures: list[int] = field(default_factory=list)
    stats: PatchStats = field(default_factory=PatchStats)

    @property
    def trampolines(self):
        for patch in self.patches:
            yield from patch.trampolines


def patch_all(
    ctx: TacticContext,
    requests: list[PatchRequest],
    toggles: TacticToggles | None = None,
) -> PatchPlan:
    """Apply S1 reverse-order patching to all *requests*."""
    toggles = toggles or TacticToggles()
    plan = PatchPlan()

    for req in sorted(requests, key=lambda r: r.insn.address, reverse=True):
        result = _patch_one(ctx, req, toggles)
        plan.stats.record(result.tactic if result else None)
        if result is None:
            plan.failures.append(req.insn.address)
        else:
            plan.patches.append(result)
            for tramp in result.trampolines:
                plan.stats.trampoline_bytes += tramp.size
                plan.stats.trampoline_count += 1
    return plan


def _patch_one(
    ctx: TacticContext, req: PatchRequest, toggles: TacticToggles
) -> SitePatch | None:
    insn, instr = req.insn, req.instrumentation
    result = try_direct(ctx, insn, instr, allow_padding=toggles.t1)
    if result is None and toggles.t2:
        result = try_successor_eviction(ctx, insn, instr)
    if result is None and toggles.t3:
        result = try_neighbour_eviction(ctx, insn, instr)
    if result is None and toggles.b0_fallback:
        result = apply_int3(ctx, insn)
    return result
