"""Seeded synthetic x86-64 workload generator.

Produces runnable static ELF executables whose code has a controlled
density of patch sites (direct jumps for A1, heap writes for A2) and a
realistic instruction-length mix.  The program computes a data-dependent
checksum over its own loads/stores and writes it to stdout, so original
and patched runs can be compared *observably* (differential testing),
and the VM can count dynamically executed instructions (Time%).

Structure: ``_start`` loops ``loop_iters`` times over a set of generated
functions; each function stores/loads through ``%rbx`` (a heap-like
buffer), branches over small filler blocks, and accumulates into ``%rax``.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.elf import constants as elfc
from repro.elf.builder import TinyProgram
from repro.synth.profiles import BinaryProfile
from repro.x86 import encoder as enc

BUFFER_SIZE = 4096


@dataclass
class SynthesisParams:
    """Generator knobs (derived from a :class:`BinaryProfile` or set
    directly for custom workloads)."""

    n_jump_sites: int = 100
    n_write_sites: int = 100
    pie: bool = False
    shared: bool = False  # emit an ET_DYN shared object (implies pie)
    cet: bool = False  # IBT: endbr64 landing pads + .note.gnu.property
    bss_bytes: int = 0
    seed: int = 1
    short_jump_frac: float = 0.45  # fraction of jcc encoded rel8
    short_store_frac: float = 0.75  # fraction of stores < 5 bytes
    loop_iters: int = 0  # 0 = run each function once
    block_len: tuple[int, int] = (2, 6)  # filler run length between events
    # Override the store buffer's address (e.g. a low-fat payload pointer).
    # When set, an anonymous RW segment covering it is added to the image.
    buffer_addr: int | None = None

    def to_dict(self) -> dict:
        """JSON-ready form (campaign ``.repro.json`` replayability)."""
        d = asdict(self)
        d["block_len"] = list(self.block_len)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SynthesisParams":
        d = dict(d)
        d["block_len"] = tuple(d.get("block_len", (2, 6)))
        return cls(**d)

    @classmethod
    def from_profile(cls, profile: BinaryProfile, *,
                     loop_iters: int = 0) -> "SynthesisParams":
        # Calibrate the length mixes per category: PIE binaries in the
        # paper skew to very high Base%, which is a geometry effect the
        # allocator reproduces; the length fractions below come from the
        # published Base% of the non-PIE rows (short sites are the ones
        # the baseline can fail on).
        # Calibration: a short (2-byte) site succeeds at the baseline with
        # probability s (an emergent property of successor-byte sign bits;
        # measured s ~ 0.21 for branch successors, ~ 0.34 for store
        # successors in this generator's mix), so to hit a target Base%:
        #   frac_short = (100 - Base%) / (100 * (1 - s))
        return cls(
            n_jump_sites=profile.scaled_jump_locs,
            n_write_sites=profile.scaled_write_locs,
            pie=profile.pie,
            shared=profile.shared,
            cet=profile.cet,
            bss_bytes=int(profile.bss_mb * 1024 * 1024),
            seed=profile.seed,
            short_jump_frac=min(0.95, max(0.02, (100.0 - profile.a1.base_pct) / 79.0)),
            short_store_frac=min(0.95, max(0.02, (100.0 - profile.a2.base_pct) / 66.0)),
            loop_iters=loop_iters,
        )


@dataclass
class SyntheticBinary:
    """A generated workload: ELF image plus ground-truth site lists."""

    data: bytes
    jump_sites: list[int] = field(default_factory=list)
    write_sites: list[int] = field(default_factory=list)
    endbr_sites: list[int] = field(default_factory=list)  # CET landing pads
    text_vaddr: int = 0
    text_size: int = 0


class _Generator:
    """Stateful single-pass code emitter."""

    # Scratch registers the filler may clobber freely.
    SCRATCH = (enc.RAX, enc.RCX, enc.RDX, enc.RSI, enc.RDI,
               enc.R8, enc.R9, enc.R10, enc.R11)

    def __init__(self, params: SynthesisParams) -> None:
        self.p = params
        self.rng = random.Random(params.seed)
        self.prog = TinyProgram(pie=params.pie or params.shared,
                                shared=params.shared,
                                cet_note=params.cet)
        self.prog.bss_size = params.bss_bytes
        self.prog.add_data("buffer", bytes(BUFFER_SIZE))
        self.a = self.prog.text
        self.jump_sites: list[int] = []
        self.write_sites: list[int] = []
        self.endbr_sites: list[int] = []
        self._label = 0

    def fresh_label(self) -> str:
        self._label += 1
        return f"L{self._label}"

    # -- filler instructions -----------------------------------------------

    def emit_filler(self) -> None:
        """One random register-only instruction (VM-supported)."""
        a, rng = self.a, self.rng
        r1 = rng.choice(self.SCRATCH)
        r2 = rng.choice(self.SCRATCH)
        choice = rng.randrange(10)
        if choice == 0:
            a.mov_reg(r1, r2)  # 3 bytes
        elif choice == 1:
            a.add_imm(r1, rng.randrange(1, 127))  # 4 bytes
        elif choice == 2:
            a.mov_imm32(r1, rng.randrange(1 << 31))  # 5-6 bytes
        elif choice == 3:
            # xor r64, r64 (3 bytes)
            a.raw(bytes((0x48 | (r2 >= 8) << 2 | (r1 >= 8),
                         0x31, 0xC0 | ((r2 & 7) << 3) | (r1 & 7))))
        elif choice == 4:
            # add r64, r64
            a.raw(bytes((0x48 | (r2 >= 8) << 2 | (r1 >= 8),
                         0x01, 0xC0 | ((r2 & 7) << 3) | (r1 & 7))))
        elif choice == 5:
            # imul r64, r64 (4 bytes)
            a.raw(bytes((0x48 | (r1 >= 8) << 2 | (r2 >= 8),
                         0x0F, 0xAF, 0xC0 | ((r1 & 7) << 3) | (r2 & 7))))
        elif choice == 6:
            # shl r64, imm8 (4 bytes)
            a.raw(bytes((0x48 | (r1 >= 8), 0xC1, 0xE0 | (r1 & 7),
                         rng.randrange(1, 8))))
        elif choice == 7:
            a.sub_imm(r1, rng.randrange(1, 127))
        elif choice == 8:
            # load: mov r64, [rbx + disp8] (4 bytes)
            disp = rng.randrange(0, 128) & ~7
            a.raw(bytes((0x48 | (r1 >= 8) << 2, 0x8B,
                         0x43 | ((r1 & 7) << 3), disp)))
        else:
            # push/pop pair (1-byte instructions, limitation L2 material)
            a.push(r1)
            a.pop(r1)

    def emit_block(self) -> None:
        for _ in range(self.rng.randrange(*self.p.block_len)):
            self.emit_filler()

    # -- patch-site constructs ------------------------------------------------

    def emit_jump_site(self) -> None:
        """A conditional branch over a small filler block."""
        a, rng = self.a, self.rng
        r = rng.choice(self.SCRATCH)
        # Condition on data so both paths execute across iterations.
        a.raw(bytes((0x48 | (r >= 8), 0xF7, 0xC0 | (r & 7)))
              + (rng.choice((1, 2, 4, 8))).to_bytes(4, "little"))  # test r, imm
        skip = self.fresh_label()
        cc = rng.choice((0x4, 0x5, 0x8, 0x9))  # je/jne/js/jns
        self.jump_sites.append(a.here)
        if rng.random() < self.p.short_jump_frac:
            a.jcc_short(cc, skip)  # 2 bytes
        else:
            a.jcc(cc, skip)  # 6 bytes
        for _ in range(rng.randrange(1, 4)):
            self.emit_filler()
        a.label(skip)

    def emit_plain_jump(self) -> None:
        """An unconditional jmp over a filler block (also an A1 site)."""
        a, rng = self.a, self.rng
        skip = self.fresh_label()
        self.jump_sites.append(a.here)
        if rng.random() < self.p.short_jump_frac:
            a.jmp_short(skip)
        else:
            a.jmp(skip)
        for _ in range(rng.randrange(1, 3)):
            self.emit_filler()
        a.label(skip)

    def emit_write_site(self) -> None:
        """A store through %rbx (heap-like, A2-matched)."""
        a, rng = self.a, self.rng
        r = rng.choice(self.SCRATCH)
        disp = rng.randrange(0, BUFFER_SIZE // 2) & ~7
        self.write_sites.append(a.here)
        if rng.random() < self.p.short_store_frac:
            kind = rng.randrange(4)
            if kind == 0 and disp < 128:
                # mov [rbx+disp8], r64 (4 bytes)
                a.raw(bytes((0x48 | (r >= 8) << 2, 0x89,
                             0x43 | ((r & 7) << 3), disp)))
            elif kind == 1 and disp < 128:
                # mov [rbx+disp8], r32 (3 bytes)
                if r >= 8:
                    a.raw(bytes((0x44, 0x89, 0x43 | ((r & 7) << 3), disp)))
                else:
                    a.raw(bytes((0x89, 0x43 | (r << 3), disp)))
            elif kind == 2 and disp < 128:
                # mov [rbx+disp8], r8 (3 bytes)
                reg = r & 3  # al/cl/dl/bl to avoid REX
                a.raw(bytes((0x88, 0x43 | (reg << 3), disp)))
            else:
                # mov [rbx], r32 (2 bytes)
                a.raw(bytes((0x89, 0x03 | ((r & 7) << 3)))
                      if r < 8 else bytes((0x44, 0x89, 0x03 | ((r & 7) << 3))))
        else:
            kind = rng.randrange(3)
            if kind == 0:
                # mov [rbx+disp32], r64 (7 bytes)
                a.raw(bytes((0x48 | (r >= 8) << 2, 0x89,
                             0x83 | ((r & 7) << 3)))
                      + disp.to_bytes(4, "little"))
            elif kind == 1:
                # mov dword [rbx+disp8], imm32 (7 bytes)
                a.raw(bytes((0xC7, 0x43, disp & 0x7F))
                      + rng.randrange(1 << 31).to_bytes(4, "little"))
            else:
                # mov [rbx+disp32], r32 (6 bytes)
                a.raw((bytes((0x89, 0x83 | ((r & 7) << 3)))
                       if r < 8 else bytes((0x44, 0x89, 0x83 | ((r & 7) << 3))))
                      + disp.to_bytes(4, "little"))

    def emit_stack_write(self) -> None:
        """A store through %rsp — must NOT be matched by A2."""
        r = self.rng.choice(self.SCRATCH)
        disp = self.rng.randrange(-64, -8) & ~7 & 0xFF
        # mov [rsp+disp8], r64: REX 89 modrm(01,r,100) SIB(24) disp8
        self.a.raw(bytes((0x48 | (r >= 8) << 2, 0x89,
                          0x44 | ((r & 7) << 3), 0x24, disp)))

    # -- functions -----------------------------------------------------------

    def emit_endbr(self) -> None:
        """An ``endbr64`` landing pad (CET mode only)."""
        self.endbr_sites.append(self.a.here)
        self.a.raw(elfc.ENDBR64)

    def emit_function(self, name: str, n_jumps: int, n_writes: int) -> None:
        a, rng = self.a, self.rng
        a.label(name)
        if self.p.cet:
            self.emit_endbr()
        a.push(enc.RBX)
        self._load_buffer_ptr(enc.RBX)
        # Seed working registers from the argument (rdi) and the buffer.
        a.mov_reg(enc.RAX, enc.RDI)
        a.mov_reg(enc.RCX, enc.RDI)

        events = ["jump"] * n_jumps + ["write"] * n_writes
        rng.shuffle(events)
        for event in events:
            self.emit_block()
            if event == "jump":
                if rng.random() < 0.15:
                    self.emit_plain_jump()
                else:
                    self.emit_jump_site()
            else:
                self.emit_write_site()
                if rng.random() < 0.10:
                    self.emit_stack_write()
        self.emit_block()
        # Fold a few buffer words into the return value.
        a.raw(bytes((0x48, 0x03, 0x43, 0x00)))  # add rax, [rbx]
        a.raw(bytes((0x48, 0x03, 0x43, 0x20)))  # add rax, [rbx+0x20]
        a.pop(enc.RBX)
        a.ret()

    def _load_buffer_ptr(self, reg: int) -> None:
        """Point *reg* at the store buffer (data blob or override).

        The data segment's final address depends on the total text size,
        so the non-override paths go through a label resolved at build
        time.
        """
        if self.p.buffer_addr is not None:
            self.a.mov_imm64(reg, self.p.buffer_addr)
        elif self.p.pie or self.p.shared:
            self.a.lea_rip(reg, "buffer")
        else:
            self.a.mov_label64(reg, "buffer")

    def build(self) -> SyntheticBinary:
        a, p = self.a, self.p
        if p.buffer_addr is not None:
            lo = p.buffer_addr & ~0xFFF
            hi = (p.buffer_addr + BUFFER_SIZE + 0xFFF) & ~0xFFF
            self.prog.extra_segments.append((lo, hi - lo))
        # _start: call functions in a loop, then write the checksum.
        n_funcs = max(1, min(16, (p.n_jump_sites + p.n_write_sites) // 24))
        per_func_j = self._split(p.n_jump_sites, n_funcs)
        per_func_w = self._split(p.n_write_sites, n_funcs)

        # Under CET the image entry (e_entry or a library's DT_INIT) is
        # reached indirectly, so it must open with a landing pad.
        if p.cet:
            self.emit_endbr()
        a.jmp("main")
        for i in range(n_funcs):
            self.emit_function(f"f{i}", per_func_j[i], per_func_w[i])

        a.label("main")
        if p.cet:
            self.emit_endbr()
        iters = max(1, p.loop_iters)
        a.mov_imm32(enc.R15, iters)
        a.mov_imm32(enc.R14, 0)
        a.label("mainloop")
        for i in range(n_funcs):
            a.mov_reg(enc.RDI, enc.R15)
            a.call(f"f{i}")
            # r14 ^= rax
            a.raw(b"\x4c\x31\xf0")  # xor rax, r14
            a.mov_reg(enc.R14, enc.RAX)
        a.sub_imm(enc.R15, 1)
        a.jcc(0x5, "mainloop")  # jne

        # write(1, &checksum, 8): spill r14 into the buffer tail.
        self._load_buffer_ptr(enc.RSI)
        a.add_imm(enc.RSI, BUFFER_SIZE - 8)
        a.mov_store(enc.RSI, enc.R14, 0)
        a.mov_imm32(enc.RDI, 1)
        a.mov_imm32(enc.RDX, 8)
        a.mov_imm32(enc.RAX, elfc.SYS_WRITE)
        a.syscall()
        a.mov_imm32(enc.RDI, 0)
        a.mov_imm32(enc.RAX, elfc.SYS_EXIT)
        a.syscall()

        # Resolve the buffer label against the *final* data placement
        # (the data segment address depends on the total text size).
        a.labels["buffer"] = self.prog.data_vaddr("buffer") - a.base
        data = self.prog.build()
        return SyntheticBinary(
            data=data,
            jump_sites=self.jump_sites,
            write_sites=self.write_sites,
            endbr_sites=self.endbr_sites,
            text_vaddr=self.prog.text_vaddr,
            text_size=len(self.prog.text.buf),
        )

    def _split(self, total: int, parts: int) -> list[int]:
        base = total // parts
        out = [base] * parts
        for i in range(total - base * parts):
            out[i] += 1
        return out


def synthesize(params: SynthesisParams) -> SyntheticBinary:
    """Generate a workload binary from explicit parameters."""
    return _Generator(params).build()


def synthesize_profile(profile: BinaryProfile, *, loop_iters: int = 0) -> SyntheticBinary:
    """Generate the scaled stand-in for a Table 1 row."""
    return synthesize(SynthesisParams.from_profile(profile, loop_iters=loop_iters))


def build_large_text(profile) -> bytes:
    """Build a :class:`~repro.synth.profiles.LargeTextProfile` section.

    Generates ``n_units`` distinct units through the real generator
    (varying the seed and the short-site length mix so tiles differ in
    both bytes and instruction-length distribution), extracts each
    unit's ``.text``, then tiles them in a seeded shuffled order and
    trims to exactly ``target_bytes``.  Every unit is a whole number of
    instructions, so a linear sweep over the concatenation decodes each
    tile exactly as it decodes the unit in isolation; only the final
    trimmed tile may end mid-instruction (a deliberate truncation-tail
    case for the identity check).
    """
    from repro.elf.reader import ElfFile

    units: list[bytes] = []
    for i in range(profile.n_units):
        params = SynthesisParams(
            n_jump_sites=profile.unit_sites,
            n_write_sites=profile.unit_sites,
            seed=profile.base_seed + i,
            short_jump_frac=0.15 + 0.09 * i,
            short_store_frac=0.25 + 0.08 * i,
        )
        sb = synthesize(params)
        elf = ElfFile(sb.data)
        off = elf.vaddr_to_offset(sb.text_vaddr)
        units.append(elf.data[off : off + sb.text_size])

    rng = random.Random(profile.base_seed)
    parts: list[bytes] = []
    total = 0
    while total < profile.target_bytes:
        unit = units[rng.randrange(len(units))]
        parts.append(unit)
        total += len(unit)
    return b"".join(parts)[: profile.target_bytes]
