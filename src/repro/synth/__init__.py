"""Synthetic workload substrate.

SPEC2006, the system binaries, and the browsers from the paper's Table 1
are not available offline, so this package synthesizes ELF executables
with matching *shape*: per-benchmark code size, patch-location density,
instruction-length mix, and PIE-ness (profiles scaled down by a recorded
factor).  Coverage percentages are emergent properties of the address
space geometry, not hard-coded.
"""

from repro.synth.profiles import (
    BROWSER_PROFILES,
    SPEC_PROFILES,
    SYSTEM_PROFILES,
    ALL_PROFILES,
    BinaryProfile,
    profile_by_name,
)
from repro.synth.generator import (
    SynthesisParams,
    SyntheticBinary,
    synthesize,
    synthesize_profile,
)

__all__ = [
    "BinaryProfile",
    "SPEC_PROFILES",
    "SYSTEM_PROFILES",
    "BROWSER_PROFILES",
    "ALL_PROFILES",
    "profile_by_name",
    "SynthesisParams",
    "SyntheticBinary",
    "synthesize_profile",
    "synthesize",
]
