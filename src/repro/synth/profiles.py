"""Per-binary synthesis profiles, taken from the paper's Table 1.

Each profile records the published statistics (for paper-vs-measured
comparison in EXPERIMENTS.md) plus the parameters used to synthesize a
scaled stand-in binary.  ``SCALE`` divides the patch-location counts; the
coverage *percentages* are scale-free (they depend on instruction-length
mix and address-space geometry, which are preserved), a property the
ablation benchmark checks explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

# Patch-location scale factors for synthesized stand-ins (coverage
# percentages are scale-free; see the ablation benchmark).  Browsers get
# a larger divisor so the full-table harness stays laptop-fast.
SCALE = 64
BROWSER_SCALE = 512


@dataclass(frozen=True)
class PaperRow:
    """Published Table 1 numbers for one application (A1 or A2)."""

    locs: int
    base_pct: float
    t1_pct: float
    t2_pct: float
    t3_pct: float
    succ_pct: float
    time_pct: float | None  # None where the paper reports no timing
    size_pct: float


@dataclass(frozen=True)
class BinaryProfile:
    """Synthesis parameters + published reference numbers for one row."""

    name: str
    category: str  # "spec" | "system" | "browser"
    size_mb: float
    pie: bool
    a1: PaperRow  # jump instrumentation
    a2: PaperRow  # heap-write instrumentation
    bss_mb: float = 0.0  # large static allocations (limitation L1)
    shared: bool = False  # shared object: positive offsets only (Sec 5.1)
    cet: bool = False  # CET/IBT: endbr64 landing pads at function entries

    @property
    def image_pressure_mb(self) -> float:
        """Unscaled image footprint to reserve in the trampoline window.

        The synthesized stand-in is tiny, but the real binary's image
        occupies a slice of the +-2 GiB rel32 window (Chrome's 152 MB is
        ~7%% of it) and pushes trampolines around; reserving the real
        footprint reproduces that crowding."""
        return self.size_mb * 2.5  # text+data+relro of the real binary

    @property
    def scale(self) -> int:
        return BROWSER_SCALE if self.category == "browser" else SCALE

    @property
    def scaled_jump_locs(self) -> int:
        return max(8, self.a1.locs // self.scale)

    @property
    def scaled_write_locs(self) -> int:
        return max(8, self.a2.locs // self.scale)

    @property
    def seed(self) -> int:
        import zlib

        return zlib.crc32(self.name.encode())


def _p(locs, base, t1, t2, t3, succ, time, size) -> PaperRow:
    return PaperRow(locs, base, t1, t2, t3, succ, time, size)


# --- SPEC2006 (non-PIE, per the paper's compilation choice) -----------------

SPEC_PROFILES: list[BinaryProfile] = [
    BinaryProfile("perlbench", "spec", 1.25, False,
                  _p(36821, 86.88, 7.40, 1.45, 4.27, 100.00, 459.59, 174.28),
                  _p(7522, 71.16, 24.42, 1.18, 3.23, 100.00, 244.90, 116.66)),
    BinaryProfile("bzip2", "spec", 0.07, False,
                  _p(1484, 79.85, 13.61, 2.22, 4.31, 100.00, 280.85, 199.45),
                  _p(1044, 68.39, 26.05, 2.49, 3.07, 100.00, 279.67, 170.95)),
    BinaryProfile("gcc", "spec", 3.77, False,
                  _p(97901, 85.66, 8.29, 1.62, 4.43, 100.00, 364.41, 164.50),
                  _p(14328, 70.60, 24.95, 0.68, 3.78, 100.00, 148.73, 109.90)),
    BinaryProfile("bwaves", "spec", 0.08, False,
                  _p(314, 71.34, 2.87, 0.32, 25.48, 100.00, 107.08, 137.01),
                  _p(1168, 92.55, 7.36, 0.00, 0.09, 100.00, 139.02, 142.43)),
    BinaryProfile("gamess", "spec", 12.22, False,
                  _p(125620, 59.91, 15.01, 5.05, 19.76, 99.73, 226.16, 131.14),
                  _p(279592, 87.58, 9.65, 0.50, 2.20, 99.94, 321.89, 136.93),
                  bss_mb=768.0),
    BinaryProfile("mcf", "spec", 0.02, False,
                  _p(295, 68.47, 20.00, 4.41, 7.12, 100.00, 194.92, 203.75),
                  _p(220, 75.91, 20.00, 1.36, 2.73, 100.00, 141.02, 221.51)),
    BinaryProfile("milc", "spec", 0.14, False,
                  _p(1940, 80.62, 13.40, 1.29, 4.69, 100.00, 115.03, 157.13),
                  _p(699, 84.84, 13.16, 0.29, 1.72, 100.00, 117.54, 119.14)),
    BinaryProfile("zeusmp", "spec", 0.52, False,
                  _p(3191, 53.74, 11.66, 2.98, 30.30, 98.68, 145.34, 125.28),
                  _p(6106, 82.61, 12.15, 0.39, 4.67, 99.82, 131.50, 128.74),
                  bss_mb=640.0),
    BinaryProfile("gromacs", "spec", 1.20, False,
                  _p(12058, 80.19, 11.49, 1.38, 6.94, 100.00, 116.16, 133.01),
                  _p(16940, 93.87, 5.50, 0.11, 0.53, 100.00, 148.07, 123.71)),
    BinaryProfile("cactusADM", "spec", 0.91, False,
                  _p(12847, 78.94, 13.32, 2.30, 5.44, 100.00, 101.43, 140.70),
                  _p(5420, 86.85, 11.62, 0.41, 1.13, 100.00, 119.48, 113.45)),
    BinaryProfile("leslie3d", "spec", 0.18, False,
                  _p(2584, 44.43, 27.67, 12.46, 15.44, 100.00, 151.89, 174.56),
                  _p(2761, 91.34, 8.22, 0.04, 0.40, 100.00, 172.08, 138.47)),
    BinaryProfile("namd", "spec", 0.33, False,
                  _p(4879, 73.42, 13.88, 2.75, 9.96, 100.00, 146.78, 154.81),
                  _p(2498, 71.46, 28.14, 0.20, 0.20, 100.00, 138.01, 120.42)),
    BinaryProfile("gobmk", "spec", 4.03, False,
                  _p(17912, 75.88, 14.72, 2.57, 6.83, 100.00, 368.97, 113.80),
                  _p(2777, 79.33, 15.56, 0.94, 4.18, 100.00, 179.24, 102.30)),
    BinaryProfile("dealII", "spec", 4.20, False,
                  _p(61317, 71.31, 14.99, 4.50, 9.19, 100.00, 386.08, 144.34),
                  _p(25590, 80.47, 17.83, 0.17, 1.52, 99.99, 168.86, 112.27)),
    BinaryProfile("soplex", "spec", 0.49, False,
                  _p(10125, 79.72, 11.57, 2.58, 6.13, 100.00, 244.23, 162.93),
                  _p(4188, 83.05, 15.28, 0.53, 1.15, 100.00, 162.98, 121.64)),
    BinaryProfile("povray", "spec", 1.19, False,
                  _p(20520, 86.92, 7.39, 1.49, 4.20, 100.00, 408.33, 146.34),
                  _p(9377, 84.50, 13.46, 0.37, 1.66, 100.00, 186.36, 116.37)),
    BinaryProfile("calculix", "spec", 2.17, False,
                  _p(30343, 70.48, 17.75, 2.89, 8.88, 100.00, 132.78, 141.24),
                  _p(32197, 85.62, 13.02, 0.38, 0.98, 100.00, 126.13, 128.26)),
    BinaryProfile("hmmer", "spec", 0.33, False,
                  _p(6748, 77.71, 13.96, 1.99, 6.34, 100.00, 182.94, 174.52),
                  _p(3061, 75.11, 22.64, 0.65, 1.60, 100.00, 468.53, 129.85)),
    BinaryProfile("sjeng", "spec", 0.16, False,
                  _p(3473, 83.01, 10.14, 1.79, 5.07, 100.00, 444.13, 177.02),
                  _p(683, 84.77, 12.74, 0.15, 2.34, 100.00, 134.78, 123.32)),
    BinaryProfile("GemsFDTD", "spec", 0.58, False,
                  _p(9120, 41.62, 17.28, 21.44, 19.66, 100.00, 104.78, 166.74),
                  _p(10345, 93.23, 6.54, 0.04, 0.18, 100.00, 111.64, 132.30)),
    BinaryProfile("libquantum", "spec", 0.05, False,
                  _p(732, 75.55, 15.85, 3.42, 5.19, 100.00, 325.81, 190.57),
                  _p(186, 76.34, 17.74, 0.00, 5.91, 100.00, 269.68, 139.82)),
    BinaryProfile("h264ref", "spec", 0.58, False,
                  _p(9920, 80.30, 13.58, 1.22, 4.90, 100.00, 206.61, 151.60),
                  _p(4981, 81.87, 15.42, 0.80, 1.91, 100.00, 178.89, 122.04)),
    BinaryProfile("tonto", "spec", 6.21, False,
                  _p(48247, 52.65, 22.84, 8.63, 15.88, 100.00, 196.21, 125.54),
                  _p(164788, 90.05, 9.09, 0.15, 0.71, 100.00, 192.72, 141.53)),
    BinaryProfile("lbm", "spec", 0.02, False,
                  _p(106, 67.92, 17.92, 3.77, 10.38, 100.00, 103.80, 193.33),
                  _p(111, 93.69, 6.31, 0.00, 0.00, 100.00, 110.13, 148.74)),
    BinaryProfile("omnetpp", "spec", 0.79, False,
                  _p(9568, 78.08, 13.96, 2.16, 5.79, 100.00, 203.90, 135.45),
                  _p(5020, 74.12, 18.57, 3.01, 4.30, 100.00, 144.81, 117.53)),
    BinaryProfile("astar", "spec", 0.05, False,
                  _p(769, 78.54, 13.78, 2.21, 5.46, 100.00, 287.64, 180.98),
                  _p(491, 72.91, 23.01, 0.61, 3.46, 100.00, 137.64, 152.03)),
    BinaryProfile("sphinx3", "spec", 0.21, False,
                  _p(3500, 79.20, 12.17, 2.03, 6.60, 100.00, 196.27, 170.99),
                  _p(1159, 73.94, 22.95, 0.78, 2.33, 100.00, 129.17, 123.55)),
    BinaryProfile("xalancbmk", "spec", 5.99, False,
                  _p(81285, 75.66, 14.10, 3.50, 6.74, 100.00, 474.07, 137.04),
                  _p(32761, 79.51, 17.61, 0.43, 2.45, 100.00, 130.16, 111.38)),
]

# --- System binaries (Ubuntu 16.04 defaults in the paper) --------------------

SYSTEM_PROFILES: list[BinaryProfile] = [
    BinaryProfile("inkscape", "system", 15.44, True,
                  _p(195731, 97.83, 1.31, 0.86, 0.00, 100.00, None, 130.40),
                  _p(105431, 99.96, 0.03, 0.01, 0.00, 100.00, None, 109.58)),
    BinaryProfile("gimp", "system", 5.75, False,
                  _p(71321, 71.75, 18.69, 2.49, 7.08, 100.00, None, 135.74),
                  _p(15730, 84.83, 12.59, 0.64, 1.95, 100.00, None, 106.00)),
    BinaryProfile("vim", "system", 2.44, True,
                  _p(72221, 99.18, 0.23, 0.60, 0.00, 100.00, None, 173.31),
                  _p(13279, 99.92, 0.02, 0.06, 0.00, 100.00, None, 110.77)),
    BinaryProfile("git", "system", 1.87, False,
                  _p(44441, 80.06, 11.91, 2.14, 5.88, 100.00, None, 169.16),
                  _p(9072, 68.06, 27.62, 1.16, 3.16, 100.00, None, 113.60)),
    BinaryProfile("pdflatex", "system", 0.91, False,
                  _p(22105, 82.05, 10.46, 2.06, 5.42, 100.00, None, 168.72),
                  _p(6060, 70.61, 24.97, 1.25, 3.17, 100.00, None, 118.70)),
    BinaryProfile("xterm", "system", 0.54, False,
                  _p(11593, 79.12, 12.45, 3.04, 5.39, 100.00, None, 166.23),
                  _p(2681, 89.11, 9.40, 0.41, 1.08, 100.00, None, 113.16)),
    BinaryProfile("evince", "system", 0.42, True,
                  _p(3636, 99.59, 0.30, 0.11, 0.00, 100.00, None, 131.63),
                  _p(716, 99.86, 0.00, 0.14, 0.00, 100.00, None, 107.86)),
    BinaryProfile("make", "system", 0.21, False,
                  _p(4807, 79.34, 12.96, 1.71, 5.99, 100.00, None, 182.78),
                  _p(1383, 74.98, 20.46, 0.94, 3.62, 100.00, None, 125.48)),
    BinaryProfile("libc.so", "system", 1.87, True,
                  _p(52393, 81.19, 11.55, 2.23, 5.03, 100.00, None, 247.67),
                  _p(24686, 74.32, 21.98, 1.05, 2.64, 100.00, None, 203.87),
                  shared=True),
    BinaryProfile("libc++.so", "system", 1.57, True,
                  _p(20593, 75.14, 13.02, 4.60, 7.24, 100.00, None, 184.99),
                  _p(15442, 67.56, 27.76, 0.99, 3.68, 100.00, None, 168.80),
                  shared=True),
]

# --- Browsers (the paper's scalability showcases) ------------------------------

BROWSER_PROFILES: list[BinaryProfile] = [
    BinaryProfile("Chrome", "browser", 152.51, True,
                  _p(3800565, 93.20, 4.68, 1.87, 0.25, 100.00, None, 226.31),
                  _p(2624800, 99.38, 0.49, 0.11, 0.01, 100.00, None, 197.68)),
    BinaryProfile("FireFox", "browser", 0.52, True,
                  _p(13971, 98.02, 0.54, 1.44, 0.00, 100.00, None, 269.22),
                  _p(7355, 99.90, 0.10, 0.00, 0.00, 100.00, None, 208.06)),
    BinaryProfile("libxul.so", "browser", 115.03, True,
                  _p(1463369, 68.55, 15.08, 5.26, 11.10, 99.99, None, 194.55),
                  _p(666109, 75.72, 20.61, 0.62, 3.06, 100.00, None, 174.22),
                  shared=True),
]

ALL_PROFILES: list[BinaryProfile] = (
    SPEC_PROFILES + SYSTEM_PROFILES + BROWSER_PROFILES
)

# --- Conformance profiles (not Table 1 rows) ---------------------------------
# Synthetic ET_DYN shared objects for the dlopen/LD_PRELOAD conformance
# suite, the differential campaign, and the eval matrix's .so column.
# Their "paper" numbers are length-mix calibration targets, not
# published measurements, so they are deliberately NOT in ALL_PROFILES
# (which the Table 1 comparison iterates).

CONFORMANCE_PROFILES: list[BinaryProfile] = [
    BinaryProfile("libsynth.so", "shared", 0.10, True,
                  _p(2900, 79.00, 13.00, 2.40, 4.60, 100.00, None, 160.00),
                  _p(1400, 72.00, 22.00, 1.80, 3.00, 100.00, None, 120.00),
                  shared=True),
    BinaryProfile("libsynth-cet.so", "shared", 0.10, True,
                  _p(2900, 79.00, 13.00, 2.40, 4.60, 100.00, None, 160.00),
                  _p(1400, 72.00, 22.00, 1.80, 3.00, 100.00, None, 120.00),
                  shared=True, cet=True),
]


def profile_by_name(name: str) -> BinaryProfile:
    for profile in ALL_PROFILES + CONFORMANCE_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(name)


# --- Browser-scale code sections (decode-throughput benchmarking) ------------


@dataclass(frozen=True)
class LargeTextProfile:
    """A synthetic browser-scale *code section* (bytes, not a full ELF).

    The Table-1 stand-ins above scale patch-location counts *down* so
    the full-table harness stays fast; this profile goes the other way:
    it reproduces the raw code-section *size* of a browser binary
    (Chrome's .text is ~100 MB) so the decode hot path is measured at
    the scale the paper targets.  The section is built by tiling
    ``n_units`` distinct seeded generator outputs in a seeded shuffled
    order and trimming to exactly ``target_mb`` — deterministic for a
    given profile, byte-diverse across tiles, and (because each unit is
    a whole number of instructions) linear-decodable tile-locally, which
    keeps the full reference-identity walk in the large benchmark
    honest but debuggable.
    """

    name: str
    target_mb: int
    unit_sites: int = 2000  # jump+write sites per generated unit
    n_units: int = 8  # distinct seeded units tiled in shuffled order
    base_seed: int = 0x5CA1E

    @property
    def target_bytes(self) -> int:
        return self.target_mb << 20

    def build(self) -> bytes:
        """Materialize the section bytes (delegates to the generator)."""
        from repro.synth.generator import build_large_text

        return build_large_text(self)


LARGE_TEXT_PROFILES: dict[str, LargeTextProfile] = {
    p.name: p
    for p in (
        LargeTextProfile("bigtext-50", 50),
        LargeTextProfile("bigtext-100", 100),
    )
}
