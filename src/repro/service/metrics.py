"""Service-level metrics: request counters and latency quantiles.

One :class:`ServiceMetrics` instance lives on the daemon's event loop
and is only ever touched from loop-confined coroutines, so it needs no
locking.  Latencies are kept in a bounded reservoir (most recent
``window`` requests) from which p50/p95 are computed on demand — good
enough for a ``/metrics`` endpoint without a histogram dependency.
"""

from __future__ import annotations

import time
from collections import deque


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list; *q* is a
    fraction in ``[0, 1]`` (0.95 for p95, not 95)."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be a fraction in [0, 1]: {q}")
    rank = max(0, min(len(sorted_values) - 1,
                      round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class ServiceMetrics:
    """Counters + latency reservoir for one daemon process."""

    def __init__(self, window: int = 2048) -> None:
        self.started = time.monotonic()
        self.counters: dict[str, int] = {
            "requests_total": 0,   # every HTTP request, any endpoint
            "rewrites_total": 0,   # POST /rewrite accepted into the queue
            "ok": 0,               # 200 rewrites
            "rejected": 0,         # 429 queue-full rejections
            "draining": 0,         # 503 rejections during shutdown
            "timeouts": 0,         # 504 deadline misses
            "bad_requests": 0,     # 400 malformed payloads
            "rewrite_errors": 0,   # 422 PatchError-class failures
            "internal_errors": 0,  # 500s
        }
        self._latencies: deque[float] = deque(maxlen=window)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def latency_summary(self) -> dict[str, float | int]:
        values = sorted(self._latencies)
        if not values:
            return {"count": 0}
        return {
            "count": len(values),
            "mean_s": round(sum(values) / len(values), 6),
            "p50_s": round(percentile(values, 0.50), 6),
            "p95_s": round(percentile(values, 0.95), 6),
            "max_s": round(values[-1], 6),
        }

    def snapshot(self, **gauges) -> dict:
        """JSON-ready metrics payload; *gauges* are live values the
        server injects (queued, inflight, workers, queue_depth)."""
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "counters": dict(self.counters),
            "latency": self.latency_summary(),
            "gauges": dict(gauges),
        }
