"""Rewrite-as-a-service: a long-lived daemon over the reentrant engine.

The real E9Patch backend is itself a message-driven service — e9tool
streams patch messages into a long-running ``e9patch`` process.  This
package is the reproduction's serving layer: an asyncio HTTP daemon
(unix socket or TCP) that accepts rewrite requests, runs them on a
bounded worker pool over one shared
:class:`~repro.frontend.engine.RewriteEngine`, and degrades gracefully
under load (typed 429 backpressure) and shutdown (SIGTERM drains
in-flight work).

See ``docs/SERVICE.md`` for the API schema and deployment notes.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.server import RewriteService

__all__ = [
    "RewriteService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceMetrics",
]
