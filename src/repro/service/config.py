"""Service configuration: every knob resolved once, before serving.

Like :class:`~repro.core.cache.CacheConfig` and
:class:`~repro.core.parallel.ExecutorConfig`, a :class:`ServiceConfig`
is an immutable snapshot — :meth:`ServiceConfig.from_env` reads the
``REPRO_SERVICE_*`` environment variables exactly once at daemon
startup, and nothing on the request path consults the environment
afterwards.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.cache import CacheConfig
from repro.core.parallel import ExecutorConfig

#: Environment overrides, consulted once by :meth:`ServiceConfig.from_env`.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"
HOST_ENV = "REPRO_SERVICE_HOST"
PORT_ENV = "REPRO_SERVICE_PORT"
WORKERS_ENV = "REPRO_SERVICE_WORKERS"
QUEUE_ENV = "REPRO_SERVICE_QUEUE"
TIMEOUT_ENV = "REPRO_SERVICE_TIMEOUT"
DRAIN_TIMEOUT_ENV = "REPRO_SERVICE_DRAIN_TIMEOUT"
MAX_BODY_MB_ENV = "REPRO_SERVICE_MAX_BODY_MB"
#: Test hook: per-request artificial delay in milliseconds, applied in
#: the worker before the rewrite.  Lets the CI smoke test hold requests
#: in flight long enough to exercise backpressure and SIGTERM draining
#: deterministically.  Never set it in production.
TEST_DELAY_MS_ENV = "REPRO_SERVICE_TEST_DELAY_MS"

DEFAULT_PORT = 9321
DEFAULT_QUEUE_DEPTH = 64
DEFAULT_REQUEST_TIMEOUT = 120.0
DEFAULT_DRAIN_TIMEOUT = 30.0
DEFAULT_MAX_BODY_BYTES = 256 * 1024 * 1024


def _get(env: Mapping[str, str], name: str, cast, default):
    raw = env.get(name, "").strip()
    if not raw:
        return default
    try:
        return cast(raw)
    except ValueError:
        return default


@dataclass(frozen=True)
class ServiceConfig:
    """Immutable daemon configuration.

    ``socket_path`` selects a unix-domain socket; when ``None`` the
    daemon binds TCP ``host:port`` (``port=0`` asks the kernel for a
    free port — the bound address is reported by
    :attr:`~repro.service.server.RewriteService.address`).
    """

    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Concurrent rewrite workers.  ``0`` means "use the executor
    #: config's worker count" (i.e. ``$REPRO_JOBS`` resolved at startup).
    workers: int = 0
    #: Bounded request queue; a full queue answers 429 + Retry-After.
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    #: Per-request budget covering queue wait + execution (504 after).
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT
    #: How long SIGTERM waits for queued + in-flight work to finish.
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    frontend: str = "linear"
    cache: CacheConfig | None = None
    cache_outputs: bool = False
    executor: ExecutorConfig = field(default_factory=ExecutorConfig.from_env)
    #: Test-only artificial per-request delay (seconds); see
    #: :data:`TEST_DELAY_MS_ENV`.
    test_delay_s: float = 0.0

    @property
    def effective_workers(self) -> int:
        return self.workers if self.workers > 0 else max(1, self.executor.jobs)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None,
                 **overrides) -> "ServiceConfig":
        """Resolve defaults from ``REPRO_SERVICE_*`` once; *overrides*
        (constructor fields) win over the environment."""
        env = os.environ if environ is None else environ
        resolved = dict(
            socket_path=env.get(SOCKET_ENV, "").strip() or None,
            host=env.get(HOST_ENV, "").strip() or "127.0.0.1",
            port=_get(env, PORT_ENV, int, DEFAULT_PORT),
            workers=_get(env, WORKERS_ENV, int, 0),
            queue_depth=_get(env, QUEUE_ENV, int, DEFAULT_QUEUE_DEPTH),
            request_timeout=_get(env, TIMEOUT_ENV, float,
                                 DEFAULT_REQUEST_TIMEOUT),
            drain_timeout=_get(env, DRAIN_TIMEOUT_ENV, float,
                               DEFAULT_DRAIN_TIMEOUT),
            max_body_bytes=_get(env, MAX_BODY_MB_ENV, int,
                                DEFAULT_MAX_BODY_BYTES // (1024 * 1024))
            * 1024 * 1024,
            test_delay_s=_get(env, TEST_DELAY_MS_ENV, float, 0.0) / 1e3,
            executor=ExecutorConfig.from_env(environ=env),
        )
        resolved.update(overrides)
        return cls(**resolved)
