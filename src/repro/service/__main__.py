"""``python -m repro.service serve`` — module entry for the daemon."""

from repro.service.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
