"""A small blocking client for the rewrite daemon (stdlib only).

Speaks the daemon's JSON-over-HTTP API over either a unix-domain
socket or TCP, via :mod:`http.client`.  Used by the tests, the CI
smoke driver, and the service benchmark; it is also the reference for
what a third-party client needs to implement (see ``docs/SERVICE.md``).
"""

from __future__ import annotations

import base64
import http.client
import json
import socket
import time


class ServiceError(Exception):
    """A non-2xx response from the daemon, with its typed JSON body."""

    def __init__(self, status: int, body: dict,
                 headers: dict[str, str] | None = None) -> None:
        error = (body or {}).get("error", {})
        super().__init__(
            f"HTTP {status}: {error.get('type', 'error')} — "
            f"{error.get('message', '(no message)')}")
        self.status = status
        self.body = body or {}
        self.headers = headers or {}

    @property
    def kind(self) -> str:
        return self.body.get("error", {}).get("type", "error")

    @property
    def retry_after(self) -> float | None:
        raw = self.headers.get("retry-after")
        try:
            return float(raw) if raw is not None else None
        except ValueError:
            return None


class _UnixHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection over an ``AF_UNIX`` socket path."""

    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServiceClient:
    """One daemon endpoint; a fresh connection per request (the daemon
    answers ``Connection: close``), so one client is thread-safe."""

    def __init__(self, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 120.0) -> None:
        if socket_path is None and not port:
            raise ValueError("need a socket_path or a TCP port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return _UnixHTTPConnection(self.socket_path, self.timeout)
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def request(self, method: str, path: str,
                payload: dict | None = None) -> tuple[int, dict, dict]:
        """One round trip: ``(status, json_body, lowercase_headers)``."""
        conn = self._connection()
        try:
            body = json.dumps(payload).encode() if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else {}
            return (response.status, parsed,
                    {k.lower(): v for k, v in response.getheaders()})
        finally:
            conn.close()

    # -- endpoints --------------------------------------------------------

    def health(self) -> dict:
        status, body, _ = self.request("GET", "/healthz")
        body["_status"] = status
        return body

    def metrics(self) -> dict:
        status, body, headers = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, body, headers)
        return body

    def rewrite(self, data: bytes, *, matcher: str = "jumps",
                instrumentation: str | None = "empty",
                options: dict | None = None,
                frontend: str | None = None,
                return_output: bool = True,
                retries: int = 0) -> dict:
        """Submit one rewrite; raises :class:`ServiceError` on failure.

        ``retries`` > 0 retries *only* typed 429 overload rejections,
        honouring the daemon's ``Retry-After`` hint — the client-side
        half of the backpressure contract.
        """
        payload = {
            "binary": base64.b64encode(data).decode(),
            "matcher": matcher,
            "instrumentation": instrumentation,
            "options": options or {},
            "return_output": return_output,
        }
        if frontend is not None:
            payload["frontend"] = frontend
        attempts = 0
        while True:
            status, body, headers = self.request("POST", "/rewrite", payload)
            if status == 200:
                return body
            error = ServiceError(status, body, headers)
            if status == 429 and attempts < retries:
                attempts += 1
                time.sleep(min(error.retry_after or 0.2, 2.0))
                continue
            raise error

    def rewrite_bytes(self, data: bytes, **kwargs) -> bytes:
        """Convenience: submit a rewrite, return the patched binary."""
        body = self.rewrite(data, return_output=True, **kwargs)
        return base64.b64decode(body["output"])

    def wait_ready(self, timeout: float = 10.0,
                   interval: float = 0.05) -> bool:
        """Poll ``/healthz`` until the daemon answers (any status)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.health()
                return True
            except (OSError, http.client.HTTPException, json.JSONDecodeError):
                time.sleep(interval)
        return False
