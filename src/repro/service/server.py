"""The rewrite daemon: asyncio HTTP front end over the reentrant engine.

Architecture (one process, one event loop):

* **connections** — ``asyncio.start_unix_server`` / ``start_server``
  accepts clients speaking plain HTTP/1.1 (one request per connection,
  ``Connection: close``); no third-party HTTP stack is involved, the
  parser below handles the request line, headers, and a
  ``Content-Length`` body;
* **bounded queue** — an accepted ``POST /rewrite`` is validated and
  enqueued; a full queue is answered *immediately* with a typed
  ``429 {"error": {"type": "overloaded"}}`` plus ``Retry-After`` —
  backpressure is an API response, never a crash or an unbounded
  buffer;
* **worker pool** — N loop tasks pull jobs and run the CPU-bound
  rewrite in a thread pool via ``run_in_executor``; the engine
  (:class:`~repro.frontend.engine.RewriteEngine`) is shared and
  reentrant, so workers share only the artifact store;
* **deadlines** — each request carries ``enqueue time +
  request_timeout``; a job that exceeds its budget (queue wait
  included) answers ``504 {"error": {"type": "timeout"}}``;
* **graceful drain** — SIGTERM/SIGINT stop the listener, flip
  ``/healthz`` to ``draining`` (new rewrites get 503), wait up to
  ``drain_timeout`` for queued + in-flight requests to finish *and*
  their responses to be written, then exit.

Responses are JSON throughout; the rewrite payload mirrors the CLI's
``--json`` output (see ``docs/SERVICE.md`` for the schema).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.core.cache import ArtifactStore
from repro.errors import ReproError
from repro.frontend.engine import EngineConfig, RewriteEngine, options_from_dict
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Instrumentation specs accepted over the wire (callables are not).
_INSTRUMENTATIONS = (None, "empty", "counter")


class _BadRequest(Exception):
    """Malformed HTTP or request payload (mapped to 400/413)."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class _Job:
    """One queued rewrite: payload in, (status, body) out via future."""

    payload: dict
    future: asyncio.Future
    deadline: float


def _error_body(kind: str, message: str, **extra) -> dict:
    return {"ok": False, "error": {"type": kind, "message": message, **extra}}


class RewriteService:
    """A single daemon process serving many concurrent rewrites."""

    def __init__(self, config: ServiceConfig | None = None,
                 engine: RewriteEngine | None = None) -> None:
        self.config = config or ServiceConfig.from_env()
        self.engine = engine or RewriteEngine(EngineConfig(
            frontend=self.config.frontend,
            cache=self.config.cache,
            executor=self.config.executor,
            cache_outputs=self.config.cache_outputs,
        ))
        self.metrics = ServiceMetrics()
        self.address: str | tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_Job] | None = None
        self._pool: ThreadPoolExecutor | None = None
        self._stop: asyncio.Event | None = None
        self._draining = False
        self._inflight = 0
        self._conns: set[asyncio.Task] = set()
        self._workers: list[asyncio.Task] = []
        #: Set (thread-safely) once the listener is bound — test/bench
        #: harnesses running the daemon on a thread wait on it.
        import threading

        self.ready = threading.Event()

    # -- lifecycle --------------------------------------------------------

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe from any thread or signal."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(self._begin_shutdown)

    def _begin_shutdown(self) -> None:
        if self._stop is not None and not self._stop.is_set():
            self._log("shutdown requested: draining")
            self._draining = True
            self._stop.set()

    async def run(self) -> None:
        """Serve until shutdown is requested, then drain and return."""
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=cfg.queue_depth)
        self._stop = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=cfg.effective_workers,
            thread_name_prefix="rewrite-worker",
        )
        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self._begin_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread (tests) or unsupported platform

        if cfg.socket_path:
            server = await asyncio.start_unix_server(
                self._handle_connection, path=cfg.socket_path)
            self.address = cfg.socket_path
        else:
            server = await asyncio.start_server(
                self._handle_connection, cfg.host, cfg.port)
            sockname = server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        self._workers = [
            self._loop.create_task(self._worker())
            for _ in range(cfg.effective_workers)
        ]
        self._log(f"listening on {self.address} "
                  f"(workers={cfg.effective_workers}, "
                  f"queue={cfg.queue_depth})")
        self.ready.set()

        try:
            await self._stop.wait()
            await self._drain(server)
        finally:
            self.ready.clear()
            for task in self._workers:
                task.cancel()
            await asyncio.gather(*self._workers, return_exceptions=True)
            self._pool.shutdown(wait=False, cancel_futures=True)
            server.close()
            self._log("stopped")

    async def _drain(self, server: asyncio.AbstractServer) -> None:
        """Stop accepting, then finish queued + in-flight work."""
        cfg = self.config
        server.close()  # no new connections; accepted ones keep running
        deadline = time.monotonic() + cfg.drain_timeout
        try:
            await asyncio.wait_for(self._queue.join(),
                                   timeout=cfg.drain_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self._log(f"drain timeout: {self._queue.qsize()} request(s) "
                      "abandoned")
        # Queue processed — now let the connection handlers flush their
        # responses before tearing the loop down.
        pending = [t for t in self._conns if not t.done()]
        if pending:
            remaining = max(0.5, deadline - time.monotonic())
            await asyncio.wait(pending, timeout=remaining)
        self._log(f"drained ({self.metrics.counters['ok']} ok, "
                  f"{self.metrics.counters['rejected']} rejected)")

    def _log(self, message: str) -> None:
        print(f"[repro-serve] {message}", file=sys.stderr, flush=True)

    # -- worker pool ------------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            job = await self._queue.get()
            try:
                await self._run_job(job)
            except Exception as exc:  # never kill the worker loop
                if not job.future.done():
                    job.future.set_result((500, _error_body(
                        "internal", f"worker failure: {exc!r}")))
            finally:
                self._queue.task_done()

    async def _run_job(self, job: _Job) -> None:
        remaining = job.deadline - time.monotonic()
        if remaining <= 0:
            self.metrics.count("timeouts")
            job.future.set_result((504, _error_body(
                "timeout", "request timed out while queued")))
            return
        self._inflight += 1
        try:
            status, body = await asyncio.wait_for(
                self._loop.run_in_executor(self._pool, self._execute,
                                           job.payload),
                timeout=remaining,
            )
        except (asyncio.TimeoutError, TimeoutError):
            self.metrics.count("timeouts")
            status, body = 504, _error_body(
                "timeout",
                f"rewrite exceeded {self.config.request_timeout:.0f}s budget")
        finally:
            self._inflight -= 1
        if not job.future.done():
            job.future.set_result((status, body))

    def _execute(self, payload: dict) -> tuple[int, dict]:
        """Worker-thread body: decode the payload, run one rewrite.

        Domain failures come back as typed JSON errors, never
        exceptions — the HTTP status is decided here, next to the cause.
        """
        if self.config.test_delay_s > 0:
            time.sleep(self.config.test_delay_s)
        try:
            data = base64.b64decode(payload["binary"], validate=True)
        except (binascii.Error, ValueError) as exc:
            self.metrics.count("bad_requests")
            return 400, _error_body("bad_request", f"invalid base64: {exc}")
        try:
            options = options_from_dict(payload.get("options") or {})
        except (TypeError, ValueError) as exc:
            self.metrics.count("bad_requests")
            return 400, _error_body("bad_request", str(exc))
        try:
            report = self.engine.rewrite(
                data,
                matcher=payload.get("matcher", "jumps"),
                instrumentation=payload.get("instrumentation"),
                options=options,
                frontend=payload.get("frontend"),
            )
        except ReproError as exc:
            self.metrics.count("rewrite_errors")
            return 422, _error_body("rewrite_failed", str(exc))
        except Exception as exc:
            self.metrics.count("internal_errors")
            return 500, _error_body("internal", f"{type(exc).__name__}: {exc}")
        body = {"ok": True, "report": report.to_dict()}
        if payload.get("return_output", True):
            body["output"] = base64.b64encode(report.result.data).decode()
        self.metrics.count("ok")
        return 200, body

    # -- HTTP front end ---------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            if task is not None:
                self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        try:
            method, path, body = await self._read_request(reader)
        except _BadRequest as exc:
            self._write_response(writer, exc.status,
                                 _error_body("bad_request", str(exc)))
            return
        self.metrics.count("requests_total")
        status, payload, headers = await self._dispatch(method, path, body)
        self._write_response(writer, status, payload, headers)
        await writer.drain()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        line = await reader.readline()
        if not line:
            raise _BadRequest("empty request")
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            raise _BadRequest(f"malformed request line {line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _BadRequest("invalid Content-Length") from None
        if length > self.config.max_body_bytes:
            raise _BadRequest(
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit", status=413)
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: dict,
                        headers: list[tuple[str, str]] | None = None) -> None:
        data = json.dumps(body).encode()
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        for name, value in headers or ():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + data)

    # -- endpoints --------------------------------------------------------

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, list[tuple[str, str]] | None]:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return 200 if not self._draining else 503, self._health(), None
        if path == "/metrics" and method == "GET":
            return 200, self._metrics_payload(), None
        if path == "/rewrite":
            if method != "POST":
                return 405, _error_body("method_not_allowed",
                                        "use POST /rewrite"), None
            return await self._rewrite_endpoint(body)
        return 404, _error_body("not_found", f"no route for {path}"), None

    def _health(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "queued": self._queue.qsize() if self._queue else 0,
            "inflight": self._inflight,
            "workers": self.config.effective_workers,
            "queue_depth": self.config.queue_depth,
        }

    def _metrics_payload(self) -> dict:
        store: ArtifactStore | None = self.engine.store
        return {
            "service": self.metrics.snapshot(
                queued=self._queue.qsize() if self._queue else 0,
                inflight=self._inflight,
                workers=self.config.effective_workers,
                queue_depth=self.config.queue_depth,
            ),
            "cache": store.stats.as_dict() if store is not None else None,
        }

    async def _rewrite_endpoint(
        self, body: bytes
    ) -> tuple[int, dict, list[tuple[str, str]] | None]:
        received = time.monotonic()
        if self._draining:
            self.metrics.count("draining")
            return 503, _error_body(
                "draining", "daemon is shutting down; retry elsewhere"), None
        try:
            payload = self._parse_rewrite_payload(body)
        except _BadRequest as exc:
            self.metrics.count("bad_requests")
            return exc.status, _error_body("bad_request", str(exc)), None

        job = _Job(
            payload=payload,
            future=self._loop.create_future(),
            deadline=received + self.config.request_timeout,
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.metrics.count("rejected")
            return 429, _error_body(
                "overloaded",
                f"request queue is full ({self.config.queue_depth} deep)",
                queue_depth=self.config.queue_depth,
            ), [("Retry-After", "1")]
        self.metrics.count("rewrites_total")

        status, response = await job.future
        self.metrics.observe_latency(time.monotonic() - received)
        return status, response, None

    def _parse_rewrite_payload(self, body: bytes) -> dict:
        """Cheap, loop-side validation — garbage never occupies a queue
        slot; the expensive base64/ELF work happens in the worker."""
        try:
            payload = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"invalid JSON body: {exc}") from None
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        if not isinstance(payload.get("binary"), str):
            raise _BadRequest("'binary' (base64 string) is required")
        if not isinstance(payload.get("matcher", "jumps"), str):
            raise _BadRequest("'matcher' must be a string")
        if payload.get("instrumentation") not in _INSTRUMENTATIONS:
            raise _BadRequest(
                "'instrumentation' must be one of "
                + "/".join(str(i) for i in _INSTRUMENTATIONS if i))
        options = payload.get("options")
        if options is not None and not isinstance(options, dict):
            raise _BadRequest("'options' must be an object")
        frontend = payload.get("frontend")
        if frontend not in (None, "linear", "symbols"):
            raise _BadRequest("'frontend' must be 'linear' or 'symbols'")
        return payload
