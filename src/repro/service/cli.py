"""``repro serve`` — run the rewrite daemon from the command line.

Every flag maps onto one :class:`~repro.service.config.ServiceConfig`
field; environment defaults (``REPRO_SERVICE_*``, ``$REPRO_JOBS``,
``$REPRO_CACHE_DIR``) are resolved here, exactly once, before the
event loop starts.  See ``docs/SERVICE.md`` and ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.core.cache import CacheConfig
from repro.core.parallel import ExecutorConfig
from repro.service.config import ServiceConfig
from repro.service.server import RewriteService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E9Patch-reproduction service tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="run the rewrite daemon (unix socket or TCP)",
        description="Serve rewrite requests over a local JSON/HTTP API "
        "with a bounded queue, worker pool, and graceful SIGTERM drain.",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="bind a unix-domain socket at PATH (default: "
        "$REPRO_SERVICE_SOCKET, else TCP)",
    )
    serve.add_argument(
        "--host", default=None,
        help="TCP bind address (default: $REPRO_SERVICE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="TCP port; 0 picks a free port (default: $REPRO_SERVICE_PORT "
        "or 9321)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="concurrent rewrite workers (default: $REPRO_SERVICE_WORKERS, "
        "else $REPRO_JOBS, else 1)",
    )
    serve.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help="bounded request-queue depth; a full queue answers 429 "
        "(default: $REPRO_SERVICE_QUEUE or 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-request budget in seconds, queue wait included "
        "(default: $REPRO_SERVICE_TIMEOUT or 120)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="S",
        help="how long SIGTERM waits for in-flight work "
        "(default: $REPRO_SERVICE_DRAIN_TIMEOUT or 30)",
    )
    serve.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="share an on-disk artifact store across requests "
        "(default: on; --no-cache disables)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    serve.add_argument(
        "--frontend", default="linear", choices=("linear", "symbols"),
        help="default disassembly frontend (per-request override allowed)",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    """One-time resolution: CLI flags > REPRO_SERVICE_* env > defaults."""
    overrides: dict = {}
    if args.socket is not None:
        overrides["socket_path"] = args.socket
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.queue is not None:
        overrides["queue_depth"] = args.queue
    if args.timeout is not None:
        overrides["request_timeout"] = args.timeout
    if args.drain_timeout is not None:
        overrides["drain_timeout"] = args.drain_timeout
    overrides["frontend"] = args.frontend
    overrides["cache"] = (CacheConfig.from_env(args.cache_dir)
                          if args.cache else None)
    if args.workers is not None and args.workers > 0:
        # An explicit worker count also sizes the executor config, so
        # batch fan-out inside a request agrees with the pool.
        overrides["executor"] = ExecutorConfig.from_env(args.workers)
    return ServiceConfig.from_env(**overrides)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        service = RewriteService(config_from_args(args))
        try:
            asyncio.run(service.run())
        except KeyboardInterrupt:
            pass
        return 0
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
