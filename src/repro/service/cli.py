"""``repro`` — operational entry points: the daemon and the eval matrix.

``repro serve`` runs the rewrite daemon: every flag maps onto one
:class:`~repro.service.config.ServiceConfig` field; environment
defaults (``REPRO_SERVICE_*``, ``$REPRO_JOBS``, ``$REPRO_CACHE_DIR``)
are resolved here, exactly once, before the event loop starts.  See
``docs/SERVICE.md`` and ``docs/CLI.md``.

``repro matrix`` runs the cross-configuration evaluation matrix
(:mod:`repro.eval.matrix`) and, when ``--baseline`` comparison is
requested, the trend classifier (:mod:`repro.eval.trend`).  See
``docs/EVAL.md``.

``repro lint`` rewrites each input binary with the rewrite-plan linter
enabled (:mod:`repro.analysis.lint`) and reports its typed findings;
any error-severity finding makes the exit status nonzero.  See
``docs/ANALYSIS.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib

from repro.core.cache import CacheConfig
from repro.core.parallel import ExecutorConfig
from repro.service.config import ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E9Patch-reproduction service tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve",
        help="run the rewrite daemon (unix socket or TCP)",
        description="Serve rewrite requests over a local JSON/HTTP API "
        "with a bounded queue, worker pool, and graceful SIGTERM drain.",
    )
    serve.add_argument(
        "--socket", metavar="PATH", default=None,
        help="bind a unix-domain socket at PATH (default: "
        "$REPRO_SERVICE_SOCKET, else TCP)",
    )
    serve.add_argument(
        "--host", default=None,
        help="TCP bind address (default: $REPRO_SERVICE_HOST or 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="TCP port; 0 picks a free port (default: $REPRO_SERVICE_PORT "
        "or 9321)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="concurrent rewrite workers (default: $REPRO_SERVICE_WORKERS, "
        "else $REPRO_JOBS, else 1)",
    )
    serve.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help="bounded request-queue depth; a full queue answers 429 "
        "(default: $REPRO_SERVICE_QUEUE or 64)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-request budget in seconds, queue wait included "
        "(default: $REPRO_SERVICE_TIMEOUT or 120)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=None, metavar="S",
        help="how long SIGTERM waits for in-flight work "
        "(default: $REPRO_SERVICE_DRAIN_TIMEOUT or 30)",
    )
    serve.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="share an on-disk artifact store across requests "
        "(default: on; --no-cache disables)",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro)",
    )
    serve.add_argument(
        "--frontend", default="linear", choices=("linear", "symbols"),
        help="default disassembly frontend (per-request override allowed)",
    )

    matrix = sub.add_parser(
        "matrix",
        help="run the cross-configuration evaluation matrix",
        description="Run evaluation-matrix cells (synthesis profiles x "
        "patch configs x rewriter options) and optionally classify the "
        "result against a committed baseline (see docs/EVAL.md).",
    )
    matrix.add_argument(
        "--cells", default="pr", metavar="SPEC",
        help="'pr', 'full', or comma-separated cell ids like "
        "bzip2/full-jumps/serial (default: pr)",
    )
    matrix.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the repro-matrix/1 result JSON to PATH",
    )
    matrix.add_argument(
        "--report", metavar="PATH", default=None,
        help="compare against the committed baseline and write the "
        "markdown trend report to PATH",
    )
    matrix.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline to classify against (default: "
        "benchmarks/BENCH_matrix.json; implies a trend comparison)",
    )
    matrix.add_argument(
        "--jobs", type=int, default=4, metavar="N",
        help="worker count for parallel-combo cells (default 4)",
    )
    matrix.add_argument(
        "--no-oracle", action="store_true",
        help="skip the VM overhead oracle (drops vm_overhead_ratio)",
    )

    lint = sub.add_parser(
        "lint",
        help="statically lint a rewrite of each input binary",
        description="Rewrite each input ELF with the given matcher and "
        "instrumentation, then statically re-derive the emitted "
        "invariants: patch-site jump chains, trampoline layout and "
        "image bytes, displaced-instruction replay equivalence, and "
        "jump-back targets.  Error findings exit nonzero.",
    )
    lint.add_argument(
        "inputs", nargs="+", metavar="ELF",
        help="input binaries to rewrite and lint",
    )
    lint.add_argument(
        "-M", "--match", default="all", metavar="EXPR",
        help="patch-site matcher name or expression (default: all)",
    )
    lint.add_argument(
        "-I", "--instrument", default="counter",
        choices=("empty", "counter"),
        help="instrumentation to rewrite with (default: counter)",
    )
    lint.add_argument(
        "--mode", default="auto", choices=("auto", "phdr", "loader"),
        help="emission mode (default: auto)",
    )
    lint.add_argument(
        "--liveness", action=argparse.BooleanOptionalAction, default=True,
        help="liveness-driven trampoline slimming (default: on); the "
        "linter checks the slimmed trampolines",
    )
    lint.add_argument(
        "--json", metavar="PATH", default=None,
        help="write per-input finding reports as JSON to PATH",
    )
    lint.add_argument(
        "-q", "--quiet", action="store_true",
        help="only print failures",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    """One-time resolution: CLI flags > REPRO_SERVICE_* env > defaults."""
    overrides: dict = {}
    if args.socket is not None:
        overrides["socket_path"] = args.socket
    if args.host is not None:
        overrides["host"] = args.host
    if args.port is not None:
        overrides["port"] = args.port
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.queue is not None:
        overrides["queue_depth"] = args.queue
    if args.timeout is not None:
        overrides["request_timeout"] = args.timeout
    if args.drain_timeout is not None:
        overrides["drain_timeout"] = args.drain_timeout
    overrides["frontend"] = args.frontend
    overrides["cache"] = (CacheConfig.from_env(args.cache_dir)
                          if args.cache else None)
    if args.workers is not None and args.workers > 0:
        # An explicit worker count also sizes the executor config, so
        # batch fan-out inside a request agrees with the pool.
        overrides["executor"] = ExecutorConfig.from_env(args.workers)
    return ServiceConfig.from_env(**overrides)


def run_matrix_command(args: argparse.Namespace) -> int:
    """``repro matrix``: run cells, optionally classify against a baseline."""
    from repro.eval import trend
    from repro.eval.matrix import parse_cells, run_matrix

    cells = parse_cells(args.cells)
    suite = args.cells if args.cells in ("pr", "full") else "custom"
    print(f"evaluation matrix: {len(cells)} cell(s), suite {suite!r}")

    def progress(index, total, result):
        mark = "ok" if result.ok else f"FAIL ({result.verdict})"
        print(f"  [{index + 1:3}/{total}] {result.cell.cell_id:<40} {mark}")

    payload = run_matrix(cells, suite=suite, jobs=args.jobs,
                         oracle=not args.no_oracle, progress=progress)
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    failed = [cell_id for cell_id, cell in payload["cells"].items()
              if cell["verdict"] not in ("ok", "unsupported")]
    status = 0
    if failed:
        for cell_id in failed:
            print(f"FAIL: cell {cell_id}: {payload['cells'][cell_id]['error']}")
        status = 1

    if args.report or args.baseline:
        baseline_path = pathlib.Path(args.baseline or trend.DEFAULT_BASELINE)
        report = trend.compare(payload, trend.load_matrix(baseline_path))
        trend.print_console(report)
        if args.report:
            path = pathlib.Path(args.report)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(trend.render_markdown(report))
            print(f"wrote {path}")
        if report.regressed:
            print(f"FAIL: {len(report.regressed)} cell(s) regressed vs "
                  f"{baseline_path}")
            status = 1
    return status


def run_lint_command(args: argparse.Namespace) -> int:
    """``repro lint``: rewrite inputs with the linter on, report findings."""
    from repro.analysis.lint import LintError
    from repro.core.pipeline import RewriteOptions
    from repro.errors import ReproError
    from repro.frontend.tool import instrument_elf

    options = RewriteOptions(mode=args.mode, lint=True,
                             liveness=args.liveness)
    results: dict[str, dict] = {}
    status = 0
    for name in args.inputs:
        path = pathlib.Path(name)
        try:
            data = path.read_bytes()
            try:
                report = instrument_elf(
                    data, args.match, instrumentation=args.instrument,
                    options=options,
                ).result.lint
            except LintError as exc:
                report = exc.report
        except (OSError, ReproError) as exc:
            print(f"{name}: FAIL ({type(exc).__name__}: {exc})")
            results[name] = {"ok": False, "error": str(exc)}
            status = 1
            continue
        results[name] = report.to_dict()
        if report.ok:
            if not args.quiet:
                print(f"{name}: ok ({report.sites_checked} sites, "
                      f"{report.trampolines_checked} trampolines, "
                      f"{len(report.warnings)} warning(s))")
                for finding in report.warnings:
                    print(f"  {finding}")
        else:
            status = 1
            print(f"{name}: FAIL ({len(report.errors)} error(s))")
            for finding in report.findings:
                print(f"  {finding}")
    if args.json:
        out = pathlib.Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(
            {"schema": "repro-lint/1", "inputs": results},
            indent=2, sort_keys=True,
        ) + "\n")
        if not args.quiet:
            print(f"wrote {out}")
    return status


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        from repro.service.server import RewriteService

        service = RewriteService(config_from_args(args))
        try:
            asyncio.run(service.run())
        except KeyboardInterrupt:
            pass
        return 0
    if args.command == "matrix":
        return run_matrix_command(args)
    if args.command == "lint":
        return run_lint_command(args)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
