"""Cost-model sensitivity analysis for the Time% estimates.

The VM reports overheads as dynamic instruction-count ratios, optionally
charging taken control transfers extra (approximating pipeline
redirects).  A reproduction claim based on *orderings* should not hinge
on that knob — this harness sweeps the transfer weight and checks that
the ranking of benchmarks by overhead is stable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import rewrite_many
from repro.synth.generator import SynthesisParams, synthesize
from repro.synth.profiles import BinaryProfile
from repro.vm.machine import run_elf


@dataclass
class SensitivityResult:
    """Per-profile overheads under each transfer weight."""

    weights: tuple[int, ...]
    overheads: dict[str, dict[int, float]]  # name -> weight -> Time%

    def ranking(self, weight: int) -> list[str]:
        return sorted(self.overheads,
                      key=lambda name: -self.overheads[name][weight])

    def ranking_stable(self, tolerance_pct: float = 2.0) -> bool:
        """True when no *decisive* pairwise ordering inverts across
        weights; pairs within *tolerance_pct* of each other are ties and
        may swap freely."""
        names = list(self.overheads)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                signs = set()
                for w in self.weights:
                    diff = self.overheads[a][w] - self.overheads[b][w]
                    if abs(diff) > tolerance_pct:
                        signs.add(diff > 0)
                if len(signs) > 1:
                    return False
        return True


def run_sensitivity(
    profiles: list[BinaryProfile],
    weights: tuple[int, ...] = (0, 2, 5),
    *,
    loop_iters: int = 3,
    jobs: int | None = None,
    cache=None,
) -> SensitivityResult:
    overheads: dict[str, dict[int, float]] = {}
    for profile in profiles:
        params = SynthesisParams.from_profile(profile, loop_iters=loop_iters)
        params.n_jump_sites = min(params.n_jump_sites, 120)
        params.n_write_sites = min(params.n_write_sites, 80)
        binary = synthesize(params)
        orig = run_elf(binary.data)
        [report] = rewrite_many(binary.data,
                                [RewriteOptions(mode="loader")],
                                matcher="jumps", jobs=jobs, cache=cache)
        patched = run_elf(report.result.data)
        assert patched.observable == orig.observable
        overheads[profile.name] = {
            w: 100.0 * patched.weighted_cost(w) / max(1, orig.weighted_cost(w))
            for w in weights
        }
    return SensitivityResult(weights=weights, overheads=overheads)


def format_sensitivity(result: SensitivityResult) -> str:
    lines = [("benchmark".ljust(12)
              + "".join(f"w={w}".rjust(10) for w in result.weights))]
    for name, row in result.overheads.items():
        lines.append(name.ljust(12)
                     + "".join(f"{row[w]:>9.1f}%" for w in result.weights))
    lines.append(f"ranking stable across weights: {result.ranking_stable()}")
    return "\n".join(lines)
