"""Assemble ``benchmarks/out/*.txt`` into one RESULTS.md.

Run after ``pytest benchmarks/ --benchmark-only``::

    python3 -m repro.eval.collect [outdir] [results.md]
"""

from __future__ import annotations

import pathlib
import sys

SECTIONS: list[tuple[str, str, str]] = [
    ("table1_spec.txt", "Table 1 — SPEC2006",
     "Patching statistics (measured rows interleaved with the paper's)."),
    ("table1_system.txt", "Table 1 — system binaries", ""),
    ("table1_browsers.txt", "Table 1 — browsers", ""),
    ("figure4_dromaeo.txt", "Figure 4 — Dromaeo DOM overheads", ""),
    ("figure5_lowfat.txt", "Figure 5 — LowFat hardening (SPEC)", ""),
    ("figure5_browsers.txt", "Figure 5 — LowFat hardening (browsers)", ""),
    ("ablation_no_t3.txt", "Ablation — coverage without T3", ""),
    ("ablation_grouping.txt", "Ablation — page grouping off", ""),
    ("ablation_granularity.txt", "Ablation — granularity sweep", ""),
    ("ablation_b0.txt", "Ablation — B0 signal handlers", ""),
    ("ablation_pie.txt", "Ablation — PIE effect", ""),
    ("ablation_scale.txt", "Ablation — scale invariance", ""),
    ("ablation_cost_model.txt", "Methods — cost-model sensitivity", ""),
    ("ablation_packing.txt", "Design insight — packing vs grouping", ""),
]


def collect(outdir: str | pathlib.Path) -> str:
    """Render all available artifacts as one markdown document."""
    outdir = pathlib.Path(outdir)
    parts = [
        "# Regenerated results",
        "",
        "Produced by `pytest benchmarks/ --benchmark-only`; see "
        "EXPERIMENTS.md for the paper-vs-measured discussion.",
    ]
    missing = []
    for filename, title, blurb in SECTIONS:
        path = outdir / filename
        if not path.exists():
            missing.append(filename)
            continue
        parts.append(f"\n## {title}\n")
        if blurb:
            parts.append(blurb + "\n")
        parts.append("```")
        parts.append(path.read_text().rstrip())
        parts.append("```")
    if missing:
        parts.append("\n## Missing artifacts\n")
        for name in missing:
            parts.append(f"- `{name}` (bench not run yet)")
    return "\n".join(parts) + "\n"


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    outdir = args[0] if args else "benchmarks/out"
    target = args[1] if len(args) > 1 else "RESULTS.md"
    text = collect(outdir)
    pathlib.Path(target).write_text(text)
    print(f"wrote {target} ({len(text)} bytes, "
          f"{text.count('## ')} sections)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
