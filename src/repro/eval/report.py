"""Shared rendering/artifact helpers for the evaluation harnesses."""

from __future__ import annotations

import pathlib


def render_table(headers: list[str], rows: list[list[str]],
                 widths: list[int] | None = None) -> str:
    """Right-aligned fixed-width text table."""
    if widths is None:
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(headers)
        ]
    lines = ["  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))]
    for row in rows:
        lines.append("  ".join(f"{c:>{w}}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_artifact(directory: str | pathlib.Path, name: str,
                   text: str, *, echo: bool = True) -> pathlib.Path:
    """Persist a regenerated table/figure and optionally echo it."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / name
    path.write_text(text.rstrip() + "\n")
    if echo:
        print(f"\n=== {name} ===")
        print(text)
    return path


def pct(value: float) -> str:
    return f"{value:.2f}%"
