"""Ablations reproducing the paper's in-text claims (Section 6.1).

* **No-T3 coverage** — "Without T3, the overall coverage would be merely
  ~90.5% (Base+T1+T2) for A1 rather than ~100%."
* **Grouping off** — "the average file size balloons to
  +2239.83%/+568.96% for A1/A2" without physical page grouping.
* **B0 slowdown** — signal-handler patching is orders of magnitude
  slower than jump-based patching.
* **PIE effect** — "Even the baseline (Base%) for PIE binaries is >93%."
* **Scale invariance** — coverage percentages are stable under the
  profile scale factor (justifying the scaled-down corpus).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.frontend.tool import instrument_elf, rewrite_many
from repro.synth.generator import SynthesisParams, synthesize
from repro.synth.profiles import BinaryProfile
from repro.vm.machine import Machine, TrapHandler, run_elf
from repro.x86.decoder import decode


@dataclass
class AblationResult:
    label: str
    value: float
    unit: str = "%"

    def __str__(self) -> str:
        return f"{self.label}: {self.value:.2f}{self.unit}"


def coverage_without_t3(profile: BinaryProfile, app: str = "A1",
                        *, jobs: int | None = None,
                        cache=None) -> tuple[float, float]:
    """(Succ% with all tactics, Succ% with T3 disabled)."""
    binary = synthesize(SynthesisParams.from_profile(profile))
    matcher = "jumps" if app == "A1" else "heap-writes"
    full, no_t3 = rewrite_many(
        binary.data,
        [RewriteOptions(mode="loader"),
         RewriteOptions(mode="loader", toggles=TacticToggles(t3=False))],
        matcher=matcher, jobs=jobs, cache=cache,
    )
    return full.stats.success_pct, no_t3.stats.success_pct


def grouping_size_blowup(profile: BinaryProfile, app: str = "A1",
                         *, jobs: int | None = None,
                         cache=None) -> tuple[float, float]:
    """(Size% with grouping, Size% with the naive 1:1 mapping)."""
    binary = synthesize(SynthesisParams.from_profile(profile))
    matcher = "jumps" if app == "A1" else "heap-writes"
    grouped, naive = rewrite_many(
        binary.data,
        [RewriteOptions(mode="loader", grouping=True),
         RewriteOptions(mode="loader", grouping=False)],
        matcher=matcher, jobs=jobs, cache=cache,
    )
    return grouped.result.size_pct, naive.result.size_pct


def pie_effect(profile: BinaryProfile, app: str = "A1") -> tuple[float, float]:
    """(non-PIE Base%, PIE Base%) for the same workload shape."""
    base_params = SynthesisParams.from_profile(profile)
    matcher = "jumps" if app == "A1" else "heap-writes"
    out = []
    for pie in (False, True):
        params = replace(base_params, pie=pie)
        binary = synthesize(params)
        report = instrument_elf(binary.data, matcher,
                                options=RewriteOptions(mode="loader"))
        out.append(report.stats.base_pct)
    return out[0], out[1]


def scale_invariance(profile: BinaryProfile, factors: tuple[float, ...] = (0.5, 1.0, 2.0),
                     app: str = "A1") -> list[float]:
    """Succ% across workload scales (should be ~constant)."""
    base = SynthesisParams.from_profile(profile)
    matcher = "jumps" if app == "A1" else "heap-writes"
    out = []
    for f in factors:
        params = replace(
            base,
            n_jump_sites=max(8, int(base.n_jump_sites * f)),
            n_write_sites=max(8, int(base.n_write_sites * f)),
        )
        binary = synthesize(params)
        report = instrument_elf(binary.data, matcher,
                                options=RewriteOptions(mode="loader"))
        out.append(report.stats.success_pct)
    return out


def b0_slowdown(seed: int = 5, n_sites: int = 40, loop_iters: int = 3) -> tuple[float, float]:
    """(B1-family Time%, B0 Time%): signal handlers vs jumps.

    B0 is modelled by replacing every A1 site with int3 and charging the
    configured kernel-roundtrip cost per trap.
    """
    params = SynthesisParams(n_jump_sites=n_sites, n_write_sites=10,
                             seed=seed, loop_iters=loop_iters)
    binary = synthesize(params)
    orig = run_elf(binary.data)

    jumps = instrument_elf(binary.data, "jumps",
                           options=RewriteOptions(mode="loader"))
    patched = run_elf(jumps.result.data)
    jump_pct = 100.0 * patched.cost / max(1, orig.cost)

    # B0: int3 at every site, trap handler emulates the instruction.
    from repro.elf.reader import ElfFile
    from repro.frontend.lineardisasm import disassemble_text
    from repro.frontend.matchers import match_jumps

    elf = ElfFile(binary.data)
    sites = [i for i in disassemble_text(elf) if match_jumps(i)]
    data = bytearray(binary.data)
    machine = Machine(bytes(data))
    for insn in sites:
        off = elf.vaddr_to_offset(insn.address)
        data[off] = 0xCC
    machine = Machine(bytes(data))
    for insn in sites:
        machine.register_trap(insn.address, TrapHandler(insn_bytes=insn.raw))
    trapped = machine.run()
    if trapped.observable != orig.observable:
        raise AssertionError("B0 emulation changed behaviour")
    b0_pct = 100.0 * trapped.cost / max(1, orig.cost)
    return jump_pct, b0_pct
