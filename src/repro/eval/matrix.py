"""Cross-configuration evaluation matrix (the standing Table-1-style sweep).

The paper's evaluation is a *matrix* — binaries x patch configurations —
but the bench scripts answer only "did this PR regress one baseline".
This module generalizes them into a declarative evaluation matrix in the
spirit of "A Broad Comparative Evaluation of x86-64 Binary Rewriters"
(PAPERS.md): every **cell** is one synthesis profile x one patch
configuration x one rewriter-option combo (serial / parallel batch /
artifact cache / ``--check``), run through the production
:class:`~repro.frontend.engine.RewriteEngine` and
:class:`~repro.core.parallel.BatchExecutor` paths, and measured along
the axes the comparative-evaluation literature cares about:

* **patch success rate** (``succ_pct``) and **B0 fraction** (``b0_pct``);
* **rewrite throughput** (``decode_mb_s``, ``plan_sites_s``, ``rewrite_s``);
* **dynamic-instruction overhead** (``vm_overhead_ratio``): the
  rewritten binary's VM instruction count over the original's, judged
  on a small fixed-seed draw by the :mod:`repro.check` oracle;
* **output size** (``size_pct``).

Results are emitted as versioned ``repro-matrix/1`` JSON keyed by cell
id (``profile/patch-config/combo``); :mod:`repro.eval.trend` diffs a run
against the committed per-cell baseline (``benchmarks/BENCH_matrix.json``)
and classifies each cell as improved / stable / regressed / weak.
``benchmarks/bench_matrix.py`` and ``repro matrix`` are the entry
points; ``docs/EVAL.md`` documents the schema and how to add a cell.
"""

from __future__ import annotations

import os
import platform
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.cache import CacheConfig
from repro.core.observe import Observer
from repro.core.parallel import ExecutorConfig
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.errors import PatchError
from repro.synth.generator import SynthesisParams, synthesize
from repro.synth.profiles import profile_by_name

#: Result schema tag (bump on incompatible changes).
SCHEMA = "repro-matrix/1"

#: Site-count cap for workload binaries so a full matrix stays CI-sized
#: (the cap only binds for the largest profiles; coverage percentages
#: are scale-free, see repro.synth.profiles).
MAX_WORKLOAD_SITES = 1200

#: Site-count floor: rates measured over a handful of milliseconds are
#: dominated by scheduler noise on shared CI runners, so every workload
#: is generated with at least this much decode/plan work even when the
#: profile's scaled site count is tiny.
MIN_WORKLOAD_SITES = 400

#: Oracle-draw sizing: every cell's overhead ratio is judged on a small
#: fixed-seed binary (two full VM executions per cell).
ORACLE_JUMP_SITES = 24
ORACLE_WRITE_SITES = 12

#: VM instruction budget for the oracle draw (mirrors repro.check).
ORACLE_BUDGET = 400_000


@dataclass(frozen=True)
class PatchConfigSpec:
    """One point on the patch-configuration axis."""

    name: str
    matcher: str = "jumps"
    options: RewriteOptions = field(default_factory=lambda: RewriteOptions(mode="loader"))
    #: Named instrumentation body ("counter") or None for empty
    #: trampolines; the ``*-slim`` configs pair a real body with
    #: liveness-driven save/restore elision so ``vm_overhead_ratio``
    #: exposes the slimming win.
    instrumentation: str | None = None


@dataclass(frozen=True)
class OptionCombo:
    """One point on the rewriter-option axis.

    ``parallel`` fans the cell out as a 4-configuration batch through
    :class:`BatchExecutor`; ``cache`` runs cold then warm through a
    fresh :class:`~repro.core.cache.ArtifactStore`; ``check`` enables
    the in-pipeline :class:`EquivalencePass` (``--check``).
    """

    name: str
    parallel: bool = False
    cache: bool = False
    check: bool = False


#: Patch-configuration axis (mirrors the check campaign's sweep).
PATCH_CONFIGS: dict[str, PatchConfigSpec] = {
    spec.name: spec
    for spec in (
        PatchConfigSpec("full-jumps", "jumps", RewriteOptions(mode="loader")),
        PatchConfigSpec(
            "baseline-jumps",
            "jumps",
            RewriteOptions(mode="loader", toggles=TacticToggles(t1=False, t2=False, t3=False)),
        ),
        PatchConfigSpec("g16-writes", "heap-writes", RewriteOptions(mode="loader", granularity=16)),
        PatchConfigSpec(
            "counter-jumps",
            "jumps",
            RewriteOptions(mode="loader"),
            instrumentation="counter",
        ),
        PatchConfigSpec(
            "counter-jumps-slim",
            "jumps",
            RewriteOptions(mode="loader", liveness=True),
            instrumentation="counter",
        ),
    )
}

#: Rewriter-option axis.
OPTION_COMBOS: dict[str, OptionCombo] = {
    combo.name: combo
    for combo in (
        OptionCombo("serial"),
        OptionCombo("parallel", parallel=True),
        OptionCombo("cached", cache=True),
        OptionCombo("checked", check=True),
        OptionCombo("parallel-cached", parallel=True, cache=True),
        OptionCombo("checked-cached", check=True, cache=True),
    )
}

#: Synthesis-profile axis: one row per Table-1 category in the PR suite
#: (non-PIE SPEC, PIE system, PIE browser) plus the CET conformance
#: shared object (ET_DYN, DT_INIT-hijack loader, endbr64 landing pads),
#: widened in the full suite.
PR_PROFILES: tuple[str, ...] = ("bzip2", "vim", "FireFox", "libsynth-cet.so")
FULL_PROFILES: tuple[str, ...] = (
    "bzip2", "gcc", "vim", "xterm", "FireFox", "libsynth.so",
    "libsynth-cet.so",
)

#: dlopen-style load base used when judging shared-object cells: a
#: mmap-region address far from the link-time image, so displacement
#: bugs that cancel out at base 0 cannot hide.
SO_ORACLE_BASE = 0x7F12_3456_0000

PR_PATCH_CONFIGS: tuple[str, ...] = ("full-jumps",)
FULL_PATCH_CONFIGS: tuple[str, ...] = (
    "full-jumps",
    "baseline-jumps",
    "g16-writes",
    "counter-jumps",
    "counter-jumps-slim",
)

PR_COMBOS: tuple[str, ...] = ("serial", "parallel", "cached", "checked")
FULL_COMBOS: tuple[str, ...] = (
    "serial",
    "parallel",
    "cached",
    "checked",
    "parallel-cached",
    "checked-cached",
)


@dataclass(frozen=True)
class MatrixCell:
    """One evaluation-matrix cell: profile x patch config x option combo."""

    profile: str
    patch_config: str
    combo: str

    @property
    def cell_id(self) -> str:
        return f"{self.profile}/{self.patch_config}/{self.combo}"

    @property
    def spec(self) -> PatchConfigSpec:
        return PATCH_CONFIGS[self.patch_config]

    @property
    def options(self) -> OptionCombo:
        return OPTION_COMBOS[self.combo]


#: The PR suite carries the counter configs as serial-only extra cells
#: (the unslim/slim pair per profile is what the trend gate watches for
#: the liveness win); the full suite sweeps them across every combo.
PR_EXTRA_CONFIGS: tuple[str, ...] = ("counter-jumps", "counter-jumps-slim")


def cells_for(suite: str) -> list[MatrixCell]:
    """The declarative cell list for a named suite (``pr`` or ``full``)."""
    if suite == "pr":
        axes = (PR_PROFILES, PR_PATCH_CONFIGS, PR_COMBOS)
        extra = [
            MatrixCell(p, c, "serial")
            for p in PR_PROFILES
            for c in PR_EXTRA_CONFIGS
        ]
    elif suite == "full":
        axes = (FULL_PROFILES, FULL_PATCH_CONFIGS, FULL_COMBOS)
        extra = []
    else:
        raise ValueError(f"unknown suite {suite!r} (expected 'pr' or 'full')")
    profiles, configs, combos = axes
    return [
        MatrixCell(p, c, o)
        for p in profiles
        for c in configs
        for o in combos
    ] + extra


def parse_cells(spec: str) -> list[MatrixCell]:
    """``--cells`` parser: a suite name or comma-separated cell ids."""
    spec = spec.strip()
    if spec in ("pr", "full"):
        return cells_for(spec)
    cells = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.split("/")
        if len(parts) != 3:
            raise ValueError(f"bad cell id {item!r} (expected profile/patch-config/combo)")
        profile, config, combo = parts
        profile_by_name(profile)  # raises KeyError on unknown profiles
        if config not in PATCH_CONFIGS:
            raise ValueError(f"unknown patch config {config!r} in cell {item!r}")
        if combo not in OPTION_COMBOS:
            raise ValueError(f"unknown option combo {combo!r} in cell {item!r}")
        cells.append(MatrixCell(profile, config, combo))
    if not cells:
        raise ValueError(f"no cells in spec {spec!r}")
    return cells


@dataclass
class CellResult:
    """Measured outcome of one cell run."""

    cell: MatrixCell
    metrics: dict[str, float | int] = field(default_factory=dict)
    #: Non-numeric cell metadata (ELF type, CET), kept out of ``metrics``
    #: so the trend gate's numeric comparisons never see strings.
    meta: dict = field(default_factory=dict)
    verdict: str = "ok"  # "ok" | "divergent" | "unsupported" | "error"
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.verdict in ("ok", "unsupported")

    def to_dict(self) -> dict:
        return {
            "profile": self.cell.profile,
            "patch_config": self.cell.patch_config,
            "combo": self.cell.combo,
            "verdict": self.verdict,
            "error": self.error,
            "meta": dict(self.meta),
            "metrics": {
                k: round(v, 6) if isinstance(v, float) else v
                for k, v in sorted(self.metrics.items())
            },
        }


def workload_params(profile_name: str, *, max_sites: int = MAX_WORKLOAD_SITES) -> SynthesisParams:
    """Throughput-workload synthesis parameters for one profile.

    Profile-derived (PIE-ness, length mixes, seed) but capped so a full
    matrix stays CI-sized, and without the multi-hundred-MB ``bss``
    segments some SPEC rows carry.
    """
    base = SynthesisParams.from_profile(profile_by_name(profile_name))
    return replace(
        base,
        n_jump_sites=max(MIN_WORKLOAD_SITES, min(base.n_jump_sites, max_sites)),
        n_write_sites=max(MIN_WORKLOAD_SITES // 2, min(base.n_write_sites, max_sites // 2)),
        bss_bytes=0,
    )


def oracle_params(profile_name: str) -> SynthesisParams:
    """Overhead-oracle synthesis parameters: small enough to execute
    twice on the pure-Python VM, with the profile's character kept."""
    base = SynthesisParams.from_profile(profile_by_name(profile_name))
    return replace(
        base,
        n_jump_sites=ORACLE_JUMP_SITES,
        n_write_sites=ORACLE_WRITE_SITES,
        bss_bytes=0,
        loop_iters=1,
        seed=base.seed ^ 0x5EED,
    )


def _profile_options(profile_name: str, options: RewriteOptions) -> RewriteOptions:
    """Adapt a patch config's options to the profile's binary kind.

    Shared-object profiles synthesize real ET_DYN images: the rewrite
    needs ``shared`` mode and a library install path for the loader stub
    to reopen (``/proc/self/exe`` names the host executable, not the
    library).
    """
    profile = profile_by_name(profile_name)
    if profile.shared and not options.shared:
        options = replace(options, shared=True)
    if options.shared and options.library_path is None:
        options = replace(options, library_path=f"/usr/lib/{profile.name}")
    return options


def _parallel_batch(options: RewriteOptions) -> list[RewriteOptions]:
    """The 4-configuration fan-out used by ``parallel`` combos: the
    cell's nominal options first (its metrics come from that report),
    then three granularity variants to give the executor real work."""
    variants = [g for g in (1, 2, 4, 8) if g != options.granularity]
    return [options] + [replace(options, granularity=g) for g in variants[:3]]


def _measure_oracle(cell: MatrixCell, metrics: dict) -> str:
    """Dynamic-overhead measurement: rewrite the small oracle draw under
    the cell's patch config and judge it with the differential oracle.

    Returns the oracle verdict; ``vm_overhead_ratio`` is recorded only
    for an ``equivalent`` verdict (a divergent or unsupported run has no
    meaningful ratio).
    """
    from repro.check.oracle import check_rewrite
    from repro.frontend.tool import instrument_elf

    spec = cell.spec
    options = _profile_options(cell.profile, spec.options)
    shared = options.shared and profile_by_name(cell.profile).shared
    binary = synthesize(oracle_params(cell.profile))
    report = instrument_elf(
        binary.data,
        spec.matcher,
        instrumentation=spec.instrumentation,
        options=options,
    )
    oracle = check_rewrite(
        binary.data,
        report.result.data,
        b0_sites=report.result.b0_sites,
        matcher=spec.matcher,
        max_instructions=ORACLE_BUDGET,
        # Shared-object cells are judged dlopen-style: entered through
        # their init hook at a nonzero load base.
        load_base=SO_ORACLE_BASE if shared else 0,
        entry_from_init=shared,
        self_paths=(options.library_path,) if shared else (),
    )
    metrics["oracle_events"] = oracle.events_compared
    if oracle.verdict == "equivalent" and oracle.original.instructions > 0:
        metrics["vm_overhead_ratio"] = round(
            oracle.rewritten.instructions / oracle.original.instructions, 4
        )
    return oracle.verdict


def _measure_workload(
    cell: MatrixCell,
    *,
    jobs: int,
    max_sites: int,
    meta: dict | None = None,
) -> dict[str, float | int]:
    """One timed workload measurement for *cell* (see :func:`run_cell`).

    The workload rewrite always goes through the production
    :class:`RewriteEngine`; ``parallel`` combos fan a 4-configuration
    batch out through :func:`~repro.frontend.tool.rewrite_many` with a
    :class:`BatchExecutor`, and ``cached`` combos run cold-then-warm
    through a throwaway :class:`~repro.core.cache.ArtifactStore`.
    Raises :class:`PatchError` when the rewrite itself fails.
    """
    from repro.frontend.engine import EngineConfig, RewriteEngine
    from repro.frontend.tool import rewrite_many

    spec = cell.spec
    combo = cell.options
    metrics: dict[str, float | int] = {}
    # Every workload rewrite runs under the static linter: lint_errors is
    # a correctness metric (expected 0 — a LintError fails the cell).
    options = replace(_profile_options(cell.profile, spec.options),
                      check=combo.check, lint=True)
    binary = synthesize(workload_params(cell.profile, max_sites=max_sites))
    metrics["input_bytes"] = len(binary.data)
    if meta is not None:
        from repro.elf.reader import ElfFile

        elf = ElfFile(binary.data)
        meta["elf_type"] = elf.elf_type
        meta["cet"] = elf.is_cet_enabled()
        meta["cet_note"] = elf.has_ibt_note

    with tempfile.TemporaryDirectory(prefix="repro-matrix-") as tmp:
        cache_config = CacheConfig(root=Path(tmp)) if combo.cache else None
        engine = RewriteEngine(
            EngineConfig(cache=cache_config, executor=ExecutorConfig(jobs=jobs))
        )
        observer = Observer()
        t0 = time.perf_counter()
        if combo.parallel:
            reports = rewrite_many(
                binary.data,
                _parallel_batch(options),
                matcher=spec.matcher,
                instrumentation=spec.instrumentation,
                observer=observer,
                jobs=engine.config.executor,
                cache=engine.store,
            )
            metrics["batch_configs"] = len(reports)
            metrics["jobs"] = engine.config.executor.jobs
            report = reports[0]
        else:
            report = engine.rewrite(
                binary.data,
                matcher=spec.matcher,
                instrumentation=spec.instrumentation,
                options=options,
                observer=observer,
            )
        metrics["rewrite_s"] = time.perf_counter() - t0

        if combo.cache:
            warm_observer = Observer()
            t0 = time.perf_counter()
            engine.rewrite(
                binary.data,
                matcher=spec.matcher,
                options=options,
                observer=warm_observer,
            )
            warm_s = time.perf_counter() - t0
            metrics["warm_s"] = warm_s
            if warm_s > 0:
                metrics["warm_speedup"] = round(metrics["rewrite_s"] / warm_s, 3)
            metrics["cache_hits"] = engine.store.stats.hits

    stats = report.stats
    metrics["sites"] = report.n_sites
    metrics["succ_pct"] = round(stats.success_pct, 3)
    metrics["b0_pct"] = round(stats.b0_pct, 3)
    metrics["size_pct"] = round(report.result.size_pct, 3)
    metrics["trampoline_bytes"] = sum(
        len(t.code) for t in report.result.trampolines
    )
    metrics["lint_errors"] = observer.counters.get("lint.errors", 0)
    throughput = observer.throughput()
    for name in ("decode_mb_s", "plan_sites_s",
                 "trampoline_saved_bytes", "trampoline_saved_regs"):
        if name in throughput:
            metrics[name] = throughput[name]
    if combo.check and report.result.equivalence is not None:
        metrics["check_equivalent"] = int(report.result.equivalence.equivalent)
        metrics["check_events"] = report.result.equivalence.events_compared
    return metrics


#: Best-of-N aggregation directions for the timed workload metrics: a
#: single scheduler blip on a shared CI runner can move a millisecond-
#: scale measurement by far more than the gate threshold, so each cell
#: takes the best of ``repeats`` measurements (deterministic metrics are
#: identical across repeats and kept from the first).
_BEST_MIN_SUFFIXES = ("_s",)
_BEST_MAX_SUFFIXES = ("_mb_s", "_sites_s", "speedup")


def _merge_best(best: dict, new: dict) -> dict:
    merged = dict(best)
    for name, value in new.items():
        if name not in merged:
            merged[name] = value
        elif name.endswith(_BEST_MAX_SUFFIXES):
            merged[name] = max(merged[name], value)
        elif name.endswith(_BEST_MIN_SUFFIXES):
            merged[name] = min(merged[name], value)
    return merged


def run_cell(
    cell: MatrixCell,
    *,
    jobs: int = 4,
    max_sites: int = MAX_WORKLOAD_SITES,
    oracle: bool = True,
    repeats: int = 3,
) -> CellResult:
    """Run one cell end to end and return its measured metrics.

    The timed workload measurement runs ``repeats`` times and keeps the
    best value per timing/rate metric (see :data:`_BEST_MAX_SUFFIXES`);
    the VM overhead oracle is deterministic and runs once.
    """
    result = CellResult(cell=cell)
    try:
        for _ in range(max(1, repeats)):
            measured = _measure_workload(cell, jobs=jobs, max_sites=max_sites,
                                         meta=result.meta)
            result.metrics = _merge_best(result.metrics, measured)
    except PatchError as exc:
        result.verdict = "error"
        result.error = str(exc)
        return result

    if oracle:
        verdict = _measure_oracle(cell, result.metrics)
        if verdict == "divergent":
            result.verdict = "divergent"
            result.error = "oracle judged the rewritten oracle draw divergent"
        elif verdict == "unsupported":
            result.verdict = "unsupported"
    return result


def _warmup() -> None:
    """One untimed throwaway rewrite before the first cell.

    The first rewrite in a process pays import, table-construction and
    allocator warmup costs; without this the matrix's first cell reports
    systematically lower throughput than the same cell anywhere else in
    the run (and than the committed baseline).
    """
    from repro.frontend.tool import instrument_elf

    binary = synthesize(SynthesisParams(n_jump_sites=16, n_write_sites=8, seed=1))
    instrument_elf(binary.data, "jumps", options=RewriteOptions(mode="loader"))


def run_matrix(
    cells: list[MatrixCell],
    *,
    suite: str = "custom",
    jobs: int = 4,
    max_sites: int = MAX_WORKLOAD_SITES,
    oracle: bool = True,
    repeats: int = 3,
    progress=None,
) -> dict:
    """Run every cell and assemble the versioned ``repro-matrix/1`` payload.

    *progress* (optional) is called with ``(index, total, result)`` after
    each cell — the bench driver uses it for per-cell console lines.
    """
    _warmup()
    results: dict[str, CellResult] = {}
    for index, cell in enumerate(cells):
        result = run_cell(cell, jobs=jobs, max_sites=max_sites, oracle=oracle,
                          repeats=repeats)
        results[cell.cell_id] = result
        if progress is not None:
            progress(index, len(cells), result)
    return {
        "schema": SCHEMA,
        "suite": suite,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        "cells": {cell_id: r.to_dict() for cell_id, r in results.items()},
    }


def inject_slowdown(payload: dict, factor: float) -> dict:
    """Scale time-like metrics by *factor* (``$BENCH_INJECT_SLOWDOWN``).

    The documented way to prove the trend gate can fail: wall times grow,
    throughput rates fall, everything else is untouched.
    """
    if factor == 1.0:
        return payload

    def scale(name: str, value):
        if not isinstance(value, (int, float)):
            return value
        if name.endswith(("_mb_s", "_sites_s")):
            return value / factor
        if name.endswith("_s"):
            return value * factor
        return value

    out = dict(payload)
    out["cells"] = {
        cell_id: {
            **cell,
            "metrics": {k: scale(k, v) for k, v in cell.get("metrics", {}).items()},
        }
        for cell_id, cell in payload.get("cells", {}).items()
    }
    return out
