"""Trend tracking over the evaluation matrix: where are we weak?

:mod:`repro.eval.matrix` answers "what are the numbers"; this module
answers the two questions CI actually asks:

* **trend** — per cell and per metric, did this run *improve*, stay
  *stable*, or *regress* against the committed baseline
  (``benchmarks/BENCH_matrix.json``)?  This generalizes
  ``bench_gate.py`` from one flat metric dict to a matrix of cells.
* **weakness** — independent of any baseline, which cells are *weak*
  right now (low success rate, high B0 fraction, high dynamic-
  instruction overhead, failed equivalence, a cache that does not pay
  for itself)?  Weak cells are the feedback loop into ROADMAP items
  2-4: they name the profile x configuration corners to attack next.

A run is additionally appended to a JSONL *history* file so scheduled
full-matrix runs accumulate a time series; the report shows each cell's
recent ``rewrite_s`` trajectory from it.

Classification rules, by metric name (direction-aware, unlike the flat
gate):

* ``*_mb_s`` / ``*_sites_s`` / ``*_rps`` / ``*speedup`` — higher is
  better, relative threshold;
* ``*_s`` (wall time, checked after the rate suffixes) — lower is
  better, relative threshold plus an absolute ``min_delta`` noise floor;
* ``succ_pct`` / ``check_equivalent`` — higher is better, absolute band;
* ``b0_pct`` / ``size_pct`` — lower is better, absolute band;
* ``vm_overhead_ratio`` / ``*_visits`` — lower is better, relative;
* anything else is informational and never moves a cell.

Exit status: nonzero when any cell regressed, or — with ``--strict`` —
when a baseline cell or metric is missing from the current run
(mirroring ``bench_gate.py --strict``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
from dataclasses import dataclass, field

SCHEMA = "repro-matrix/1"
TREND_SCHEMA = "repro-trend/1"
HISTORY_SCHEMA = "repro-trend-history/1"

DEFAULT_BASELINE = pathlib.Path(__file__).parents[3] / "benchmarks" / "BENCH_matrix.json"
DEFAULT_CURRENT = (
    pathlib.Path(__file__).parents[3] / "benchmarks" / "out" / "BENCH_matrix.json"
)

#: Absolute band (percentage points) for the exact *_pct metrics.
PCT_BAND = 0.5

#: Weakness thresholds: a cell is weak when any of these hold, no
#: matter how the trend looks (see docs/EVAL.md).
WEAK_SUCC_PCT = 99.0
WEAK_B0_PCT = 5.0
WEAK_OVERHEAD_RATIO = 8.0
WEAK_WARM_SPEEDUP = 1.0

#: Rate suffixes must be classified before the bare ``_s`` rule —
#: ``decode_mb_s`` ends in ``_s`` too, and its direction is inverted.
RATE_SUFFIXES = ("_mb_s", "_sites_s", "_rps")

#: Rates and speedups divide two wall times, so their run-to-run noise
#: is roughly double a single timing's; their gate band is widened
#: accordingly (an injected 2x slowdown still trips a 25% x 2 band).
RATE_NOISE_FACTOR = 2.0

#: History entries shown per cell in the markdown report.
HISTORY_WINDOW = 8


def classify_metric(
    name: str,
    base: float,
    cur: float,
    *,
    threshold: float = 0.25,
    min_delta: float = 0.05,
) -> tuple[str, str]:
    """``(status, detail)`` for one metric pair; status is
    ``improved`` / ``stable`` / ``regressed`` / ``info``."""
    if name.endswith(RATE_SUFFIXES) or name.endswith("speedup"):
        band = threshold * RATE_NOISE_FACTOR
        if cur < base / (1.0 + band):
            return "regressed", f"{base:g} -> {cur:g} (higher is better)"
        if cur > base * (1.0 + band):
            return "improved", f"{base:g} -> {cur:g}"
        return "stable", f"{base:g} -> {cur:g}"
    if name in ("succ_pct", "check_equivalent"):
        if cur < base - PCT_BAND:
            return "regressed", f"{base:g} -> {cur:g} (higher is better)"
        if cur > base + PCT_BAND:
            return "improved", f"{base:g} -> {cur:g}"
        return "stable", f"{base:g} -> {cur:g}"
    if name in ("b0_pct", "size_pct"):
        if cur > base + PCT_BAND:
            return "regressed", f"{base:g} -> {cur:g} (lower is better)"
        if cur < base - PCT_BAND:
            return "improved", f"{base:g} -> {cur:g}"
        return "stable", f"{base:g} -> {cur:g}"
    if name == "vm_overhead_ratio" or name.endswith("_visits"):
        if cur > base * (1.0 + threshold):
            return "regressed", f"{base:g} -> {cur:g} (lower is better)"
        if cur < base / (1.0 + threshold):
            return "improved", f"{base:g} -> {cur:g}"
        return "stable", f"{base:g} -> {cur:g}"
    if name.endswith("_s"):
        if cur > base * (1.0 + threshold) and cur - base > min_delta:
            return "regressed", f"{base:.3f}s -> {cur:.3f}s"
        if cur < base / (1.0 + threshold) and base - cur > min_delta:
            return "improved", f"{base:.3f}s -> {cur:.3f}s"
        return "stable", f"{base:.3f}s -> {cur:.3f}s"
    return "info", f"{base} -> {cur}"


def weaknesses(metrics: dict) -> list[str]:
    """Baseline-independent weakness flags for one cell's metrics."""
    weak = []
    succ = metrics.get("succ_pct")
    if succ is not None and succ < WEAK_SUCC_PCT:
        weak.append(f"succ_pct {succ:g} < {WEAK_SUCC_PCT:g}")
    b0 = metrics.get("b0_pct")
    if b0 is not None and b0 > WEAK_B0_PCT:
        weak.append(f"b0_pct {b0:g} > {WEAK_B0_PCT:g}")
    ratio = metrics.get("vm_overhead_ratio")
    if ratio is not None and ratio > WEAK_OVERHEAD_RATIO:
        weak.append(f"vm_overhead_ratio {ratio:g} > {WEAK_OVERHEAD_RATIO:g}")
    check = metrics.get("check_equivalent")
    if check is not None and check < 1:
        weak.append("check_equivalent 0 (equivalence violated)")
    warm = metrics.get("warm_speedup")
    if warm is not None and warm < WEAK_WARM_SPEEDUP:
        weak.append(f"warm_speedup {warm:g} < {WEAK_WARM_SPEEDUP:g}")
    return weak


@dataclass
class CellTrend:
    """One cell's classification against the baseline."""

    cell_id: str
    status: str  # "improved" | "stable" | "regressed" | "new" | "missing"
    weak: list[str] = field(default_factory=list)
    failed: str | None = None  # non-ok cell verdict from the run itself
    metrics: dict[str, dict] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "cell": self.cell_id,
            "status": self.status,
            "weak": self.weak,
            "failed": self.failed,
            "metrics": self.metrics,
        }


@dataclass
class TrendReport:
    """Aggregate trend verdict for one matrix run."""

    cells: list[CellTrend] = field(default_factory=list)
    missing_metrics: list[str] = field(default_factory=list)

    def by_status(self, status: str) -> list[CellTrend]:
        return [c for c in self.cells if c.status == status]

    @property
    def regressed(self) -> list[CellTrend]:
        return self.by_status("regressed")

    @property
    def missing(self) -> list[CellTrend]:
        return self.by_status("missing")

    @property
    def weak_cells(self) -> list[CellTrend]:
        return [c for c in self.cells if c.weak]

    @property
    def failed_cells(self) -> list[CellTrend]:
        return [c for c in self.cells if c.failed]

    def counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for cell in self.cells:
            counts[cell.status] = counts.get(cell.status, 0) + 1
        counts["weak"] = len(self.weak_cells)
        counts["failed"] = len(self.failed_cells)
        return counts

    def to_dict(self) -> dict:
        return {
            "schema": TREND_SCHEMA,
            "counts": self.counts(),
            "missing_metrics": self.missing_metrics,
            "cells": [c.to_dict() for c in self.cells],
        }


def load_matrix(path: pathlib.Path) -> dict:
    payload = json.loads(path.read_text())
    if payload.get("schema") != SCHEMA:
        raise SystemExit(f"{path}: unexpected schema {payload.get('schema')!r}")
    return payload


def compare(
    current: dict,
    baseline: dict,
    *,
    threshold: float = 0.25,
    min_delta: float = 0.05,
) -> TrendReport:
    """Classify every cell of *current* against *baseline*."""
    report = TrendReport()
    cur_cells = current.get("cells", {})
    base_cells = baseline.get("cells", {})

    for cell_id in sorted(set(base_cells) | set(cur_cells)):
        cur = cur_cells.get(cell_id)
        base = base_cells.get(cell_id)
        if cur is None:
            report.cells.append(CellTrend(cell_id=cell_id, status="missing"))
            continue
        cur_metrics = cur.get("metrics", {})
        trend = CellTrend(cell_id=cell_id, status="new")
        if cur.get("verdict") not in (None, "ok", "unsupported"):
            trend.failed = f"{cur.get('verdict')}: {cur.get('error') or ''}".strip()
        trend.weak = weaknesses(cur_metrics)
        if base is not None:
            base_metrics = base.get("metrics", {})
            statuses = []
            for name in sorted(base_metrics):
                if name not in cur_metrics:
                    report.missing_metrics.append(f"{cell_id}:{name}")
                    continue
                status, detail = classify_metric(
                    name,
                    base_metrics[name],
                    cur_metrics[name],
                    threshold=threshold,
                    min_delta=min_delta,
                )
                trend.metrics[name] = {
                    "baseline": base_metrics[name],
                    "current": cur_metrics[name],
                    "status": status,
                    "detail": detail,
                }
                statuses.append(status)
            if "regressed" in statuses:
                trend.status = "regressed"
            elif "improved" in statuses:
                trend.status = "improved"
            else:
                trend.status = "stable"
        report.cells.append(trend)
    return report


# -- history -----------------------------------------------------------------


def load_history(path: pathlib.Path) -> list[dict]:
    """Parse the JSONL history file (missing file -> empty history)."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if entry.get("schema") == HISTORY_SCHEMA:
            entries.append(entry)
    return entries


def append_history(path: pathlib.Path, payload: dict, report: TrendReport) -> dict:
    """Append this run's per-cell key metrics and verdict to *path*."""
    import datetime

    entry = {
        "schema": HISTORY_SCHEMA,
        "when": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "suite": payload.get("suite"),
        "counts": report.counts(),
        "cells": {
            cell_id: {
                name: cell.get("metrics", {}).get(name)
                for name in ("rewrite_s", "succ_pct", "vm_overhead_ratio")
                if name in cell.get("metrics", {})
            }
            for cell_id, cell in payload.get("cells", {}).items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _history_line(history: list[dict], cell_id: str) -> str:
    values = [
        entry.get("cells", {}).get(cell_id, {}).get("rewrite_s")
        for entry in history[-HISTORY_WINDOW:]
    ]
    shown = [f"{v:.3f}" if isinstance(v, (int, float)) else "-" for v in values]
    return " -> ".join(shown) if shown else "(no history)"


# -- rendering ---------------------------------------------------------------

_STATUS_MARK = {
    "improved": "+",
    "stable": "=",
    "regressed": "!",
    "new": "*",
    "missing": "?",
}


def render_markdown(report: TrendReport, history: list[dict] | None = None) -> str:
    """The human-facing trend report (uploaded as a CI artifact)."""
    counts = report.counts()
    lines = ["# Evaluation-matrix trend report", ""]
    summary = ", ".join(
        f"{counts.get(k, 0)} {k}"
        for k in ("improved", "stable", "regressed", "new", "missing", "weak", "failed")
    )
    lines += [f"**Cells:** {summary}", ""]
    lines += [
        "| cell | trend | weak | notes |",
        "|---|---|---|---|",
    ]
    for cell in report.cells:
        notes = []
        for name, m in cell.metrics.items():
            if m["status"] in ("regressed", "improved"):
                notes.append(f"{name}: {m['detail']}")
        if cell.failed:
            notes.append(f"run failed ({cell.failed})")
        lines.append(
            f"| `{cell.cell_id}` | {_STATUS_MARK.get(cell.status, '?')} {cell.status} "
            f"| {'; '.join(cell.weak) or '-'} | {'; '.join(notes) or '-'} |"
        )
    if report.missing_metrics:
        lines += ["", "## Missing metrics", ""]
        lines += [f"- `{name}` (missing-metric)" for name in report.missing_metrics]
    if report.weak_cells:
        lines += ["", "## Weak cells (targets for ROADMAP items 2-4)", ""]
        for cell in report.weak_cells:
            lines.append(f"- `{cell.cell_id}`: {'; '.join(cell.weak)}")
    if history:
        lines += ["", f"## History (rewrite_s, last {HISTORY_WINDOW} runs)", ""]
        for cell in report.cells:
            if cell.status in ("regressed", "improved") or cell.weak:
                lines.append(f"- `{cell.cell_id}`: {_history_line(history, cell.cell_id)}")
    lines.append("")
    return "\n".join(lines)


def print_console(report: TrendReport) -> None:
    width = max((len(c.cell_id) for c in report.cells), default=10)
    for cell in report.cells:
        # "missing" only fails under --strict; flag it distinctly so a
        # vanished cell cannot read as a healthy one.
        flag = {"regressed": "FAIL", "missing": "MISS"}.get(cell.status, "ok  ")
        weak = f"  WEAK: {'; '.join(cell.weak)}" if cell.weak else ""
        failed = f"  RUN-FAILED: {cell.failed}" if cell.failed else ""
        print(f"  {cell.cell_id.ljust(width)}  {flag}  {cell.status}{weak}{failed}")
    for name in report.missing_metrics:
        print(f"  missing-metric: {name}")


# -- CLI ---------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", default=str(DEFAULT_CURRENT))
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_GATE_THRESHOLD", "0.25")),
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=0.05,
        help="absolute seconds a timing must move before the relative "
        "threshold applies (noise floor, default 0.05)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a baseline cell or metric is missing from "
        "the current run",
    )
    parser.add_argument(
        "--fail-weak",
        action="store_true",
        help="also fail when any cell is weak (scheduled full-matrix "
        "runs report weakness without failing by default)",
    )
    parser.add_argument("--report", metavar="PATH", help="write the markdown report")
    parser.add_argument("--json", metavar="PATH", help="write the JSON classification")
    parser.add_argument(
        "--history",
        metavar="PATH",
        help="append this run to a JSONL history file and fold recent "
        "runs into the report",
    )
    args = parser.parse_args(argv)

    current = load_matrix(pathlib.Path(args.current))
    baseline = load_matrix(pathlib.Path(args.baseline))
    report = compare(
        current, baseline, threshold=args.threshold, min_delta=args.min_delta
    )

    history: list[dict] = []
    if args.history:
        history_path = pathlib.Path(args.history)
        history = load_history(history_path)
        append_history(history_path, current, report)

    counts = report.counts()
    print(
        f"matrix trend: threshold {args.threshold:.0%}, "
        f"{len(report.cells)} cell(s), suite {current.get('suite')!r}"
    )
    print_console(report)

    if args.report:
        path = pathlib.Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_markdown(report, history))
        print(f"wrote {path}")
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"wrote {path}")

    failures = []
    if report.regressed:
        failures.append(
            f"{len(report.regressed)} cell(s) regressed: "
            + ", ".join(c.cell_id for c in report.regressed)
        )
    if report.failed_cells:
        failures.append(
            f"{len(report.failed_cells)} cell(s) failed to run: "
            + ", ".join(c.cell_id for c in report.failed_cells)
        )
    if args.strict and (report.missing or report.missing_metrics):
        failures.append(
            f"strict: {len(report.missing)} missing cell(s), "
            f"{len(report.missing_metrics)} missing metric(s)"
        )
    if args.fail_weak and report.weak_cells:
        failures.append(
            f"{len(report.weak_cells)} weak cell(s): "
            + ", ".join(c.cell_id for c in report.weak_cells)
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(
            "If intentional, apply the 'bench-regression-ok' PR label or "
            "regenerate benchmarks/BENCH_matrix.json.",
            file=sys.stderr,
        )
        return 1
    print(f"\nmatrix trend: OK ({counts})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
