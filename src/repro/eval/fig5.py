"""Figure 5 harness: empty (A2) vs LowFat heap-write instrumentation.

For each SPEC profile (plus browser means), run the same workload three
ways in the VM — original, A2 with the empty instrumentation, A2 with
the LowFat redzone check — and report the two relative overheads.  The
paper's headline: SPEC mean rises from +64.71% (empty) to +127.27%
(LowFat); Chrome/FireFox from +113%/+46% to +170%/+60%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import RewriteConfig, rewrite_many
from repro.lowfat import (
    LowFatAllocator,
    LowFatLayout,
    install_lowfat_heap,
    lowfat_instrumentation,
)
from repro.synth.generator import BUFFER_SIZE, SynthesisParams, synthesize
from repro.synth.profiles import BinaryProfile, SPEC_PROFILES
from repro.vm.machine import run_elf

TRANSFER_WEIGHT = 2
LOOP_ITERS = 3


@dataclass
class Fig5Row:
    name: str
    empty_pct: float  # A2 empty instrumentation overhead (100 = parity)
    lowfat_pct: float  # A2 LowFat redzone-check overhead
    paper_empty_pct: float | None = None


def run_one(profile: BinaryProfile, *, jobs: int | None = None,
            cache=None) -> Fig5Row:
    """Measure empty-vs-LowFat overhead for one profile's workload.

    The LowFat configuration's instrumentation is a factory closure, so
    ``jobs`` degrades to the serial path for it — ``cache`` still spares
    the decode on warm runs.
    """
    layout = LowFatLayout()
    allocator = LowFatAllocator(layout)
    buffer_ptr = allocator.malloc(BUFFER_SIZE)

    params = SynthesisParams.from_profile(profile, loop_iters=LOOP_ITERS)
    params.buffer_addr = buffer_ptr
    # Keep the timing workload bounded for the interpreter.
    params.n_jump_sites = min(params.n_jump_sites, 120)
    params.n_write_sites = min(params.n_write_sites, 160)
    binary = synthesize(params)
    orig = run_elf(binary.data)

    def lowfat_factory(rewriter):
        return lowfat_instrumentation(install_lowfat_heap(rewriter, layout))

    # One batch, one decode: empty-body and LowFat configurations.
    options = RewriteOptions(mode="loader")
    reports = rewrite_many(
        binary.data,
        [RewriteConfig(instrumentation="empty", options=options,
                       label="empty"),
         RewriteConfig(instrumentation=lowfat_factory, options=options,
                       label="lowfat")],
        matcher="heap-writes", jobs=jobs, cache=cache,
    )

    def cost(report) -> int:
        run = run_elf(report.result.data)
        if run.observable != orig.observable:
            raise AssertionError(f"behaviour changed for {profile.name}")
        return run.weighted_cost(TRANSFER_WEIGHT)

    base_cost = max(1, orig.weighted_cost(TRANSFER_WEIGHT))
    return Fig5Row(
        name=profile.name,
        empty_pct=100.0 * cost(reports[0]) / base_cost,
        lowfat_pct=100.0 * cost(reports[1]) / base_cost,
        paper_empty_pct=profile.a2.time_pct,
    )


def run_fig5(profiles: list[BinaryProfile] | None = None, *,
             jobs: int | None = None, cache=None) -> list[Fig5Row]:
    profiles = profiles if profiles is not None else SPEC_PROFILES
    return [run_one(p, jobs=jobs, cache=cache) for p in profiles]


def format_fig5(rows: list[Fig5Row]) -> str:
    lines = [f"{'binary':<14}{'A2 empty':>12}{'LowFat':>12}{'paper A2':>12}"]
    for row in rows:
        paper = f"{row.paper_empty_pct:.1f}%" if row.paper_empty_pct else "-"
        lines.append(
            f"{row.name:<14}{row.empty_pct:>11.1f}%{row.lowfat_pct:>11.1f}%"
            f"{paper:>12}"
        )
    if rows:
        mean_e = sum(r.empty_pct for r in rows) / len(rows)
        mean_l = sum(r.lowfat_pct for r in rows) / len(rows)
        lines.append(f"{'Mean':<14}{mean_e:>11.1f}%{mean_l:>11.1f}%{'-':>12}")
    return "\n".join(lines)
