"""Table 1 harness: patching statistics per binary and application.

For every profile row, synthesize the scaled stand-in binary, run the
rewriter for A1 (jumps) and A2 (heap writes), and report #Loc, the
per-tactic coverage breakdown, Succ%, Size%, and (optionally, via the
VM) Time%.  The published numbers ride along for paper-vs-measured
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.elf.reader import ElfFile
from repro.frontend.tool import RewriteConfig, rewrite_many
from repro.synth.generator import SynthesisParams, synthesize
from repro.synth.profiles import ALL_PROFILES, BinaryProfile, PaperRow
from repro.vm.machine import run_elf

# Loop iterations for the VM timing runs (kept modest: the VM is an
# interpreter; overhead ratios converge quickly).
TIME_LOOP_ITERS = 4

# Extra cost charged per taken control transfer when estimating Time%.
TRANSFER_WEIGHT = 2


@dataclass
class Table1Row:
    """One (binary, application) measurement."""

    name: str
    app: str  # "A1" or "A2"
    locs: int
    base_pct: float
    t1_pct: float
    t2_pct: float
    t3_pct: float
    succ_pct: float
    size_pct: float
    time_pct: float | None
    paper: PaperRow

    def cells(self) -> list[str]:
        time = f"{self.time_pct:.2f}" if self.time_pct is not None else "-"
        return [
            self.name, self.app, str(self.locs),
            f"{self.base_pct:.2f}", f"{self.t1_pct:.2f}",
            f"{self.t2_pct:.2f}", f"{self.t3_pct:.2f}",
            f"{self.succ_pct:.2f}", time, f"{self.size_pct:.2f}",
        ]


def run_profile(
    profile: BinaryProfile,
    apps: tuple[str, ...] = ("A1", "A2"),
    *,
    measure_time: bool = False,
    toggles: TacticToggles | None = None,
    grouping: bool = True,
    granularity: int = 1,
    jobs: int | None = None,
    cache=None,
) -> list[Table1Row]:
    """Measure the Table 1 cells for *profile*, one row per application.

    The applications are batched through :func:`rewrite_many`, so the
    stand-in binary is synthesized and disassembled once per profile.
    *jobs*/*cache* forward to the batch layer: worker processes per
    (binary, app) pair and the on-disk decode/match artifact cache.
    """
    loop_iters = TIME_LOOP_ITERS if measure_time else 0
    binary = synthesize(
        SynthesisParams.from_profile(profile, loop_iters=loop_iters)
    )
    # Reserve the *unscaled* image footprint so big binaries (browsers)
    # crowd their rel32 window the way the real ones do.
    image_end = ElfFile(binary.data).image_end
    pressure = int(profile.image_pressure_mb * 1024 * 1024)
    reserve = ((image_end, image_end + pressure),) if pressure else ()
    options = RewriteOptions(
        mode="loader", grouping=grouping, granularity=granularity,
        toggles=toggles or TacticToggles(),
        shared=profile.shared,
        # Shared stand-ins are real ET_DYN objects whose loader stub
        # reopens the library by its install path (no /proc/self/exe).
        library_path=f"/usr/lib/{profile.name}" if profile.shared else None,
        reserve_extra=reserve,
    )
    configs = [
        RewriteConfig(
            matcher="jumps" if app == "A1" else "heap-writes",
            options=options, label=app,
        )
        for app in apps
    ]
    reports = rewrite_many(binary.data, configs, jobs=jobs, cache=cache)

    orig = run_elf(binary.data) if measure_time else None
    rows: list[Table1Row] = []
    for app, report in zip(apps, reports):
        stats = report.stats
        time_pct: float | None = None
        if measure_time:
            patched = run_elf(report.result.data)
            if patched.observable != orig.observable:
                raise AssertionError(
                    f"behaviour changed for {profile.name}/{app}"
                )
            time_pct = 100.0 * patched.weighted_cost(TRANSFER_WEIGHT) / max(
                1, orig.weighted_cost(TRANSFER_WEIGHT)
            )
        paper = profile.a1 if app == "A1" else profile.a2
        rows.append(Table1Row(
            name=profile.name,
            app=app,
            locs=stats.total,
            base_pct=stats.base_pct,
            t1_pct=stats.t1_pct,
            t2_pct=stats.t2_pct,
            t3_pct=stats.t3_pct,
            succ_pct=stats.success_pct,
            size_pct=report.result.size_pct,
            time_pct=time_pct,
            paper=paper,
        ))
    return rows


def run_row(
    profile: BinaryProfile,
    app: str,
    *,
    measure_time: bool = False,
    toggles: TacticToggles | None = None,
    grouping: bool = True,
    granularity: int = 1,
    jobs: int | None = None,
    cache=None,
) -> Table1Row:
    """Measure one Table 1 cell pair for *profile*."""
    return run_profile(
        profile, (app,),
        measure_time=measure_time, toggles=toggles,
        grouping=grouping, granularity=granularity,
        jobs=jobs, cache=cache,
    )[0]


def run_table(
    profiles: list[BinaryProfile] | None = None,
    apps: tuple[str, ...] = ("A1", "A2"),
    *,
    time_for_categories: tuple[str, ...] = ("spec",),
    jobs: int | None = None,
    cache=None,
) -> list[Table1Row]:
    """Reproduce the full Table 1 (Time% measured for SPEC rows only,
    matching the paper)."""
    profiles = profiles if profiles is not None else ALL_PROFILES
    rows: list[Table1Row] = []
    for profile in profiles:
        rows.extend(
            run_profile(
                profile, apps,
                measure_time=profile.category in time_for_categories,
                jobs=jobs, cache=cache,
            )
        )
    return rows


_HEADER = ["binary", "app", "#Loc", "Base%", "T1%", "T2%", "T3%",
           "Succ%", "Time%", "Size%"]


def format_table(rows: list[Table1Row], *, with_paper: bool = True) -> str:
    """Render rows in the paper's column layout, optionally interleaving
    the published values as ``(paper ...)`` reference lines."""
    lines = ["  ".join(f"{h:>10}" for h in _HEADER)]
    for row in rows:
        lines.append("  ".join(f"{c:>10}" for c in row.cells()))
        if with_paper:
            p = row.paper
            ref = [
                "(paper)", row.app, str(p.locs),
                f"{p.base_pct:.2f}", f"{p.t1_pct:.2f}", f"{p.t2_pct:.2f}",
                f"{p.t3_pct:.2f}", f"{p.succ_pct:.2f}",
                f"{p.time_pct:.2f}" if p.time_pct is not None else "-",
                f"{p.size_pct:.2f}",
            ]
            lines.append("  ".join(f"{c:>10}" for c in ref))
    return "\n".join(lines)


def rank_correlation(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation — the reproduction's shape-agreement
    metric: do the binaries the paper found hard rank hard here too?"""
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need >= 3 paired samples")

    def ranks(values: list[float]) -> list[float]:
        order = sorted(range(len(values)), key=lambda i: values[i])
        out = [0.0] * len(values)
        i = 0
        while i < len(order):
            j = i
            while (j + 1 < len(order)
                   and values[order[j + 1]] == values[order[i]]):
                j += 1
            avg = (i + j) / 2 + 1
            for k in range(i, j + 1):
                out[order[k]] = avg
            i = j + 1
        return out

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    mean = (n + 1) / 2
    cov = sum((a - mean) * (b - mean) for a, b in zip(rx, ry))
    varx = sum((a - mean) ** 2 for a in rx)
    vary = sum((b - mean) ** 2 for b in ry)
    if varx == 0 or vary == 0:
        return 0.0
    return cov / (varx * vary) ** 0.5


def shape_agreement(rows: list[Table1Row]) -> dict[str, float]:
    """Rank correlations between measured and published per-row values."""
    out = {}
    for attr in ("base_pct", "succ_pct", "size_pct"):
        measured = [getattr(r, attr) for r in rows]
        published = [getattr(r.paper, attr) for r in rows]
        try:
            out[attr] = rank_correlation(measured, published)
        except ValueError:
            pass
    timed = [r for r in rows if r.time_pct is not None
             and r.paper.time_pct is not None]
    if len(timed) >= 3:
        out["time_pct"] = rank_correlation(
            [r.time_pct for r in timed],
            [r.paper.time_pct for r in timed])
    return out


def aggregate(rows: list[Table1Row]) -> dict[str, float]:
    """Location-weighted aggregate percentages (the paper's Total/Avg row)."""
    total = sum(r.locs for r in rows)
    if not total:
        return {}

    def wavg(attr: str) -> float:
        return sum(getattr(r, attr) * r.locs for r in rows) / total

    out = {
        "locs": total,
        "base_pct": wavg("base_pct"),
        "t1_pct": wavg("t1_pct"),
        "t2_pct": wavg("t2_pct"),
        "t3_pct": wavg("t3_pct"),
        "succ_pct": wavg("succ_pct"),
        "size_pct": sum(r.size_pct for r in rows) / len(rows),
    }
    timed = [r for r in rows if r.time_pct is not None]
    if timed:
        out["time_pct"] = sum(r.time_pct for r in timed) / len(timed)
    return out
