"""Experiment harnesses: one module per table/figure of the paper.

* :mod:`repro.eval.table1` — Table 1 (coverage, Time%, Size%)
* :mod:`repro.eval.dromaeo` — Figure 4 (browser DOM benchmark overheads)
* :mod:`repro.eval.fig5` — Figure 5 (empty vs LowFat instrumentation)
* :mod:`repro.eval.ablation` — in-text claims (no-T3 coverage, grouping
  off, B0 slowdown, PIE effect, scale invariance)
"""

from repro.eval.table1 import Table1Row, run_row, run_table, format_table
from repro.eval.dromaeo import DromaeoResult, run_dromaeo, format_dromaeo
from repro.eval.fig5 import Fig5Row, run_fig5, format_fig5

__all__ = [
    "Table1Row",
    "run_row",
    "run_table",
    "format_table",
    "DromaeoResult",
    "run_dromaeo",
    "format_dromaeo",
    "Fig5Row",
    "run_fig5",
    "format_fig5",
]
