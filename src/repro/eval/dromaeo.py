"""Figure 4 harness: Dromaeo DOM browser benchmark overheads.

The paper instruments Chrome and FireFox with the A2 (heap write)
application and measures relative slowdowns across 14 Dromaeo DOM
suites.  We reproduce the *experiment shape* with 14 synthetic DOM-like
kernels: each suite has its own mix of store density (attribute/DOM
mutation suites write heavily; query/traversal suites are read-mostly).
FireFox's lower sensitivity — the paper attributes it to time spent in
JIT code and non-instrumented shared objects — is modelled by
instrumenting only a fraction of each kernel's write sites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rewriter import RewriteOptions, Rewriter
from repro.core.strategy import PatchRequest
from repro.core.trampoline import Empty
from repro.elf.reader import ElfFile
from repro.frontend.lineardisasm import disassemble_text
from repro.frontend.matchers import match_heap_writes
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import run_elf

TRANSFER_WEIGHT = 2

# Suite name -> (write_sites, jump_sites): mutation-heavy suites store
# more; query/traverse suites branch more and store less.
DROMAEO_SUITES: dict[str, tuple[int, int]] = {
    "Attrib": (90, 40),
    "Attrib.Proto": (80, 45),
    "Attrib.jQuery": (70, 50),
    "Modify": (110, 35),
    "Modify.Proto": (95, 40),
    "Modify.jQuery": (85, 45),
    "Query": (30, 80),
    "Style.Proto": (75, 50),
    "Style.jQuery": (65, 55),
    "Events.Proto": (55, 65),
    "Events.jQuery": (50, 70),
    "Traverse": (25, 90),
    "Traverse.Proto": (35, 85),
    "Traverse.jQuery": (40, 80),
}

# Fraction of each kernel's write sites actually instrumented: Chrome's
# whole binary is patched; for FireFox the paper's workload spends much
# of its time in JIT'ed code and non-patched shared objects.
BROWSER_COVERAGE = {"Chrome": 1.0, "FireFox": 0.35}

LOOP_ITERS = 3


@dataclass
class DromaeoResult:
    suite: str
    browser: str
    overhead_pct: float  # relative runtime, 100 = parity


def _run_suite(suite: str, browser: str, seed: int) -> DromaeoResult:
    writes, jumps = DROMAEO_SUITES[suite]
    params = SynthesisParams(
        n_jump_sites=jumps,
        n_write_sites=writes,
        pie=True,  # both browsers are PIE
        seed=seed,
        loop_iters=LOOP_ITERS,
    )
    binary = synthesize(params)
    orig = run_elf(binary.data)

    elf = ElfFile(binary.data)
    instructions = disassemble_text(elf)
    sites = [i for i in instructions if match_heap_writes(i)]
    coverage = BROWSER_COVERAGE[browser]
    n_instrumented = int(len(sites) * coverage)
    sites = sites[:n_instrumented]

    rewriter = Rewriter(elf, instructions, RewriteOptions(mode="loader"))
    result = rewriter.rewrite(
        [PatchRequest(insn=i, instrumentation=Empty()) for i in sites]
    )
    patched = run_elf(result.data)
    if patched.observable != orig.observable:
        raise AssertionError(f"behaviour changed in suite {suite}/{browser}")
    overhead = 100.0 * patched.weighted_cost(TRANSFER_WEIGHT) / max(
        1, orig.weighted_cost(TRANSFER_WEIGHT)
    )
    return DromaeoResult(suite=suite, browser=browser, overhead_pct=overhead)


def run_dromaeo(
    browsers: tuple[str, ...] = ("Chrome", "FireFox"),
    suites: list[str] | None = None,
) -> list[DromaeoResult]:
    """Reproduce Figure 4: per-suite relative overheads + geometric mean."""
    suites = suites or list(DROMAEO_SUITES)
    results: list[DromaeoResult] = []
    for browser in browsers:
        for i, suite in enumerate(suites):
            results.append(_run_suite(suite, browser, seed=1000 + i))
    return results


def geometric_mean(values: list[float]) -> float:
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values)) if values else 0.0


def format_dromaeo(results: list[DromaeoResult]) -> str:
    browsers = sorted({r.browser for r in results})
    suites = list(dict.fromkeys(r.suite for r in results))
    lines = ["  ".join([f"{'suite':<18}"] + [f"{b:>10}" for b in browsers])]
    table = {(r.suite, r.browser): r.overhead_pct for r in results}
    for suite in suites:
        cells = [f"{suite:<18}"]
        for b in browsers:
            cells.append(f"{table.get((suite, b), 0):>9.1f}%")
        lines.append("  ".join(cells))
    cells = [f"{'Geom.Mean':<18}"]
    for b in browsers:
        vals = [r.overhead_pct for r in results if r.browser == b]
        cells.append(f"{geometric_mean(vals):>9.1f}%")
    lines.append("  ".join(cells))
    return "\n".join(lines)
