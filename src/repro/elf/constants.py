"""ELF64 file-format constants (the subset needed for x86-64 Linux)."""

from __future__ import annotations

ELF_MAGIC = b"\x7fELF"

# e_ident indices
EI_CLASS = 4
EI_DATA = 5
EI_VERSION = 6

ELFCLASS64 = 2
ELFDATA2LSB = 1

# e_type
ET_EXEC = 2
ET_DYN = 3

# e_machine
EM_X86_64 = 62

# Program header types
PT_NULL = 0
PT_LOAD = 1
PT_DYNAMIC = 2
PT_INTERP = 3
PT_NOTE = 4
PT_PHDR = 6
PT_TLS = 7
PT_GNU_EH_FRAME = 0x6474E550
PT_GNU_STACK = 0x6474E551
PT_GNU_RELRO = 0x6474E552

# Program header flags
PF_X = 1
PF_W = 2
PF_R = 4

# Section header types
SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_HASH = 5
SHT_DYNAMIC = 6
SHT_NOTE = 7
SHT_NOBITS = 8
SHT_DYNSYM = 11
SHT_GNU_HASH = 0x6FFFFFF6

# Section flags
SHF_WRITE = 1
SHF_ALLOC = 2
SHF_EXECINSTR = 4

PAGE_SIZE = 4096

EHDR_SIZE = 64
PHDR_SIZE = 56
SHDR_SIZE = 64

# Linux syscall numbers used by the injected loader stub.
SYS_READ = 0
SYS_WRITE = 1
SYS_OPEN = 2
SYS_CLOSE = 3
SYS_MMAP = 9
SYS_MPROTECT = 10
SYS_EXIT = 60

# mmap constants
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4
MAP_PRIVATE = 2
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20

O_RDONLY = 0

# GNU property notes (.note.gnu.property): CET/IBT feature advertisement.
NT_GNU_PROPERTY_TYPE_0 = 5
GNU_PROPERTY_X86_FEATURE_1_AND = 0xC0000002
GNU_PROPERTY_X86_FEATURE_1_IBT = 1
GNU_PROPERTY_X86_FEATURE_1_SHSTK = 2

#: The endbr64 IBT landing-pad instruction (F3 0F 1E FA).
ENDBR64 = b"\xf3\x0f\x1e\xfa"
