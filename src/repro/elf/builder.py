"""Build minimal static x86-64 ELF executables from scratch.

Used by tests and examples to create fully controlled input binaries that
run natively on Linux (no libc, direct syscalls).  Supports both non-PIE
(ET_EXEC at a fixed low base, the paper's "hard" case) and PIE (ET_DYN)
layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.elf import constants as c
from repro.elf.structs import Ehdr, Phdr, Shdr
from repro.x86.encoder import Assembler

NONPIE_BASE = 0x400000
HEADER_ROOM = 0x1000  # ehdr + phdrs fit in the first page


@dataclass
class TinyProgram:
    """A tiny static executable under construction.

    The caller provides machine code through an :class:`Assembler` rooted
    at the text virtual address, plus optional data blobs placed in a
    read-write segment.  ``build()`` returns a runnable ELF image.

    >>> prog = TinyProgram()
    >>> a = prog.text
    >>> a.mov_imm32(0, 60 & 0xffffffff)  # doctest: +SKIP
    """

    pie: bool = False
    base: int = NONPIE_BASE
    data_blobs: list[tuple[str, bytes]] = field(default_factory=list)
    bss_size: int = 0
    # Extra anonymous read-write PT_LOAD segments: (vaddr, memsz).  Used
    # e.g. to pre-map the low-fat heap regions so hardened workloads run
    # both natively and in the VM.
    extra_segments: list[tuple[int, int]] = field(default_factory=list)
    _text: Assembler | None = None

    def __post_init__(self) -> None:
        if self.pie:
            self.base = 0
        self._text = Assembler(base=self.text_vaddr)

    @property
    def text_vaddr(self) -> int:
        return self.base + HEADER_ROOM

    @property
    def text(self) -> Assembler:
        assert self._text is not None
        return self._text

    def add_data(self, name: str, data: bytes) -> int:
        """Add a named blob to the data segment; returns its vaddr."""
        addr = self._data_vaddr() + sum(
            (len(d) + 7) & ~7 for _, d in self.data_blobs
        )
        self.data_blobs.append((name, data))
        return addr

    def data_vaddr(self, name: str) -> int:
        addr = self._data_vaddr()
        for blob_name, data in self.data_blobs:
            if blob_name == name:
                return addr
            addr += (len(data) + 7) & ~7
        raise KeyError(name)

    def _data_vaddr(self) -> int:
        # The data segment starts on the page after the (padded) text.
        text_end = self.text_vaddr + max(len(self.text.buf), 1)
        return (text_end + c.PAGE_SIZE - 1) & ~(c.PAGE_SIZE - 1)

    # -- common code fragments ----------------------------------------------

    def emit_exit(self, code: int) -> None:
        """exit(code) via syscall."""
        a = self.text
        a.mov_imm32(7, code)  # mov edi, code
        a.mov_imm32(0, c.SYS_EXIT)  # mov eax, 60
        a.syscall()

    def emit_write(self, fd: int, buf_vaddr: int | str, size: int) -> None:
        """write(fd, buf, size) via syscall (clobbers rax/rdi/rsi/rdx/rcx/r11)."""
        a = self.text
        a.mov_imm32(7, fd)
        if isinstance(buf_vaddr, str):
            a.lea_rip(6, buf_vaddr)
        else:
            if self.pie:
                a.mov_imm64(6, buf_vaddr)  # caller must pass run-time addr
            else:
                a.mov_imm64(6, buf_vaddr)
        a.mov_imm32(2, size)
        a.mov_imm32(0, c.SYS_WRITE)
        a.syscall()

    # -- emission -------------------------------------------------------------

    def build(self) -> bytes:
        """Assemble the final ELF image."""
        text_bytes = self.text.bytes()

        data_bytes = bytearray()
        for _, blob in self.data_blobs:
            data_bytes.extend(blob)
            pad = (-len(data_bytes)) % 8
            data_bytes.extend(b"\x00" * pad)

        text_off = HEADER_ROOM
        text_vaddr = self.text_vaddr
        data_off = (text_off + len(text_bytes) + c.PAGE_SIZE - 1) & ~(
            c.PAGE_SIZE - 1
        )
        data_vaddr = self._data_vaddr()

        phdrs = [
            Phdr(  # headers (read-only)
                type=c.PT_LOAD, flags=c.PF_R, offset=0, vaddr=self.base,
                paddr=self.base, filesz=HEADER_ROOM, memsz=HEADER_ROOM,
                align=c.PAGE_SIZE,
            ),
            Phdr(  # text
                type=c.PT_LOAD, flags=c.PF_R | c.PF_X, offset=text_off,
                vaddr=text_vaddr, paddr=text_vaddr,
                filesz=len(text_bytes), memsz=len(text_bytes),
                align=c.PAGE_SIZE,
            ),
        ]
        have_data = bool(data_bytes) or self.bss_size
        if have_data:
            phdrs.append(
                Phdr(
                    type=c.PT_LOAD, flags=c.PF_R | c.PF_W, offset=data_off,
                    vaddr=data_vaddr, paddr=data_vaddr,
                    filesz=len(data_bytes),
                    memsz=len(data_bytes) + self.bss_size,
                    align=c.PAGE_SIZE,
                )
            )
        for seg_vaddr, seg_memsz in self.extra_segments:
            phdrs.append(
                Phdr(
                    type=c.PT_LOAD, flags=c.PF_R | c.PF_W,
                    offset=seg_vaddr % c.PAGE_SIZE,  # congruence, no file bytes
                    vaddr=seg_vaddr, paddr=seg_vaddr,
                    filesz=0, memsz=seg_memsz, align=c.PAGE_SIZE,
                )
            )
        phdrs.append(
            Phdr(  # non-executable stack
                type=c.PT_GNU_STACK, flags=c.PF_R | c.PF_W, offset=0,
                vaddr=0, paddr=0, filesz=0, memsz=0, align=16,
            )
        )

        # Section headers: null, .text, .data, .shstrtab — so frontends can
        # locate .text the same way they would in a compiler-produced binary.
        shstrtab = b"\x00.text\x00.data\x00.shstrtab\x00"
        file_end = data_off + len(data_bytes) if have_data else text_off + len(text_bytes)
        shstr_off = file_end
        shoff = shstr_off + len(shstrtab)
        shdrs = [
            Shdr(0, c.SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0),
            Shdr(1, c.SHT_PROGBITS, c.SHF_ALLOC | c.SHF_EXECINSTR,
                 text_vaddr, text_off, len(text_bytes), 0, 0, 16, 0),
            Shdr(7, c.SHT_PROGBITS, c.SHF_ALLOC | c.SHF_WRITE,
                 data_vaddr, data_off, len(data_bytes), 0, 0, 8, 0),
            Shdr(13, c.SHT_STRTAB, 0, 0, shstr_off, len(shstrtab), 0, 0, 1, 0),
        ]

        ehdr = Ehdr.new(
            entry=text_vaddr,
            phoff=c.EHDR_SIZE,
            phnum=len(phdrs),
            type=c.ET_DYN if self.pie else c.ET_EXEC,
            shoff=shoff,
            shnum=len(shdrs),
            shstrndx=3,
        )

        out = bytearray()
        out.extend(ehdr.pack())
        for p in phdrs:
            out.extend(p.pack())
        if len(out) > HEADER_ROOM:
            raise OverflowError("too many program headers for header page")
        out.extend(b"\x00" * (HEADER_ROOM - len(out)))
        out.extend(text_bytes)
        if have_data:
            out.extend(b"\x00" * (data_off - len(out)))
            out.extend(data_bytes)
        out.extend(shstrtab)
        for s in shdrs:
            out.extend(s.pack())
        return bytes(out)


HelloBuilder = Callable[[], bytes]


def hello_world(message: bytes = b"hello, world\n", *, pie: bool = False) -> bytes:
    """Build a runnable hello-world executable (used by tests/examples)."""
    prog = TinyProgram(pie=pie)
    prog.add_data("msg", message)
    a = prog.text
    a.mov_imm32(7, 1)  # rdi = stdout
    if pie:
        a.lea_rip(6, "msg_label")
    else:
        a.mov_imm64(6, prog.data_vaddr("msg"))
    a.mov_imm32(2, len(message))
    a.mov_imm32(0, c.SYS_WRITE)
    a.syscall()
    a.mov_imm32(7, 0)
    a.mov_imm32(0, c.SYS_EXIT)
    a.syscall()
    if pie:
        # Place a rip-relative label at the data vaddr: emit padding into
        # text until the data page, which TinyProgram handles via blobs —
        # instead record the label at the known relative distance.
        a.labels["msg_label"] = prog.data_vaddr("msg") - a.base
    return prog.build()
