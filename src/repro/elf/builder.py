"""Build minimal static x86-64 ELF executables from scratch.

Used by tests and examples to create fully controlled input binaries that
run natively on Linux (no libc, direct syscalls).  Supports both non-PIE
(ET_EXEC at a fixed low base, the paper's "hard" case) and PIE (ET_DYN)
layouts, plus a shared-object mode (``shared=True``) that adds the
dynamic machinery a loader-mode rewrite needs to hijack: a writable
``.dynamic`` array with ``DT_INIT``, a ``.dynsym``/``.dynstr`` export
table, ``.gnu.hash``, and a ``PT_DYNAMIC`` segment.  ``cet_note=True``
additionally embeds a ``.note.gnu.property`` advertising IBT, matching
what ``gcc -fcf-protection`` produces on note-emitting toolchains.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.elf import constants as c
from repro.elf import dynamic as d
from repro.elf.structs import Ehdr, Phdr, Shdr
from repro.x86.encoder import Assembler

NONPIE_BASE = 0x400000
HEADER_ROOM = 0x1000  # ehdr + phdrs (+ property note) fit in the first page


def gnu_hash(name: bytes) -> int:
    """The GNU symbol-hash function (dl-new-hash)."""
    h = 5381
    for b in name:
        h = (h * 33 + b) & 0xFFFFFFFF
    return h


def build_gnu_property_note(features: int = c.GNU_PROPERTY_X86_FEATURE_1_IBT) -> bytes:
    """A ``.note.gnu.property`` blob advertising x86 feature bits."""
    desc = struct.pack(
        "<II4s4x", c.GNU_PROPERTY_X86_FEATURE_1_AND, 4,
        features.to_bytes(4, "little"),
    )
    return struct.pack(
        "<III4s", 4, len(desc), c.NT_GNU_PROPERTY_TYPE_0, b"GNU\x00"
    ) + desc


@dataclass
class TinyProgram:
    """A tiny static executable under construction.

    The caller provides machine code through an :class:`Assembler` rooted
    at the text virtual address, plus optional data blobs placed in a
    read-write segment.  ``build()`` returns a runnable ELF image.

    >>> prog = TinyProgram()
    >>> a = prog.text
    >>> a.mov_imm32(0, 60 & 0xffffffff)  # doctest: +SKIP
    """

    pie: bool = False
    base: int = NONPIE_BASE
    data_blobs: list[tuple[str, bytes]] = field(default_factory=list)
    bss_size: int = 0
    # Extra anonymous read-write PT_LOAD segments: (vaddr, memsz).  Used
    # e.g. to pre-map the low-fat heap regions so hardened workloads run
    # both natively and in the VM.
    extra_segments: list[tuple[int, int]] = field(default_factory=list)
    #: Shared-object mode: ET_DYN with PT_DYNAMIC, .dynamic (DT_INIT at
    #: the text entry), .dynsym/.dynstr exports and .gnu.hash.
    shared: bool = False
    #: Embed a .note.gnu.property advertising IBT (CET marker).
    cet_note: bool = False
    #: DT_INIT target; defaults to the text entry point.
    init_vaddr: int | None = None
    #: Exported (name, vaddr) pairs for .dynsym; defaults to a single
    #: "_repro_init" export at the init target.
    export_symbols: list[tuple[str, int]] = field(default_factory=list)
    _text: Assembler | None = None

    def __post_init__(self) -> None:
        if self.shared:
            self.pie = True
        if self.pie:
            self.base = 0
        self._text = Assembler(base=self.text_vaddr)

    @property
    def text_vaddr(self) -> int:
        return self.base + HEADER_ROOM

    @property
    def text(self) -> Assembler:
        assert self._text is not None
        return self._text

    def add_data(self, name: str, data: bytes) -> int:
        """Add a named blob to the data segment; returns its vaddr."""
        addr = self._data_vaddr() + sum(
            (len(d) + 7) & ~7 for _, d in self.data_blobs
        )
        self.data_blobs.append((name, data))
        return addr

    def data_vaddr(self, name: str) -> int:
        addr = self._data_vaddr()
        for blob_name, data in self.data_blobs:
            if blob_name == name:
                return addr
            addr += (len(data) + 7) & ~7
        raise KeyError(name)

    def _data_vaddr(self) -> int:
        # The data segment starts on the page after the (padded) text.
        text_end = self.text_vaddr + max(len(self.text.buf), 1)
        return (text_end + c.PAGE_SIZE - 1) & ~(c.PAGE_SIZE - 1)

    # -- common code fragments ----------------------------------------------

    def emit_exit(self, code: int) -> None:
        """exit(code) via syscall."""
        a = self.text
        a.mov_imm32(7, code)  # mov edi, code
        a.mov_imm32(0, c.SYS_EXIT)  # mov eax, 60
        a.syscall()

    def emit_write(self, fd: int, buf_vaddr: int | str, size: int) -> None:
        """write(fd, buf, size) via syscall (clobbers rax/rdi/rsi/rdx/rcx/r11)."""
        a = self.text
        a.mov_imm32(7, fd)
        if isinstance(buf_vaddr, str):
            a.lea_rip(6, buf_vaddr)
        else:
            if self.pie:
                a.mov_imm64(6, buf_vaddr)  # caller must pass run-time addr
            else:
                a.mov_imm64(6, buf_vaddr)
        a.mov_imm32(2, size)
        a.mov_imm32(0, c.SYS_WRITE)
        a.syscall()

    # -- emission -------------------------------------------------------------

    def _dynamic_machinery(
        self, data_len: int, data_vaddr: int
    ) -> tuple[bytes, dict[str, tuple[int, int]]]:
        """Build .dynstr/.dynsym/.gnu.hash/.dynamic image bytes appended
        to the data segment at *data_len*; returns (bytes, name ->
        (segment offset, size)) for the program/section headers."""
        init = self.init_vaddr if self.init_vaddr is not None else self.text_vaddr
        exports = self.export_symbols or [("_repro_init", init)]

        dynstr = bytearray(b"\x00")
        name_offs = []
        for name, _ in exports:
            name_offs.append(len(dynstr))
            dynstr.extend(name.encode() + b"\x00")

        # Null symbol + one GLOBAL FUNC per export, defined in .text (1).
        # Extents span to the next export (or text end), the way a real
        # linker records them — symbol-table consumers drop zero-sized
        # entries.
        text_end = self.text_vaddr + len(self.text.buf)
        svaddrs = sorted(v for _, v in exports)
        ends = {v: (svaddrs[i + 1] if i + 1 < len(svaddrs) else text_end)
                for i, v in enumerate(svaddrs)}
        dynsym = bytearray(struct.pack("<IBBHQQ", 0, 0, 0, 0, 0, 0))
        for (name, vaddr), noff in zip(exports, name_offs):
            size = max(1, ends.get(vaddr, text_end) - vaddr)
            dynsym.extend(struct.pack("<IBBHQQ", noff, 0x12, 0, 1,
                                      vaddr, size))

        # A one-bucket GNU hash table: every export chains from bucket 0
        # in dynsym order; the last chain entry carries the stop bit.
        hashes = [gnu_hash(name.encode()) for name, _ in exports]
        chain = [h & ~1 for h in hashes]
        if chain:
            chain[-1] = hashes[-1] | 1
        gnuhash = struct.pack("<IIII", 1, 1, 1, 6)
        gnuhash += (0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")  # bloom: pass
        gnuhash += struct.pack("<I", 1 if exports else 0)
        gnuhash += b"".join(struct.pack("<I", h) for h in chain)

        blob = bytearray()
        layout: dict[str, tuple[int, int]] = {}

        def place(name: str, payload: bytes) -> int:
            blob.extend(b"\x00" * ((-len(blob)) % 8))
            off = data_len + len(blob)
            layout[name] = (off, len(payload))
            blob.extend(payload)
            return data_vaddr + off

        str_vaddr = place(".dynstr", bytes(dynstr))
        sym_vaddr = place(".dynsym", bytes(dynsym))
        hash_vaddr = place(".gnu.hash", gnuhash)
        dyn = b"".join(
            struct.pack("<qQ", tag, value)
            for tag, value in (
                (d.DT_INIT, init),
                (d.DT_GNU_HASH, hash_vaddr),
                (d.DT_STRTAB, str_vaddr),
                (d.DT_SYMTAB, sym_vaddr),
                (d.DT_STRSZ, len(dynstr)),
                (d.DT_SYMENT, 24),
                (d.DT_NULL, 0),
            )
        )
        place(".dynamic", dyn)
        return bytes(blob), layout

    def build(self) -> bytes:
        """Assemble the final ELF image."""
        text_bytes = self.text.bytes()

        data_bytes = bytearray()
        for _, blob in self.data_blobs:
            data_bytes.extend(blob)
            pad = (-len(data_bytes)) % 8
            data_bytes.extend(b"\x00" * pad)

        text_off = HEADER_ROOM
        text_vaddr = self.text_vaddr
        data_off = (text_off + len(text_bytes) + c.PAGE_SIZE - 1) & ~(
            c.PAGE_SIZE - 1
        )
        data_vaddr = self._data_vaddr()

        dyn_layout: dict[str, tuple[int, int]] = {}
        if self.shared:
            dyn_blob, dyn_layout = self._dynamic_machinery(
                len(data_bytes), data_vaddr
            )
            data_bytes.extend(dyn_blob)

        phdrs = [
            Phdr(  # headers (read-only)
                type=c.PT_LOAD, flags=c.PF_R, offset=0, vaddr=self.base,
                paddr=self.base, filesz=HEADER_ROOM, memsz=HEADER_ROOM,
                align=c.PAGE_SIZE,
            ),
            Phdr(  # text
                type=c.PT_LOAD, flags=c.PF_R | c.PF_X, offset=text_off,
                vaddr=text_vaddr, paddr=text_vaddr,
                filesz=len(text_bytes), memsz=len(text_bytes),
                align=c.PAGE_SIZE,
            ),
        ]
        have_data = bool(data_bytes) or self.bss_size
        if have_data:
            phdrs.append(
                Phdr(
                    type=c.PT_LOAD, flags=c.PF_R | c.PF_W, offset=data_off,
                    vaddr=data_vaddr, paddr=data_vaddr,
                    filesz=len(data_bytes),
                    memsz=len(data_bytes) + self.bss_size,
                    align=c.PAGE_SIZE,
                )
            )
        if self.shared:
            dyn_off, dyn_size = dyn_layout[".dynamic"]
            phdrs.append(
                Phdr(
                    type=c.PT_DYNAMIC, flags=c.PF_R | c.PF_W,
                    offset=data_off + dyn_off, vaddr=data_vaddr + dyn_off,
                    paddr=data_vaddr + dyn_off,
                    filesz=dyn_size, memsz=dyn_size, align=8,
                )
            )
        for seg_vaddr, seg_memsz in self.extra_segments:
            phdrs.append(
                Phdr(
                    type=c.PT_LOAD, flags=c.PF_R | c.PF_W,
                    offset=seg_vaddr % c.PAGE_SIZE,  # congruence, no file bytes
                    vaddr=seg_vaddr, paddr=seg_vaddr,
                    filesz=0, memsz=seg_memsz, align=c.PAGE_SIZE,
                )
            )
        phdrs.append(
            Phdr(  # non-executable stack
                type=c.PT_GNU_STACK, flags=c.PF_R | c.PF_W, offset=0,
                vaddr=0, paddr=0, filesz=0, memsz=0, align=16,
            )
        )
        note = b""
        if self.cet_note:
            note = build_gnu_property_note()
            phdrs.append(
                Phdr(  # placeholder; offset patched once phnum is final
                    type=c.PT_NOTE, flags=c.PF_R, offset=0, vaddr=0,
                    paddr=0, filesz=len(note), memsz=len(note), align=8,
                )
            )
        note_off = (c.EHDR_SIZE + len(phdrs) * c.PHDR_SIZE + 7) & ~7
        if note:
            phdrs[-1].offset = note_off
            phdrs[-1].vaddr = phdrs[-1].paddr = self.base + note_off

        # Section headers — so frontends can locate .text (and the
        # dynamic machinery) the same way they would in a compiler-
        # produced binary.  .text must stay at index 1 (dynsym st_shndx).
        sec_specs: list[tuple[str, Shdr]] = [
            ("", Shdr(0, c.SHT_NULL, 0, 0, 0, 0, 0, 0, 0, 0)),
            (".text", Shdr(0, c.SHT_PROGBITS, c.SHF_ALLOC | c.SHF_EXECINSTR,
                           text_vaddr, text_off, len(text_bytes), 0, 0, 16, 0)),
            (".data", Shdr(0, c.SHT_PROGBITS, c.SHF_ALLOC | c.SHF_WRITE,
                           data_vaddr, data_off, len(data_bytes), 0, 0, 8, 0)),
        ]
        if note:
            sec_specs.append(
                (".note.gnu.property",
                 Shdr(0, c.SHT_NOTE, c.SHF_ALLOC, self.base + note_off,
                      note_off, len(note), 0, 0, 8, 0))
            )
        if self.shared:
            dynstr_index = len(sec_specs) + 1  # .dynstr follows .dynsym
            sec_types = {
                ".dynsym": (c.SHT_DYNSYM, dynstr_index, 24),
                ".dynstr": (c.SHT_STRTAB, 0, 0),
                ".gnu.hash": (c.SHT_GNU_HASH, dynstr_index - 1, 0),
                ".dynamic": (c.SHT_DYNAMIC, dynstr_index, 16),
            }
            for name in (".dynsym", ".dynstr", ".gnu.hash", ".dynamic"):
                off, size = dyn_layout[name]
                sh_type, link, entsize = sec_types[name]
                sec_specs.append(
                    (name,
                     Shdr(0, sh_type, c.SHF_ALLOC, data_vaddr + off,
                          data_off + off, size, link,
                          1 if name == ".dynsym" else 0, 8, entsize))
                )
        sec_specs.append((".shstrtab", Shdr(0, c.SHT_STRTAB, 0, 0, 0, 0,
                                            0, 0, 1, 0)))

        shstrtab = bytearray(b"\x00")
        shdrs = []
        for name, sh in sec_specs:
            if name:
                sh.name = len(shstrtab)
                shstrtab.extend(name.encode() + b"\x00")
            shdrs.append(sh)
        file_end = (data_off + len(data_bytes) if have_data
                    else text_off + len(text_bytes))
        shstr_off = file_end
        shdrs[-1].offset = shstr_off
        shdrs[-1].size = len(shstrtab)
        shoff = shstr_off + len(shstrtab)

        ehdr = Ehdr.new(
            entry=text_vaddr,
            phoff=c.EHDR_SIZE,
            phnum=len(phdrs),
            type=c.ET_DYN if self.pie else c.ET_EXEC,
            shoff=shoff,
            shnum=len(shdrs),
            shstrndx=len(shdrs) - 1,
        )

        out = bytearray()
        out.extend(ehdr.pack())
        for p in phdrs:
            out.extend(p.pack())
        if note:
            out.extend(b"\x00" * (note_off - len(out)))
            out.extend(note)
        if len(out) > HEADER_ROOM:
            raise OverflowError("too many program headers for header page")
        out.extend(b"\x00" * (HEADER_ROOM - len(out)))
        out.extend(text_bytes)
        if have_data:
            out.extend(b"\x00" * (data_off - len(out)))
            out.extend(data_bytes)
        out.extend(shstrtab)
        for s in shdrs:
            out.extend(s.pack())
        return bytes(out)


HelloBuilder = Callable[[], bytes]


def hello_world(message: bytes = b"hello, world\n", *, pie: bool = False) -> bytes:
    """Build a runnable hello-world executable (used by tests/examples)."""
    prog = TinyProgram(pie=pie)
    prog.add_data("msg", message)
    a = prog.text
    a.mov_imm32(7, 1)  # rdi = stdout
    if pie:
        a.lea_rip(6, "msg_label")
    else:
        a.mov_imm64(6, prog.data_vaddr("msg"))
    a.mov_imm32(2, len(message))
    a.mov_imm32(0, c.SYS_WRITE)
    a.syscall()
    a.mov_imm32(7, 0)
    a.mov_imm32(0, c.SYS_EXIT)
    a.syscall()
    if pie:
        # Place a rip-relative label at the data vaddr: emit padding into
        # text until the data page, which TinyProgram handles via blobs —
        # instead record the label at the known relative distance.
        a.labels["msg_label"] = prog.data_vaddr("msg") - a.base
    return prog.build()
