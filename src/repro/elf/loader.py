"""The injected loader stub (paper Section 5.1).

Physical page grouping needs one-to-many file mappings, which PT_LOAD
program headers cannot express.  Like E9Patch, we integrate a small
loader into the output binary: the ELF entry point is redirected to a
stub that opens ``/proc/self/exe``, ``mmap``s every (virtual block ->
physical block) pair with ``MAP_PRIVATE|MAP_FIXED``, closes the fd, and
tail-jumps to the original entry with all registers restored.

PIE support: mapping addresses and the original entry are link-time
values; the stub discovers the runtime load base with a rip-relative
``lea`` and rebases everything at runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elf import constants as c
from repro.x86 import encoder as enc

# Registers saved/restored around the stub (everything except %rsp).
_SAVED = (enc.RAX, enc.RBX, enc.RCX, enc.RDX, enc.RSI, enc.RDI, enc.RBP,
          enc.R8, enc.R9, enc.R10, enc.R11, enc.R12, enc.R13, enc.R14, enc.R15)

_ENTRY_SLOT = len(_SAVED) * 8  # rsp-relative offset of the target slot

MAPPING_ENTRY_SIZE = 24  # vaddr:8  size:8  file_offset:8


@dataclass(frozen=True)
class Mapping:
    """One mmap the stub must perform."""

    vaddr: int  # link-time virtual address (page-aligned)
    size: int  # bytes (page-multiple)
    offset: int  # file offset (page-aligned)


LOADER_FAIL_EXIT = 127
_FAIL_MESSAGE = b"e9patch loader: cannot reopen the patched binary\n"


def build_loader(
    stub_vaddr: int,
    mappings: list[Mapping],
    original_entry: int,
    *,
    pie: bool,
    self_path: str = "/proc/self/exe",
    cet: bool = False,
) -> bytes:
    """Assemble the loader stub + mapping table at *stub_vaddr*.

    *self_path* is the file the trampoline pages are mmap'ed from: the
    binary itself for executables; for shared objects (which cannot use
    ``/proc/self/exe``) the rewriter embeds the library's install path.
    If the open fails at runtime the stub reports and exits with
    ``LOADER_FAIL_EXIT`` rather than crash later on an unmapped
    trampoline.

    *cet* prefixes the stub with ``endbr64``: when it is installed as a
    shared object's ``DT_INIT`` the dynamic linker reaches it through an
    indirect call, which IBT enforcement would otherwise fault.
    """
    a = enc.Assembler(base=stub_vaddr)
    if cet:
        a.raw(c.ENDBR64)

    # Reserve a stack slot for the tail-jump target, then save registers.
    a.push(enc.RAX)  # placeholder slot
    for reg in _SAVED:
        a.push(reg)

    # rbp := runtime load base (0 for non-PIE).
    if pie:
        # lea rbp, [rip - link_addr_of_next_insn]  =>  rbp = runtime base
        a.raw(b"\x48\x8d\x2d")
        next_link = a.here + 4
        a.raw(((-next_link) & 0xFFFFFFFF).to_bytes(4, "little"))
    else:
        a.raw(b"\x31\xed")  # xor ebp, ebp

    # fd := open(self_path, O_RDONLY)
    a.lea_rip(enc.RDI, "path")
    a.mov_imm32(enc.RSI, c.O_RDONLY)
    a.mov_imm32(enc.RAX, c.SYS_OPEN)
    a.syscall()
    a.raw(b"\x48\x85\xc0")  # test rax, rax
    a.jcc(0x8, "open_failed")  # js (negative errno)
    a.mov_reg(enc.R12, enc.RAX)

    # Loop over the mapping table.
    a.lea_rip(enc.R13, "table")
    a.mov_imm32(enc.R14, len(mappings))
    a.label("loop")
    a.cmp_imm(enc.R14, 0)
    a.jcc(0x4, "done")  # je
    a.mov_load(enc.RDI, enc.R13, 0)  # link vaddr
    a.raw(b"\x48\x01\xef")  # add rdi, rbp (rebase)
    a.mov_load(enc.RSI, enc.R13, 8)  # size
    a.mov_imm32(enc.RDX, c.PROT_READ | c.PROT_EXEC)
    a.mov_imm32(enc.R10, c.MAP_PRIVATE | c.MAP_FIXED)
    a.mov_reg(enc.R8, enc.R12)  # fd
    a.mov_load(enc.R9, enc.R13, 16)  # file offset
    a.mov_imm32(enc.RAX, c.SYS_MMAP)
    a.syscall()
    a.add_imm(enc.R13, MAPPING_ENTRY_SIZE)
    a.sub_imm(enc.R14, 1)
    a.jmp("loop")
    a.label("done")

    # close(fd)
    a.mov_reg(enc.RDI, enc.R12)
    a.mov_imm32(enc.RAX, c.SYS_CLOSE)
    a.syscall()

    # Entry target -> reserved stack slot (rip-relative lea rebases
    # automatically under PIE; for non-PIE it is equally correct).
    a.lea_rip(enc.RAX, original_entry)
    a.mov_store(enc.RSP, enc.RAX, _ENTRY_SLOT)

    for reg in reversed(_SAVED):
        a.pop(reg)
    a.ret()  # pops the slot -> jumps to the original entry

    a.label("open_failed")
    a.mov_imm32(enc.RDI, 2)
    a.lea_rip(enc.RSI, "failmsg")
    a.mov_imm32(enc.RDX, len(_FAIL_MESSAGE))
    a.mov_imm32(enc.RAX, c.SYS_WRITE)
    a.syscall()
    a.mov_imm32(enc.RDI, LOADER_FAIL_EXIT)
    a.mov_imm32(enc.RAX, c.SYS_EXIT)
    a.syscall()

    a.label("failmsg")
    a.raw(_FAIL_MESSAGE)
    a.label("path")
    a.raw(self_path.encode() + b"\x00")
    pad = (-len(a.buf)) % 8
    a.raw(b"\x00" * pad)
    a.label("table")
    for m in mappings:
        a.raw(m.vaddr.to_bytes(8, "little", signed=m.vaddr < 0))
        a.raw(m.size.to_bytes(8, "little"))
        a.raw(m.offset.to_bytes(8, "little"))

    return a.bytes()


def loader_size_estimate(n_mappings: int, path_len: int = 64) -> int:
    """Upper bound on the stub size, for address-space reservation."""
    return 512 + path_len + MAPPING_ENTRY_SIZE * n_mappings
