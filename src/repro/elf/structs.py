"""ELF64 header structures with exact binary pack/unpack."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ElfError
from repro.elf import constants as c

_EHDR_FMT = "<16sHHIQQQIHHHHHH"
_PHDR_FMT = "<IIQQQQQQ"
_SHDR_FMT = "<IIQQQQIIQQ"


@dataclass
class Ehdr:
    """ELF64 file header."""

    ident: bytes
    type: int
    machine: int
    version: int
    entry: int
    phoff: int
    shoff: int
    flags: int
    ehsize: int
    phentsize: int
    phnum: int
    shentsize: int
    shnum: int
    shstrndx: int

    @classmethod
    def unpack(cls, data: bytes) -> "Ehdr":
        if len(data) < c.EHDR_SIZE:
            raise ElfError("file too small for an ELF header")
        fields = struct.unpack_from(_EHDR_FMT, data, 0)
        hdr = cls(*fields)
        if hdr.ident[:4] != c.ELF_MAGIC:
            raise ElfError("bad ELF magic")
        if hdr.ident[c.EI_CLASS] != c.ELFCLASS64:
            raise ElfError("only ELF64 is supported")
        if hdr.ident[c.EI_DATA] != c.ELFDATA2LSB:
            raise ElfError("only little-endian ELF is supported")
        return hdr

    def pack(self) -> bytes:
        return struct.pack(
            _EHDR_FMT,
            self.ident,
            self.type,
            self.machine,
            self.version,
            self.entry,
            self.phoff,
            self.shoff,
            self.flags,
            self.ehsize,
            self.phentsize,
            self.phnum,
            self.shentsize,
            self.shnum,
            self.shstrndx,
        )

    @classmethod
    def new(cls, *, entry: int, phoff: int, phnum: int, type: int = c.ET_EXEC,
            shoff: int = 0, shnum: int = 0, shstrndx: int = 0) -> "Ehdr":
        ident = bytearray(16)
        ident[0:4] = c.ELF_MAGIC
        ident[c.EI_CLASS] = c.ELFCLASS64
        ident[c.EI_DATA] = c.ELFDATA2LSB
        ident[c.EI_VERSION] = 1
        return cls(
            ident=bytes(ident),
            type=type,
            machine=c.EM_X86_64,
            version=1,
            entry=entry,
            phoff=phoff,
            shoff=shoff,
            flags=0,
            ehsize=c.EHDR_SIZE,
            phentsize=c.PHDR_SIZE,
            phnum=phnum,
            shentsize=c.SHDR_SIZE,
            shnum=shnum,
            shstrndx=shstrndx,
        )


@dataclass
class Phdr:
    """ELF64 program header."""

    type: int
    flags: int
    offset: int
    vaddr: int
    paddr: int
    filesz: int
    memsz: int
    align: int

    @classmethod
    def unpack(cls, data: bytes, off: int) -> "Phdr":
        fields = struct.unpack_from(_PHDR_FMT, data, off)
        return cls(*fields)

    def pack(self) -> bytes:
        return struct.pack(
            _PHDR_FMT,
            self.type,
            self.flags,
            self.offset,
            self.vaddr,
            self.paddr,
            self.filesz,
            self.memsz,
            self.align,
        )

    def contains_vaddr(self, vaddr: int) -> bool:
        return self.vaddr <= vaddr < self.vaddr + self.memsz

    def contains_offset(self, offset: int) -> bool:
        return self.offset <= offset < self.offset + self.filesz


@dataclass
class Shdr:
    """ELF64 section header."""

    name: int
    type: int
    flags: int
    addr: int
    offset: int
    size: int
    link: int
    info: int
    addralign: int
    entsize: int

    @classmethod
    def unpack(cls, data: bytes, off: int) -> "Shdr":
        fields = struct.unpack_from(_SHDR_FMT, data, off)
        return cls(*fields)

    def pack(self) -> bytes:
        return struct.pack(
            _SHDR_FMT,
            self.name,
            self.type,
            self.flags,
            self.addr,
            self.offset,
            self.size,
            self.link,
            self.info,
            self.addralign,
            self.entsize,
        )
