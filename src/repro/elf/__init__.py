"""ELF64 substrate: reader, in-place rewriter, and from-scratch builder.

Replaces an external ELF library.  The writer follows the paper's
Section 5.1 discipline: existing segments are patched strictly in place
and new data (trampolines, loader) is appended to the end of the file, so
no existing file offsets ever move.
"""

from repro.elf.reader import ElfFile, Section, Segment
from repro.elf.writer import ElfRewriter, AppendedSegment
from repro.elf.builder import TinyProgram

__all__ = [
    "ElfFile",
    "Section",
    "Segment",
    "ElfRewriter",
    "AppendedSegment",
    "TinyProgram",
]
