"""PT_DYNAMIC parsing and in-place editing.

Shared objects have no entry point, so loader-mode rewriting cannot
redirect ``e_entry``; instead (like E9Patch) we hijack the library's
``DT_INIT`` function: the dynamic linker calls it on load, our stub runs
the trampoline mmaps, then tail-calls the original init with all
registers intact.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ElfError
from repro.elf import constants as c
from repro.elf.reader import ElfFile

DT_NULL = 0
DT_HASH = 4
DT_STRTAB = 5
DT_SYMTAB = 6
DT_STRSZ = 10
DT_SYMENT = 11
DT_INIT = 12
DT_FINI = 13
DT_INIT_ARRAY = 25
DT_INIT_ARRAYSZ = 27
DT_FLAGS = 30
DT_GNU_HASH = 0x6FFFFEF5
DT_FLAGS_1 = 0x6FFFFFFB

_ENTRY = struct.Struct("<qQ")  # d_tag, d_un


@dataclass
class DynEntry:
    """One Elf64_Dyn entry plus its file location."""

    tag: int
    value: int
    offset: int  # file offset of the entry

    @property
    def value_offset(self) -> int:
        return self.offset + 8


def dynamic_entries(elf: ElfFile) -> list[DynEntry]:
    """Parse the PT_DYNAMIC segment (empty list if none)."""
    dyn = [p for p in elf.phdrs if p.type == c.PT_DYNAMIC]
    if not dyn:
        return []
    seg = dyn[0]
    out: list[DynEntry] = []
    offset = seg.offset
    end = seg.offset + seg.filesz
    while offset + _ENTRY.size <= end:
        tag, value = _ENTRY.unpack_from(elf.data, offset)
        if tag == DT_NULL:
            break
        out.append(DynEntry(tag=tag, value=value, offset=offset))
        offset += _ENTRY.size
    return out


def find_init(elf: ElfFile) -> DynEntry | None:
    """The DT_INIT entry, if the object has one."""
    for entry in dynamic_entries(elf):
        if entry.tag == DT_INIT:
            return entry
    return None


R_X86_64_RELATIVE = 8
_RELA = struct.Struct("<QQq")  # r_offset, r_info, r_addend


def _find_relative_addend_offset(elf: ElfFile, slot_vaddr: int) -> int | None:
    """File offset of the r_addend of the R_X86_64_RELATIVE relocation
    targeting *slot_vaddr*, if any (the dynamic linker writes the slot
    from this addend, so patching the slot bytes alone is futile)."""
    rela = elf.section(".rela.dyn")
    if rela is None:
        return None
    for off in range(rela.offset, rela.offset + rela.size, _RELA.size):
        r_offset, r_info, _addend = _RELA.unpack_from(elf.data, off)
        if (r_info & 0xFFFFFFFF) == R_X86_64_RELATIVE and r_offset == slot_vaddr:
            return off + 16  # the addend field
    return None


def find_init_target(elf: ElfFile) -> tuple[str, int, int] | None:
    """Locate an initialization hook to hijack.

    Returns ``(kind, patch_file_offset, original_target)`` where *kind*
    is ``"init"`` (the DT_INIT d_un field) or ``"init_array"`` (the
    first INIT_ARRAY slot — via its RELATIVE relocation addend when one
    exists, else the raw slot bytes).  None if the object has neither.
    """
    entry = find_init(elf)
    if entry is not None:
        return ("init", entry.value_offset, entry.value)
    entries = {e.tag: e for e in dynamic_entries(elf)}
    array = entries.get(DT_INIT_ARRAY)
    size = entries.get(DT_INIT_ARRAYSZ)
    if array is None or size is None or size.value < 8:
        return None
    slot_vaddr = array.value
    reloc_addend_off = _find_relative_addend_offset(elf, slot_vaddr)
    if reloc_addend_off is not None:
        original = struct.unpack_from("<q", elf.data, reloc_addend_off)[0]
        return ("init_array", reloc_addend_off, original)
    slot_off = elf.vaddr_to_offset(slot_vaddr)
    original = struct.unpack_from("<Q", elf.data, slot_off)[0]
    return ("init_array", slot_off, original)


def retarget_init(elf: ElfFile, new_init: int) -> tuple[int, int]:
    """Plan an init-hook redirect: returns (file offset to patch,
    original init address).  Raises if the object has no DT_INIT and no
    DT_INIT_ARRAY.
    """
    target = find_init_target(elf)
    if target is None:
        raise ElfError(
            "shared object has neither DT_INIT nor DT_INIT_ARRAY to "
            "hijack; cannot install the trampoline loader"
        )
    _kind, patch_offset, original = target
    return patch_offset, original
