"""ELF symbol-table parsing (.symtab / .dynsym).

Used by the symbol-guided frontend: function symbols give ground-truth
instruction-stream *starting points* (not control flow!), which keeps a
linear sweep aligned across the data islands that hand-written assembly
(glibc!) embeds in ``.text``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.elf import constants as c
from repro.elf.reader import ElfFile

STT_FUNC = 2
STT_GNU_IFUNC = 10

_SYM = struct.Struct("<IBBHQQ")  # name, info, other, shndx, value, size


@dataclass(frozen=True)
class FunctionSymbol:
    """One STT_FUNC / STT_GNU_IFUNC entry with a usable extent."""

    name: str
    value: int
    size: int
    is_ifunc: bool = False

    @property
    def end(self) -> int:
        return self.value + self.size


def _parse_symtab(elf: ElfFile, symtab_name: str, strtab_name: str
                  ) -> list[FunctionSymbol]:
    symtab = elf.section(symtab_name)
    strtab = elf.section(strtab_name)
    if symtab is None or strtab is None:
        return []
    names = elf.data[strtab.offset : strtab.offset + strtab.size]
    out: list[FunctionSymbol] = []
    count = symtab.size // _SYM.size
    for i in range(count):
        name_off, info, _other, _shndx, value, size = _SYM.unpack_from(
            elf.data, symtab.offset + i * _SYM.size)
        if (info & 0xF) not in (STT_FUNC, STT_GNU_IFUNC):
            continue
        if size == 0 or value == 0:
            continue
        end = names.find(b"\x00", name_off)
        name = names[name_off : end if end >= 0 else None].decode(
            "utf-8", "replace")
        out.append(FunctionSymbol(name=name, value=value, size=size,
                                  is_ifunc=(info & 0xF) == STT_GNU_IFUNC))
    return out


def function_symbols(elf: ElfFile, *,
                     include_ifunc_resolvers: bool = False
                     ) -> list[FunctionSymbol]:
    """All function symbols with extents, from .symtab and .dynsym,
    deduplicated by start address and clipped to executable ranges.

    STT_GNU_IFUNC symbols are excluded by default: their value is the
    *resolver*, which the dynamic linker executes during relocation —
    before any injected loader stub can run — so resolvers must never be
    patched in loader mode.
    """
    raw = (_parse_symtab(elf, ".symtab", ".strtab")
           + _parse_symtab(elf, ".dynsym", ".dynstr"))
    if not include_ifunc_resolvers:
        raw = [s for s in raw if not s.is_ifunc]
    exec_ranges = elf.exec_ranges()

    def in_exec(sym: FunctionSymbol) -> bool:
        return any(lo <= sym.value and sym.end <= hi
                   for lo, hi in exec_ranges)

    by_addr: dict[int, FunctionSymbol] = {}
    for sym in raw:
        if not in_exec(sym):
            continue
        prev = by_addr.get(sym.value)
        if prev is None or sym.size > prev.size:
            by_addr[sym.value] = sym
    return [by_addr[a] for a in sorted(by_addr)]


# Functions glibc's dynamic linker calls before constructors run
# (discovered empirically by fault-attribution on an instrumented libc);
# patching them in loader mode would execute not-yet-mapped trampolines.
PREINIT_FUNCTIONS = frozenset({"__libc_early_init", "getrlimit"})


def function_ranges(elf: ElfFile,
                    exclude: frozenset[str] = PREINIT_FUNCTIONS
                    ) -> list[tuple[int, int]]:
    """Disjoint, sorted (start, end) extents of the known functions.

    Overlapping symbols (aliases, nested ifunc variants) are merged;
    ifunc resolvers and *exclude* (pre-init functions) are skipped.
    """
    spans: list[tuple[int, int]] = []
    for sym in function_symbols(elf):
        if sym.name in exclude:
            continue
        if spans and sym.value < spans[-1][1]:
            spans[-1] = (spans[-1][0], max(spans[-1][1], sym.end))
        else:
            spans.append((sym.value, sym.end))
    return spans
