"""ELF64 reader: headers, segments, sections, and vaddr<->offset mapping."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ElfError
from repro.elf import constants as c
from repro.elf.structs import Ehdr, Phdr, Shdr


@dataclass
class Segment:
    """A program header plus convenience accessors."""

    phdr: Phdr
    index: int

    @property
    def executable(self) -> bool:
        return bool(self.phdr.flags & c.PF_X)

    @property
    def writable(self) -> bool:
        return bool(self.phdr.flags & c.PF_W)


@dataclass
class Section:
    """A section header plus its resolved name."""

    shdr: Shdr
    name: str
    index: int

    @property
    def vaddr(self) -> int:
        return self.shdr.addr

    @property
    def offset(self) -> int:
        return self.shdr.offset

    @property
    def size(self) -> int:
        return self.shdr.size

    @property
    def executable(self) -> bool:
        return bool(self.shdr.flags & c.SHF_EXECINSTR)


class ElfFile:
    """A parsed ELF64 file backed by its raw bytes."""

    def __init__(self, data: bytes) -> None:
        self.data = bytes(data)
        self.ehdr = Ehdr.unpack(self.data)
        if self.ehdr.machine != c.EM_X86_64:
            raise ElfError(f"unsupported machine {self.ehdr.machine}")
        self.phdrs: list[Phdr] = []
        for i in range(self.ehdr.phnum):
            off = self.ehdr.phoff + i * c.PHDR_SIZE
            if off + c.PHDR_SIZE > len(self.data):
                raise ElfError("program header table out of bounds")
            self.phdrs.append(Phdr.unpack(self.data, off))
        self.shdrs: list[Shdr] = []
        if self.ehdr.shoff and self.ehdr.shnum:
            for i in range(self.ehdr.shnum):
                off = self.ehdr.shoff + i * c.SHDR_SIZE
                if off + c.SHDR_SIZE > len(self.data):
                    raise ElfError("section header table out of bounds")
                self.shdrs.append(Shdr.unpack(self.data, off))
        self._sections = self._resolve_sections()

    @classmethod
    def from_path(cls, path: str) -> "ElfFile":
        with open(path, "rb") as f:
            return cls(f.read())

    # -- basic properties -----------------------------------------------------

    @property
    def is_pie(self) -> bool:
        """True for position-independent executables / shared objects."""
        return self.ehdr.type == c.ET_DYN

    @property
    def elf_type(self) -> str:
        """The e_type as its standard name (``"ET_EXEC"``/``"ET_DYN"``)."""
        return {c.ET_EXEC: "ET_EXEC", c.ET_DYN: "ET_DYN"}.get(
            self.ehdr.type, f"ET_{self.ehdr.type:#x}"
        )

    @property
    def is_shared_object(self) -> bool:
        """True for ET_DYN objects carrying a PT_DYNAMIC segment (a PIE
        executable is also ET_DYN + PT_DYNAMIC; the distinction the
        rewriter cares about is ET_DYN-ness, not executability)."""
        return self.ehdr.type == c.ET_DYN and any(
            p.type == c.PT_DYNAMIC for p in self.phdrs
        )

    @property
    def entry(self) -> int:
        return self.ehdr.entry

    def load_segments(self) -> list[Segment]:
        return [
            Segment(p, i)
            for i, p in enumerate(self.phdrs)
            if p.type == c.PT_LOAD
        ]

    @property
    def image_end(self) -> int:
        """Highest vaddr used by any PT_LOAD segment (memsz included)."""
        end = 0
        for p in self.phdrs:
            if p.type == c.PT_LOAD:
                end = max(end, p.vaddr + p.memsz)
        return end

    @property
    def image_base(self) -> int:
        """Lowest vaddr of any PT_LOAD segment."""
        bases = [p.vaddr for p in self.phdrs if p.type == c.PT_LOAD]
        return min(bases) if bases else 0

    # -- sections -------------------------------------------------------------

    def _resolve_sections(self) -> list[Section]:
        sections: list[Section] = []
        if not self.shdrs:
            return sections
        strndx = self.ehdr.shstrndx
        if strndx >= len(self.shdrs):
            return sections
        strtab = self.shdrs[strndx]
        names = self.data[strtab.offset : strtab.offset + strtab.size]
        for i, sh in enumerate(self.shdrs):
            end = names.find(b"\x00", sh.name)
            name = names[sh.name : end if end >= 0 else None].decode(
                "utf-8", "replace"
            )
            sections.append(Section(sh, name, i))
        return sections

    @property
    def sections(self) -> list[Section]:
        return self._sections

    def section(self, name: str) -> Section | None:
        for sec in self._sections:
            if sec.name == name:
                return sec
        return None

    def section_bytes(self, name: str) -> bytes:
        sec = self.section(name)
        if sec is None:
            raise ElfError(f"no section named {name!r}")
        if sec.shdr.type == c.SHT_NOBITS:
            return b"\x00" * sec.size
        return self.data[sec.offset : sec.offset + sec.size]

    def section_view(self, name: str) -> memoryview:
        """Zero-copy read-only view of the named section's file bytes.

        Unlike :meth:`section_bytes` this never copies: the view aliases
        the loaded image, which is immutable for the lifetime of this
        reader.  NOBITS sections (no file bytes) still fall back to a
        zero buffer.
        """
        sec = self.section(name)
        if sec is None:
            raise ElfError(f"no section named {name!r}")
        if sec.shdr.type == c.SHT_NOBITS:
            return memoryview(b"\x00" * sec.size)
        return memoryview(self.data)[sec.offset : sec.offset + sec.size]

    # -- CET / IBT detection -----------------------------------------------------

    def _note_regions(self) -> list[bytes]:
        """Raw byte ranges that may hold ELF notes: every SHT_NOTE
        section plus every PT_NOTE segment (stripped binaries keep the
        segment even when the section table is gone)."""
        regions = []
        for sec in self._sections:
            if sec.shdr.type == c.SHT_NOTE and sec.size:
                regions.append(self.data[sec.offset : sec.offset + sec.size])
        for p in self.phdrs:
            if p.type == c.PT_NOTE and p.filesz:
                regions.append(self.data[p.offset : p.offset + p.filesz])
        return regions

    @property
    def has_ibt_note(self) -> bool:
        """True when a ``.note.gnu.property`` note advertises IBT
        (GNU_PROPERTY_X86_FEATURE_1_AND with the IBT bit set)."""
        for region in self._note_regions():
            if self._ibt_in_notes(region):
                return True
        return False

    @staticmethod
    def _ibt_in_notes(region: bytes) -> bool:
        """Walk one note region looking for the x86 feature property."""
        import struct

        off = 0
        while off + 12 <= len(region):
            namesz, descsz, ntype = struct.unpack_from("<III", region, off)
            off += 12
            name = region[off : off + namesz]
            off += (namesz + 3) & ~3
            desc = region[off : off + descsz]
            off += (descsz + 3) & ~3
            if ntype != c.NT_GNU_PROPERTY_TYPE_0 or name != b"GNU\x00":
                continue
            # desc: a sequence of (pr_type u32, pr_datasz u32, data...)
            # entries, each padded to 8 bytes on ELF64.
            p = 0
            while p + 8 <= len(desc):
                pr_type, pr_datasz = struct.unpack_from("<II", desc, p)
                p += 8
                data = desc[p : p + pr_datasz]
                p += (pr_datasz + 7) & ~7
                if (pr_type == c.GNU_PROPERTY_X86_FEATURE_1_AND
                        and len(data) >= 4):
                    features = int.from_bytes(data[:4], "little")
                    if features & c.GNU_PROPERTY_X86_FEATURE_1_IBT:
                        return True
        return False

    def is_cet_enabled(self) -> bool:
        """Best-effort CET/IBT detection.

        The authoritative signal is the GNU property note; toolchains
        exist (this container's binutils among them) that emit endbr64
        instructions under ``-fcf-protection`` without writing the note,
        so fall back to scanning executable segments for any endbr64
        byte pattern.  False positives from data-in-text are harmless:
        they only make the rewriter more conservative.
        """
        if self.has_ibt_note:
            return True
        for p in self.phdrs:
            if p.type == c.PT_LOAD and p.flags & c.PF_X:
                if c.ENDBR64 in self.data[p.offset : p.offset + p.filesz]:
                    return True
        return False

    # -- address translation ----------------------------------------------------

    def vaddr_to_offset(self, vaddr: int) -> int:
        """Translate a virtual address to a file offset via PT_LOAD."""
        for p in self.phdrs:
            if p.type == c.PT_LOAD and p.vaddr <= vaddr < p.vaddr + p.filesz:
                return p.offset + (vaddr - p.vaddr)
        raise ElfError(f"vaddr {vaddr:#x} not backed by any PT_LOAD segment")

    def offset_to_vaddr(self, offset: int) -> int:
        for p in self.phdrs:
            if p.type == c.PT_LOAD and p.contains_offset(offset):
                return p.vaddr + (offset - p.offset)
        raise ElfError(f"offset {offset:#x} not inside any PT_LOAD segment")

    def read_vaddr(self, vaddr: int, size: int) -> bytes:
        off = self.vaddr_to_offset(vaddr)
        return self.data[off : off + size]

    def exec_ranges(self) -> list[tuple[int, int]]:
        """Virtual [start, end) ranges of executable PT_LOAD segments."""
        return [
            (p.vaddr, p.vaddr + p.memsz)
            for p in self.phdrs
            if p.type == c.PT_LOAD and p.flags & c.PF_X
        ]
