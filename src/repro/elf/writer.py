"""In-place ELF rewriting with appended segments (paper Section 5.1).

The rewriter never moves existing file data: code bytes are patched in
place, and all new data (trampolines, loader tables, the relocated
program-header table) is appended to the end of the file.  The program
header table must grow, so it is moved to the end of the file inside a
new PT_LOAD segment — the standard trick (also used by patchelf and
E9Patch): the Linux kernel locates the table through the PT_LOAD segment
that covers ``e_phoff``, and ``PT_PHDR`` is updated for the dynamic
linker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ElfError
from repro.elf import constants as c
from repro.elf.reader import ElfFile
from repro.elf.structs import Ehdr, Phdr


@dataclass
class AppendedSegment:
    """New data to be appended and mapped at *vaddr*."""

    vaddr: int
    data: bytes
    flags: int = c.PF_R | c.PF_X
    memsz: int | None = None  # defaults to len(data)

    def __post_init__(self) -> None:
        if self.memsz is None:
            self.memsz = len(self.data)
        if self.memsz < len(self.data):
            raise ElfError("memsz smaller than segment data")


@dataclass
class ElfRewriter:
    """Accumulates in-place patches and appended segments, then emits.

    Usage::

        rw = ElfRewriter(elf)
        rw.patch_vaddr(0x401000, b"\\xe9...")
        rw.append_segment(AppendedSegment(vaddr=0x700000, data=tramp))
        out = rw.finalize(phdr_vaddr=0x6ff000)
    """

    elf: ElfFile
    patches: list[tuple[int, bytes]] = field(default_factory=list)
    segments: list[AppendedSegment] = field(default_factory=list)
    blobs: list[bytes] = field(default_factory=list)
    new_entry: int | None = None

    def append_blob(self, data: bytes) -> int:
        """Append raw page-aligned file data with **no** program header.

        Used for the merged physical blocks in loader mode — they are
        mapped manually by the injected loader stub, not by the kernel.
        Returns the (deterministic) file offset the blob will occupy:
        blobs are laid out first, page-aligned, right after the original
        file contents.
        """
        end = len(self.elf.data)
        end = (end + c.PAGE_SIZE - 1) & ~(c.PAGE_SIZE - 1)
        for blob in self.blobs:
            end += (len(blob) + c.PAGE_SIZE - 1) & ~(c.PAGE_SIZE - 1)
        self.blobs.append(data)
        return end

    def patch_vaddr(self, vaddr: int, data: bytes) -> None:
        """Overwrite bytes at *vaddr* (must be file-backed)."""
        off = self.elf.vaddr_to_offset(vaddr)
        end = self.elf.vaddr_to_offset(vaddr + len(data) - 1)
        if end != off + len(data) - 1:
            raise ElfError(f"patch at {vaddr:#x} crosses a segment boundary")
        self.patches.append((off, data))

    def patch_offset(self, offset: int, data: bytes) -> None:
        if offset + len(data) > len(self.elf.data):
            raise ElfError("patch beyond end of file")
        self.patches.append((offset, data))

    def append_segment(self, seg: AppendedSegment) -> None:
        self.segments.append(seg)

    def set_entry(self, vaddr: int) -> None:
        self.new_entry = vaddr

    # -- emission ---------------------------------------------------------------

    def finalize(self, phdr_vaddr: int) -> bytes:
        """Emit the rewritten ELF image.

        *phdr_vaddr* is the virtual address at which the relocated program
        header table will be mapped; the caller must pick an address that
        does not collide with any existing or appended segment.
        """
        out = bytearray(self.elf.data)

        for off, data in self.patches:
            out[off : off + len(data)] = data

        if self.blobs:
            pad = (-len(out)) % c.PAGE_SIZE
            out.extend(b"\x00" * pad)
            for blob in self.blobs:
                out.extend(blob)
                out.extend(b"\x00" * ((-len(blob)) % c.PAGE_SIZE))

        if not self.segments and self.new_entry is None and not self.blobs:
            return bytes(out)

        # New phdr table: existing entries + one per appended segment +
        # one PT_LOAD covering the relocated table itself.
        nseg = len(self.segments)
        new_phnum = self.elf.ehdr.phnum + nseg + 1
        table_size = new_phnum * c.PHDR_SIZE

        # Layout: append each segment at a file offset congruent to its
        # vaddr modulo the page size, then the phdr table likewise.
        def pad_to_congruence(vaddr: int) -> int:
            off = len(out)
            want = vaddr % c.PAGE_SIZE
            have = off % c.PAGE_SIZE
            pad = (want - have) % c.PAGE_SIZE
            out.extend(b"\x00" * pad)
            return len(out)

        seg_offsets: list[int] = []
        for seg in self.segments:
            off = pad_to_congruence(seg.vaddr)
            out.extend(seg.data)
            seg_offsets.append(off)

        phdr_off = pad_to_congruence(phdr_vaddr)
        # Reserve the bytes now; contents written after assembling headers.
        out.extend(b"\x00" * table_size)

        phdrs: list[Phdr] = []
        for p in self.elf.phdrs:
            q = Phdr(**vars(p))
            if q.type == c.PT_PHDR:
                q.offset = phdr_off
                q.vaddr = phdr_vaddr
                q.paddr = phdr_vaddr
                q.filesz = table_size
                q.memsz = table_size
            phdrs.append(q)
        new_loads = [
            Phdr(
                type=c.PT_LOAD,
                flags=seg.flags,
                offset=off,
                vaddr=seg.vaddr,
                paddr=seg.vaddr,
                filesz=len(seg.data),
                memsz=seg.memsz or len(seg.data),
                align=c.PAGE_SIZE,
            )
            for seg, off in zip(self.segments, seg_offsets)
        ]
        new_loads.append(
            Phdr(
                type=c.PT_LOAD,
                flags=c.PF_R,
                offset=phdr_off,
                vaddr=phdr_vaddr,
                paddr=phdr_vaddr,
                filesz=table_size,
                memsz=table_size,
                align=c.PAGE_SIZE,
            )
        )
        # Program loaders require PT_LOAD entries in ascending vaddr
        # order (and mapping order resolves overlaps: later entries
        # overlay earlier reservations).  Sort stably so a zero-fill
        # reservation starting at the same page as a real segment is
        # mapped first.
        new_loads.sort(key=lambda p: (p.vaddr, -p.memsz))
        phdrs.extend(new_loads)
        table = b"".join(p.pack() for p in phdrs)
        assert len(table) == table_size
        out[phdr_off : phdr_off + table_size] = table

        ehdr = Ehdr.unpack(bytes(out[: c.EHDR_SIZE]))
        ehdr.phoff = phdr_off
        ehdr.phnum = new_phnum
        if self.new_entry is not None:
            ehdr.entry = self.new_entry
        out[: c.EHDR_SIZE] = ehdr.pack()
        return bytes(out)
