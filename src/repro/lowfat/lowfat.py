"""Low-fat pointer layout and allocator (Duck & Yap, CC'16 variant).

The virtual address space is carved into equal-sized *regions*, one per
allocation size class.  Region ``i`` serves only objects of size
``sizes[i]``, each aligned to that size, so for any pointer ``p``:

    region(p) = p // REGION_SIZE
    size(p)   = sizes[region(p)]
    base(p)   = (p // size(p)) * size(p)

The paper's hardening enforces the redzone property
``p - base(p) >= 16`` for every heap write (each object's first 16
bytes are a redzone, so a pointer landing there must have overflowed
from the previous object or underflowed the current one).
"""

from __future__ import annotations

from dataclasses import dataclass, field

REDZONE_SIZE = 16

# Region geometry: regions start at REGION_BASE; each is REGION_SIZE bytes.
REGION_BASE = 0x20_0000_0000  # well away from image/stack/trampolines
REGION_SIZE = 0x1_0000_0000  # 4 GiB per size class

# Power-of-two size classes (payload + redzone live inside one object).
SIZE_CLASSES = (32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)


@dataclass(frozen=True)
class LowFatLayout:
    """Address-space layout shared by the allocator and the checker."""

    region_base: int = REGION_BASE
    region_size: int = REGION_SIZE
    sizes: tuple[int, ...] = SIZE_CLASSES

    def region_start(self, index: int) -> int:
        return self.region_base + index * self.region_size

    def region_index(self, ptr: int) -> int | None:
        offset = ptr - self.region_base
        if offset < 0:
            return None
        index = offset // self.region_size
        if index >= len(self.sizes):
            return None
        return index

    def is_lowfat(self, ptr: int) -> bool:
        return self.region_index(ptr) is not None

    def size(self, ptr: int) -> int | None:
        index = self.region_index(ptr)
        return None if index is None else self.sizes[index]

    def base(self, ptr: int) -> int | None:
        """The object base address encoded in the pointer's bit pattern."""
        size = self.size(ptr)
        if size is None:
            return None
        return (ptr // size) * size

    def class_for(self, request: int) -> int | None:
        """Smallest size class fitting *request* bytes + the redzone."""
        need = request + REDZONE_SIZE
        for index, size in enumerate(self.sizes):
            if size >= need:
                return index
        return None

    def check_write(self, ptr: int) -> bool:
        """The paper's redzone property: non-lowfat pointers pass (they
        are not heap objects); lowfat pointers must not touch the first
        REDZONE_SIZE bytes of their object."""
        base = self.base(ptr)
        if base is None:
            return True
        return ptr - base >= REDZONE_SIZE


@dataclass
class LowFatAllocator:
    """Bump allocator over the size-class regions (the modified
    ``liblowfat`` runtime of the paper, with redzones inserted before
    each object's payload)."""

    layout: LowFatLayout = field(default_factory=LowFatLayout)
    cursors: dict[int, int] = field(default_factory=dict)
    live: dict[int, int] = field(default_factory=dict)  # payload -> class
    frees: dict[int, list[int]] = field(default_factory=dict)

    def malloc(self, request: int) -> int:
        """Allocate; returns the *payload* pointer (base + REDZONE_SIZE)."""
        index = self.layout.class_for(request)
        if index is None:
            raise MemoryError(f"request {request} exceeds largest size class")
        free_list = self.frees.get(index)
        if free_list:
            base = free_list.pop()
        else:
            size = self.layout.sizes[index]
            cursor = self.cursors.get(index, self.layout.region_start(index))
            if cursor % size:
                cursor += size - cursor % size
            base = cursor
            self.cursors[index] = cursor + size
            region_end = self.layout.region_start(index) + self.layout.region_size
            if base + size > region_end:
                raise MemoryError("size-class region exhausted")
        payload = base + REDZONE_SIZE
        self.live[payload] = index
        return payload

    def free(self, payload: int) -> None:
        index = self.live.pop(payload, None)
        if index is None:
            raise ValueError(f"free of unknown pointer {payload:#x}")
        self.frees.setdefault(index, []).append(payload - REDZONE_SIZE)

    def usable_size(self, payload: int) -> int:
        index = self.live.get(payload)
        if index is None:
            raise ValueError(f"unknown pointer {payload:#x}")
        return self.layout.sizes[index] - REDZONE_SIZE
