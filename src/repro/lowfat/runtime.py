"""Machine-code redzone checker injected into hardened binaries.

The check function is real x86-64 emitted by our assembler and placed in
the rewritten binary by :meth:`Rewriter.add_runtime_code`; every
heap-write trampoline calls it with the effective store address in
``%rdi`` (see :class:`repro.core.trampoline.CallFunction`).  On a redzone
violation it prints a diagnostic and exits with code 42 — in both the VM
and native execution.
"""

from __future__ import annotations

from repro.core.trampoline import CallFunction, Instrumentation
from repro.elf import constants as elfc
from repro.lowfat.lowfat import REDZONE_SIZE, LowFatLayout
from repro.x86 import encoder as enc

VIOLATION_EXIT_CODE = 42
VIOLATION_MESSAGE = b"lowfat: redzone violation detected\n"


def build_check_function(layout: LowFatLayout, vaddr: int) -> bytes:
    """Emit the redzone check at *vaddr*.

    Pseudo-code (rdi = written-to pointer)::

        if rdi < region_base or rdi >= region_end: return   # not low-fat
        index  = (rdi - region_base) >> log2(region_size)
        mask   = masks[index]            # size - 1 (sizes are powers of 2)
        offset = rdi & mask              # == rdi - base(rdi)
        if offset >= REDZONE_SIZE: return
        write(2, message); exit(42)
    """
    region_end = layout.region_base + len(layout.sizes) * layout.region_size
    shift = layout.region_size.bit_length() - 1
    if 1 << shift != layout.region_size:
        raise ValueError("region size must be a power of two")
    for size in layout.sizes:
        if size & (size - 1):
            raise ValueError("size classes must be powers of two")

    # Hand-optimized calling convention, like E9Patch's own trampoline
    # templates: the checker preserves every register and the flags
    # itself, so the caller saves nothing but the call-scratch register.
    a = enc.Assembler(base=vaddr)
    a.pushfq()
    a.push(enc.RAX)
    a.push(enc.RCX)
    a.push(enc.RDX)
    a.push(enc.RSI)
    a.mov_imm64(enc.RAX, layout.region_base)
    a.raw(b"\x48\x39\xc7")  # cmp rdi, rax
    a.jcc(0x2, "pass")  # jb
    a.mov_imm64(enc.RCX, region_end)
    a.raw(b"\x48\x39\xcf")  # cmp rdi, rcx
    a.jcc(0x3, "pass")  # jae
    a.mov_reg(enc.RCX, enc.RDI)
    a.raw(b"\x48\x29\xc1")  # sub rcx, rax
    a.raw(bytes((0x48, 0xC1, 0xE9, shift)))  # shr rcx, shift
    a.lea_rip(enc.RSI, "masks")
    a.raw(b"\x48\x8b\x14\xce")  # mov rdx, [rsi + rcx*8]
    a.mov_reg(enc.RAX, enc.RDI)
    a.raw(b"\x48\x21\xd0")  # and rax, rdx
    a.cmp_imm(enc.RAX, REDZONE_SIZE)
    a.jcc(0x3, "pass")  # jae

    # Violation path: report and abort.
    a.mov_imm32(enc.RDI, 2)
    a.lea_rip(enc.RSI, "msg")
    a.mov_imm32(enc.RDX, len(VIOLATION_MESSAGE))
    a.mov_imm32(enc.RAX, elfc.SYS_WRITE)
    a.syscall()
    a.mov_imm32(enc.RDI, VIOLATION_EXIT_CODE)
    a.mov_imm32(enc.RAX, elfc.SYS_EXIT)
    a.syscall()

    a.label("pass")
    a.pop(enc.RSI)
    a.pop(enc.RDX)
    a.pop(enc.RCX)
    a.pop(enc.RAX)
    a.popfq()
    a.ret()

    pad = (-len(a.buf)) % 8
    a.raw(b"\x00" * pad)
    a.label("masks")
    for size in layout.sizes:
        a.raw((size - 1).to_bytes(8, "little"))
    a.label("msg")
    a.raw(VIOLATION_MESSAGE)
    return a.bytes()


def check_function_size(layout: LowFatLayout) -> int:
    """Exact emitted size (address-independent)."""
    return len(build_check_function(layout, 0))


def lowfat_instrumentation(check_vaddr: int) -> Instrumentation:
    """The A2 hardening body: call the checker with the store address.

    The checker preserves all registers and flags internally, so the
    trampoline only saves ``%rdi`` (the argument slot) and the call
    scratch — the hand-optimized shape E9Patch's templates use.
    """
    return CallFunction(check_vaddr, pass_mem_operand=True,
                        clobbers=(enc.RDI,), preserves_flags=True)


def install_lowfat_heap(rewriter, layout: LowFatLayout | None = None) -> int:
    """Inject the check function into *rewriter* (a
    :class:`repro.core.rewriter.Rewriter`); returns its address."""
    layout = layout or LowFatLayout()
    size = check_function_size(layout)
    return rewriter.add_runtime_code(
        lambda vaddr: build_check_function(layout, vaddr), size, tag="lowfat"
    )
