"""Low-fat pointer heap hardening (paper Section 6.3).

Reimplements the LowFat scheme the paper uses for its binary
heap-write hardening application: allocations are served from size-class
regions at fixed virtual offsets, so ``base(p)`` (and hence a redzone
check ``p - base(p) >= REDZONE``) is computable from the pointer's bit
pattern alone.
"""

from repro.lowfat.lowfat import (
    LowFatLayout,
    LowFatAllocator,
    REDZONE_SIZE,
)
from repro.lowfat.runtime import (
    build_check_function,
    lowfat_instrumentation,
    install_lowfat_heap,
)

__all__ = [
    "LowFatLayout",
    "LowFatAllocator",
    "REDZONE_SIZE",
    "build_check_function",
    "lowfat_instrumentation",
    "install_lowfat_heap",
]
