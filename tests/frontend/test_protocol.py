"""The E9Patch JSON-RPC protocol session."""

import base64
import json


from repro.frontend.protocol import E9PatchSession
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import Machine, run_elf


def workload():
    return synthesize(SynthesisParams(
        n_jump_sites=15, n_write_sites=10, seed=777, loop_iters=2))


def rpc(method, params=None, msg_id=1):
    return {"jsonrpc": "2.0", "method": method,
            "params": params or {}, "id": msg_id}


class TestSession:
    def test_full_session(self):
        binary = workload()
        orig = run_elf(binary.data)
        session = E9PatchSession()

        r = session.handle(rpc("binary", {
            "data": base64.b64encode(binary.data).decode()}))
        assert r["result"]["size"] == len(binary.data)

        r = session.handle(rpc("options", {"mode": "loader"}))
        assert r["result"] == {"ok": True}

        r = session.handle(rpc("reserve", {"name": "hits", "size": 4096}))
        assert r["result"]["name"] == "hits"

        for site in binary.jump_sites:
            r = session.handle(rpc("patch", {
                "address": site, "trampoline": "counter",
                "args": {"counter": "hits"}}))
            assert "result" in r

        r = session.handle(rpc("emit"))
        stats = r["result"]["stats"]
        assert stats["succ_pct"] == 100.0
        counter_vaddr = r["result"]["reservations"]["hits"]

        patched = base64.b64decode(r["result"]["data"])
        machine = Machine(patched)
        run = machine.run()
        assert run.observable == orig.observable
        assert machine.mem.read_u64(counter_vaddr) > 0

    def test_custom_trampoline_registration(self):
        binary = workload()
        session = E9PatchSession()
        session.handle(rpc("binary", {
            "data": base64.b64encode(binary.data).decode()}))
        r = session.handle(rpc("trampoline", {
            "name": "nothing", "body": []}))
        assert r["result"]["name"] == "nothing"
        session.handle(rpc("patch", {
            "address": binary.jump_sites[0], "trampoline": "nothing"}))
        r = session.handle(rpc("emit", {"return_data": False}))
        assert "data" not in r["result"]
        assert r["result"]["stats"]["locs"] == 1

    def test_partial_disassembly_mode(self):
        """Declaring instruction addresses switches to window decoding."""
        binary = workload()
        orig = run_elf(binary.data)
        session = E9PatchSession()
        session.handle(rpc("binary", {
            "data": base64.b64encode(binary.data).decode()}))
        session.handle(rpc("instruction",
                           {"addresses": binary.jump_sites[:3]}))
        for site in binary.jump_sites[:3]:
            session.handle(rpc("patch", {"address": site}))
        r = session.handle(rpc("emit"))
        assert r["result"]["stats"]["succ_pct"] == 100.0
        patched = base64.b64decode(r["result"]["data"])
        assert run_elf(patched).observable == orig.observable

    def test_emit_to_file(self, tmp_path):
        binary = workload()
        session = E9PatchSession()
        session.handle(rpc("binary", {
            "data": base64.b64encode(binary.data).decode()}))
        session.handle(rpc("patch", {"address": binary.jump_sites[0]}))
        out = tmp_path / "patched.elf"
        session.handle(rpc("emit", {"filename": str(out),
                                    "return_data": False}))
        assert out.exists()
        assert run_elf(out.read_bytes()).exit_code == 0

    def test_binary_from_file(self, tmp_path):
        binary = workload()
        path = tmp_path / "in.elf"
        path.write_bytes(binary.data)
        session = E9PatchSession()
        r = session.handle(rpc("binary", {"filename": str(path)}))
        assert "result" in r

    def test_binary_reports_type_and_cet(self):
        """The binary ack carries the ELF kind and CET markers, so a
        frontend can pick shared/CET handling before sending options."""
        exe = workload()
        r = E9PatchSession().handle(rpc("binary", {
            "data": base64.b64encode(exe.data).decode()}))
        info = r["result"]
        assert info["type"] == "ET_EXEC"
        assert info["shared_object"] is False
        assert info["cet"] is False and info["cet_note"] is False

        so = synthesize(SynthesisParams(
            n_jump_sites=8, n_write_sites=4, seed=778,
            shared=True, cet=True))
        r = E9PatchSession().handle(rpc("binary", {
            "data": base64.b64encode(so.data).decode()}))
        info = r["result"]
        assert info["type"] == "ET_DYN"
        assert info["shared_object"] is True
        assert info["cet"] is True and info["cet_note"] is True


class TestErrors:
    def test_unknown_method(self):
        r = E9PatchSession().handle(rpc("frobnicate"))
        assert "unknown method" in r["error"]["message"]

    def test_patch_before_binary(self):
        r = E9PatchSession().handle(rpc("patch", {"address": 0x1000}))
        assert "no binary" in r["error"]["message"]

    def test_unknown_trampoline(self):
        binary = workload()
        session = E9PatchSession()
        session.handle(rpc("binary", {
            "data": base64.b64encode(binary.data).decode()}))
        r = session.handle(rpc("patch", {
            "address": binary.jump_sites[0], "trampoline": "bogus"}))
        assert "unknown trampoline" in r["error"]["message"]

    def test_patch_at_non_instruction(self):
        binary = workload()
        session = E9PatchSession()
        session.handle(rpc("binary", {
            "data": base64.b64encode(binary.data).decode()}))
        session.handle(rpc("patch", {"address": binary.jump_sites[0] + 1}))
        r = session.handle(rpc("emit"))
        assert "error" in r

    def test_parse_error_line(self):
        out = E9PatchSession().handle_line("{broken json")
        assert json.loads(out)["error"]["code"] == -32700

    def test_run_stream(self):
        binary = workload()
        stream = "\n".join([
            json.dumps(rpc("binary",
                           {"data": base64.b64encode(binary.data).decode()})),
            json.dumps(rpc("patch", {"address": binary.jump_sites[0]}, 2)),
            json.dumps(rpc("emit", {"return_data": False}, 3)),
        ])
        responses = [json.loads(r) for r in E9PatchSession().run(stream)]
        assert all("result" in r for r in responses)
