"""Partial-disassembly (locality) patching."""

import pytest

from repro.core.rewriter import RewriteOptions
from repro.elf.reader import ElfFile
from repro.errors import PatchError
from repro.frontend.lineardisasm import disassemble_text
from repro.frontend.partial import (
    WINDOW_BYTES,
    decode_window,
    decode_windows,
    patch_addresses,
)
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import run_elf


def workload(**kw):
    defaults = dict(n_jump_sites=20, n_write_sites=15, seed=321, loop_iters=2)
    defaults.update(kw)
    return synthesize(SynthesisParams(**defaults))


class TestDecodeWindow:
    def test_window_matches_linear_disassembly(self):
        binary = workload()
        elf = ElfFile(binary.data)
        full = {i.address: i for i in disassemble_text(elf)}
        site = binary.jump_sites[3]
        window = decode_window(elf, site)
        assert window[0].address == site
        for insn in window:
            assert full[insn.address].raw == insn.raw

    def test_window_bounded(self):
        binary = workload()
        elf = ElfFile(binary.data)
        site = binary.jump_sites[0]
        window = decode_window(elf, site)
        assert window[-1].end <= site + WINDOW_BYTES + 15

    def test_non_exec_site_rejected(self):
        binary = workload()
        elf = ElfFile(binary.data)
        with pytest.raises(PatchError):
            decode_window(elf, 0x10)

    def test_window_stops_at_range_end(self):
        binary = workload()
        elf = ElfFile(binary.data)
        lo, hi = elf.exec_ranges()[0]
        window = decode_window(elf, hi - 3)
        assert window
        assert window[-1].end <= hi


class TestDecodeWindows:
    def test_union_dedupes(self):
        binary = workload()
        elf = ElfFile(binary.data)
        sites = binary.jump_sites[:3]
        union = decode_windows(elf, sites)
        addrs = [i.address for i in union]
        assert addrs == sorted(set(addrs))

    def test_inconsistent_sites_rejected(self):
        binary = workload()
        elf = ElfFile(binary.data)
        site = binary.jump_sites[5]
        # A bogus site one byte into the real instruction decodes a
        # different instruction stream covering the same bytes.
        with pytest.raises(PatchError):
            decode_windows(elf, [site, site + 1])


class TestPatchAddresses:
    def test_single_site_local_patch(self):
        """The headline: patch one instruction in a binary without ever
        disassembling the rest of it."""
        binary = workload()
        orig = run_elf(binary.data)
        site = binary.jump_sites[7]
        result = patch_addresses(binary.data, [site],
                                 options=RewriteOptions(mode="loader"))
        assert result.stats.succeeded == 1
        assert run_elf(result.data).observable == orig.observable
        # Only a handful of instruction windows were ever decoded.
        assert len(result.plan.patches) == 1

    def test_multiple_scattered_sites(self):
        binary = workload()
        orig = run_elf(binary.data)
        sites = binary.jump_sites[::5]
        result = patch_addresses(binary.data, sites,
                                 options=RewriteOptions(mode="loader"))
        assert result.stats.succeeded == len(sites)
        assert run_elf(result.data).observable == orig.observable

    def test_coverage_close_to_full_disasm(self):
        """Local windows supply the same forward material the tactics use,
        so per-site success matches the full-disassembly run."""
        binary = workload(n_jump_sites=40)
        sites = binary.jump_sites
        local = patch_addresses(binary.data, sites,
                                options=RewriteOptions(mode="loader"))

        from repro.frontend.tool import instrument_elf

        elf_sites = set(sites)
        full = instrument_elf(
            binary.data,
            lambda i: i.address in elf_sites,
            options=RewriteOptions(mode="loader"),
        )
        assert local.stats.succeeded == full.stats.succeeded

    def test_bad_address_rejected(self):
        binary = workload()
        with pytest.raises(PatchError):
            patch_addresses(binary.data, [0x10])
