"""The e9dump inspection CLI."""

import pytest

from repro.frontend.dump import dump_lines, main, resolve_matcher, summarize
from repro.synth.generator import SynthesisParams, synthesize
from tests.conftest import requires_gcc


@pytest.fixture(scope="module")
def sample(tmp_path_factory):
    binary = synthesize(SynthesisParams(n_jump_sites=15, n_write_sites=10,
                                        seed=2468))
    path = tmp_path_factory.mktemp("dump") / "in.elf"
    path.write_bytes(binary.data)
    return path, binary


class TestDump:
    def test_listing(self, sample):
        path, binary = sample
        lines = dump_lines(path.read_bytes(), limit=20)
        assert len(lines) == 20
        assert all(":" in ln for ln in lines)

    def test_matcher_annotation(self, sample):
        path, binary = sample
        lines = dump_lines(path.read_bytes(),
                           matcher=resolve_matcher("jumps"))
        marked = [ln for ln in lines if ln.startswith("  *")]
        assert len(marked) >= 15

    def test_expression_matcher(self, sample):
        path, _ = sample
        lines = dump_lines(path.read_bytes(),
                           matcher=resolve_matcher('mnemonic == "call"'))
        assert any(ln.startswith("  *") for ln in lines)

    def test_summary(self, sample):
        path, binary = sample
        lines = summarize(path.read_bytes(), resolve_matcher("jumps"))
        text = "\n".join(lines)
        assert "matched sites:" in text
        assert "punning-constrained" in text

    def test_cli(self, sample, capsys):
        path, _ = sample
        assert main([str(path), "-M", "jumps", "--summary"]) == 0
        out = capsys.readouterr().out
        assert "matched sites" in out

    def test_cli_listing_limit(self, sample, capsys):
        path, _ = sample
        assert main([str(path), "-n", "5"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 5

    @requires_gcc
    def test_function_mode(self, compiled_corpus, capsys):
        path = next(iter(compiled_corpus.values()))
        assert main([str(path), "-F", "fib"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines(), "function listing must be non-empty"
