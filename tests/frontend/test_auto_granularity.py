"""Auto-tuned page-grouping granularity (Section 4's mapping-limit
trade-off)."""

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import instrument_elf, instrument_elf_auto
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import run_elf


def workload():
    return synthesize(SynthesisParams(
        n_jump_sites=120, n_write_sites=40, seed=555, loop_iters=1))


class TestAutoGranularity:
    def test_respects_mapping_limit(self):
        binary = workload()
        baseline = instrument_elf(binary.data, "jumps",
                                  options=RewriteOptions(mode="loader"))
        base_mappings = baseline.result.grouping.mapping_count
        assert base_mappings > 10  # otherwise the test is vacuous

        # Pick a limit that coarsening can actually reach (pun scatter
        # puts a floor on the number of distinct blocks).
        coarse = instrument_elf(binary.data, "jumps",
                                options=RewriteOptions(mode="loader",
                                                       granularity=16))
        limit = coarse.result.grouping.mapping_count
        assert limit < base_mappings
        report = instrument_elf_auto(binary.data, "jumps",
                                     max_mappings=limit)
        assert report.result.grouping.mapping_count <= limit
        assert report.result.grouping.block_pages <= 16

    def test_behaviour_preserved_at_coarse_granularity(self):
        binary = workload()
        orig = run_elf(binary.data)
        report = instrument_elf_auto(binary.data, "jumps", max_mappings=8)
        assert run_elf(report.result.data).observable == orig.observable

    def test_no_tuning_needed_returns_first_run(self):
        binary = workload()
        report = instrument_elf_auto(binary.data, "jumps",
                                     max_mappings=10**9)
        assert report.result.grouping.block_pages == 1

    def test_coarser_blocks_cost_physical_memory(self):
        binary = workload()
        fine = instrument_elf(binary.data, "jumps",
                              options=RewriteOptions(mode="loader",
                                                     granularity=1))
        coarse = instrument_elf(binary.data, "jumps",
                                options=RewriteOptions(mode="loader",
                                                       granularity=16))
        assert (coarse.result.grouping.mapping_count
                <= fine.result.grouping.mapping_count)
        assert (coarse.result.grouping.grouped_physical_bytes
                >= fine.result.grouping.grouped_physical_bytes)
