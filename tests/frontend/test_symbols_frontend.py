"""Symbol-guided disassembly (the data-in-.text countermeasure)."""

import pytest

from repro.elf.reader import ElfFile
from repro.elf.symbols import function_ranges, function_symbols
from repro.errors import ElfError
from repro.frontend.lineardisasm import disassemble_functions, disassemble_text
from repro.frontend.tool import instrument_elf
from repro.core.rewriter import RewriteOptions
from repro.synth.generator import SynthesisParams, synthesize
from tests.conftest import requires_gcc


class TestSymbolParsing:
    @requires_gcc
    def test_compiled_binary_symbols(self, compiled_corpus):
        path = next(iter(compiled_corpus.values()))
        elf = ElfFile(path.read_bytes())
        syms = function_symbols(elf)
        names = {s.name for s in syms}
        assert "main" in names
        assert "fib" in names
        main = next(s for s in syms if s.name == "main")
        assert main.size > 0
        text = elf.section(".text")
        assert text.vaddr <= main.value < text.vaddr + text.size

    @requires_gcc
    def test_ranges_disjoint_sorted(self, compiled_corpus):
        path = next(iter(compiled_corpus.values()))
        ranges = function_ranges(ElfFile(path.read_bytes()))
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
            assert a_hi <= b_lo
            assert a_lo < a_hi

    def test_synthetic_binary_has_no_symbols(self):
        binary = synthesize(SynthesisParams(seed=1))
        elf = ElfFile(binary.data)
        assert function_symbols(elf) == []
        with pytest.raises(ElfError):
            disassemble_functions(elf)


@requires_gcc
class TestSymbolFrontend:
    def test_instructions_subset_of_linear_on_clean_binary(self, compiled_corpus):
        """On clean compiler output, symbol-guided decoding agrees with
        the linear sweep wherever both cover an address."""
        path = next(iter(compiled_corpus.values()))
        elf = ElfFile(path.read_bytes())
        linear = {i.address: i.raw for i in disassemble_text(elf)}
        for insn in disassemble_functions(elf):
            if insn.address in linear:
                assert linear[insn.address] == insn.raw

    def test_instrument_with_symbols_frontend(self, compiled_corpus,
                                              run_native):
        variant = "O2_pie"
        if variant not in compiled_corpus:
            pytest.skip("O2_pie unavailable")
        data = compiled_corpus[variant].read_bytes()
        ref_code, ref_out = run_native(data)
        report = instrument_elf(data, "jumps",
                                options=RewriteOptions(mode="loader"),
                                frontend="symbols")
        assert report.n_sites > 0
        code, out = run_native(report.result.data)
        assert (code, out) == (ref_code, ref_out)

    def test_unknown_frontend_rejected(self, compiled_corpus):
        path = next(iter(compiled_corpus.values()))
        with pytest.raises(ValueError):
            instrument_elf(path.read_bytes(), "jumps", frontend="psychic")
