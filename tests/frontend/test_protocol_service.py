"""The protocol's stdin/stdout service mode (the e9tool<->e9patch
subprocess split)."""

import base64
import json
import subprocess
import sys

from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import run_elf


class TestServiceMode:
    def test_subprocess_pipeline(self, tmp_path):
        binary = synthesize(SynthesisParams(
            n_jump_sites=10, n_write_sites=5, seed=777, loop_iters=1))
        orig = run_elf(binary.data)
        out_path = tmp_path / "out.elf"
        requests = [
            {"jsonrpc": "2.0", "id": 1, "method": "binary",
             "params": {"data": base64.b64encode(binary.data).decode()}},
            {"jsonrpc": "2.0", "id": 2, "method": "patch",
             "params": {"address": binary.jump_sites[0]}},
            {"jsonrpc": "2.0", "id": 3, "method": "emit",
             "params": {"filename": str(out_path), "return_data": False}},
        ]
        stdin = "\n".join(json.dumps(r) for r in requests) + "\n"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.frontend.protocol"],
            input=stdin, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        responses = [json.loads(ln) for ln in proc.stdout.splitlines()]
        assert len(responses) == 3
        assert all("result" in r for r in responses), responses
        assert run_elf(out_path.read_bytes()).observable == orig.observable

    def test_errors_do_not_kill_the_service(self):
        stdin = "\n".join([
            "{bad json",
            json.dumps({"jsonrpc": "2.0", "id": 1, "method": "nope"}),
            json.dumps({"jsonrpc": "2.0", "id": 2, "method": "patch",
                        "params": {"address": 1}}),
        ]) + "\n"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.frontend.protocol"],
            input=stdin, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0
        responses = [json.loads(ln) for ln in proc.stdout.splitlines()]
        assert len(responses) == 3
        assert all("error" in r for r in responses)
