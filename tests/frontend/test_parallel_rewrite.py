"""Parallel batch determinism, cache round trips, per-run counters, CLI."""

import json

from repro.core.cache import ArtifactCache
from repro.core.observe import Observer
from repro.core.rewriter import RewriteOptions
from repro.core.strategy import TacticToggles
from repro.frontend.tool import main, prepare_binary, rewrite_many
from repro.synth.generator import SynthesisParams, synthesize

N_SITES = 150


def make_binary(seed=7):
    return synthesize(SynthesisParams(
        n_jump_sites=N_SITES, n_write_sites=N_SITES // 2, seed=seed)).data


def batch_configs():
    """Eight distinct configurations (granularity x T3 toggle)."""
    return [
        RewriteOptions(mode="loader", granularity=g,
                       toggles=TacticToggles(t3=t3))
        for g in (1, 2, 4, 8) for t3 in (True, False)
    ]


def pin_cpus(monkeypatch, n=4):
    """Force the executor's CPU clamp so the pool path runs even when
    the test host has a single CPU (where batches auto-serialize)."""
    import repro.core.parallel as parallel_mod

    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: n)


class TestParallelDeterminism:
    def test_outputs_and_stats_match_serial(self, monkeypatch):
        pin_cpus(monkeypatch)
        data = make_binary()
        configs = batch_configs()
        assert len(configs) >= 8

        serial = rewrite_many(data, list(configs), matcher="jumps", jobs=1)
        parallel = rewrite_many(data, list(configs), matcher="jumps", jobs=4)

        assert [r.result.data for r in serial] == \
            [r.result.data for r in parallel]
        assert [r.stats.row() for r in serial] == \
            [r.stats.row() for r in parallel]
        assert [r.n_sites for r in serial] == [r.n_sites for r in parallel]

    def test_parallel_observer_merges_worker_counters(self, monkeypatch):
        pin_cpus(monkeypatch)
        data = make_binary()
        obs = Observer()
        rewrite_many(data, batch_configs(), matcher="jumps", jobs=4,
                     observer=obs)
        assert obs.counters.get("parallel.tasks") == 8
        assert obs.counters.get("parallel.jobs") == 4
        # Every worker planned its own configuration.
        assert obs.runs("plan") == 8

    def test_one_cpu_batch_shares_decode(self, monkeypatch):
        # On a one-CPU host the pool cannot win: the batch must take the
        # serial path, which decodes once for all configurations.
        pin_cpus(monkeypatch, 1)
        data = make_binary()
        obs = Observer()
        reports = rewrite_many(data, batch_configs(), matcher="jumps",
                               jobs=4, observer=obs)
        assert len(reports) == 8
        assert "parallel.tasks" not in obs.counters
        assert obs.runs("decode") == 1

    def test_unpicklable_config_degrades_to_shared_decode(self):
        data = make_binary()
        obs = Observer()
        reports = rewrite_many(
            data, [RewriteOptions(mode="loader"),
                   RewriteOptions(mode="loader", grouping=False)],
            matcher=lambda insn: insn.is_jump, jobs=4, observer=obs)
        assert len(reports) == 2
        # Serial fallback shares one in-process decode across the batch.
        assert obs.runs("decode") == 1


class TestCacheRoundTrip:
    def test_warm_run_does_zero_decode_work(self, tmp_path):
        data = make_binary()
        cold_cache = ArtifactCache(tmp_path)
        cold_obs = Observer()
        cold = rewrite_many(data, [RewriteOptions(mode="loader")],
                            matcher="jumps", observer=cold_obs,
                            cache=cold_cache)
        assert cold_obs.runs("decode") == 1
        assert cold_cache.stats.stores >= 2  # decode + match artifacts

        warm_cache = ArtifactCache(tmp_path)
        warm_obs = Observer()
        warm = rewrite_many(data, [RewriteOptions(mode="loader")],
                            matcher="jumps", observer=warm_obs,
                            cache=warm_cache)
        assert warm_obs.runs("decode") == 0
        assert warm_obs.runs("match") == 0
        assert warm_cache.stats.hits >= 2
        assert warm[0].result.data == cold[0].result.data
        assert warm[0].counters.get("cache.decode.hits") == 1

    def test_corrupted_entries_are_ignored_not_fatal(self, tmp_path):
        data = make_binary()
        reference = rewrite_many(data, [RewriteOptions(mode="loader")],
                                 matcher="jumps")[0]
        cache = ArtifactCache(tmp_path)
        rewrite_many(data, [RewriteOptions(mode="loader")],
                     matcher="jumps", cache=cache)
        for entry in tmp_path.rglob("*.pkl"):
            entry.write_bytes(b"\x80garbage")

        retry_cache = ArtifactCache(tmp_path)
        report = rewrite_many(data, [RewriteOptions(mode="loader")],
                              matcher="jumps", cache=retry_cache)[0]
        assert report.result.data == reference.result.data
        assert retry_cache.stats.errors >= 1

    def test_stale_schema_entry_is_a_miss(self, tmp_path, monkeypatch):
        import repro.core.cache as cache_mod

        data = make_binary()
        cache = ArtifactCache(tmp_path)
        rewrite_many(data, [RewriteOptions(mode="loader")],
                     matcher="jumps", cache=cache)

        # A decoder/schema change produces a different fingerprint: the
        # old entries simply never match, no manual invalidation needed.
        monkeypatch.setattr(cache_mod, "compute_toolchain_fingerprint",
                            lambda: "0" * 64)
        stale_obs = Observer()
        rewrite_many(data, [RewriteOptions(mode="loader")],
                     matcher="jumps", observer=stale_obs,
                     cache=ArtifactCache(tmp_path))
        assert stale_obs.runs("decode") == 1  # re-decoded from scratch

    def test_output_cache_skips_planning(self, tmp_path):
        data = make_binary()
        cache = ArtifactCache(tmp_path)
        cold = rewrite_many(data, [RewriteOptions(mode="loader")],
                            matcher="jumps", cache=cache,
                            cache_outputs=True)[0]

        warm_obs = Observer()
        warm = rewrite_many(data, [RewriteOptions(mode="loader")],
                            matcher="jumps", observer=warm_obs,
                            cache=ArtifactCache(tmp_path),
                            cache_outputs=True)[0]
        assert warm_obs.runs("plan") == 0
        assert warm.result.data == cold.result.data
        assert warm.n_sites == cold.n_sites

    def test_prepare_binary_cache_hit(self, tmp_path):
        data = make_binary()
        cache = ArtifactCache(tmp_path)
        cold = prepare_binary(data, cache=cache)

        obs = Observer()
        warm = prepare_binary(data, observer=obs, cache=ArtifactCache(tmp_path))
        assert obs.runs("decode") == 0
        assert len(warm.instructions) == len(cold.instructions)


class TestPerRunCounters:
    def test_identical_configs_report_identical_work(self):
        """Regression: per-config counters must be per-run deltas, not
        the batch's cumulative totals."""
        data = make_binary()
        options = RewriteOptions(mode="loader")
        first, second = rewrite_many(
            data, [options, RewriteOptions(mode="loader")], matcher="jumps")

        assert first.counters["plan.alloc_probes"] == \
            second.counters["plan.alloc_probes"]
        assert first.counters["pass.plan.runs"] == 1
        assert second.counters["pass.plan.runs"] == 1
        # Decode/match belong to the run that triggered them: the first.
        assert first.counters["pass.decode.runs"] == 1
        assert "pass.decode.runs" not in second.counters
        assert second.timings.keys() <= {"plan", "group", "emit", "verify"}

    def test_single_run_still_reports_decode(self):
        data = make_binary()
        report = rewrite_many(data, [RewriteOptions(mode="loader")],
                              matcher="jumps")[0]
        assert report.counters["pass.decode.runs"] == 1
        assert "decode" in report.timings


class TestCli:
    def run_cli(self, args, tmp_path, capsys, seed=11):
        src = tmp_path / "in.elf"
        dst = tmp_path / "out.elf"
        src.write_bytes(make_binary(seed))
        rc = main([str(src), str(dst), *args])
        assert rc == 0
        return dst, capsys.readouterr().out

    def test_json_reports_cache_stats(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        _, out = self.run_cli(["--cache", "--cache-dir", str(cache_dir),
                               "--json"], tmp_path, capsys)
        payload = json.loads(out)
        assert payload["cache"]["misses"] >= 1
        assert payload["cache"]["stores"] >= 1

        _, out = self.run_cli(["--cache", "--cache-dir", str(cache_dir),
                               "--json"], tmp_path, capsys)
        warm = json.loads(out)
        assert warm["cache"]["hits"] >= 2
        assert "pass.decode.runs" not in warm["counters"]
        assert warm["stats"] == payload["stats"]

    def test_no_cache_reports_null(self, tmp_path, capsys):
        _, out = self.run_cli(["--no-cache", "--json"], tmp_path, capsys)
        assert json.loads(out)["cache"] is None

    def test_jobs_flag_accepted(self, tmp_path, capsys):
        dst, out = self.run_cli(["--jobs", "2"], tmp_path, capsys)
        assert dst.stat().st_size > 0
        assert "mode=" in out
