"""The matcher-expression DSL: lexer, parser, evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.frontend.match_expr import (
    And,
    Bareword,
    Comparison,
    MatchExprError,
    Not,
    Or,
    compile_matcher,
    parse,
    tokenize,
)
from repro.x86.decoder import decode


def d(hexstr: str, address: int = 0x401000):
    return decode(bytes.fromhex(hexstr.replace(" ", "")), 0, address=address)


JCC = d("74 10")
JMP32 = d("e9 00 01 00 00")
CALL = d("e8 00 01 00 00")
STORE = d("48 89 03")
LOAD = d("48 8b 03")
RET = d("c3")
RIPSTORE = d("48 89 05 00 10 00 00")


class TestLexer:
    def test_tokens(self):
        tokens = tokenize('size >= 0x10 and mnemonic == "mov"')
        kinds = [t.kind for t in tokens]
        assert kinds == ["word", "cmp", "hex", "word", "word", "cmp",
                        "string", "eof"]

    def test_regex_token(self):
        tokens = tokenize("mnemonic =~ /j.*/")
        assert tokens[2].kind == "regex"

    def test_bad_character(self):
        with pytest.raises(MatchExprError):
            tokenize("size $ 5")


class TestParser:
    def test_precedence_and_binds_tighter(self):
        ast = parse("ret or jmp and jcc")
        assert isinstance(ast, Or)
        assert isinstance(ast.right, And)

    def test_parentheses(self):
        ast = parse("(ret or jmp) and jcc")
        assert isinstance(ast, And)
        assert isinstance(ast.left, Or)

    def test_not(self):
        ast = parse("not not ret")
        assert isinstance(ast, Not)
        assert isinstance(ast.operand, Not)
        assert isinstance(ast.operand.operand, Bareword)

    def test_comparison_nodes(self):
        ast = parse("size >= 5")
        assert isinstance(ast, Comparison)
        assert ast.field == "size" and ast.op == ">=" and ast.value == 5

    @pytest.mark.parametrize("bad", [
        "", "size >=", "size 5", "(ret", "ret)", "bogusword",
        "mnemonic > 5", "size =~ 5", "size == \"x\" extra",
        "mnemonic =~ /(/",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(MatchExprError):
            parse(bad)


class TestEvaluation:
    def test_barewords(self):
        matcher = compile_matcher("jumps")
        assert matcher(JCC) and matcher(JMP32)
        assert not matcher(CALL) and not matcher(RET)

    def test_mnemonic_equality(self):
        matcher = compile_matcher('mnemonic == "call"')
        assert matcher(CALL)
        assert not matcher(JMP32)

    def test_size_comparisons(self):
        big = compile_matcher("size >= 5")
        assert big(JMP32) and big(CALL) and not big(JCC)
        assert compile_matcher("size < 2")(RET)

    def test_regex(self):
        matcher = compile_matcher("mnemonic =~ /j.*/")
        assert matcher(JCC) and matcher(JMP32)
        assert not matcher(CALL)

    def test_regex_is_fullmatch(self):
        assert not compile_matcher("mnemonic =~ /mo/")(STORE)
        assert compile_matcher("mnemonic =~ /mov/")(STORE)

    def test_addr_ranges(self):
        matcher = compile_matcher("addr >= 0x401000 and addr < 0x402000")
        assert matcher(JCC)
        assert not matcher(d("74 10", address=0x500000))

    def test_mem_write_vs_heap_write(self):
        assert compile_matcher("mem-write")(RIPSTORE)
        assert not compile_matcher("heap-writes")(RIPSTORE)
        assert compile_matcher("mem-write and not rip-relative")(STORE)
        assert not compile_matcher("mem-write and not rip-relative")(RIPSTORE)

    def test_target_field(self):
        matcher = compile_matcher("target == 0x401105")
        assert matcher(JMP32)  # 0x401000 + 5 + 0x100
        assert not matcher(RET)  # target is None -> False

    def test_boolean_composition(self):
        matcher = compile_matcher('(jumps or calls) and size >= 5')
        assert matcher(JMP32) and matcher(CALL)
        assert not matcher(JCC)

    def test_mem_read(self):
        assert compile_matcher("mem-read")(LOAD)
        assert not compile_matcher("mem-read")(STORE)

    @given(st.sampled_from(["jumps", "heap-writes", "calls", "all"]))
    def test_barewords_match_registry(self, name):
        from repro.frontend.matchers import MATCHERS

        matcher = compile_matcher(name)
        registry = MATCHERS[name]
        for insn in (JCC, JMP32, CALL, STORE, LOAD, RET, RIPSTORE):
            assert matcher(insn) == registry(insn)


class TestIntegration:
    def test_expression_in_instrument_elf(self):
        from repro.core.rewriter import RewriteOptions
        from repro.frontend.tool import instrument_elf
        from repro.synth.generator import SynthesisParams, synthesize
        from repro.vm.machine import run_elf

        binary = synthesize(SynthesisParams(
            n_jump_sites=15, n_write_sites=15, seed=888, loop_iters=1))
        orig = run_elf(binary.data)
        report = instrument_elf(
            binary.data, compile_matcher("jcc and size == 2"),
            options=RewriteOptions(mode="loader"))
        assert report.n_sites > 0
        assert run_elf(report.result.data).observable == orig.observable
