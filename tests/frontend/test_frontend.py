"""Frontend: linear disassembly, matchers on real streams, CLI tool."""

import pytest

from repro.elf.builder import hello_world
from repro.elf.reader import ElfFile
from repro.errors import ElfError
from repro.frontend.lineardisasm import disassemble_section, disassemble_text
from repro.frontend.matchers import MATCHERS, select_sites
from repro.frontend.tool import instrument_elf, main
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import run_elf


class TestLinearDisasm:
    def test_covers_whole_text(self):
        elf = ElfFile(hello_world())
        insns = disassemble_text(elf)
        text = elf.section(".text")
        assert insns[0].address == text.vaddr
        assert sum(i.length for i in insns) == text.size

    def test_missing_section_raises(self):
        elf = ElfFile(hello_world())
        with pytest.raises(ElfError):
            disassemble_section(elf, ".bogus")

    def test_stripped_fallback(self):
        # Strip section headers: e_shoff/e_shnum zeroed.
        raw = bytearray(hello_world())
        raw[0x28:0x30] = b"\x00" * 8  # e_shoff
        raw[0x3C:0x3E] = b"\x00\x00"  # e_shnum
        raw[0x3E:0x40] = b"\x00\x00"  # e_shstrndx
        elf = ElfFile(bytes(raw))
        assert elf.section(".text") is None
        insns = disassemble_text(elf)
        assert insns, "fallback must disassemble the exec segment"

    def test_data_in_code_survives(self):
        binary = synthesize(SynthesisParams(seed=42))
        elf = ElfFile(binary.data)
        insns = disassemble_text(elf)
        # linear stream is contiguous
        for a, b in zip(insns, insns[1:]):
            assert a.end == b.address


class TestMatcherRegistry:
    def test_named_matchers(self):
        assert set(MATCHERS) == {"jumps", "heap-writes", "calls", "all"}

    def test_select_sites_ordered(self):
        binary = synthesize(SynthesisParams(n_jump_sites=20, seed=2))
        insns = disassemble_text(ElfFile(binary.data))
        sites = select_sites(insns, MATCHERS["jumps"])
        assert sites == sorted(sites, key=lambda i: i.address)

    def test_calls_matcher(self):
        binary = synthesize(SynthesisParams(seed=3))
        insns = disassemble_text(ElfFile(binary.data))
        calls = select_sites(insns, MATCHERS["calls"])
        assert calls  # main calls each generated function
        assert all(i.mnemonic == "call" for i in calls)


class TestInstrumentElf:
    def test_report_fields(self):
        binary = synthesize(SynthesisParams(n_jump_sites=25, seed=4))
        report = instrument_elf(binary.data, "jumps")
        assert report.n_sites >= 25
        assert report.stats.total == report.n_sites
        assert "Succ%" in report.summary()

    def test_accepts_callable_matcher(self):
        binary = synthesize(SynthesisParams(seed=5))
        report = instrument_elf(binary.data, lambda i: i.mnemonic == "call")
        assert report.n_sites > 0


class TestCli:
    def test_cli_end_to_end(self, tmp_path, capsys):
        binary = synthesize(SynthesisParams(
            n_jump_sites=15, n_write_sites=10, seed=6, loop_iters=1))
        src = tmp_path / "in.elf"
        dst = tmp_path / "out.elf"
        src.write_bytes(binary.data)
        rc = main([str(src), str(dst), "-M", "jumps"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Succ%" in out
        orig = run_elf(binary.data)
        patched = run_elf(dst.read_bytes())
        assert patched.observable == orig.observable

    def test_cli_ablation_flags(self, tmp_path):
        binary = synthesize(SynthesisParams(n_jump_sites=10, seed=7))
        src = tmp_path / "in.elf"
        dst = tmp_path / "out.elf"
        src.write_bytes(binary.data)
        rc = main([str(src), str(dst), "-M", "jumps", "--no-t3",
                   "--no-grouping", "--mode", "phdr"])
        assert rc == 0

    def test_cli_counter(self, tmp_path):
        binary = synthesize(SynthesisParams(n_jump_sites=10, seed=8,
                                            loop_iters=1))
        src = tmp_path / "in.elf"
        dst = tmp_path / "out.elf"
        src.write_bytes(binary.data)
        rc = main([str(src), str(dst), "-M", "jumps", "-i", "counter"])
        assert rc == 0
