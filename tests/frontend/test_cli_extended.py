"""Extended CLI features: expression matchers, templates, JSON stats."""

import json

from repro.frontend.tool import main
from repro.synth.generator import SynthesisParams, synthesize
from repro.vm.machine import Machine, run_elf

TEMPLATE = {
    "name": "counter",
    "params": ["counter"],
    "body": [
        {"op": "save_flags"},
        {"op": "save", "reg": "rax"},
        {"op": "load_imm", "reg": "rax", "value": "{counter}"},
        {"op": "inc_mem", "base": "rax"},
        {"op": "restore", "reg": "rax"},
        {"op": "restore_flags"},
    ],
}


def make_input(tmp_path, **kw):
    defaults = dict(n_jump_sites=12, n_write_sites=10, seed=42, loop_iters=1)
    defaults.update(kw)
    binary = synthesize(SynthesisParams(**defaults))
    path = tmp_path / "in.elf"
    path.write_bytes(binary.data)
    return path, binary


class TestExpressionMatcher:
    def test_expression_on_cli(self, tmp_path):
        src, _ = make_input(tmp_path)
        dst = tmp_path / "out.elf"
        rc = main([str(src), str(dst), "-M", "jcc and size == 2"])
        assert rc == 0
        orig = run_elf(src.read_bytes())
        assert run_elf(dst.read_bytes()).observable == orig.observable

    def test_named_matcher_still_works(self, tmp_path):
        src, _ = make_input(tmp_path)
        dst = tmp_path / "out.elf"
        assert main([str(src), str(dst), "-M", "heap-writes"]) == 0


class TestTemplateFlag:
    def test_template_with_alloc_arg(self, tmp_path, capsys):
        src, _ = make_input(tmp_path, loop_iters=3)
        dst = tmp_path / "out.elf"
        tpl = tmp_path / "tpl.json"
        tpl.write_text(json.dumps(TEMPLATE))
        rc = main([str(src), str(dst), "-M", "jumps",
                   "--template", str(tpl), "--template-arg", "counter=alloc"])
        assert rc == 0
        out = capsys.readouterr().out
        line = next(ln for ln in out.splitlines() if ln.startswith("counter at"))
        counter_vaddr = int(line.split()[-1], 16)
        machine = Machine(dst.read_bytes())
        machine.run()
        assert machine.mem.read_u64(counter_vaddr) > 0

    def test_template_with_literal_arg(self, tmp_path):
        src, _ = make_input(tmp_path)
        dst = tmp_path / "out.elf"
        tpl = tmp_path / "tpl.json"
        tpl.write_text(json.dumps({"name": "nothing", "body": []}))
        assert main([str(src), str(dst), "--template", str(tpl)]) == 0


class TestStatsJson:
    def test_stats_file_written(self, tmp_path):
        src, _ = make_input(tmp_path)
        dst = tmp_path / "out.elf"
        stats_path = tmp_path / "stats.json"
        rc = main([str(src), str(dst), "-M", "jumps",
                   "--stats-json", str(stats_path)])
        assert rc == 0
        stats = json.loads(stats_path.read_text())
        assert stats["locs"] > 0
        assert stats["succ_pct"] == 100.0
        assert stats["mode"] == "loader"
        assert stats["failures"] == []
        parts = (stats["base_pct"] + stats["t1_pct"]
                 + stats["t2_pct"] + stats["t3_pct"])
        assert abs(parts - stats["succ_pct"]) < 0.01
