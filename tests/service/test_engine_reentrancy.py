"""Engine reentrancy: N threads through one shared engine/store must
produce byte-identical outputs to serial one-shot runs."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.cache import ArtifactStore, CacheConfig
from repro.core.observe import Observer
from repro.core.parallel import ExecutorConfig
from repro.core.rewriter import RewriteOptions
from repro.frontend.engine import EngineConfig, RewriteEngine, options_from_dict
from repro.frontend.tool import instrument_elf

from tests.service.conftest import make_binary


def serial_reference(data: bytes, options: RewriteOptions) -> bytes:
    """The one-shot CLI path: fresh everything, no sharing."""
    return instrument_elf(data, "jumps", options=options).result.data


class TestReentrancy:
    def test_threads_same_binary_byte_identical(self, tmp_path):
        data = make_binary(seed=11)
        options = RewriteOptions(mode="loader")
        expected = serial_reference(data, options)

        engine = RewriteEngine(EngineConfig(
            cache=CacheConfig.from_env(tmp_path),
            executor=ExecutorConfig(jobs=1),
        ))
        with ThreadPoolExecutor(max_workers=8) as pool:
            outputs = list(pool.map(
                lambda _: engine.rewrite(data, options=options).result.data,
                range(16)))
        assert all(out == expected for out in outputs)
        stats = engine.store.stats
        assert stats.errors == 0
        assert stats.hits + stats.misses > 0

    def test_threads_different_binaries_share_nothing_but_store(self,
                                                                tmp_path):
        binaries = {seed: make_binary(seed=seed, sites=20)
                    for seed in (1, 2, 3, 4)}
        options = RewriteOptions(mode="loader")
        expected = {seed: serial_reference(data, options)
                    for seed, data in binaries.items()}

        engine = RewriteEngine(EngineConfig(
            cache=CacheConfig.from_env(tmp_path)))
        results: dict[int, list[bytes]] = {seed: [] for seed in binaries}
        lock = threading.Lock()

        def worker(seed: int) -> None:
            out = engine.rewrite(binaries[seed], options=options).result.data
            with lock:
                results[seed].append(out)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, [s for s in binaries for _ in range(4)]))

        for seed, outs in results.items():
            assert len(outs) == 4
            assert all(out == expected[seed] for out in outs)

    def test_shared_store_across_engines(self, tmp_path):
        """Two engines over one store: the second is all warm hits."""
        data = make_binary(seed=9)
        store = ArtifactStore(tmp_path)
        options = RewriteOptions(mode="loader")

        first = RewriteEngine(store=store)
        second = RewriteEngine(store=store)
        a = first.rewrite(data, options=options)
        observer = Observer()
        b = second.rewrite(data, options=options, observer=observer)
        assert a.result.data == b.result.data
        assert observer.runs("decode") == 0  # served from the shared store

    def test_per_request_observer_isolation(self, tmp_path):
        data = make_binary(seed=5)
        engine = RewriteEngine()
        obs_a, obs_b = Observer(), Observer()
        engine.rewrite(data, options=RewriteOptions(mode="loader"),
                       observer=obs_a)
        engine.rewrite(data, options=RewriteOptions(mode="loader"),
                       observer=obs_b)
        # Each request's observer saw exactly its own pipeline.
        assert obs_a.runs("decode") == 1
        assert obs_b.runs("decode") == 1

    def test_matcher_expression_accepted(self):
        data = make_binary(seed=3)
        engine = RewriteEngine()
        report = engine.rewrite(
            data, matcher='mnemonic == "jmp" and size >= 2',
            options=RewriteOptions(mode="loader"))
        assert report.n_sites > 0


class TestOptionsFromDict:
    def test_defaults(self):
        options = options_from_dict({})
        assert options == RewriteOptions()

    def test_full_round_trip(self):
        options = options_from_dict({
            "mode": "loader", "grouping": False, "granularity": 4,
            "t3": False, "verify": True,
        })
        assert options.mode == "loader"
        assert options.grouping is False
        assert options.granularity == 4
        assert options.toggles.t3 is False
        assert options.verify is True

    def test_unknown_key_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="granularty"):
            options_from_dict({"granularty": 2})

    def test_bad_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="mode"):
            options_from_dict({"mode": "turbo"})
