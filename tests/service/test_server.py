"""The daemon end to end: correctness under concurrency, typed
backpressure, per-request errors, and graceful drain."""

from __future__ import annotations

import base64
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.rewriter import RewriteOptions
from repro.frontend.tool import instrument_elf
from repro.service import ServiceClient, ServiceError

from tests.service.conftest import make_binary, running_service


def one_shot(data: bytes) -> bytes:
    return instrument_elf(data, "jumps",
                          options=RewriteOptions(mode="loader")).result.data


class TestRewriteEndpoint:
    def test_roundtrip_byte_identical_to_cli(self, tmp_path):
        data = make_binary(seed=21)
        with running_service(tmp_path) as (_, client):
            body = client.rewrite(data, options={"mode": "loader"})
            assert body["ok"] is True
            assert body["report"]["stats"]["succ_pct"] > 0
            assert base64.b64decode(body["output"]) == one_shot(data)

    def test_report_matches_cli_json_shape(self, tmp_path):
        data = make_binary(seed=22)
        with running_service(tmp_path) as (_, client):
            report = client.rewrite(data, options={"mode": "loader"})["report"]
        for key in ("n_sites", "mode", "stats", "timings", "counters",
                    "input_size", "output_size"):
            assert key in report

    def test_output_omitted_on_request(self, tmp_path):
        data = make_binary(seed=23)
        with running_service(tmp_path) as (_, client):
            body = client.rewrite(data, return_output=False)
            assert "output" not in body

    def test_concurrent_requests_byte_identical(self, tmp_path):
        binaries = {seed: make_binary(seed=seed, sites=15)
                    for seed in (31, 32, 33)}
        expected = {seed: one_shot(d) for seed, d in binaries.items()}
        with running_service(tmp_path, workers=4, queue_depth=32) as (_, client):
            def submit(seed):
                return seed, client.rewrite_bytes(
                    binaries[seed], options={"mode": "loader"})

            with ThreadPoolExecutor(max_workers=12) as pool:
                jobs = [s for s in binaries for _ in range(4)]
                for seed, out in pool.map(submit, jobs):
                    assert out == expected[seed]


class TestErrors:
    def test_invalid_json_is_400(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            status, body, _ = client.request("POST", "/rewrite")
            assert status == 400
            assert body["error"]["type"] == "bad_request"

    def test_missing_binary_is_400(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            status, body, _ = client.request("POST", "/rewrite",
                                             {"matcher": "jumps"})
            assert status == 400
            assert "binary" in body["error"]["message"]

    def test_invalid_base64_is_400(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            status, body, _ = client.request(
                "POST", "/rewrite", {"binary": "!!!not-base64!!!"})
            assert status == 400
            assert body["error"]["type"] == "bad_request"

    def test_not_an_elf_is_422(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            with pytest.raises(ServiceError) as excinfo:
                client.rewrite(b"\x7fNOT-AN-ELF" + b"\x00" * 64)
            assert excinfo.value.status == 422
            assert excinfo.value.kind == "rewrite_failed"

    def test_unknown_option_is_400(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            with pytest.raises(ServiceError) as excinfo:
                client.rewrite(make_binary(seed=2),
                               options={"granularty": 2})
            assert excinfo.value.status == 400

    def test_unknown_route_is_404_and_wrong_method_is_405(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            assert client.request("GET", "/nope")[0] == 404
            assert client.request("GET", "/rewrite")[0] == 405


class TestObservability:
    def test_healthz_and_metrics(self, tmp_path):
        data = make_binary(seed=41)
        with running_service(tmp_path) as (_, client):
            health = client.health()
            assert health["_status"] == 200
            assert health["status"] == "ok"
            assert health["workers"] == 2

            client.rewrite(data, options={"mode": "loader"})
            metrics = client.metrics()
            counters = metrics["service"]["counters"]
            assert counters["ok"] == 1
            assert counters["rewrites_total"] == 1
            assert metrics["service"]["latency"]["count"] == 1
            assert metrics["service"]["latency"]["p95_s"] > 0
            assert metrics["cache"]["stores"] > 0

    def test_cache_disabled_metrics_report_null(self, tmp_path):
        with running_service(tmp_path, cache=False) as (_, client):
            assert client.metrics()["cache"] is None


class TestBackpressure:
    def test_queue_full_is_typed_429_with_retry_after(self, tmp_path):
        data = make_binary(seed=51, sites=10)
        # One slow worker, queue of one: a burst must overflow.
        with running_service(tmp_path, cache=False, workers=1, queue_depth=1,
                             test_delay_s=0.4) as (_, client):
            outcomes: list[int | bytes] = []
            lock = threading.Lock()

            def submit(_):
                try:
                    out = client.rewrite_bytes(data,
                                               options={"mode": "loader"})
                    with lock:
                        outcomes.append(out)
                except ServiceError as exc:
                    with lock:
                        outcomes.append(exc.status)
                        if exc.status == 429:
                            assert exc.headers.get("retry-after") == "1"
                            assert exc.kind == "overloaded"

            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(submit, range(8)))

            rejected = [o for o in outcomes if o == 429]
            succeeded = [o for o in outcomes if isinstance(o, bytes)]
            assert rejected, "burst never hit the bounded queue"
            assert succeeded, "every request was rejected"
            expected = one_shot(data)
            assert all(out == expected for out in succeeded)

    def test_429_retry_eventually_succeeds(self, tmp_path):
        data = make_binary(seed=52, sites=10)
        with running_service(tmp_path, cache=False, workers=1, queue_depth=1,
                             test_delay_s=0.2) as (_, client):
            with ThreadPoolExecutor(max_workers=6) as pool:
                outs = list(pool.map(
                    lambda _: client.rewrite_bytes(
                        data, options={"mode": "loader"}, retries=50),
                    range(6)))
            expected = one_shot(data)
            assert all(out == expected for out in outs)


class TestTimeouts:
    def test_deadline_miss_is_typed_504(self, tmp_path):
        data = make_binary(seed=61, sites=10)
        with running_service(tmp_path, cache=False, workers=1, queue_depth=8,
                             test_delay_s=0.6,
                             request_timeout=0.3) as (_, client):
            with pytest.raises(ServiceError) as excinfo:
                client.rewrite(data, options={"mode": "loader"})
            assert excinfo.value.status == 504
            assert excinfo.value.kind == "timeout"


class TestGracefulDrain:
    def test_sigterm_drains_inflight_requests(self, tmp_path):
        data = make_binary(seed=71, sites=10)
        expected = one_shot(data)
        with running_service(tmp_path, cache=False, workers=2, queue_depth=16,
                             test_delay_s=0.3) as (service, client):
            results: list[bytes] = []
            errors: list[Exception] = []

            def submit():
                try:
                    results.append(client.rewrite_bytes(
                        data, options={"mode": "loader"}))
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for t in threads:
                t.start()
            # Let the requests reach the queue, then pull the plug.
            import time

            time.sleep(0.15)
            service.request_shutdown()
            for t in threads:
                t.join(timeout=30)

            assert not errors
            assert len(results) == 6
            assert all(out == expected for out in results)

    def test_rewrite_during_drain_is_typed_503(self, tmp_path):
        data = make_binary(seed=72, sites=10)
        with running_service(tmp_path, cache=False, workers=1,
                             test_delay_s=0.5) as (service, client):
            # Occupy the worker so drain is still in progress when the
            # follow-up request arrives on an existing connection.
            background = threading.Thread(
                target=lambda: client.rewrite(data,
                                              options={"mode": "loader"}))
            background.start()
            import time

            time.sleep(0.1)
            service.request_shutdown()
            time.sleep(0.1)
            try:
                status, body, _ = client.request(
                    "POST", "/rewrite",
                    {"binary": base64.b64encode(data).decode()})
                assert status == 503
                assert body["error"]["type"] == "draining"
            except (ConnectionError, OSError):
                pass  # listener already closed: also a clean refusal
            background.join(timeout=30)


class TestClient:
    def test_client_requires_endpoint(self):
        with pytest.raises(ValueError):
            ServiceClient()

    def test_tcp_endpoint(self, tmp_path):
        data = make_binary(seed=81, sites=10)
        with running_service(tmp_path, cache=False, socket_path=None,
                             host="127.0.0.1", port=0) as (service, _):
            host, port = service.address
            client = ServiceClient(host=host, port=port)
            assert client.wait_ready(timeout=5)
            out = client.rewrite_bytes(data, options={"mode": "loader"})
            assert out == one_shot(data)
