"""Shared helpers for the service suite: tiny binaries and an
in-process daemon running on a background thread."""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager

import pytest

from repro.core.cache import CacheConfig
from repro.service import RewriteService, ServiceClient, ServiceConfig
from repro.synth.generator import SynthesisParams, synthesize


def make_binary(seed: int = 1, sites: int = 25) -> bytes:
    """A small, fast-to-rewrite synthetic ELF."""
    return synthesize(SynthesisParams(
        n_jump_sites=sites, n_write_sites=sites // 2, seed=seed)).data


@contextmanager
def running_service(tmp_path, *, cache: bool = True, **config_overrides):
    """Boot a daemon on a unix socket in *tmp_path*; yield (service,
    client); always drain and join on exit."""
    overrides = dict(
        socket_path=str(tmp_path / "svc.sock"),
        workers=2,
        queue_depth=8,
        request_timeout=30.0,
        drain_timeout=10.0,
    )
    overrides.update(config_overrides)
    if cache and "cache" not in overrides:
        overrides["cache"] = CacheConfig.from_env(tmp_path / "store")
    service = RewriteService(ServiceConfig.from_env(environ={}, **overrides))
    thread = threading.Thread(target=lambda: asyncio.run(service.run()),
                              daemon=True)
    thread.start()
    if not service.ready.wait(timeout=15):
        raise RuntimeError("service did not become ready")
    if overrides["socket_path"] is not None:
        client = ServiceClient(socket_path=overrides["socket_path"],
                               timeout=60.0)
    else:
        host, port = service.address
        client = ServiceClient(host=host, port=port, timeout=60.0)
    try:
        yield service, client
    finally:
        service.request_shutdown()
        thread.join(timeout=15)
        if thread.is_alive():  # pragma: no cover - hang diagnostics
            pytest.fail("service thread failed to drain and exit")
