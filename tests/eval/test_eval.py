"""Evaluation harness tests: smoke runs + shape assertions matching the
paper's headline claims (small configurations to stay fast)."""


from repro.eval.ablation import (
    b0_slowdown,
    coverage_without_t3,
    grouping_size_blowup,
    pie_effect,
    scale_invariance,
)
from repro.eval.dromaeo import (
    DROMAEO_SUITES,
    format_dromaeo,
    geometric_mean,
    run_dromaeo,
)
from repro.eval.fig5 import format_fig5, run_one
from repro.eval.table1 import aggregate, format_table, run_row
from repro.synth.profiles import profile_by_name


class TestTable1Harness:
    def test_row_fields(self):
        row = run_row(profile_by_name("bzip2"), "A1")
        assert row.locs > 0
        total = row.base_pct + row.t1_pct + row.t2_pct + row.t3_pct
        assert abs(total - row.succ_pct) < 0.01
        assert row.size_pct > 100.0
        assert row.paper.locs == 1484

    def test_time_measurement(self):
        row = run_row(profile_by_name("mcf"), "A1", measure_time=True)
        assert row.time_pct is not None
        assert row.time_pct > 100.0  # instrumentation always costs

    def test_pie_beats_nonpie_baseline(self):
        """Paper: 'Even the baseline (Base%) for PIE binaries is >93%.'"""
        pie_row = run_row(profile_by_name("vim"), "A1")
        nonpie_row = run_row(profile_by_name("gcc"), "A1")
        assert pie_row.base_pct > 93.0
        assert pie_row.base_pct > nonpie_row.base_pct

    def test_success_always_high(self):
        """Paper: coverage at or near 100% for ordinary binaries."""
        for name in ("bzip2", "povray", "git"):
            for app in ("A1", "A2"):
                row = run_row(profile_by_name(name), app)
                assert row.succ_pct >= 99.0, (name, app)

    def test_format_and_aggregate(self):
        rows = [run_row(profile_by_name("mcf"), a) for a in ("A1", "A2")]
        text = format_table(rows)
        assert "Base%" in text and "(paper)" in text
        agg = aggregate(rows)
        assert agg["locs"] == sum(r.locs for r in rows)
        assert 0 < agg["succ_pct"] <= 100.0


class TestAblations:
    def test_no_t3_coverage_drops(self):
        """Paper: without T3 overall A1 coverage drops to ~90.5%; the
        effect is strongest on T3-heavy rows like gamess."""
        full, no_t3 = coverage_without_t3(profile_by_name("gamess"))
        assert no_t3 < full
        assert full >= 99.0
        assert no_t3 < 98.0

    def test_grouping_shrinks_file(self):
        """Paper: disabling grouping balloons the output size."""
        grouped, naive = grouping_size_blowup(profile_by_name("bzip2"))
        assert naive > grouped
        assert naive / grouped > 1.5

    def test_pie_effect(self):
        nonpie, pie = pie_effect(profile_by_name("gcc"))
        assert pie > nonpie

    def test_scale_invariance(self):
        succ = scale_invariance(profile_by_name("mcf"), factors=(1.0, 4.0))
        assert max(succ) - min(succ) < 5.0

    def test_b0_orders_of_magnitude_slower(self):
        jump_pct, b0_pct = b0_slowdown(n_sites=15, loop_iters=1)
        assert jump_pct < 400.0
        assert b0_pct > 10 * jump_pct  # "orders of magnitude"


class TestDromaeo:
    def test_suite_table_complete(self):
        assert len(DROMAEO_SUITES) == 14  # as in Figure 4

    def test_firefox_less_sensitive_than_chrome(self):
        """Figure 4's headline: Chrome ~113% vs FireFox ~46% overhead."""
        suites = ["Attrib", "Modify", "Traverse"]
        results = run_dromaeo(browsers=("Chrome", "FireFox"), suites=suites)
        chrome = geometric_mean([r.overhead_pct for r in results
                                 if r.browser == "Chrome"])
        firefox = geometric_mean([r.overhead_pct for r in results
                                  if r.browser == "FireFox"])
        assert chrome > firefox > 100.0

    def test_mutation_suites_cost_more_than_traversal(self):
        results = run_dromaeo(browsers=("Chrome",),
                              suites=["Modify", "Traverse"])
        by_suite = {r.suite: r.overhead_pct for r in results}
        assert by_suite["Modify"] > by_suite["Traverse"]

    def test_format(self):
        results = run_dromaeo(browsers=("Chrome",), suites=["Query"])
        text = format_dromaeo(results)
        assert "Query" in text and "Geom.Mean" in text


class TestFig5:
    def test_lowfat_costs_more_than_empty(self):
        """Figure 5's headline: LowFat checks roughly double the empty-
        instrumentation overhead."""
        row = run_one(profile_by_name("mcf"))
        assert row.lowfat_pct > row.empty_pct > 100.0

    def test_format(self):
        row = run_one(profile_by_name("lbm"))
        text = format_fig5([row])
        assert "lbm" in text and "Mean" in text
