"""Tests for the declarative evaluation matrix: cell axes, the cell-id
parser, slowdown injection, and one real (tiny) cell run end to end."""

from __future__ import annotations

import pytest

from repro.eval.matrix import (
    MIN_WORKLOAD_SITES,
    OPTION_COMBOS,
    PATCH_CONFIGS,
    MatrixCell,
    cells_for,
    inject_slowdown,
    parse_cells,
    run_cell,
    run_matrix,
    workload_params,
)


class TestAxes:
    def test_pr_suite_meets_acceptance_floor(self):
        # The issue's acceptance bar: >= 12 cells spanning >= 3 profiles
        # and >= 4 option combos.
        cells = cells_for("pr")
        assert len(cells) >= 12
        assert len({c.profile for c in cells}) >= 3
        assert len({c.combo for c in cells}) >= 4

    def test_full_suite_is_superset_of_pr(self):
        assert {c.cell_id for c in cells_for("pr")} <= {
            c.cell_id for c in cells_for("full")
        }

    def test_cell_ids_are_unique(self):
        cells = cells_for("full")
        assert len({c.cell_id for c in cells}) == len(cells)

    def test_every_axis_point_is_wired(self):
        full = cells_for("full")
        assert {c.patch_config for c in full} == set(PATCH_CONFIGS)
        assert {c.combo for c in full} == set(OPTION_COMBOS)

    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown suite"):
            cells_for("nightly")


class TestParseCells:
    def test_suite_names(self):
        assert parse_cells("pr") == cells_for("pr")
        assert parse_cells("full") == cells_for("full")

    def test_explicit_ids(self):
        cells = parse_cells("bzip2/full-jumps/serial, vim/g16-writes/cached")
        assert cells == [
            MatrixCell("bzip2", "full-jumps", "serial"),
            MatrixCell("vim", "g16-writes", "cached"),
        ]

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            parse_cells("nonesuch/full-jumps/serial")

    def test_unknown_patch_config_raises(self):
        with pytest.raises(ValueError, match="unknown patch config"):
            parse_cells("bzip2/nonesuch/serial")

    def test_unknown_combo_raises(self):
        with pytest.raises(ValueError, match="unknown option combo"):
            parse_cells("bzip2/full-jumps/nonesuch")

    def test_malformed_id_raises(self):
        with pytest.raises(ValueError, match="bad cell id"):
            parse_cells("bzip2/serial")

    def test_empty_spec_raises(self):
        with pytest.raises(ValueError, match="no cells"):
            parse_cells(" , ")


class TestWorkloadParams:
    def test_large_profile_is_capped(self):
        # gcc's scaled site count (>1500) exceeds the cap.
        params = workload_params("gcc", max_sites=500)
        assert params.n_jump_sites == 500
        assert params.bss_bytes == 0

    def test_floor_applies_to_small_profiles(self):
        # bzip2 scales to ~23 sites — far too little timed work for a
        # stable rate measurement, so the floor takes over.
        params = workload_params("bzip2")
        assert params.n_jump_sites >= MIN_WORKLOAD_SITES

    def test_pie_character_is_kept(self):
        assert workload_params("FireFox").pie
        assert not workload_params("bzip2").pie


class TestInjectSlowdown:
    def test_scales_times_up_and_rates_down(self):
        payload = {
            "cells": {
                "a": {"metrics": {"rewrite_s": 1.0, "decode_mb_s": 4.0,
                                  "plan_sites_s": 100.0, "succ_pct": 100.0}}
            }
        }
        out = inject_slowdown(payload, 2.0)
        metrics = out["cells"]["a"]["metrics"]
        assert metrics["rewrite_s"] == 2.0
        assert metrics["decode_mb_s"] == 2.0
        assert metrics["plan_sites_s"] == 50.0
        assert metrics["succ_pct"] == 100.0  # untouched

    def test_factor_one_is_identity(self):
        payload = {"cells": {}}
        assert inject_slowdown(payload, 1.0) is payload


@pytest.mark.slow
class TestRunCell:
    """One real cell, scaled down, through the production engine path."""

    def test_serial_cell_metrics(self):
        result = run_cell(
            MatrixCell("bzip2", "full-jumps", "serial"),
            max_sites=64, oracle=False, repeats=1,
        )
        assert result.ok
        for name in ("rewrite_s", "sites", "succ_pct", "b0_pct",
                     "size_pct", "decode_mb_s", "plan_sites_s"):
            assert name in result.metrics, name
        assert result.metrics["succ_pct"] > 0

    def test_cached_cell_reports_warm_metrics(self):
        result = run_cell(
            MatrixCell("bzip2", "full-jumps", "cached"),
            max_sites=64, oracle=False, repeats=1,
        )
        assert result.ok
        assert "warm_s" in result.metrics
        assert result.metrics["cache_hits"] > 0

    def test_run_matrix_payload_schema(self):
        payload = run_matrix(
            [MatrixCell("bzip2", "full-jumps", "serial")],
            suite="custom", max_sites=64, oracle=False, repeats=1,
        )
        assert payload["schema"] == "repro-matrix/1"
        assert payload["suite"] == "custom"
        assert set(payload["host"]) == {"python", "machine", "cpus"}
        cell = payload["cells"]["bzip2/full-jumps/serial"]
        assert cell["verdict"] == "ok"
        assert cell["metrics"]["sites"] > 0

    def test_cell_meta_reports_elf_type_and_cet(self):
        """Cell metadata carries the binary's kind (ET_EXEC/ET_DYN) and
        CET note presence — strings live in meta, never in the numeric
        metrics the trend gate compares."""
        exec_cell = run_cell(
            MatrixCell("bzip2", "full-jumps", "serial"),
            max_sites=64, oracle=False, repeats=1,
        )
        assert exec_cell.meta["elf_type"] == "ET_EXEC"
        assert exec_cell.meta["cet"] is False
        so_cell = run_cell(
            MatrixCell("libsynth-cet.so", "full-jumps", "serial"),
            max_sites=64, oracle=False, repeats=1,
        )
        assert so_cell.ok
        assert so_cell.meta == {"elf_type": "ET_DYN", "cet": True,
                                "cet_note": True}
        payload = so_cell.to_dict()
        assert payload["meta"]["elf_type"] == "ET_DYN"
        assert all(not isinstance(v, str)
                   for v in payload["metrics"].values())

    def test_shared_cell_oracle_runs_at_nonzero_base(self):
        """The .so column's oracle combo is a dlopen-style run at a high
        load base; the verdict must still be equivalent."""
        result = run_cell(
            MatrixCell("libsynth-cet.so", "full-jumps", "checked"),
            max_sites=64, repeats=1,
        )
        assert result.verdict == "ok"  # divergence would flip the verdict
        assert result.metrics["oracle_events"] > 0
        assert "vm_overhead_ratio" in result.metrics
