"""The RESULTS.md collector."""


from repro.eval.collect import collect, main


class TestCollect:
    def test_collect_existing_artifacts(self, tmp_path):
        (tmp_path / "table1_spec.txt").write_text("row1\nrow2\n")
        (tmp_path / "ablation_b0.txt").write_text("b0 numbers\n")
        text = collect(tmp_path)
        assert "## Table 1 — SPEC2006" in text
        assert "row1" in text
        assert "Missing artifacts" in text  # others absent

    def test_all_present_no_missing_section(self, tmp_path):
        from repro.eval.collect import SECTIONS

        for name, _, _ in SECTIONS:
            (tmp_path / name).write_text("x\n")
        text = collect(tmp_path)
        assert "Missing artifacts" not in text

    def test_main_writes_file(self, tmp_path, capsys):
        (tmp_path / "table1_spec.txt").write_text("data\n")
        target = tmp_path / "RESULTS.md"
        assert main([str(tmp_path), str(target)]) == 0
        assert target.exists()
        assert "wrote" in capsys.readouterr().out
