"""Cost-model sensitivity harness."""

from repro.eval.sensitivity import format_sensitivity, run_sensitivity
from repro.synth.profiles import profile_by_name


class TestSensitivity:
    def test_ranking_helpers(self):
        profiles = [profile_by_name(n) for n in ("mcf", "lbm")]
        result = run_sensitivity(profiles, weights=(0, 2), loop_iters=1)
        assert set(result.overheads) == {"mcf", "lbm"}
        for row in result.overheads.values():
            assert all(v > 100.0 for v in row.values())
        assert len(result.ranking(0)) == 2
        text = format_sensitivity(result)
        assert "ranking stable" in text
